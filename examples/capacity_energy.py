"""Capacity planning and energy: temporal structure, clustering, and the
consolidation opportunity.

Combines three extension analyses: the temporal classification behind §7's
"relatively static" observation, data-driven workload clustering, and the
energy headroom consolidation would unlock.

Run:  python examples/capacity_energy.py
"""

from repro.core.clustering import cluster_workloads
from repro.core.energy import fleet_energy
from repro.core.temporal import static_node_share, temporal_summary
from repro.datagen import GeneratorConfig, generate_dataset


def main() -> None:
    dataset = generate_dataset(GeneratorConfig(scale=0.03, sampling_seconds=1800))
    print(f"Region: {dataset.node_count} nodes, {dataset.vm_count} VMs, 30 days\n")

    # Temporal structure (§7 guidance input).
    print("Temporal classification of node CPU utilisation:")
    for row in temporal_summary(dataset).rows():
        print(f"  {row['classification']:<12} {row['node_count']:>4} nodes "
              f"({row['share']:.0%}), mean daily std {row['mean_std_pp']:.1f} pp")
    print(f"  -> {static_node_share(dataset):.0%} static, matching §7's "
          f"'relatively static' observation\n")

    # Workload clustering (§7: characterization before strategy choice).
    print("Behavioural workload clusters (k-means over usage/size/lifetime):")
    result = cluster_workloads(dataset, k=4)
    for cluster in result.clusters:
        print(f"  {cluster.label:<26} {cluster.size:>5} VMs  "
              f"cpu {cluster.cpu_avg:.0%}  mem {cluster.mem_avg:.0%}  "
              f"~{cluster.lifetime_days_geo_mean:,.0f} d lifetime")
    print()

    # Energy.
    report = fleet_energy(dataset)
    print(f"Fleet energy over the window: {report.total_kwh:,.0f} kWh")
    print(f"  idle floor share:          {report.idle_share:.0%}")
    print(f"  consolidation potential:   "
          f"{report.consolidation_potential_kwh:,.0f} kWh "
          f"({report.consolidation_potential_kwh / report.total_kwh:.0%} of total)")


if __name__ == "__main__":
    main()
