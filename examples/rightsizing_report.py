"""Right-sizing and overcommit guidance (§7) on a generated region.

Produces the two §7 recommendations: a workload-derived CPU overcommit
factor per scope, and per-VM right-sizing proposals with the reclaimable
capacity they unlock.

Run:  python examples/rightsizing_report.py
"""

from repro.core.guidance import (
    assess_overcommit,
    rightsizing_recommendations,
    rightsizing_summary,
)
from repro.datagen import GeneratorConfig, generate_dataset


def main() -> None:
    dataset = generate_dataset(GeneratorConfig(scale=0.03, sampling_seconds=1800))
    print(f"Region: {dataset.node_count} nodes, {dataset.vm_count} VMs\n")

    # Guidance 1: reconsider the overcommit factor (vCPU:pCPU ratio).
    regional = assess_overcommit(dataset)
    print("Workload-derived CPU overcommit assessment (region):")
    print(f"  allocated vCPUs          {regional.allocated_vcpus:,.0f}")
    print(f"  physical cores           {regional.physical_cores:,.0f}")
    print(f"  current vCPU:pCPU ratio  {regional.current_ratio:.2f}")
    print(f"  peak demand              {regional.peak_demand_cores:,.0f} cores")
    print(f"  demand-supported ratio   {regional.supportable_ratio:.2f} "
          f"(p95-based: {regional.supportable_ratio_p95:.2f})")
    print(f"  headroom                 {regional.headroom:.1f}x\n")

    print("Per-building-block ratios (5 most constrained):")
    assessments = [
        assess_overcommit(dataset, bb_id=bb) for bb in dataset.building_blocks()
    ]
    assessments.sort(key=lambda a: a.headroom)
    for a in assessments[:5]:
        print(f"  {a.scope:<28} current {a.current_ratio:5.2f}  "
              f"supportable {a.supportable_ratio:6.2f}  "
              f"headroom {a.headroom:5.1f}x")

    # Guidance 2: qualified right-sizing.
    recs = rightsizing_recommendations(dataset)
    summary = rightsizing_summary(dataset)
    print(f"\nRight-sizing: {len(recs)} proposals "
          f"(underutilised VMs, >=25% saving).  Top 5 by saving:")
    for rec in recs[:5]:
        unit = "vCPUs" if rec.resource == "cpu" else "GiB"
        print(f"  {rec.vm_id:<12} {rec.flavor:<16} {rec.resource:<6} "
              f"{rec.current:7.0f} -> {rec.recommended:5.0f} {unit:<6} "
              f"(avg use {rec.avg_utilization:.0%})")

    print("\nAggregate reclaimable capacity:")
    for row in summary.rows():
        unit = "vCPUs" if row["resource"] == "cpu" else "GiB"
        print(f"  {row['resource']:<7} {row['vms_affected']:>6} VMs, "
              f"{row['current_total'] - row['recommended_total']:,.0f} {unit} "
              f"({row['reclaimable_fraction']:.0%} of their allocation)")


if __name__ == "__main__":
    main()
