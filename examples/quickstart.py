"""Quickstart: generate a scaled replica of the SAP regional dataset and
reproduce the paper's headline findings.

Run:  python examples/quickstart.py [--scale 0.03]
"""

import argparse

import numpy as np

from repro.analysis.figures import fig5_dc_cpu_heatmap, fig9_contention_aggregate
from repro.core.characterization import utilization_breakdown, vm_size_tables
from repro.datagen import GeneratorConfig, generate_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.03,
                        help="fraction of the studied region to build")
    parser.add_argument("--sampling", type=int, default=1800,
                        help="telemetry sampling interval in seconds")
    args = parser.parse_args()

    print(f"Generating a {args.scale:.0%} replica of the studied region "
          f"(~1,800 hypervisors, ~48,000 VMs at full scale) ...")
    dataset = generate_dataset(
        GeneratorConfig(scale=args.scale, sampling_seconds=args.sampling)
    )
    summary = dataset.summary()
    print(f"  {summary['nodes']} nodes, {summary['vms']} VMs, "
          f"{summary['building_blocks']} building blocks, "
          f"{summary['samples']:,} telemetry samples over "
          f"{summary['window_days']:.0f} days\n")

    # Finding 1 (Fig 14): CPU is heavily overprovisioned, memory is not.
    cpu = utilization_breakdown(dataset, "cpu")
    mem = utilization_breakdown(dataset, "memory")
    print("VM utilisation classes (paper thresholds: <70% / 70-85% / >85%):")
    print(f"  CPU    under {cpu.underutilized:5.1%}  optimal {cpu.optimal:5.1%}  "
          f"over {cpu.overutilized:5.1%}   (paper: >80% under)")
    print(f"  memory under {mem.underutilized:5.1%}  optimal {mem.optimal:5.1%}  "
          f"over {mem.overutilized:5.1%}   (paper: ~38% / ~10% / ~52%)\n")

    # Finding 2 (Fig 5): imbalanced compute hosts.
    heatmap = fig5_dc_cpu_heatmap(dataset)
    means = heatmap.column_means()
    print(f"Free-CPU imbalance within one DC ({len(heatmap.columns)} nodes): "
          f"busiest node averages {np.nanmin(means):.0f}% free, idlest "
          f"{np.nanmax(means):.0f}% free\n")

    # Finding 3 (Fig 9): contention on a small, persistent subset.
    stats = fig9_contention_aggregate(dataset)
    print(f"CPU contention over 30 days: fleet mean peaks at "
          f"{float(np.max(stats['mean'])):.2f}%, per-node maxima reach "
          f"{float(np.max(stats['max'])):.0f}%\n")

    # Finding 4 (Tables 1-2): the workload mix.
    table1, table2 = vm_size_tables(dataset)
    print("VM size classes:")
    for label, table in (("vCPU", table1), ("RAM GiB", table2)):
        cells = ", ".join(
            f"{c}={int(n)}" for c, n in zip(table["category"], table["vm_count"])
        )
        print(f"  by {label:8} {cells}")


if __name__ == "__main__":
    main()
