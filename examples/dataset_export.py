"""Export a generated dataset to the public-archive CSV layout and reload it.

Mirrors the Zenodo release format (Appendix B: "anonymized telemetry data
in CSV format"): inventory tables, lifecycle events, and one long-format
file per Table 4 metric, plus the generated experiment report.

Run:  python examples/dataset_export.py [--out /tmp/sap-dataset]
"""

import argparse
from pathlib import Path

from repro.analysis.report import render_experiments_report
from repro.core.dataset import SAPCloudDataset
from repro.datagen import GeneratorConfig, generate_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="/tmp/sap-dataset",
                        help="output directory for the CSV archive")
    parser.add_argument("--scale", type=float, default=0.02)
    args = parser.parse_args()

    dataset = generate_dataset(
        GeneratorConfig(scale=args.scale, sampling_seconds=3600)
    )
    out = Path(args.out)
    print(f"Writing CSV archive to {out} ...")
    dataset.to_csv(out)
    files = sorted(out.iterdir())
    total_mb = sum(f.stat().st_size for f in files) / 1e6
    print(f"  {len(files)} files, {total_mb:.1f} MB")
    for f in files[:6]:
        print(f"    {f.name}")
    print("    ...")

    print("\nReloading and verifying ...")
    restored = SAPCloudDataset.from_csv(out)
    assert restored.node_count == dataset.node_count
    assert restored.vm_count == dataset.vm_count
    assert set(restored.store.metrics()) == set(dataset.store.metrics())
    print(f"  round-trip OK: {restored.node_count} nodes, "
          f"{restored.vm_count} VMs, {restored.store.sample_count():,} samples")

    report_path = out / "EXPERIMENT_REPORT.md"
    report_path.write_text(render_experiments_report(restored))
    print(f"\nExperiment report written to {report_path}")


if __name__ == "__main__":
    main()
