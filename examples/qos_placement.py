"""QoS-aware placement walk-through (§8 outlook).

Demonstrates the guaranteed/burstable/besteffort tiers end to end: pin a
latency-sensitive database's cores, check NUMA alignment, and route the
three tiers through a QoS-filtered scheduler against measured contention.

Run:  python examples/qos_placement.py
"""

from repro.datagen import GeneratorConfig, generate_dataset
from repro.infrastructure.flavors import default_catalog
from repro.qos.classes import qos_for_flavor
from repro.qos.filters import QosClassFilter
from repro.qos.numa import NumaTopology
from repro.qos.pinning import CpuPinningAllocator
from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec
from repro.simulation.hostsched import HostCpuModel


def main() -> None:
    catalog = default_catalog()

    # 1. Tier assignment.
    print("QoS tier per flavor family:")
    for name in ("h_c64_m1024", "g_c32_m128", "g_c2_m4"):
        flavor = catalog.get(name)
        qos = qos_for_flavor(flavor)
        print(f"  {name:<14} -> {qos.name:<11} "
              f"(overcommit <= {qos.max_cpu_overcommit}, "
              f"contention <= {qos.contention_ceiling_pct}%, "
              f"pinning={'yes' if qos.requires_pinning else 'no'})")

    # 2. CPU pinning: the guaranteed VM leaves the shared pool.
    print("\nPinning a 16-vCPU guaranteed VM on a 128-core host:")
    allocator = CpuPinningAllocator(total_cores=128)
    cores = allocator.pin("db-1", 16)
    print(f"  pinned cores {cores[0]}..{cores[-1]}, "
          f"shared pool shrinks to {allocator.shared_cores} cores")
    shared = HostCpuModel(allocator.shared_cores, efficiency=1.0)
    pinned = HostCpuModel(16, efficiency=1.0)
    busy = shared.resolve_window(demand_cores=120, window_seconds=300)
    db = pinned.resolve_window(demand_cores=14, window_seconds=300)
    print(f"  under heavy shared load: shared-pool contention "
          f"{busy.cpu_contention_fraction:.1%}, pinned DB contention "
          f"{db.cpu_contention_fraction:.1%}")

    # 3. NUMA alignment on a HANA-class host (2 sockets, 112 cores + 6 TiB
    # each).
    print("\nNUMA placement on a 2-socket HANA host:")
    for name in ("h_c96_m2048", "h_c128_m12288"):
        topology = NumaTopology.symmetric(2, 224, 12288 * 1024)
        placement = topology.place(name, catalog.get(name))
        state = "aligned (1 socket)" if placement.aligned else (
            f"spans {placement.node_count} sockets")
        print(f"  {name:<14} {state}")

    # 4. Contention-aware tier routing on generated telemetry.
    print("\nTier routing against measured contention:")
    dataset = generate_dataset(GeneratorConfig(scale=0.02, sampling_seconds=3600))
    scores = {
        labels["hostsystem"]: series.percentile(95)
        for labels, series in dataset.store.select(
            "vrops_hostsystem_cpu_contention_percentage"
        )
        if len(series)
    }
    hosts = [
        HostState(host_id=n, free_vcpus=500, free_ram_mb=1e7, free_disk_gb=1e5,
                  total_vcpus=500, total_ram_mb=1e7, total_disk_gb=1e5,
                  metadata={"cpu_overcommit": "1.0"})
        for n in scores
    ]
    flt = QosClassFilter(contention_scores=scores)
    for name in ("h_c32_m512", "g_c32_m128", "g_c2_m4"):
        spec = RequestSpec(vm_id=name, flavor=catalog.get(name))
        eligible = flt.filter_all(hosts, spec)
        print(f"  {qos_for_flavor(spec.flavor).name:<11} "
              f"({name}): {len(eligible)}/{len(hosts)} hosts eligible")


if __name__ == "__main__":
    main()
