"""Compare vanilla Nova placement with the paper's §7-motivated schedulers.

Replays one Table 1/2-shaped request stream through four strategies —
default filter/weigher, contention-aware, lifetime-aware, and holistic
node-level — and reports hot-host load, churn mixing, and consolidation.

Run:  python examples/scheduler_comparison.py
"""

import numpy as np

from repro.core.advanced_placement import (
    ContentionAwareScheduler,
    HolisticNodeScheduler,
    LifetimeAwareScheduler,
)
from repro.datagen.population import FLAVOR_MIX
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import build_region, paper_region_spec
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import PlacementService
from repro.scheduler.request import RequestSpec
from repro.scheduler.weighers import FitnessWeigher

SCALE = 0.03
N_REQUESTS = 400


def fresh_region():
    region = build_region(paper_region_spec(scale=SCALE))
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)
    return region, placement


def request_stream(seed: int = 42):
    catalog = default_catalog()
    rng = np.random.default_rng(seed)
    names = [n for n, w in FLAVOR_MIX if w > 0]
    weights = np.asarray([w for _, w in FLAVOR_MIX if w > 0])
    weights = weights / weights.sum()
    stream = []
    for i, pick in enumerate(rng.choice(len(names), size=N_REQUESTS, p=weights)):
        short = bool(rng.random() < 0.4)
        stream.append(
            RequestSpec(
                vm_id=f"vm-{i:05d}",
                flavor=catalog.get(names[int(pick)]),
                scheduler_hints={
                    "expected_lifetime_s": "1800" if short else str(90 * 86_400)
                },
            )
        )
    return stream


def replay(scheduler, stream):
    placements = {}
    for spec in stream:
        try:
            placements[spec.vm_id] = scheduler.schedule(spec).host_id
        except NoValidHost:
            pass
    return placements


def main() -> None:
    stream = request_stream()

    # Vanilla Nova.
    region, placement = fresh_region()
    general_bbs = sorted(
        (b for b in region.iter_building_blocks() if not b.aggregate_class),
        key=lambda b: -b.physical().vcpus,
    )
    # Mark the largest quarter (never all) as historically contended.
    n_hot = min(max(1, len(general_bbs) // 4), len(general_bbs) - 1)
    hot_hosts = {bb.bb_id: 30.0 for bb in general_bbs[:n_hot]}
    # fast() turns off the per-filter trace; placements are unaffected.
    default = replay(FilterScheduler(region, placement, SchedulerConfig().fast()), stream)

    # Contention-aware.
    region2, placement2 = fresh_region()
    aware = replay(
        ContentionAwareScheduler(
            region2, placement2, contention_scores=hot_hosts,
            contention_multiplier=4.0,
        ),
        stream,
    )

    # Lifetime-aware.
    region3, placement3 = fresh_region()
    general = sorted(
        bb.bb_id for bb in region3.iter_building_blocks() if not bb.aggregate_class
    )
    churn = {
        bb_id: "short" if i < len(general) * 0.4 else "long"
        for i, bb_id in enumerate(general)
    }
    lifetime = replay(
        LifetimeAwareScheduler(
            region3, placement3, churn_classes=churn, affinity_multiplier=4.0
        ),
        stream,
    )

    # Holistic node-level best-fit.
    region4, placement4 = fresh_region()
    holistic_nodes = set(
        replay(
            HolisticNodeScheduler(
                region4, placement4, weighers=[FitnessWeigher(2.0)]
            ),
            stream,
        ).values()
    )

    def hot_share(placements):
        return sum(1 for h in placements.values() if h in hot_hosts) / len(placements)

    print(f"Replayed {N_REQUESTS} placement requests per strategy "
          f"({len(hot_hosts)} hosts marked historically contended)\n")
    print(f"{'strategy':<18} {'share on hot hosts':>20}")
    print(f"{'default Nova':<18} {hot_share(default):>19.1%}")
    print(f"{'contention-aware':<18} {hot_share(aware):>19.1%}")

    def mixing(placements, stream):
        short_by_vm = {
            s.vm_id: s.scheduler_hints["expected_lifetime_s"] == "1800"
            for s in stream
        }
        hosts = {}
        for vm, host in placements.items():
            hosts.setdefault(host, set()).add(short_by_vm[vm])
        return sum(1 for kinds in hosts.values() if len(kinds) == 2) / len(hosts)

    print(f"\n{'strategy':<18} {'hosts mixing short+long VMs':>28}")
    print(f"{'default Nova':<18} {mixing(default, stream):>27.1%}")
    print(f"{'lifetime-aware':<18} {mixing(lifetime, stream):>27.1%}")

    two_layer_nodes = sum(
        bb.node_count
        for bb in region.iter_building_blocks()
        if any(v > 0 for v in placement.provider(bb.bb_id).used.values())
    )
    print(f"\n{'strategy':<18} {'activated nodes':>16}")
    print(f"{'two-layer (Nova+DRS)':<18} {two_layer_nodes:>14}")
    print(f"{'holistic best-fit':<18} {len(holistic_nodes):>14}")


if __name__ == "__main__":
    main()
