"""Contention deep-dive: reproduce the §5.1 analysis on a generated region.

Finds the noisiest hypervisors, quantifies CPU ready time against the 30 s
baseline, classifies nodes against the 10%/30%/40% contention thresholds,
and checks the weekday/weekend temporal effect.

Run:  python examples/contention_analysis.py
"""

import numpy as np

from repro.core.contention import (
    READY_BASELINE_MS,
    contention_summary,
    contention_daily_stats,
    ready_baseline_exceedances,
    top_ready_time_nodes,
    weekday_weekend_effect,
)
from repro.core.noisy_neighbors import blast_radius, victim_exposures
from repro.datagen import GeneratorConfig, generate_dataset


def main() -> None:
    dataset = generate_dataset(GeneratorConfig(scale=0.03, sampling_seconds=1800))
    print(f"Region: {dataset.node_count} nodes, {dataset.vm_count} VMs, 30 days\n")

    # Fig 8: the ten nodes with the highest CPU ready time.
    print("Top nodes by CPU ready time (peak per sampling window):")
    for node_id, series in top_ready_time_nodes(dataset, n=5):
        print(f"  {node_id:<40} peak {series.max() / 1000:7.1f} s   "
              f"mean {series.mean() / 1000:6.1f} s")

    exceed = ready_baseline_exceedances(dataset)
    print(f"\n{len(exceed)} nodes exceeded the "
          f"{READY_BASELINE_MS / 1000:.0f} s ready-time baseline; "
          f"worst did so in {int(np.asarray(exceed['exceedances'])[0])} windows.")

    weekday, weekend = weekday_weekend_effect(dataset)
    print(f"Temporal effect: weekday mean ready {weekday / 1000:.1f} s vs "
          f"weekend {weekend / 1000:.1f} s.\n")

    # Fig 9: fleet-level contention.
    stats = contention_daily_stats(dataset)
    summary = contention_summary(dataset)
    print("CPU contention across the fleet:")
    print(f"  worst daily mean {float(np.max(stats['mean'])):.2f}%  "
          f"(paper: below 5%)")
    print(f"  worst daily p95  {float(np.max(stats['p95'])):.2f}%  "
          f"(paper: below 5%)")
    print(f"  overall maximum  {summary.overall_max:.1f}%")
    print(f"  nodes above 10% / 30% / 40% thresholds: "
          f"{summary.nodes_above_strict} / {summary.nodes_above_moderate} / "
          f"{summary.nodes_above_severe} of {summary.node_count}")

    # Noisy neighbours (§3.2): who actually suffers?
    radius = blast_radius(dataset)
    victims = victim_exposures(dataset)
    print(f"\nNoisy-neighbour blast radius: {radius['affected_vms']} VMs "
          f"({radius['affected_vm_share']:.1%} of the population) on "
          f"{radius['affected_nodes']} contended nodes.")
    for e in victims[:3]:
        print(f"  {e.vm_id:<12} exposed {e.exposed_share:.0%} of its samples "
              f"(mean contention {e.mean_contention_when_exposed:.0f}%)")

    share = summary.nodes_above_strict / summary.node_count
    print(f"\nInterpretation: contention is persistent but confined to "
          f"{share:.1%} of the fleet — the paper's argument for "
          f"contention-aware placement instead of fleet-wide overcommit cuts.")


if __name__ == "__main__":
    main()
