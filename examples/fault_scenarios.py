"""Fault-injection scenarios: how the simulated region degrades and recovers.

Runs the same one-day regional workload three ways — happy path, moderate
chaos, heavy chaos — and prints what the fault layer injected and how the
evacuation/retry machinery coped.  The final JSON line is the heavy
scenario's FaultReport: it is byte-stable per seed, which the CI smoke job
relies on (same seed ⇒ same sha256).

Usage::

    python examples/fault_scenarios.py [--seed N] [--days D] [--json-only]
"""

from __future__ import annotations

import argparse

from repro.faults import FaultConfig
from repro.faults.scenario import ScenarioConfig, run_fault_scenario


def scenario(name: str, seed: int, days: float, faults: FaultConfig, json_only: bool):
    config = ScenarioConfig(duration_days=days, seed=seed, faults=faults)
    result = run_fault_scenario(config)
    report = result.fault_report
    if not json_only:
        print(f"=== {name} ===")
        print(
            f"created {result.created}, deleted {result.deleted}, "
            f"rejected {result.rejected}, DRS migrations {result.drs_migrations}"
        )
        print(report.render())
        print()
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--days", type=float, default=1.0)
    parser.add_argument(
        "--json-only", action="store_true",
        help="print only the heavy scenario's FaultReport JSON (for hashing)",
    )
    args = parser.parse_args()

    scenario(
        "happy path (no faults)", args.seed, args.days,
        FaultConfig(seed=args.seed), args.json_only,
    )
    scenario(
        "moderate chaos", args.seed, args.days,
        FaultConfig(
            seed=args.seed,
            host_failure_rate_per_day=3.0,
            migration_abort_fraction=0.1,
            scrape_gap_probability=0.02,
            stale_node_probability=0.01,
        ),
        args.json_only,
    )
    heavy = scenario(
        "heavy chaos", args.seed, args.days,
        FaultConfig(
            seed=args.seed,
            host_failure_rate_per_day=12.0,
            repair_time_mean_s=6 * 3600.0,
            migration_abort_fraction=0.3,
            scrape_gap_probability=0.05,
            stale_node_probability=0.05,
        ),
        args.json_only,
    )
    print(heavy.to_json())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
