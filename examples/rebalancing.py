"""Continuous rebalancing walk-through (§7).

Builds a deliberately fragmented data center — one building block loaded
far above its siblings — then runs the two-layer rebalancing loop (DRS
inside clusters, cost-aware planner across them) and reports the imbalance
trajectory and migration costs.

Run:  python examples/rebalancing.py
"""

import numpy as np

from repro.drs.balancer import DrsBalancer
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import build_region, paper_region_spec
from repro.infrastructure.vm import VM
from repro.rebalancer import RebalanceDriver
from repro.scheduler.placement import PlacementService


def main() -> None:
    region = build_region(paper_region_spec(scale=0.02))
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)

    # Fragment one DC: stack VMs onto the first general BB's first nodes.
    catalog = default_catalog()
    dc = next(region.iter_datacenters())
    general = [
        bb for bb in dc.iter_building_blocks() if not bb.aggregate_class
    ]
    target_bb = general[0]
    nodes = list(target_bb.iter_nodes())
    rng = np.random.default_rng(5)
    count = 0
    for i in range(120):
        flavor = catalog.get(str(rng.choice(["g_c4_m16", "g_c8_m32", "g_c16_m64"])))
        vm = VM(vm_id=f"vm-{i:03d}", flavor=flavor)
        node = nodes[i % max(1, len(nodes) // 3)]  # only the first third
        if not vm.requested().fits_within(node.free(target_bb.overcommit)):
            continue
        node.add_vm(vm)
        placement.claim(vm.vm_id, target_bb.bb_id, vm.requested())
        count += 1

    driver = RebalanceDriver(region, placement)
    print(f"Fragmented {dc.dc_id}: {count} VMs stacked on "
          f"{max(1, len(nodes) // 3)} of {len(nodes)} nodes in {target_bb.bb_id}")
    print(f"initial DC imbalance (std of node load fractions): "
          f"{driver.dc_imbalance(dc.dc_id):.3f}\n")

    drs = DrsBalancer()
    for bb in general:
        print(f"  {bb.bb_id}: intra-BB imbalance {drs.imbalance(bb):.3f}")

    report = driver.run_until_stable(dc.dc_id, max_passes=5)
    print(f"\nRebalancing: {report.passes} passes, "
          f"{report.intra_bb_migrations} DRS moves, "
          f"{report.cross_bb_migrations} cross-BB migrations "
          f"({report.total_transfer_mb / 1024:.1f} GiB transferred, "
          f"{report.skipped_moves} moves skipped on cost)")
    print(f"imbalance {report.imbalance_before:.3f} -> "
          f"{report.imbalance_after:.3f}")

    print("\nFirst few moves:")
    for line in report.history[:8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
