"""Legacy setup shim for environments with an old setuptools and no wheel."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'The SAP Cloud Infrastructure Dataset' (IMC 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
