"""Ablation: reactive (vanilla Nova) vs forecast-driven proactive placement.

§7: the Nova scheduler "solely relies on current data"; a proactive
approach should also use predicted utilisation.  Scenario: one building
block's load is trending steeply upward but is still below its peers at
decision time.  The reactive scheduler keeps placing onto it; the
proactive scheduler, weighing Holt forecasts, diverts new VMs before the
hot spot materialises.
"""

import numpy as np

from repro.forecasting.proactive import CPU_METRIC, ForecastWeigher, forecast_host_load
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import build_region, paper_region_spec
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.pipeline import FilterScheduler
from repro.scheduler.placement import PlacementService
from repro.scheduler.policies import spread_policy_weighers
from repro.scheduler.request import RequestSpec
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import TimeSeries


def _setup():
    region = build_region(paper_region_spec(scale=0.03))
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)
    general = sorted(
        bb.bb_id for bb in region.iter_building_blocks() if not bb.aggregate_class
    )
    # Telemetry history: the first general BB trends 30% -> 60% and rising;
    # the others are flat at 65% (currently *worse* than the trending one).
    store = MetricStore()
    n = 96
    for i, bb_id in enumerate(general):
        if i == 0:
            values = 30 + 0.4 * np.arange(n)  # hits ~68 at the end, rising
        else:
            values = np.full(n, 65.0)
        store.append_series(
            CPU_METRIC,
            {"hostsystem": f"{bb_id}-proxy", "building_block": bb_id},
            TimeSeries.regular(0, 900, values),
        )
    return region, placement, store, general


def _requests(n=60):
    catalog = default_catalog()
    return [
        RequestSpec(vm_id=f"vm-{i:04d}", flavor=catalog.get("g_c4_m16"))
        for i in range(n)
    ]


def test_proactive_diverts_from_trending_host(benchmark):
    region, placement, store, general = _setup()
    trending = general[0]
    requests = _requests()

    # Reactive baseline: free-capacity weighers only.
    reactive = FilterScheduler(region, placement)
    reactive_hosts = [reactive.schedule(spec).host_id for spec in requests]
    reactive_share = reactive_hosts.count(trending) / len(requests)

    def run_proactive():
        region2 = build_region(paper_region_spec(scale=0.03))
        placement2 = PlacementService()
        for bb in region2.iter_building_blocks():
            placement2.register_building_block(bb)
        peaks = forecast_host_load(store, horizon_steps=48)
        weighers = spread_policy_weighers() + [ForecastWeigher(peaks, 3.0)]
        scheduler = FilterScheduler(
            region2, placement2, SchedulerConfig(weighers=weighers)
        )
        hosts = [scheduler.schedule(spec).host_id for spec in requests]
        return hosts, peaks

    proactive_hosts, peaks = benchmark.pedantic(run_proactive, rounds=2, iterations=1)
    proactive_share = proactive_hosts.count(trending) / len(requests)

    # The forecast sees the trending BB as the hottest-to-be.
    assert peaks[trending] == max(peaks.values())
    assert peaks[trending] > 75.0
    # Proactive placement diverts away from it.
    assert proactive_share < reactive_share
    assert proactive_share < 0.1

    print(f"\n[proactive] share of VMs placed on the trending BB: reactive "
          f"{reactive_share:.1%} -> proactive {proactive_share:.1%} "
          f"(forecast peak {peaks[trending]:.0f}%)")
