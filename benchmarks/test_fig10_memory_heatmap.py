"""Figure 10: daily average free memory per node within one DC.

Paper shape: bimodal — a group of nodes with ample free memory next to a
comparable group below 20% free (bin-packed HANA hosts), with occasional
abrupt purple→yellow shifts caused by migrations/terminations.
"""

import numpy as np

from repro.analysis.figures import fig10_memory_heatmap


def test_fig10_memory_heatmap(benchmark, dataset):
    heatmap = benchmark(fig10_memory_heatmap, dataset)

    means = heatmap.column_means()
    finite = means[np.isfinite(means)]
    # Both modes present: nearly-full nodes and mostly-free nodes.
    nearly_full = float(np.mean(finite < 25.0))
    mostly_free = float(np.mean(finite > 60.0))
    assert nearly_full >= 0.05
    assert mostly_free >= 0.30

    # Abrupt shifts: at least one node changes day-over-day free memory by
    # more than 20 pp (migration / termination of a large VM).
    day_deltas = np.abs(np.diff(heatmap.matrix, axis=0))
    assert np.nanmax(day_deltas) > 20.0

    print(f"\n[fig10] free memory: {nearly_full * 100:.0f}% of nodes <25% free, "
          f"{mostly_free * 100:.0f}% >60% free, "
          f"max day-over-day shift {np.nanmax(day_deltas):.0f} pp")
