"""Figure 9: aggregated CPU contention over all nodes of the region.

Paper shape: daily mean and 95th percentile stay below the 5% mark while
per-node maxima range between 10% and 30%, and several nodes exceed the
40% severe level — persistent, non-seasonal contention on a small subset
of the fleet.
"""

import numpy as np

from repro.analysis.figures import fig9_contention_aggregate
from repro.core.contention import contention_summary


def test_fig9_contention(benchmark, dataset):
    stats = benchmark(fig9_contention_aggregate, dataset)

    assert len(stats) == 30
    # Fleet-level mean and p95 low.
    assert float(np.max(stats["mean"])) < 5.0
    assert float(np.max(stats["p95"])) < 5.0
    # Maxima show the 10-30% band and the >40% outliers.
    daily_max = np.asarray(stats["max"], dtype=float)
    assert np.median(daily_max) > 10.0
    assert daily_max.max() > 40.0

    summary = contention_summary(dataset)
    assert summary.nodes_above_strict >= 3  # several nodes beyond 10%
    assert summary.nodes_above_severe >= 1  # outliers beyond 40%
    # Contention is confined to a small part of the fleet.
    assert summary.nodes_above_strict / summary.node_count < 0.25

    print(f"\n[fig9] contention: worst daily mean "
          f"{float(np.max(stats['mean'])):.2f}%, worst p95 "
          f"{float(np.max(stats['p95'])):.2f}%, overall max "
          f"{summary.overall_max:.1f}%, nodes >10/30/40%: "
          f"{summary.nodes_above_strict}/{summary.nodes_above_moderate}/"
          f"{summary.nodes_above_severe} of {summary.node_count}")
