"""Figure 5: daily average free CPU per compute node within one DC.

Paper shape: on the same day some nodes run with <20% free CPU while
others keep >90% free; a subset stays consistently hot across the month
(imbalanced workload distribution within the data center).
"""

import numpy as np

from repro.analysis.figures import fig5_dc_cpu_heatmap


def test_fig5_cpu_heatmap(benchmark, dataset):
    heatmap = benchmark(fig5_dc_cpu_heatmap, dataset)

    assert heatmap.shape[0] == 30  # one row per day
    # Wide same-fleet spread: hot nodes below 25% free, idle ones above 90%.
    assert np.nanmin(heatmap.matrix) < 25.0
    assert np.nanmax(heatmap.matrix) > 90.0
    assert heatmap.spread() > 40.0
    # Consistency over time: the most loaded column stays loaded — its
    # free-CPU never rises into the idle band.
    hottest = heatmap.matrix[:, -1]
    assert np.nanmax(hottest) < 70.0

    print("\n[fig5] free CPU per node, one DC "
          f"({heatmap.shape[1]} nodes x {heatmap.shape[0]} days)")
    print(f"  column means: min {np.nanmin(heatmap.column_means()):.1f}% "
          f"max {np.nanmax(heatmap.column_means()):.1f}% "
          f"spread {heatmap.spread():.1f} pp")
