"""Scheduling substrate benchmark (§2.2, Fig 3): Nova filter/weigher replay.

Replays a Table 1/2-shaped request stream through the FilterScheduler and
checks the §3.2 policy outcomes: general-purpose workloads are spread
across building blocks while HANA workloads bin-pack onto few hosts.
"""

import numpy as np
import pytest

from repro.datagen.population import FLAVOR_MIX
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import build_region, paper_region_spec
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import MEMORY_MB, PlacementService
from repro.scheduler.request import RequestSpec


def _fresh_scheduler():
    region = build_region(paper_region_spec(scale=0.05))
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)
    return FilterScheduler(region, placement)


def _request_stream(n, seed=1):
    catalog = default_catalog()
    rng = np.random.default_rng(seed)
    names = [name for name, w in FLAVOR_MIX if w > 0]
    weights = np.asarray([w for _, w in FLAVOR_MIX if w > 0])
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=n, p=weights)
    return [
        RequestSpec(vm_id=f"vm-{i:05d}", flavor=catalog.get(names[int(p)]))
        for i, p in enumerate(picks)
    ]


def test_sched_pipeline_replay(benchmark):
    requests = _request_stream(600)

    def replay():
        scheduler = _fresh_scheduler()
        placed = 0
        for spec in requests:
            try:
                scheduler.schedule(spec)
                placed += 1
            except NoValidHost:
                pass
        return scheduler, placed

    scheduler, placed = benchmark.pedantic(replay, rounds=3, iterations=1)

    assert placed == len(requests)  # capacity is ample at this load
    assert scheduler.stats["failed"] == 0

    # Policy outcomes: general VMs spread across many BBs ...
    general_hosts = {}
    hana_hosts = {}
    for allocation_host, spec in (
        (scheduler.placement.allocation_for(s.vm_id).provider_id, s)
        for s in requests
    ):
        bucket = hana_hosts if spec.flavor.family == "hana" else general_hosts
        bucket[allocation_host] = bucket.get(allocation_host, 0) + 1

    general_bbs = [
        bb for bb in scheduler.region.iter_building_blocks()
        if not bb.aggregate_class
    ]
    assert len(general_hosts) >= 0.8 * len(general_bbs)

    # ... while HANA VMs pack onto few: mean memory fill of *used* HANA BBs
    # exceeds what even spreading across all HANA BBs would produce.
    hana_bbs = [
        bb for bb in scheduler.region.iter_building_blocks()
        if bb.aggregate_class.startswith("hana")
    ]
    assert len(hana_hosts) < len(hana_bbs)

    used_fills = []
    for bb_id in hana_hosts:
        provider = scheduler.placement.provider(bb_id)
        used_fills.append(provider.used[MEMORY_MB] / provider.capacity(MEMORY_MB))
    print(f"\n[sched1] {placed} placements; general spread over "
          f"{len(general_hosts)}/{len(general_bbs)} BBs; HANA packed onto "
          f"{len(hana_hosts)}/{len(hana_bbs)} BBs "
          f"(mean fill {np.mean(used_fills) * 100:.0f}%)")


def test_sched_pipeline_single_request_latency(benchmark):
    """Per-decision latency of the filter/weigher pipeline at fleet size."""
    scheduler = _fresh_scheduler()
    requests = iter(_request_stream(5000, seed=2))

    def one():
        spec = next(requests)
        try:
            return scheduler.schedule(spec)
        except NoValidHost:
            return None

    benchmark(one)
    assert scheduler.stats["requests"] > 0
