"""Figure 12: daily average free network RX bandwidth per node.

Paper shape: like TX, received traffic stays far below NIC capacity.
"""

import numpy as np

from repro.analysis.figures import fig12_network_rx_heatmap


def test_fig12_network_rx(benchmark, dataset):
    heatmap = benchmark(fig12_network_rx_heatmap, dataset)

    means = heatmap.column_means()
    assert np.nanmin(means) > 90.0
    assert np.nanmin(heatmap.matrix) > 85.0

    print(f"\n[fig12] free RX bandwidth: min column mean "
          f"{np.nanmin(means):.1f}%, min cell {np.nanmin(heatmap.matrix):.1f}%")
