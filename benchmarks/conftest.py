"""Shared benchmark fixtures.

Benchmarks run against a mid-size replica (scale 0.05 ≈ 92 nodes, ~2,900
VMs, 30 days at 1800 s sampling).  The dataset is generated once per
session; each benchmark times its analysis and asserts the paper's *shape*
(orderings, thresholds, crossovers) — absolute values depend on the
synthetic substrate and are not checked.
"""

from __future__ import annotations

import pytest

from repro.datagen import GeneratorConfig, generate_dataset

BENCH_CONFIG = GeneratorConfig(
    scale=0.05,
    sampling_seconds=1800,
    vm_series_limit=50,
    seed=20240731,
)


@pytest.fixture(scope="session")
def dataset():
    """The shared benchmark dataset (generated once)."""
    return generate_dataset(BENCH_CONFIG)
