"""Figure 15: average VM lifetime per flavor (vCPU × RAM classes).

Paper shape: lifetimes span minutes to multiple years; memory-intensive
flavors exhibit significant lifetimes (stable long-term deployments); the
variation within each class is large and size does not predict lifetime.
"""

import numpy as np

from repro.analysis.figures import fig15_lifetime_per_flavor
from repro.core.characterization import lifetime_size_correlation

DAY = 86_400.0


def test_fig15_lifetime(benchmark, dataset):
    table = benchmark(fig15_lifetime_per_flavor, dataset)

    # Only flavors with >= 30 instances, as in the paper.
    assert np.all(np.asarray(table["vm_count"], dtype=float) >= 30)
    assert len(table) >= 5

    lifetimes = np.asarray(dataset.vms["lifetime_seconds"], dtype=float)
    assert lifetimes.min() < 3600 * 6  # sub-day VMs exist
    assert lifetimes.max() > 365 * DAY  # multi-year VMs exist

    # Memory-intensive (HANA) flavors skew long-lived.
    means = np.asarray(table["mean_lifetime_s"], dtype=float)
    is_hana = np.asarray(
        [str(f).startswith("h_") for f in table["flavor"]]
    )
    if is_hana.any() and (~is_hana).any():
        assert means[is_hana].mean() > means[~is_hana].mean()

    # Weak size -> lifetime relation.
    assert abs(lifetime_size_correlation(dataset)) < 0.35
    # Wide within-class variation: per-flavor min/max differ by >100x.
    ratios = np.asarray(table["max_lifetime_s"], dtype=float) / np.maximum(
        np.asarray(table["min_lifetime_s"], dtype=float), 1.0
    )
    assert np.median(ratios) > 100.0

    print(f"\n[fig15] {len(table)} flavors >=30 VMs; lifetimes "
          f"{lifetimes.min() / 60:.0f} min .. {lifetimes.max() / DAY / 365:.1f} y; "
          f"size<->log-lifetime corr {lifetime_size_correlation(dataset):+.2f}")
