"""Figure 14: CDFs of average per-VM CPU (a) and memory (b) utilisation.

Paper shape: (a) CPU is heavily overprovisioned — over 80% of VMs consume
less than 70% of their allocation, with only small optimal/overutilised
tails; (b) memory is far better aligned — ≈38% below 70%, ≈10% in the
70-85% optimal band, and the majority above 85%.
"""

from repro.analysis.figures import fig14_utilization_cdfs
from repro.core.cdf import cdf_at
from repro.core.characterization import utilization_breakdown


def test_fig14_vm_cdfs(benchmark, dataset):
    cdfs = benchmark(fig14_utilization_cdfs, dataset)

    cpu_values = cdfs["cpu"][0]
    mem_values = cdfs["memory"][0]

    # (a) CPU: strong overprovisioning.
    assert cdf_at(cpu_values, 0.70) > 0.80
    cpu = utilization_breakdown(dataset, "cpu")
    assert cpu.optimal > cpu.overutilized  # small set optimal, smaller over

    # (b) memory: three-way split per the paper.
    mem = utilization_breakdown(dataset, "memory")
    assert abs(mem.underutilized - 0.38) < 0.08
    assert abs(mem.optimal - 0.10) < 0.06
    assert mem.overutilized > 0.40

    # Cross-resource shape: memory is much better utilised than CPU.
    assert cdf_at(mem_values, 0.70) < cdf_at(cpu_values, 0.70)

    print(f"\n[fig14] CPU under/opt/over: {cpu.underutilized:.2f}/"
          f"{cpu.optimal:.2f}/{cpu.overutilized:.2f} (paper: >0.80 under); "
          f"memory: {mem.underutilized:.2f}/{mem.optimal:.2f}/"
          f"{mem.overutilized:.2f} (paper: 0.38/0.10/0.52)")
