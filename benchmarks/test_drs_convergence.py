"""DRS convergence: the second scheduling layer at cluster scale (§3.1).

Shape: from a maximally skewed start (everything on one node), the DRS
loop converges below its imbalance threshold within a handful of passes,
preferring light VMs and never overfilling a target — the behaviour the
paper relies on to mop up Nova's cluster-level placement inside each BB.
"""

import numpy as np

from repro.drs.balancer import DrsBalancer, DrsConfig
from repro.infrastructure.capacity import Capacity, OvercommitPolicy
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.hierarchy import BuildingBlock, ComputeNode
from repro.infrastructure.vm import VM


def _skewed_cluster(nodes: int = 16, vms: int = 120, seed: int = 2) -> BuildingBlock:
    bb = BuildingBlock(bb_id="bench-bb", overcommit=OvercommitPolicy(cpu_ratio=4.0))
    for i in range(nodes):
        bb.add_node(
            ComputeNode(
                node_id=f"n{i:02d}",
                physical=Capacity(
                    vcpus=128, memory_mb=2048 * 1024, disk_gb=16384,
                    network_gbps=200,
                ),
            )
        )
    catalog = default_catalog()
    rng = np.random.default_rng(seed)
    names = ["g_c2_m4", "g_c4_m16", "g_c8_m32", "g_c16_m64"]
    first = list(bb.iter_nodes())[:2]
    for i in range(vms):
        flavor = catalog.get(str(rng.choice(names)))
        vm = VM(vm_id=f"v{i:03d}", flavor=flavor)
        target = first[i % 2]
        if vm.requested().fits_within(target.free(bb.overcommit)):
            target.add_vm(vm)
    return bb


def test_drs_converges_from_skew(benchmark):
    def run():
        bb = _skewed_cluster()
        balancer = DrsBalancer(config=DrsConfig(max_moves_per_run=200))
        before = balancer.imbalance(bb)
        migrations = balancer.run(bb)
        return bb, balancer, before, migrations

    bb, balancer, before, migrations = benchmark(run)

    after = balancer.imbalance(bb)
    assert before > 0.3
    assert after <= balancer.config.imbalance_threshold + 0.02
    assert len(migrations) > 10
    # Light VMs preferred: the median moved VM is small.
    moved_sizes = [m.load_cores for m in migrations]
    assert np.median(moved_sizes) <= 16
    # No target overfilled.
    for node in bb.iter_nodes():
        assert node.allocated().fits_within(bb.overcommit.allocatable(node.physical))

    print(f"\n[drs] imbalance {before:.3f} -> {after:.3f} in "
          f"{len(migrations)} moves (median moved size "
          f"{np.median(moved_sizes):.0f} vCPUs)")
