"""Noisy-neighbour blast radius (§3.2): who suffers from §5.1's contention.

Shape: contention hurts real workloads — victims exist, with some VMs
exposed for most of their lifetime — but the blast radius stays confined
to a small minority of the population, concentrated on the few contended
nodes, which is exactly why the paper argues for contention-aware
placement rather than fleet-wide overcommit reductions.
"""

from repro.core.noisy_neighbors import blast_radius, victim_exposures


def test_noisy_neighbor_blast_radius(benchmark, dataset):
    exposures = benchmark(victim_exposures, dataset)

    assert exposures, "contended nodes host VMs, so victims must exist"
    radius = blast_radius(dataset)
    # Real damage: some VMs live most of their window degraded.
    assert radius["worst_exposed_share"] > 0.5
    # But confined: a small minority of the population, few nodes.
    assert radius["affected_vm_share"] < 0.25
    assert radius["affected_nodes"] <= 0.1 * dataset.node_count

    worst = exposures[0]
    print(f"\n[noisy] {radius['affected_vms']} victim VMs "
          f"({radius['affected_vm_share']:.1%} of the population) on "
          f"{radius['affected_nodes']} nodes; worst VM exposed "
          f"{worst.exposed_share:.0%} of its samples at mean "
          f"{worst.mean_contention_when_exposed:.0f}% contention")
