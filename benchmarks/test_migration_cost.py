"""Ablation: cost-aware vs cost-blind migration planning (§3.2 / §7).

The paper wants continuous rebalancing (§7) but warns against migrating
memory-hot VMs (§3.2).  Scenario: an imbalanced node set where the
heaviest VM would balance best.  A cost-blind planner moves it and pays a
long, high-downtime migration; the cost-aware planner reaches comparable
balance with light VMs at a fraction of the transfer volume.
"""

import numpy as np

from repro.infrastructure.capacity import Capacity, OvercommitPolicy
from repro.infrastructure.flavors import Flavor
from repro.infrastructure.hierarchy import BuildingBlock, ComputeNode
from repro.infrastructure.vm import VM
from repro.migration.planner import MigrationPlanner
from repro.migration.precopy import PrecopyModel


def _scenario():
    """Two nodes; node 0 holds one memory-hot big VM and many light ones."""
    bb = BuildingBlock(bb_id="bb", overcommit=OvercommitPolicy(cpu_ratio=4.0))
    for i in range(2):
        bb.add_node(
            ComputeNode(
                node_id=f"bb-n{i}",
                physical=Capacity(
                    vcpus=64, memory_mb=2048 * 1024, disk_gb=4096,
                    network_gbps=200,
                ),
            )
        )
    node0 = list(bb.iter_nodes())[0]
    node0.add_vm(VM(vm_id="hot-db", flavor=Flavor("hana", 24, 1024, family="hana")))
    for i in range(8):
        node0.add_vm(VM(vm_id=f"light-{i}", flavor=Flavor(f"g{i}", 4, 16)))
    return list(bb.iter_nodes())


def _load_view(vm):
    memory_ratio = 0.95 if vm.vm_id == "hot-db" else 0.4
    return float(vm.flavor.vcpus), memory_ratio


def test_cost_aware_planning_avoids_heavy_migrations(benchmark):
    # 25 GB/s link: the memory-hot VM *can* converge, but only through ~30
    # re-copy rounds.  Cost-blind: effectively unlimited downtime budget.
    blind = MigrationPlanner(
        precopy=PrecopyModel(bandwidth_mbps=25_000, max_rounds=100),
        downtime_budget_s=1e9,
        min_benefit_per_second=0.0,
    )
    blind_plan = blind.plan_for_nodes(
        _scenario(), capacity_of=lambda n: n.physical.vcpus, load_view=_load_view
    )

    def run_aware():
        aware = MigrationPlanner(
            precopy=PrecopyModel(bandwidth_mbps=25_000),
            downtime_budget_s=1.0,
        )
        return aware.plan_for_nodes(
            _scenario(),
            capacity_of=lambda n: n.physical.vcpus,
            load_view=_load_view,
        )

    aware_plan = benchmark(run_aware)

    # The blind plan moves the memory-hot database; the aware plan never does.
    assert any(m.vm_id == "hot-db" for m in blind_plan.moves)
    assert all(m.vm_id != "hot-db" for m in aware_plan.moves)

    # Both plans balance, but the aware one transfers far less data.
    blind_gain = sum(m.improvement for m in blind_plan.moves)
    aware_gain = sum(m.improvement for m in aware_plan.moves)
    assert aware_gain > 0.5 * blind_gain
    assert aware_plan.total_transfer_mb < 0.5 * blind_plan.total_transfer_mb
    assert aware_plan.total_downtime_s < blind_plan.total_downtime_s

    print(f"\n[migration] blind: {len(blind_plan)} moves, "
          f"{blind_plan.total_transfer_mb / 1024:.0f} GiB transferred, "
          f"{blind_plan.total_downtime_s:.2f}s downtime, gain {blind_gain:.3f}; "
          f"aware: {len(aware_plan)} moves, "
          f"{aware_plan.total_transfer_mb / 1024:.0f} GiB, "
          f"{aware_plan.total_downtime_s:.2f}s, gain {aware_gain:.3f}")


def test_precopy_model_throughput(benchmark):
    """Raw estimator throughput across a fleet-sized VM set."""
    model = PrecopyModel()
    rng = np.random.default_rng(1)
    memories = rng.uniform(1024, 2_000_000, 2000)
    dirty = rng.uniform(0, 8_000, 2000)

    def run():
        return [model.estimate(m, d) for m, d in zip(memories, dirty)]

    estimates = benchmark(run)
    assert len(estimates) == 2000
    assert all(e.total_seconds >= 0 for e in estimates)
