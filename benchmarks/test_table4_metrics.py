"""Table 4: the metric catalogue (vROps + OpenStack Compute exporters).

Shape: the 14 metric names of the paper, all actually populated by the
generated dataset, at 30-300 s sampling.
"""

from repro.analysis.tables import table4_metric_catalog


def test_table4_metrics(benchmark, dataset):
    table = benchmark(table4_metric_catalog)

    names = {str(m) for m in table["metric"]}
    assert len(names) == 14
    # Every catalogued metric is present in the generated dataset.
    stored = set(dataset.store.metrics())
    assert names == stored

    sources = {str(s) for s in table["source"]}
    assert sources == {"vrops", "openstack"}

    print(f"\n[table4] {len(names)} metrics, all populated "
          f"({dataset.store.sample_count():,} samples)")
