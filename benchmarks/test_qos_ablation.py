"""Ablation: the §8 QoS mechanisms against the §5.1 contention problem.

Two design choices the paper's outlook proposes, quantified:

1. **CPU pinning** removes contention for the pinned (guaranteed) VM
   entirely — its dedicated cores never enter the shared pool — at the
   cost of higher contention for the remaining shared workload.
2. **QoS-class filtering** keeps latency-sensitive workloads off
   historically contended hosts where best-effort workloads still land.
"""

import numpy as np

from repro.infrastructure.flavors import default_catalog
from repro.qos.filters import QosClassFilter
from repro.qos.pinning import CpuPinningAllocator
from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec
from repro.simulation.hostsched import HostCpuModel


def test_pinning_eliminates_contention_for_guaranteed_vm(benchmark):
    """A 16-core guaranteed VM on a 128-core node with heavy shared load."""
    total_cores = 128
    pinned_vcpus = 16
    shared_demand = 130.0  # shared vCPU demand in core-equivalents
    vm_demand = 14.0

    def run():
        # Without pinning: the VM competes inside one big shared pool.
        unpinned_model = HostCpuModel(total_cores, efficiency=1.0)
        unpinned = unpinned_model.resolve_window(
            shared_demand + vm_demand, window_seconds=300
        )
        # With pinning: dedicated cores for the VM; the pool shrinks.
        allocator = CpuPinningAllocator(total_cores, reserved_system_cores=0)
        allocator.pin("guaranteed-vm", pinned_vcpus)
        pinned_pool = HostCpuModel(allocator.shared_cores, efficiency=1.0)
        shared_after = pinned_pool.resolve_window(shared_demand, 300)
        vm_model = HostCpuModel(pinned_vcpus, efficiency=1.0)
        vm_after = vm_model.resolve_window(vm_demand, 300)
        return unpinned, shared_after, vm_after

    unpinned, shared_after, vm_after = benchmark(run)

    # Unpinned: everyone (including the sensitive VM) sees contention.
    assert unpinned.cpu_contention_fraction > 0.05
    # Pinned: the guaranteed VM is contention-free ...
    assert vm_after.cpu_contention_fraction == 0.0
    # ... while the shared pool pays more than before (the trade-off).
    assert shared_after.cpu_contention_fraction > unpinned.cpu_contention_fraction

    print(f"\n[qos/pinning] contention — mixed pool "
          f"{unpinned.cpu_contention_fraction:.1%}; after pinning: "
          f"guaranteed VM {vm_after.cpu_contention_fraction:.1%}, "
          f"shared pool {shared_after.cpu_contention_fraction:.1%}")


def test_qos_filter_segregates_tiers_by_contention(benchmark, dataset):
    """Replay tier routing against the generated dataset's hot nodes."""
    catalog = default_catalog()
    # Host contention scores straight from the dataset's telemetry.
    scores = {}
    for labels, series in dataset.store.select(
        "vrops_hostsystem_cpu_contention_percentage"
    ):
        if len(series):
            scores[labels["hostsystem"]] = series.percentile(95)

    hosts = [
        HostState(
            host_id=node_id,
            free_vcpus=1000, free_ram_mb=1e8, free_disk_gb=1e6,
            total_vcpus=2000, total_ram_mb=2e8, total_disk_gb=2e6,
            metadata={"cpu_overcommit": "1.0"},
        )
        for node_id in scores
    ]
    flt = QosClassFilter(contention_scores=scores)
    guaranteed = RequestSpec(vm_id="g", flavor=catalog.get("h_c32_m512"))
    besteffort = RequestSpec(vm_id="b", flavor=catalog.get("g_c2_m4"))

    def run():
        return (
            {h.host_id for h in flt.filter_all(hosts, guaranteed)},
            {h.host_id for h in flt.filter_all(hosts, besteffort)},
        )

    guaranteed_hosts, besteffort_hosts = benchmark(run)

    hot = {n for n, s in scores.items() if s > 1.0}
    assert hot, "dataset should contain contended nodes"
    # Guaranteed tier avoids every host above its 1% ceiling.
    assert not (guaranteed_hosts & hot)
    # Best-effort tier keeps using most of the fleet.
    assert len(besteffort_hosts) > len(guaranteed_hosts)

    print(f"\n[qos/filter] {len(hot)} hosts above the guaranteed ceiling; "
          f"guaranteed tier placeable on {len(guaranteed_hosts)}/{len(hosts)} "
          f"hosts, best-effort on {len(besteffort_hosts)}/{len(hosts)}")
