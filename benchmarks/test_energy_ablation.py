"""Ablation: the energy cost of spreading vs packing (§1 motivation).

The paper motivates efficient placement through energy.  Quantified here:
(a) the generated fleet's energy is dominated by idle floors (the direct
consequence of Fig 5's underutilisation), and (b) packing the same work
onto fewer nodes — the §3.2 bin-packing objective — cuts fleet energy.
"""

import numpy as np

from repro.baselines.binpacking import Item, first_fit_decreasing
from repro.baselines.spread import spread_pack
from repro.core.energy import PowerModel, fleet_energy, packing_energy_comparison
from repro.datagen.population import FLAVOR_MIX
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import DEFAULT_NODE


def test_fleet_energy_idle_dominated(benchmark, dataset):
    report = benchmark(fleet_energy, dataset)

    assert report.node_count == dataset.node_count
    # Underutilisation in energy terms: roughly half or more of the fleet's
    # consumption is the idle floor.
    assert report.idle_share > 0.45
    assert report.consolidation_potential_kwh > 0

    print(f"\n[energy] fleet {report.total_kwh:,.0f} kWh over the window; "
          f"idle floor {report.idle_share:.0%}; consolidation could save "
          f"{report.consolidation_potential_kwh:,.0f} kWh "
          f"({report.consolidation_potential_kwh / report.total_kwh:.0%})")


def test_packing_beats_spread_on_energy(benchmark):
    catalog = default_catalog()
    rng = np.random.default_rng(3)
    names = [n for n, w in FLAVOR_MIX if w > 0]
    weights = np.asarray([w for _, w in FLAVOR_MIX if w > 0])
    weights = weights / weights.sum()
    items = []
    for i, pick in enumerate(rng.choice(len(names), size=600, p=weights)):
        flavor = catalog.get(names[int(pick)])
        if flavor.ram_gib <= 2048:
            items.append(Item(f"i{i}", flavor.requested()))

    def run():
        packed = first_fit_decreasing(items, DEFAULT_NODE)
        fleet_size = packed.bins_used * 3
        spread = spread_pack(items, fleet_size, DEFAULT_NODE)
        # Demand model: a VM demands ~28% of its allocation (Fig 14a mean).
        def utils(result, bins_total):
            per_bin = [
                0.28 * sum(i.size.vcpus for i in b.items) / DEFAULT_NODE.vcpus
                for b in result.bins
                if b.items
            ]
            return np.asarray(per_bin), bins_total

        packed_utils, _ = utils(packed, packed.bins_used)
        spread_utils, fleet = utils(spread, fleet_size)
        # Spread fleet: every powered node idles even when emptyish.
        spread_full = np.zeros(fleet)
        spread_full[: len(spread_utils)] = spread_utils
        return packing_energy_comparison(
            spread_full, packed_utils, hours=30 * 24, model=PowerModel()
        )

    spread_kwh, packed_kwh = benchmark.pedantic(run, rounds=2, iterations=1)

    assert packed_kwh < spread_kwh
    saving = 1 - packed_kwh / spread_kwh
    assert saving > 0.2  # consolidation is worth a large fraction

    print(f"\n[energy] 30-day energy for the same workload: spread "
          f"{spread_kwh:,.0f} kWh vs packed {packed_kwh:,.0f} kWh "
          f"({saving:.0%} saved)")
