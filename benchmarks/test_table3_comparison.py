"""Table 3: comparison of prior datasets with the SAP dataset.

Paper shape: the SAP dataset is the only *public* dataset providing VM
workloads, covers all four host resources, spans lifetimes to years, and
samples at 30-300 s.
"""

from repro.analysis.tables import table3_dataset_comparison


def test_table3_comparison(benchmark, dataset):
    table = benchmark(table3_dataset_comparison, dataset)
    rows = {str(r["dataset"]): r for r in table.rows()}

    assert len(rows) == 7
    sap = rows["SAP (this work)"]
    # Only public VM dataset.
    public_vm = [n for n, r in rows.items() if r["vms"] == 1 and r["public"] == 1]
    assert public_vm == ["SAP (this work)"]
    # Full host-resource coverage incl. storage (unlike the batch traces).
    assert sap["cpu"] and sap["memory"] and sap["network"] and sap["storage"]
    for name in ("Google", "Philly", "Atlas", "MIT"):
        assert rows[name]["storage"] == 0
    # Lifetime span reaches years; duration 30 days.
    assert str(sap["lifetime"]).endswith("years")
    assert sap["duration_days"] == 30

    print(f"\n[table3] SAP row: scale='{sap['scale']}', "
          f"lifetime='{sap['lifetime']}', sampling='{sap['sampling']}'")
