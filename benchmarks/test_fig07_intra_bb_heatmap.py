"""Figure 7: daily average free CPU per node within one building block.

Paper shape: within a single vSphere cluster, some nodes are heavily
utilised (maxima approaching 99% CPU) while siblings hold significant free
resources — the intra-BB imbalance the Nova→DRS split leaves behind.
"""

import numpy as np

from repro.analysis.figures import fig7_intra_bb_cpu_heatmap


def test_fig7_intra_bb_heatmap(benchmark, dataset):
    heatmap = benchmark(fig7_intra_bb_cpu_heatmap, dataset)

    assert heatmap.shape[0] == 30
    assert heatmap.shape[1] >= 3  # a real cluster, not a pair
    used = 100.0 - heatmap.matrix
    # Hot node(s) next to cool siblings inside the same cluster.
    assert np.nanmax(used) > 75.0
    column_used = 100.0 - heatmap.column_means()
    assert column_used.max() - column_used.min() > 20.0

    print(f"\n[fig7] intra-BB free CPU ({heatmap.shape[1]} nodes): "
          f"max node utilisation {np.nanmax(used):.1f}%, "
          f"intra-BB spread {column_used.max() - column_used.min():.1f} pp")
