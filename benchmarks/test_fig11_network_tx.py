"""Figure 11: daily average free network TX bandwidth per node.

Paper shape: load is notably below the 200 Gbps NIC capacity everywhere —
network resources are currently irrelevant to scheduling decisions (§5.3).
"""

import numpy as np

from repro.analysis.figures import fig11_network_tx_heatmap


def test_fig11_network_tx(benchmark, dataset):
    heatmap = benchmark(fig11_network_tx_heatmap, dataset)

    means = heatmap.column_means()
    # Every node keeps the overwhelming majority of its NIC free.
    assert np.nanmin(means) > 90.0
    assert np.nanmin(heatmap.matrix) > 85.0

    print(f"\n[fig11] free TX bandwidth: min column mean "
          f"{np.nanmin(means):.1f}%, min cell {np.nanmin(heatmap.matrix):.1f}% "
          f"(200 Gbps NICs)")
