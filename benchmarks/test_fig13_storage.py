"""Figure 13: daily average free local storage per host.

Paper shape: uneven distribution — roughly 18% of hosts keep more than 90%
free storage while about 7% use more than 30%; local storage is currently
ignored by scheduling (§5.4).
"""

import numpy as np

from repro.analysis.figures import fig13_storage_heatmap


def test_fig13_storage(benchmark, dataset):
    heatmap = benchmark(fig13_storage_heatmap, dataset)

    means = heatmap.column_means()
    finite = means[np.isfinite(means)]
    share_mostly_free = float(np.mean(finite > 90.0))
    share_heavily_used = float(np.mean(finite < 70.0))
    assert abs(share_mostly_free - 0.18) < 0.12
    assert abs(share_heavily_used - 0.07) < 0.08
    # The distribution is genuinely uneven, not uniform.
    assert finite.max() - finite.min() > 30.0

    print(f"\n[fig13] free storage: {share_mostly_free * 100:.0f}% of hosts "
          f">90% free (paper: 18%), {share_heavily_used * 100:.0f}% using "
          f">30% (paper: 7%)")
