"""Table 5 / Figure 4: hypervisors and VMs per data center (Appendix D).

Shape: 29 data centers, 22-1,072 hypervisors each, summing to the >6,000
hypervisors of §3 (the table's VM column is a snapshot summing to ~162k of
the >200k active fleet); the topology builder reconstructs a region of the
studied size from these counts.
"""

import numpy as np

from repro.analysis.tables import table5_datacenters
from repro.infrastructure.topology import build_region, paper_region_spec


def test_table5_datacenters(benchmark):
    table = benchmark(table5_datacenters)

    hypervisors = np.asarray(table["hypervisors"], dtype=int)
    vms = np.asarray(table["virtual_machines"], dtype=int)
    assert len(table) == 29
    assert hypervisors.min() == 22
    assert hypervisors.max() == 1072
    assert hypervisors.sum() > 6000
    assert vms.sum() > 150_000

    print(f"\n[table5] 29 DCs, {hypervisors.sum():,} hypervisors, "
          f"{vms.sum():,} VMs fleet-wide")


def test_table5_topology_reconstruction(benchmark):
    """The studied region (region 9, ~1,800 nodes) rebuilds from Table 5."""
    region = benchmark.pedantic(
        lambda: build_region(paper_region_spec(scale=1.0)), rounds=1, iterations=1
    )
    assert 1700 <= region.node_count <= 1900
    bb_sizes = [bb.node_count for bb in region.iter_building_blocks()]
    assert min(bb_sizes) >= 2
    assert max(bb_sizes) <= 128
    print(f"\n[table5] reconstructed region: {region.node_count} nodes in "
          f"{len(bb_sizes)} building blocks (sizes {min(bb_sizes)}-{max(bb_sizes)})")
