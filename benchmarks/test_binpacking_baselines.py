"""Section 3.2 baselines: First/Best/Worst/Next-Fit and FFD/BFD.

Paper shape: the classic bin-packing hierarchy on a realistic flavor mix —
decreasing-order variants use no more bins than their online forms, which
beat Worst-Fit and Next-Fit; spread placement (the Nova default for
general workloads) trades fragmentation for balance.
"""

import numpy as np

from repro.baselines.binpacking import (
    Item,
    best_fit,
    best_fit_decreasing,
    first_fit,
    first_fit_decreasing,
    next_fit,
    worst_fit,
)
from repro.baselines.evaluation import evaluate_packing
from repro.baselines.spread import spread_pack
from repro.datagen.population import FLAVOR_MIX
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import DEFAULT_NODE

ALGOS = {
    "first_fit": first_fit,
    "best_fit": best_fit,
    "worst_fit": worst_fit,
    "next_fit": next_fit,
    "ffd": first_fit_decreasing,
    "bfd": best_fit_decreasing,
}


def _items(n=800, seed=9):
    catalog = default_catalog()
    rng = np.random.default_rng(seed)
    names = [name for name, w in FLAVOR_MIX if w > 0]
    weights = np.asarray([w for _, w in FLAVOR_MIX if w > 0])
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=n, p=weights)
    items = []
    for i, p in enumerate(picks):
        flavor = catalog.get(names[int(p)])
        if flavor.ram_gib > 2048:
            continue  # larger than one general-purpose node
        items.append(Item(f"i{i:04d}", flavor.requested()))
    return items


def test_binpacking_baselines(benchmark):
    items = _items()

    def run_all():
        return {
            name: evaluate_packing(algo(items, DEFAULT_NODE))
            for name, algo in ALGOS.items()
        }

    metrics = benchmark.pedantic(run_all, rounds=2, iterations=1)

    bins = {name: m.bins_used for name, m in metrics.items()}
    # Classic hierarchy: offline (decreasing) <= online <= worst/next fit.
    assert bins["ffd"] <= bins["first_fit"]
    assert bins["bfd"] <= bins["best_fit"]
    assert bins["first_fit"] <= bins["next_fit"]
    assert bins["best_fit"] <= bins["worst_fit"]
    # Every heuristic placed everything and stayed near the lower bound.
    for name, m in metrics.items():
        assert m.items_unplaced == 0, name
        assert m.efficiency > 0.5, name
    assert metrics["ffd"].efficiency > 0.85

    print("\n[pack1] bins used (lower bound "
          f"{metrics['ffd'].lower_bound}):")
    for name in ("ffd", "bfd", "first_fit", "best_fit", "worst_fit", "next_fit"):
        m = metrics[name]
        print(f"  {name:<10} {m.bins_used:>4} bins, mean fill "
              f"{m.mean_fill * 100:5.1f}%, fragmentation {m.fragmentation:.3f}")


def test_spread_vs_pack_tradeoff(benchmark):
    """The Nova-default spread strategy: balanced fill, more fragmentation."""
    items = _items(n=500, seed=10)
    packed = evaluate_packing(first_fit_decreasing(items, DEFAULT_NODE))
    bin_count = packed.bins_used * 3  # a powered-on fleet

    spread_metrics = benchmark.pedantic(
        lambda: evaluate_packing(spread_pack(items, bin_count, DEFAULT_NODE)),
        rounds=2,
        iterations=1,
    )

    # Spread keeps every bin far from saturation (headroom for demand
    # fluctuation) but activates more bins and strands capacity.
    assert spread_metrics.mean_fill < 0.6
    assert packed.mean_fill > 0.9
    assert spread_metrics.bins_used > packed.bins_used
    assert spread_metrics.fragmentation > packed.fragmentation
    print(f"\n[pack1/spread] pack: {packed.bins_used} bins "
          f"(mean fill {packed.mean_fill:.2f}); spread: "
          f"{spread_metrics.bins_used} bins (mean fill "
          f"{spread_metrics.mean_fill:.2f})")
