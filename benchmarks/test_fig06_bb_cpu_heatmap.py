"""Figure 6: daily average free CPU per building block within one DC.

Paper shape: building blocks differ visibly in utilisation (inter-BB
imbalance that requires manual rebalancing, §3.1/§7).
"""

import numpy as np

from repro.analysis.figures import fig6_bb_cpu_heatmap
from repro.core.imbalance import inter_bb_imbalance


def test_fig6_bb_cpu_heatmap(benchmark, dataset):
    heatmap = benchmark(fig6_bb_cpu_heatmap, dataset)

    assert heatmap.level == "building_block"
    assert heatmap.shape[0] == 30
    assert heatmap.shape[1] >= 2
    # BBs differ in mean utilisation.
    assert heatmap.spread() > 5.0
    assert inter_bb_imbalance(dataset) > 1.0

    print(f"\n[fig6] free CPU per BB ({heatmap.shape[1]} BBs): "
          f"spread {heatmap.spread():.1f} pp, "
          f"inter-BB std {inter_bb_imbalance(dataset):.1f} pp")
