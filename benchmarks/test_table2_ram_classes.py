"""Table 2: VM classification by memory size.

Paper: small 991 / medium 41,395 / large 787 / xlarge 2,184 — the 2-64 GiB
class dominates (~91%) and, notably, xlarge (>128 GiB, HANA) outnumbers
both small and large.
"""

import numpy as np

from repro.analysis.tables import table2_ram_classes


def test_table2_ram_classes(benchmark, dataset):
    table = benchmark(table2_ram_classes, dataset)

    counts = dict(zip(table["category"], np.asarray(table["vm_count"], dtype=int)))
    shares = dict(zip(table["category"], np.asarray(table["share"], dtype=float)))
    paper = dict(zip(table["category"], np.asarray(table["paper_share"], dtype=float)))

    assert shares["medium"] > 0.80
    assert counts["xlarge"] > counts["large"]
    assert counts["xlarge"] > counts["small"]
    for category in ("small", "medium", "large", "xlarge"):
        assert abs(shares[category] - paper[category]) < 0.05, category

    print("\n[table2] RAM classes (measured share vs paper share):")
    for category in ("small", "medium", "large", "xlarge"):
        print(f"  {category:<7} {counts[category]:>6}  "
              f"{shares[category] * 100:5.1f}% vs {paper[category] * 100:5.1f}%")
