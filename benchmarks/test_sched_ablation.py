"""Section 7 ablation: vanilla Nova vs the guidance-motivated schedulers.

Compares four placement strategies on the same request stream:

- **default** — the vanilla filter/weigher pipeline;
- **contention-aware** — adds historic contention weighting ("incorporate
  current and historic utilization data");
- **lifetime-aware** — separates short- from long-lived workloads
  ("placement strategies that incorporate workload lifetime");
- **holistic** — one-layer node-level placement with a best-fit weigher
  ("a holistic scheduler that assigns VMs directly to individual hosts").

Expected shape: contention-aware diverts load away from hot hosts;
lifetime-aware reduces churn-class mixing; holistic concentrates load on
fewer nodes (maximising placeable VMs, §3.2).
"""

import numpy as np

from repro.core.advanced_placement import (
    ContentionAwareScheduler,
    HolisticNodeScheduler,
    LifetimeAwareScheduler,
)
from repro.datagen.population import FLAVOR_MIX
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import build_region, paper_region_spec
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import PlacementService
from repro.scheduler.request import RequestSpec
from repro.scheduler.weighers import FitnessWeigher

SCALE = 0.03
N_REQUESTS = 400


def _region_and_placement():
    region = build_region(paper_region_spec(scale=SCALE))
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)
    return region, placement


def _requests(with_lifetime_hints=False, seed=5):
    catalog = default_catalog()
    rng = np.random.default_rng(seed)
    names = [n for n, w in FLAVOR_MIX if w > 0]
    weights = np.asarray([w for _, w in FLAVOR_MIX if w > 0])
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=N_REQUESTS, p=weights)
    out = []
    for i, p in enumerate(picks):
        hints = {}
        short = bool(rng.random() < 0.4)
        if with_lifetime_hints:
            hints["expected_lifetime_s"] = "1800" if short else str(90 * 86_400)
        out.append(
            (
                RequestSpec(
                    vm_id=f"vm-{i:05d}",
                    flavor=catalog.get(names[int(p)]),
                    scheduler_hints=hints,
                ),
                short,
            )
        )
    return out


def _replay(scheduler, requests):
    placements = {}
    for spec, short in requests:
        try:
            result = scheduler.schedule(spec)
            placements[spec.vm_id] = (result.host_id, short)
        except NoValidHost:
            pass
    return placements


def _hot_hosts(region, fraction=0.25):
    """Designate the largest general BBs as historically contended."""
    general = sorted(
        (bb for bb in region.iter_building_blocks() if not bb.aggregate_class),
        key=lambda bb: -bb.physical().vcpus,
    )
    n_hot = max(1, int(len(general) * fraction))
    return {bb.bb_id: 30.0 for bb in general[:n_hot]}


def test_contention_aware_diverts_from_hot_hosts(benchmark):
    requests = _requests()

    region_a, placement_a = _region_and_placement()
    hot = _hot_hosts(region_a)
    default_placements = _replay(FilterScheduler(region_a, placement_a), requests)

    def run_aware():
        region_b, placement_b = _region_and_placement()
        scheduler = ContentionAwareScheduler(
            region_b, placement_b, contention_scores=hot, contention_multiplier=4.0
        )
        return _replay(scheduler, requests)

    aware_placements = benchmark.pedantic(run_aware, rounds=2, iterations=1)

    def hot_share(placements):
        on_hot = sum(1 for host, _short in placements.values() if host in hot)
        return on_hot / len(placements)

    default_share = hot_share(default_placements)
    aware_share = hot_share(aware_placements)
    assert aware_share < default_share * 0.5
    print(f"\n[sched2/contention] share of VMs on hot hosts: default "
          f"{default_share * 100:.1f}% -> contention-aware "
          f"{aware_share * 100:.1f}%")


def test_lifetime_aware_reduces_churn_mixing(benchmark):
    requests = _requests(with_lifetime_hints=True)

    region_a, placement_a = _region_and_placement()
    default_placements = _replay(FilterScheduler(region_a, placement_a), requests)

    def run_lifetime():
        region_b, placement_b = _region_and_placement()
        general = [
            bb.bb_id
            for bb in region_b.iter_building_blocks()
            if not bb.aggregate_class
        ]
        # Dedicate 40% of general BBs to short-lived churn.
        churn = {
            bb_id: ("short" if i < int(len(general) * 0.4) else "long")
            for i, bb_id in enumerate(sorted(general))
        }
        scheduler = LifetimeAwareScheduler(
            region_b, placement_b, churn_classes=churn, affinity_multiplier=4.0
        )
        return _replay(scheduler, requests)

    lifetime_placements = benchmark.pedantic(run_lifetime, rounds=2, iterations=1)

    def mixing(placements):
        """Share of hosts containing both short- and long-lived VMs."""
        per_host: dict[str, set[bool]] = {}
        for host, short in placements.values():
            per_host.setdefault(host, set()).add(short)
        mixed = sum(1 for kinds in per_host.values() if len(kinds) == 2)
        return mixed / len(per_host)

    assert mixing(lifetime_placements) < mixing(default_placements)
    print(f"\n[sched2/lifetime] mixed-churn hosts: default "
          f"{mixing(default_placements) * 100:.0f}% -> lifetime-aware "
          f"{mixing(lifetime_placements) * 100:.0f}%")


def test_holistic_consolidates_better_than_two_layer(benchmark):
    requests = _requests()

    region_a, placement_a = _region_and_placement()
    _replay(FilterScheduler(region_a, placement_a), requests)
    # Two-layer proxy for active nodes: BBs with any allocation count all
    # their nodes as activated (DRS spreads inside the cluster).
    two_layer_nodes = sum(
        bb.node_count
        for bb in region_a.iter_building_blocks()
        if any(v > 0 for v in placement_a.provider(bb.bb_id).used.values())
    )

    def run_holistic():
        region_b, placement_b = _region_and_placement()
        scheduler = HolisticNodeScheduler(
            region_b,
            placement_b,
            weighers=[FitnessWeigher(multiplier=2.0)],
        )
        used_nodes = set()
        for spec, _short in requests:
            try:
                result = scheduler.schedule(spec)
                used_nodes.add(result.host_id)
            except NoValidHost:
                pass
        return used_nodes

    holistic_nodes = benchmark.pedantic(run_holistic, rounds=2, iterations=1)

    assert len(holistic_nodes) < two_layer_nodes
    print(f"\n[sched2/holistic] active nodes: two-layer {two_layer_nodes} -> "
          f"holistic best-fit {len(holistic_nodes)}")
