"""Statistical-multiplexing analysis behind the §7 overcommit guidance.

Shape: VM demand peaks are desynchronised, so the aggregate's peak sits
well below the sum of individual peaks — the reclaimable headroom a
workload-based overcommit factor exploits; building blocks show the same
effect at node level.
"""

import numpy as np

from repro.core.oversubscription import multiplexing_report, vm_multiplexing_gain


def test_multiplexing_gains(benchmark, dataset):
    vm_gain = benchmark(vm_multiplexing_gain, dataset)

    # VM peaks do not coincide: sizing per-VM wastes >20% of capacity.
    assert vm_gain.series_count >= 20
    assert vm_gain.gain > 1.2

    report = multiplexing_report(dataset)
    gains = np.asarray(report["gain"], dtype=float)
    assert len(report) == len(dataset.building_blocks())
    assert np.all(gains >= 1.0)
    assert gains.max() > 1.1  # at least one BB shows real smoothing

    print(f"\n[multiplexing] {vm_gain.series_count} VM series: "
          f"sum-of-peaks/peak-of-sum = {vm_gain.gain:.2f}; per-BB gains "
          f"{gains.min():.2f}..{gains.max():.2f}")
