"""Table 1: VM classification by vCPU count.

Paper: small 28,446 / medium 14,340 / large 1,831 / xlarge 738 — a strict
small > medium > large > xlarge ordering with ~63% of VMs at ≤4 vCPUs.
"""

import numpy as np

from repro.analysis.tables import table1_vcpu_classes


def test_table1_vcpu_classes(benchmark, dataset):
    table = benchmark(table1_vcpu_classes, dataset)

    counts = dict(zip(table["category"], np.asarray(table["vm_count"], dtype=int)))
    shares = dict(zip(table["category"], np.asarray(table["share"], dtype=float)))
    paper = dict(zip(table["category"], np.asarray(table["paper_share"], dtype=float)))

    assert counts["small"] > counts["medium"] > counts["large"] > counts["xlarge"]
    for category in ("small", "medium", "large", "xlarge"):
        assert abs(shares[category] - paper[category]) < 0.05, category

    print("\n[table1] vCPU classes (measured share vs paper share):")
    for category in ("small", "medium", "large", "xlarge"):
        print(f"  {category:<7} {counts[category]:>6}  "
              f"{shares[category] * 100:5.1f}% vs {paper[category] * 100:5.1f}%")
