"""Figure 8: aggregated CPU ready time of the top-10 nodes, region-wide.

Paper shape: multiple spikes across the month with peaks of a few hundred
seconds (~220 s), exceptional ~30-minute outliers early in the window,
several hypervisors exceeding the 30 s baseline repeatedly, and a
weekday-over-weekend temporal effect.
"""

import numpy as np

from repro.analysis.figures import fig8_top_ready_nodes
from repro.core.contention import (
    READY_BASELINE_MS,
    ready_baseline_exceedances,
    weekday_weekend_effect,
)


def test_fig8_cpu_ready(benchmark, dataset):
    frame = benchmark(fig8_top_ready_nodes, dataset)

    assert len(frame.unique("node_id")) == 10
    ready = np.asarray(frame["ready_ms"], dtype=float)

    # Spikes of hundreds of seconds, with outliers up to tens of minutes.
    assert ready.max() > 120_000  # > 2 minutes
    assert ready.max() < 7_200_000  # < 2 hours (not runaway)

    # The 30-second baseline is exceeded repeatedly by several nodes.
    exceedances = ready_baseline_exceedances(dataset)
    assert len(exceedances) >= 3
    assert int(np.asarray(exceedances["exceedances"], dtype=int)[0]) >= 5

    # Temporal effect: weekdays busier than weekends.  (The persistent
    # hotspot floor dilutes the ratio; the paper likewise reports "some"
    # temporal effects against an otherwise persistent baseline.)
    weekday, weekend = weekday_weekend_effect(dataset)
    assert weekday > 1.2 * weekend

    print(f"\n[fig8] top-10 ready time: peak {ready.max() / 1000:.0f} s, "
          f"{len(exceedances)} nodes above the "
          f"{READY_BASELINE_MS / 1000:.0f}s baseline, "
          f"weekday/weekend mean {weekday / 1000:.1f}/{weekend / 1000:.1f} s")
