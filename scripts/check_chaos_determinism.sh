#!/usr/bin/env sh
# Determinism + invariant smoke gate for the resilience subsystem.
#
# Runs the seeded chaos scenario (correlated AZ/BB outages, a flapping
# host, scrape partitions — with the resilience layer enabled) twice per
# seed and fails if:
#   - any run exits non-zero (invariant violations), or
#   - the summary JSON is not byte-identical (sha256 comparison).
# Used by the tier-1 CI chaos-smoke job; runnable locally from the repo
# root:
#
#     sh scripts/check_chaos_determinism.sh [seed ...]
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

seeds="${*:-7 11}"
days="${CHAOS_DAYS:-0.5}"
status=0

for seed in $seeds; do
    a=$(python -m repro.cli chaos --days "$days" --seed "$seed" --json-only | sha256sum | cut -d' ' -f1)
    b=$(python -m repro.cli chaos --days "$days" --seed "$seed" --json-only | sha256sum | cut -d' ' -f1)
    if [ "$a" = "$b" ]; then
        echo "seed $seed: deterministic, zero invariant violations ($a)"
    else
        echo "seed $seed: NONDETERMINISTIC ($a != $b)" >&2
        status=1
    fi
done

exit $status
