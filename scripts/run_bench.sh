#!/usr/bin/env sh
# Run the performance bench harness (`repro bench`) from the repo root.
#
# Usage:
#     sh scripts/run_bench.sh            # full run, writes BENCH_scale.json
#     sh scripts/run_bench.sh --smoke --check   # CI-sized non-regression gate
#
# All arguments are passed through to `repro bench` (see `repro bench -h`).
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

exec python -m repro.cli bench "$@"
