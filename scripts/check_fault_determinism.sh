#!/usr/bin/env sh
# Determinism smoke gate for the fault-injection subsystem.
#
# Runs the fault-scenario example twice per seed and fails if the
# FaultReport JSON is not byte-identical (sha256 comparison).  Used by
# the tier-1 CI job; runnable locally from the repo root:
#
#     sh scripts/check_fault_determinism.sh [seed ...]
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH=src

seeds="${*:-7 23}"
status=0

for seed in $seeds; do
    a=$(python examples/fault_scenarios.py --seed "$seed" --json-only | sha256sum | cut -d' ' -f1)
    b=$(python examples/fault_scenarios.py --seed "$seed" --json-only | sha256sum | cut -d' ' -f1)
    if [ "$a" = "$b" ]; then
        echo "seed $seed: deterministic ($a)"
    else
        echo "seed $seed: NONDETERMINISTIC ($a != $b)" >&2
        status=1
    fi
done

exit $status
