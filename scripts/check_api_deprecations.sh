#!/usr/bin/env sh
# Deprecation gate: no first-party code may use the APIs this repo has
# deprecated behind shims.
#
#   * FilterScheduler(filters=/weighers=/max_attempts=/alternates=) —
#     pass a SchedulerConfig instead.
#   * MetricStore.query_range(...) — use repro.telemetry.query.query_range
#     (or MetricStore.window).
#   * The legacy per-CLI --config shapes (flat FaultConfig for
#     `repro faults`, sections-only for `repro chaos`) — write the
#     unified ScenarioSpec shape; the shims in repro/config.py exist for
#     one release.
#
# Scans src/, examples/, benchmarks/, and scripts/.  tests/ is excluded
# deliberately: the shims' deprecation behaviour is itself under test
# there.  The shim definitions and the query front-end are allowlisted.
#
#     sh scripts/check_api_deprecations.sh
set -eu

cd "$(dirname "$0")/.."
status=0

# Legacy FilterScheduler keyword construction.  The shim definition in
# pipeline.py and this script's own comments are allowlisted.
hits=$(grep -rnE 'FilterScheduler\([^)]*\b(filters|weighers|max_attempts|alternates)=' \
    src examples benchmarks scripts 2>/dev/null |
    grep -v 'src/repro/scheduler/pipeline.py' |
    grep -v 'scripts/check_api_deprecations.sh' || true)
if [ -n "$hits" ]; then
    echo "Deprecated FilterScheduler kwargs found (use SchedulerConfig):" >&2
    echo "$hits" >&2
    status=1
fi

# Store-level query_range calls outside the shim and the query front-end.
hits=$(grep -rnE '\.query_range\(' src examples benchmarks scripts 2>/dev/null |
    grep -v 'src/repro/telemetry/store.py' |
    grep -v 'src/repro/telemetry/query.py' |
    grep -v 'scripts/check_api_deprecations.sh' || true)
if [ -n "$hits" ]; then
    echo "Deprecated MetricStore.query_range calls found (use repro.telemetry.query):" >&2
    echo "$hits" >&2
    status=1
fi

# Legacy per-CLI --config shims.  Only the shim definitions in
# repro/config.py and the CLI's compatibility routing may reference
# them; everything else must build ScenarioSpec dicts directly.
hits=$(grep -rnE 'spec_from_legacy_(faults|chaos)_dict|looks_like_legacy_(faults|chaos)_dict' \
    src examples benchmarks scripts 2>/dev/null |
    grep -v 'src/repro/config.py' |
    grep -v 'src/repro/cli.py' |
    grep -v 'scripts/check_api_deprecations.sh' || true)
if [ -n "$hits" ]; then
    echo "Deprecated legacy --config shim usage found (use the ScenarioSpec shape):" >&2
    echo "$hits" >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    echo "No deprecated API usage found."
fi
exit $status
