"""VM lifetime distributions.

Fig 15 of the paper shows lifetimes from minutes to multiple years with
significant variation *within* each flavor class and only a weak relation
between VM size and lifetime.  We model lifetimes with a mixture of
log-normal components: an ephemeral mode (minutes–hours), a project mode
(days–weeks), and a persistent mode (months–years).  Profile membership
shifts the mixture weights (HANA databases skew persistent), but every class
keeps mass in all three modes, reproducing the paper's "small VMs do not
consistently live shorter" observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

HOUR = 3600.0
DAY = 86_400.0
YEAR = 365.0 * DAY


@dataclass(frozen=True)
class LifetimeModel:
    """Three-component log-normal lifetime mixture.

    Each component is (weight, median_seconds, sigma) with sigma the
    log-space standard deviation.
    """

    ephemeral: tuple[float, float, float] = (0.25, 2 * HOUR, 1.2)
    project: tuple[float, float, float] = (0.40, 10 * DAY, 1.0)
    persistent: tuple[float, float, float] = (0.35, 1.5 * YEAR, 0.8)

    def __post_init__(self) -> None:
        total = self.ephemeral[0] + self.project[0] + self.persistent[0]
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"mixture weights must sum to 1, got {total}")

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` lifetimes in seconds."""
        components = (self.ephemeral, self.project, self.persistent)
        weights = np.asarray([c[0] for c in components])
        choice = rng.choice(3, size=n, p=weights)
        out = np.empty(n)
        for i, (_, median, sigma) in enumerate(components):
            mask = choice == i
            count = int(mask.sum())
            if count:
                out[mask] = rng.lognormal(np.log(median), sigma, count)
        # Floor at one minute: sub-minute VMs don't appear in the dataset.
        return np.maximum(out, 60.0)


#: Per-profile lifetime models.  HANA and k8s infra skew long-lived; CI/CD
#: and dev environments skew short- to medium-lived.
LIFETIME_MODELS: dict[str, LifetimeModel] = {
    "hana_db": LifetimeModel(
        ephemeral=(0.05, 4 * HOUR, 1.0),
        project=(0.25, 30 * DAY, 1.0),
        persistent=(0.70, 2.0 * YEAR, 0.7),
    ),
    "abap_app": LifetimeModel(
        ephemeral=(0.10, 3 * HOUR, 1.0),
        project=(0.30, 20 * DAY, 1.0),
        persistent=(0.60, 1.5 * YEAR, 0.8),
    ),
    "cicd": LifetimeModel(
        ephemeral=(0.55, 40 * 60.0, 1.3),
        project=(0.35, 5 * DAY, 1.1),
        persistent=(0.10, 0.7 * YEAR, 0.8),
    ),
    "devenv": LifetimeModel(
        ephemeral=(0.30, 5 * HOUR, 1.2),
        project=(0.45, 12 * DAY, 1.0),
        persistent=(0.25, 1.0 * YEAR, 0.8),
    ),
    "k8s_infra": LifetimeModel(
        ephemeral=(0.10, 2 * HOUR, 1.2),
        project=(0.30, 15 * DAY, 1.0),
        persistent=(0.60, 1.8 * YEAR, 0.7),
    ),
    "general": LifetimeModel(),
}


def sample_lifetime(profile_name: str, rng: np.random.Generator) -> float:
    """Draw one lifetime (seconds) for a VM of the given profile."""
    model = LIFETIME_MODELS.get(profile_name, LIFETIME_MODELS["general"])
    return float(model.sample(rng, 1)[0])
