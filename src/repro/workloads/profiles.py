"""Workload profiles: per-application-class demand characteristics.

Each profile fixes (a) the distribution from which a VM's *average*
utilisation ratio is drawn — calibrated so the population reproduces the
paper's Fig 14 CDFs — and (b) the temporal pattern shaping demand around
that average.

Calibration targets (Fig 14, §5.5):

- CPU: >80% of VMs use <70% of allocated CPU on average (strong
  overprovisioning); only a small set is optimally utilised (70–85%) and a
  smaller one overutilised (>85%).
- Memory: ≈38% of VMs below 70%, ≈10% within 70–85%, the remaining ≈52%
  above 85% — memory requests are much better aligned with usage, driven by
  in-memory databases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.infrastructure.flavors import Flavor
from repro.workloads import patterns as pat


@dataclass(frozen=True)
class WorkloadProfile:
    """Demand characteristics of one application class.

    ``cpu_mean_beta`` / ``mem_mean_beta`` are (alpha, beta) parameters of the
    Beta distribution from which the VM's lifetime-average utilisation ratio
    is drawn.  ``cpu_pattern_kind`` selects the temporal shape.  Network and
    disk are modelled relative to VM size.
    """

    name: str
    cpu_mean_beta: tuple[float, float]
    mem_mean_beta: tuple[float, float]
    cpu_pattern_kind: str  # "diurnal" | "bursty" | "constant" | "ramp" | "spiky"
    mem_stability: float  # 0..1, higher = flatter memory curve
    network_kbps_per_vcpu: float
    disk_fill_fraction: tuple[float, float]  # uniform range of disk used
    #: Probability this VM runs memory-resident (mean drawn near full) —
    #: Fig 14b: ~52% of all VMs consume >85% of requested memory.
    mem_high_share: float = 0.5
    #: Probability this VM runs CPU-hot (mean drawn in the 0.7..0.95 band) —
    #: Fig 14a: a small optimally-utilised set, a smaller overutilised one.
    cpu_hot_share: float = 0.10

    def sample_cpu_mean(self, rng: np.random.Generator) -> float:
        if rng.random() < self.cpu_hot_share:
            # Hot component straddling the 70%/85% thresholds.
            return float(rng.beta(14.0, 4.0))
        a, b = self.cpu_mean_beta
        return float(rng.beta(a, b))

    def sample_mem_mean(self, rng: np.random.Generator) -> float:
        if rng.random() < self.mem_high_share:
            # Memory-resident component: mean ≈ 0.945, nearly all above 0.85.
            return float(rng.beta(60.0, 3.5))
        a, b = self.mem_mean_beta
        return float(rng.beta(a, b))

    def cpu_pattern(
        self, mean_level: float, rng: np.random.Generator
    ) -> pat.DemandPattern:
        """Temporal CPU pattern oscillating around ``mean_level``."""
        mean_level = float(np.clip(mean_level, 0.01, 0.99))
        if self.cpu_pattern_kind == "constant":
            base = pat.constant(mean_level)
        elif self.cpu_pattern_kind == "diurnal":
            swing = min(mean_level * 0.8, (1 - mean_level) * 0.9)
            base = pat.composite(
                [
                    pat.diurnal(
                        base=mean_level - swing * 0.5,
                        peak=mean_level + swing,
                        peak_hour=float(rng.uniform(8, 16)),
                        width_hours=float(rng.uniform(2.5, 5.0)),
                    ),
                    pat.weekly(1.0, float(rng.uniform(0.5, 0.8))),
                ],
                mode="product",
            )
        elif self.cpu_pattern_kind == "bursty":
            burst = min(1.0, mean_level * float(rng.uniform(3.0, 6.0)))
            prob = mean_level / burst if burst > 0 else 0.2
            base = pat.bursty(
                base=mean_level * 0.3,
                burst_level=burst,
                burst_probability=float(np.clip(prob, 0.02, 0.9)),
                rng=rng,
                correlation=int(rng.integers(2, 12)),
            )
        elif self.cpu_pattern_kind == "ramp":
            drift = float(rng.uniform(-0.3, 0.5))
            end = float(np.clip(mean_level + drift, 0.02, 0.98))
            base = pat.ramp(mean_level, end, duration=20 * pat.SECONDS_PER_DAY)
        elif self.cpu_pattern_kind == "spiky":
            base = pat.composite(
                [
                    pat.constant(mean_level * 0.8),
                    pat.spike_train(
                        base=0.0,
                        spike_level=min(1.0, mean_level + 0.4),
                        period=float(rng.uniform(0.5, 2.0)) * pat.SECONDS_PER_DAY,
                        spike_width=float(rng.uniform(600, 7200)),
                        phase=float(rng.uniform(0, pat.SECONDS_PER_DAY)),
                    ),
                ],
                mode="max",
            )
        else:
            raise ValueError(f"unknown pattern kind: {self.cpu_pattern_kind}")
        return pat.with_noise(base, sigma=0.03, rng=rng)

    def mem_pattern(
        self, mean_level: float, rng: np.random.Generator
    ) -> pat.DemandPattern:
        """Temporal memory pattern: mostly flat, optional slow growth."""
        mean_level = float(np.clip(mean_level, 0.02, 0.99))
        if rng.random() < (1.0 - self.mem_stability):
            # Slow memory growth: caches/heaps filling over days (§5.2).
            start = mean_level * float(rng.uniform(0.85, 0.98))
            end = min(0.99, mean_level * float(rng.uniform(1.0, 1.12)))
            base = pat.ramp(start, end, duration=25 * pat.SECONDS_PER_DAY)
        else:
            base = pat.constant(mean_level)
        return pat.with_noise(base, sigma=0.01, rng=rng)


#: The application classes named in §5.5.
PROFILES: dict[str, WorkloadProfile] = {
    # HANA in-memory DBs: near-full memory residency, moderate CPU.
    "hana_db": WorkloadProfile(
        name="hana_db",
        cpu_mean_beta=(1.5, 10.0),
        mem_mean_beta=(14.0, 1.6),
        cpu_pattern_kind="diurnal",
        mem_stability=0.8,
        network_kbps_per_vcpu=8000.0,
        disk_fill_fraction=(0.3, 0.8),
        mem_high_share=0.95,
        cpu_hot_share=0.03,
    ),
    # ABAP application servers: diurnal CPU, high-ish memory.
    "abap_app": WorkloadProfile(
        name="abap_app",
        cpu_mean_beta=(1.8, 4.0),
        mem_mean_beta=(2.6, 2.0),
        cpu_pattern_kind="diurnal",
        mem_stability=0.6,
        network_kbps_per_vcpu=5000.0,
        disk_fill_fraction=(0.2, 0.6),
        mem_high_share=0.60,
        cpu_hot_share=0.12,
    ),
    # CI/CD runners: bursty, low average CPU, moderate memory.
    "cicd": WorkloadProfile(
        name="cicd",
        cpu_mean_beta=(1.3, 5.5),
        mem_mean_beta=(2.2, 2.2),
        cpu_pattern_kind="bursty",
        mem_stability=0.7,
        network_kbps_per_vcpu=12000.0,
        disk_fill_fraction=(0.1, 0.7),
        mem_high_share=0.48,
        cpu_hot_share=0.10,
    ),
    # Developer environments: mostly idle.
    "devenv": WorkloadProfile(
        name="devenv",
        cpu_mean_beta=(1.2, 8.0),
        mem_mean_beta=(2.0, 2.4),
        cpu_pattern_kind="diurnal",
        mem_stability=0.8,
        network_kbps_per_vcpu=1500.0,
        disk_fill_fraction=(0.05, 0.5),
        mem_high_share=0.42,
        cpu_hot_share=0.05,
    ),
    # Kubernetes infrastructure: steady moderate load.
    "k8s_infra": WorkloadProfile(
        name="k8s_infra",
        cpu_mean_beta=(2.2, 5.0),
        mem_mean_beta=(2.4, 2.0),
        cpu_pattern_kind="constant",
        mem_stability=0.9,
        network_kbps_per_vcpu=20000.0,
        disk_fill_fraction=(0.2, 0.6),
        mem_high_share=0.55,
        cpu_hot_share=0.15,
    ),
    # Catch-all general purpose.
    "general": WorkloadProfile(
        name="general",
        cpu_mean_beta=(1.5, 5.0),
        mem_mean_beta=(2.2, 2.2),
        cpu_pattern_kind="spiky",
        mem_stability=0.75,
        network_kbps_per_vcpu=4000.0,
        disk_fill_fraction=(0.1, 0.8),
        mem_high_share=0.52,
        cpu_hot_share=0.12,
    ),
}

#: Weights for assigning profiles to general-purpose VMs.
_GENERAL_MIX: tuple[tuple[str, float], ...] = (
    ("devenv", 0.30),
    ("cicd", 0.20),
    ("k8s_infra", 0.15),
    ("general", 0.25),
    ("abap_app", 0.10),
)


def profile_for_flavor(flavor: Flavor, rng: np.random.Generator) -> WorkloadProfile:
    """Pick a workload profile appropriate for a flavor.

    HANA-family flavors run in-memory databases; the large general-purpose
    flavors skew towards ABAP application servers; the rest draw from the
    general mix (§5.5: app servers live in small/medium/large classes, HANA
    DBs in extra large).
    """
    if flavor.family == "hana":
        return PROFILES["hana_db"]
    if flavor.family == "gpu":
        return PROFILES["k8s_infra"]
    if flavor.vcpus > 16 and rng.random() < 0.5:
        return PROFILES["abap_app"]
    names = [name for name, _ in _GENERAL_MIX]
    weights = np.asarray([w for _, w in _GENERAL_MIX])
    choice = rng.choice(len(names), p=weights / weights.sum())
    return PROFILES[names[int(choice)]]
