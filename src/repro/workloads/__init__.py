"""Workload models: demand patterns, profiles, and lifetime distributions.

The paper's region mixes two populations (§3, §5.5): memory-intensive,
long-lived SAP S/4HANA systems (ABAP application servers + HANA in-memory
databases) and diverse general-purpose workloads (dev environments, CI/CD,
Kubernetes infrastructure).  This package synthesises per-VM resource demand
time series and lifetimes matching the published characteristics.
"""

from repro.workloads.patterns import (
    DemandPattern,
    bursty,
    composite,
    constant,
    diurnal,
    ramp,
    spike_train,
    weekly,
)
from repro.workloads.profiles import WorkloadProfile, PROFILES, profile_for_flavor
from repro.workloads.lifetime import LifetimeModel, sample_lifetime
from repro.workloads.demand import DemandModel, VMDemand

__all__ = [
    "DemandPattern",
    "constant",
    "diurnal",
    "weekly",
    "bursty",
    "ramp",
    "spike_train",
    "composite",
    "WorkloadProfile",
    "PROFILES",
    "profile_for_flavor",
    "LifetimeModel",
    "sample_lifetime",
    "DemandModel",
    "VMDemand",
]
