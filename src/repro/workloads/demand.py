"""Per-VM demand synthesis: bind a profile to a flavor and emit demand series.

A :class:`VMDemand` holds the sampled average utilisation ratios and pattern
closures for one VM; :meth:`VMDemand.evaluate` turns a timestamp grid into
absolute resource demand (vCPU-seconds-per-second, MiB, kbps, GiB).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.infrastructure.flavors import Flavor
from repro.workloads.patterns import DemandPattern
from repro.workloads.profiles import WorkloadProfile, profile_for_flavor


@dataclass(frozen=True)
class DemandSnapshot:
    """Absolute demand of one VM across a timestamp grid."""

    timestamps: np.ndarray
    cpu_cores: np.ndarray  # demanded physical-core-equivalents
    memory_mb: np.ndarray
    network_tx_kbps: np.ndarray
    network_rx_kbps: np.ndarray
    disk_gb: np.ndarray
    cpu_ratio: np.ndarray  # demand / requested (for Fig 14a)
    memory_ratio: np.ndarray  # demand / requested (for Fig 14b)


@dataclass
class VMDemand:
    """Demand generator for a single VM."""

    flavor: Flavor
    profile: WorkloadProfile
    cpu_mean: float
    mem_mean: float
    cpu_pattern: DemandPattern
    mem_pattern: DemandPattern
    network_activity: float  # multiplier on profile network rate
    disk_used_fraction: float

    def evaluate(self, timestamps: np.ndarray) -> DemandSnapshot:
        """Demand across ``timestamps`` (epoch seconds)."""
        ts = np.asarray(timestamps, dtype=float)
        cpu_ratio = np.clip(self.cpu_pattern(ts), 0.0, 1.0)
        mem_ratio = np.clip(self.mem_pattern(ts), 0.0, 1.0)
        net = (
            self.network_activity
            * self.profile.network_kbps_per_vcpu
            * self.flavor.vcpus
            * cpu_ratio
        )
        return DemandSnapshot(
            timestamps=ts,
            cpu_cores=cpu_ratio * self.flavor.vcpus,
            memory_mb=mem_ratio * self.flavor.ram_mb,
            network_tx_kbps=net,
            network_rx_kbps=net * 0.8,
            disk_gb=np.full(len(ts), self.disk_used_fraction * self.flavor.disk_gb),
            cpu_ratio=cpu_ratio,
            memory_ratio=mem_ratio,
        )


class DemandModel:
    """Factory producing :class:`VMDemand` instances for flavors."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def demand_for(
        self, flavor: Flavor, profile: WorkloadProfile | None = None
    ) -> VMDemand:
        """Sample a demand generator for one VM of ``flavor``."""
        rng = self._rng
        if profile is None:
            profile = profile_for_flavor(flavor, rng)
        cpu_mean = profile.sample_cpu_mean(rng)
        mem_mean = profile.sample_mem_mean(rng)
        lo, hi = profile.disk_fill_fraction
        return VMDemand(
            flavor=flavor,
            profile=profile,
            cpu_mean=cpu_mean,
            mem_mean=mem_mean,
            cpu_pattern=profile.cpu_pattern(cpu_mean, rng),
            mem_pattern=profile.mem_pattern(mem_mean, rng),
            network_activity=float(rng.uniform(0.2, 1.0)),
            disk_used_fraction=float(rng.uniform(lo, hi)),
        )
