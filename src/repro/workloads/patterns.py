"""Temporal demand patterns.

A :class:`DemandPattern` maps an array of epoch-second timestamps to a
utilisation fraction in [0, 1].  Patterns compose multiplicatively or
additively to build realistic shapes: business-hours diurnal cycles with a
weekday/weekend effect (visible in the paper's Fig 8 ready-time series),
CI/CD burstiness, slow ramps (the paper observes nodes with consistently
increasing CPU demand, §5.1), and spike trains.

Every factory attaches a structured ``basis`` attribute to the closure it
returns — a tuple naming the pattern kind and its parameters.  The
simulation's scalar fast path (:mod:`repro.workloads.waveform`) compiles
these descriptions into per-VM evaluators and waveform tables instead of
calling the vectorised closures once per VM per tick; closures without a
``basis`` (hand-written lambdas in tests) simply fall back to the closure
call.  The metadata is descriptive only: evaluation behaviour and RNG
consumption of the closures themselves are unchanged.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

SECONDS_PER_DAY = 86_400
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: A demand pattern: timestamps (epoch seconds) -> utilisation fraction.
DemandPattern = Callable[[np.ndarray], np.ndarray]


def constant(level: float) -> DemandPattern:
    """A flat utilisation level."""
    if not 0.0 <= level <= 1.5:
        raise ValueError("level must be within [0, 1.5]")

    def pattern(ts: np.ndarray) -> np.ndarray:
        return np.full(len(ts), level)

    pattern.basis = ("constant", level)
    return pattern


def diurnal(
    base: float,
    peak: float,
    peak_hour: float = 13.0,
    width_hours: float = 4.0,
) -> DemandPattern:
    """Business-hours bell curve on top of a base load.

    ``peak_hour`` is the UTC hour of maximum demand; ``width_hours`` the
    Gaussian standard deviation of the bump.
    """
    if peak < base:
        raise ValueError("peak must be >= base")

    def pattern(ts: np.ndarray) -> np.ndarray:
        hour = (ts % SECONDS_PER_DAY) / 3600.0
        # Wrap-around distance to the peak hour.
        dist = np.minimum(np.abs(hour - peak_hour), 24.0 - np.abs(hour - peak_hour))
        bump = np.exp(-0.5 * (dist / width_hours) ** 2)
        return base + (peak - base) * bump

    pattern.basis = ("diurnal", base, peak, peak_hour, width_hours)
    return pattern


def weekly(weekday_scale: float = 1.0, weekend_scale: float = 0.6) -> DemandPattern:
    """Multiplicative weekday/weekend factor.

    Epoch day 0 (1970-01-01) was a Thursday; weekday indices follow that.
    """

    def pattern(ts: np.ndarray) -> np.ndarray:
        day_index = (np.floor(ts / SECONDS_PER_DAY).astype(int) + 3) % 7  # 0 = Monday
        return np.where(day_index >= 5, weekend_scale, weekday_scale)

    pattern.basis = ("weekly", weekday_scale, weekend_scale)
    return pattern


def ramp(start_level: float, end_level: float, duration: float) -> DemandPattern:
    """Linear drift from ``start_level`` to ``end_level`` over ``duration`` s.

    Demand holds at ``end_level`` after the ramp.  Timestamps are interpreted
    relative to the first timestamp passed in.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")

    def pattern(ts: np.ndarray) -> np.ndarray:
        if len(ts) == 0:
            return np.asarray([])
        progress = np.clip((ts - ts[0]) / duration, 0.0, 1.0)
        return start_level + (end_level - start_level) * progress

    pattern.basis = ("ramp", start_level, end_level, duration)
    return pattern


def bursty(
    base: float,
    burst_level: float,
    burst_probability: float,
    rng: np.random.Generator,
    correlation: int = 4,
) -> DemandPattern:
    """Random bursts (CI/CD-like): runs of elevated demand.

    ``correlation`` stretches each Bernoulli draw over that many consecutive
    samples so bursts last multiple sampling intervals.
    """
    if not 0.0 <= burst_probability <= 1.0:
        raise ValueError("burst_probability must be within [0, 1]")

    def pattern(ts: np.ndarray) -> np.ndarray:
        n_draws = int(np.ceil(len(ts) / max(1, correlation)))
        draws = rng.random(n_draws) < burst_probability
        mask = np.repeat(draws, correlation)[: len(ts)]
        return np.where(mask, burst_level, base)

    pattern.basis = ("bursty", base, burst_level, burst_probability, correlation)
    pattern.rng = rng
    return pattern


def spike_train(
    base: float,
    spike_level: float,
    period: float,
    spike_width: float,
    phase: float = 0.0,
) -> DemandPattern:
    """Periodic spikes (batch jobs, backups) of ``spike_width`` seconds."""
    if period <= 0 or spike_width <= 0:
        raise ValueError("period and spike_width must be positive")

    def pattern(ts: np.ndarray) -> np.ndarray:
        in_spike = ((ts + phase) % period) < spike_width
        return np.where(in_spike, spike_level, base)

    pattern.basis = ("spike", base, spike_level, period, spike_width, phase)
    return pattern


def composite(
    patterns: Sequence[DemandPattern],
    mode: str = "max",
) -> DemandPattern:
    """Combine patterns: ``max``, ``sum`` (clipped to 1), or ``product``."""
    if not patterns:
        raise ValueError("need at least one pattern")
    if mode not in ("max", "sum", "product"):
        raise ValueError(f"unknown mode {mode!r}")

    def pattern(ts: np.ndarray) -> np.ndarray:
        stacked = np.stack([p(ts) for p in patterns])
        if mode == "max":
            return stacked.max(axis=0)
        if mode == "sum":
            return np.clip(stacked.sum(axis=0), 0.0, 1.0)
        return stacked.prod(axis=0)

    pattern.basis = (
        "composite",
        mode,
        tuple(getattr(p, "basis", None) for p in patterns),
    )
    pattern.children = tuple(patterns)
    return pattern


def with_noise(
    pattern: DemandPattern, sigma: float, rng: np.random.Generator
) -> DemandPattern:
    """Add clipped Gaussian noise to any pattern."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")

    def noisy(ts: np.ndarray) -> np.ndarray:
        return np.clip(pattern(ts) + rng.normal(0.0, sigma, len(ts)), 0.0, 1.0)

    noisy.inner = pattern
    noisy.sigma = sigma
    noisy.rng = rng
    noisy.basis = ("noise", sigma, getattr(pattern, "basis", None))
    return noisy
