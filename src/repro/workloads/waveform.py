"""Scalar fast-path evaluation of per-VM demand waveforms.

The simulation's scrape loop evaluates every VM's demand at a single
timestamp, once per 900 s tick.  The vectorised pattern closures in
:mod:`repro.workloads.patterns` are built for timestamp *grids*; calling
them with one-element arrays allocates half a dozen temporaries plus a
:class:`~repro.workloads.demand.DemandSnapshot` per VM per tick, which is
what made the 30-day run the slowest bench stage.

:func:`compile_demand` turns one :class:`~repro.workloads.demand.VMDemand`
into a :class:`CompiledDemand` whose ``evaluate(t)`` returns plain floats
and is bit-identical to ``demand.evaluate(np.asarray([t]))`` — including
RNG stream consumption, so compiled and legacy runs stay replayable
against each other.  The compiler reads the ``basis`` metadata the pattern
factories attach:

- phase-free shapes (``constant``; ``ramp``, which always reports its
  start level at single-timestamp evaluation because progress is measured
  from ``ts[0]``) collapse to a precomputed constant;
- shapes built from exact IEEE ops (``weekly``, ``spike``: fmod, floor,
  comparisons, multiply/add) are re-derived as scalar expressions —
  Python floats and float64 share the same operations bit for bit;
- ``diurnal`` depends on ``np.exp``, which does **not** round identically
  to ``math.exp`` on every host, so it is served from a per-pattern
  waveform table keyed by day phase (``t % 86400``, exact for positive
  operands); misses call the original numpy closure and memoise the
  result.  The closure reads nothing but the day phase, so equal phases
  give equal bits for *any* timestamp;
- ``bursty`` draws one uniform per evaluation (``ceil(1/correlation)`` is
  1), replicated as a scalar draw — scalar and size-1 Generator draws
  advance the stream identically;
- ``noise`` adds a scalar Gaussian and clips with branches, which matches
  ``np.clip`` bitwise (including the ``-0.0`` corner: np.clip keeps it);
- anything without usable metadata (hand-written closures in tests) falls
  back to calling the closure with a one-element array, which is always
  correct, just not fast.

Invalidation is by identity: the simulation keeps one ``CompiledDemand``
per VM and recompiles whenever the registered :class:`VMDemand` object is
replaced (create, resize) and drops the entry on delete, so a stale table
can never serve a new waveform.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.workloads.demand import VMDemand
from repro.workloads.patterns import SECONDS_PER_DAY

_DAY = float(SECONDS_PER_DAY)

#: Hard cap on one waveform table.  Simulation timestamps land on the
#: scrape/DRS grids, so a day-periodic pattern sees at most
#: 86400/gcd(intervals) distinct phases (96 at the default 900 s); the cap
#: only guards pathological callers that sweep arbitrary timestamps.
TABLE_CAP = 1024

ScalarPattern = Callable[[float], float]


def _fallback(pattern) -> ScalarPattern:
    """Call the vectorised closure with a one-element grid (always exact)."""

    def fn(t: float) -> float:
        return float(pattern(np.asarray([t], dtype=float))[0])

    return fn


def _memoized_by_day_phase(pattern) -> ScalarPattern:
    """Waveform table for day-periodic transcendental patterns.

    The value must come from the original numpy closure: ``np.exp`` and
    ``math.exp`` differ in the last ulp on some hosts, and the fast path
    promises byte-identical telemetry.  ``%`` is exact for positive
    operands, so the phase key loses no information.
    """
    table: dict[float, float] = {}

    def fn(t: float) -> float:
        phase = t % _DAY
        v = table.get(phase)
        if v is None:
            if len(table) >= TABLE_CAP:
                table.clear()
            v = table[phase] = float(pattern(np.asarray([t], dtype=float))[0])
        return v

    return fn


def compile_pattern(pattern) -> ScalarPattern:
    """A scalar evaluator bit-identical to ``pattern(np.asarray([t]))[0]``."""
    basis = getattr(pattern, "basis", None)
    if basis is None:
        return _fallback(pattern)
    kind = basis[0]

    if kind == "constant":
        level = float(basis[1])
        return lambda t: level

    if kind == "ramp":
        # Single-timestamp grids measure progress from ts[0], i.e. zero:
        # the closure always answers its start level.
        start = float(basis[1])
        return lambda t: start

    if kind == "weekly":
        weekday_scale = float(basis[1])
        weekend_scale = float(basis[2])

        def weekly_fn(t: float) -> float:
            day_index = (int(math.floor(t / _DAY)) + 3) % 7  # 0 = Monday
            return weekend_scale if day_index >= 5 else weekday_scale

        return weekly_fn

    if kind == "spike":
        base, spike_level, period, spike_width, phase = (
            float(x) for x in basis[1:]
        )

        def spike_fn(t: float) -> float:
            return spike_level if ((t + phase) % period) < spike_width else base

        return spike_fn

    if kind == "diurnal":
        return _memoized_by_day_phase(pattern)

    if kind == "bursty":
        rng = getattr(pattern, "rng", None)
        if rng is None:
            return _fallback(pattern)
        base = float(basis[1])
        burst_level = float(basis[2])
        burst_probability = float(basis[3])

        def bursty_fn(t: float) -> float:
            # One Bernoulli per evaluation: ceil(1/correlation) == 1, and
            # a scalar uniform advances the stream exactly like random(1).
            return burst_level if rng.random() < burst_probability else base

        return bursty_fn

    if kind == "composite":
        children = getattr(pattern, "children", None)
        if children is None:
            return _fallback(pattern)
        mode = basis[1]
        fns = tuple(compile_pattern(p) for p in children)

        if mode == "max":

            def max_fn(t: float) -> float:
                v = fns[0](t)
                for f in fns[1:]:
                    w = f(t)
                    if w > v:
                        v = w
                return v

            return max_fn

        if mode == "sum":

            def sum_fn(t: float) -> float:
                v = fns[0](t)
                for f in fns[1:]:
                    v = v + f(t)
                if v < 0.0:
                    return 0.0
                if v > 1.0:
                    return 1.0
                return v

            return sum_fn

        def prod_fn(t: float) -> float:
            v = fns[0](t)
            for f in fns[1:]:
                v = v * f(t)
            return v

        return prod_fn

    if kind == "noise":
        inner = getattr(pattern, "inner", None)
        rng = getattr(pattern, "rng", None)
        if inner is None or rng is None:
            return _fallback(pattern)
        sigma = pattern.sigma
        inner_fn = compile_pattern(inner)

        def noise_fn(t: float) -> float:
            v = inner_fn(t) + rng.normal(0.0, sigma)
            if v < 0.0:
                return 0.0
            if v > 1.0:
                return 1.0
            return v

        return noise_fn

    return _fallback(pattern)


class CompiledDemand:
    """Scalar twin of one VM's :class:`VMDemand`.

    ``evaluate(t)`` returns ``(cpu_cores, memory_mb, network_tx_kbps,
    network_rx_kbps, disk_gb)`` as plain floats, bit-identical to the
    corresponding columns of ``demand.evaluate(np.asarray([t]))`` and
    consuming the shared RNG stream in the same order (cpu base draws,
    cpu noise, mem base draws, mem noise).
    """

    __slots__ = (
        "demand",
        "_cpu_fn",
        "_mem_fn",
        "_vcpus",
        "_ram_mb",
        "_net_rate",
        "_disk_gb",
    )

    def __init__(self, demand: VMDemand) -> None:
        self.demand = demand
        self._cpu_fn = compile_pattern(demand.cpu_pattern)
        self._mem_fn = compile_pattern(demand.mem_pattern)
        self._vcpus = demand.flavor.vcpus
        self._ram_mb = demand.flavor.ram_mb
        # Same association order as VMDemand.evaluate's product.
        self._net_rate = (
            demand.network_activity
            * demand.profile.network_kbps_per_vcpu
            * demand.flavor.vcpus
        )
        self._disk_gb = demand.disk_used_fraction * demand.flavor.disk_gb

    def evaluate(self, t: float) -> tuple[float, float, float, float, float]:
        cpu = self._cpu_fn(t)
        if cpu < 0.0:
            cpu = 0.0
        elif cpu > 1.0:
            cpu = 1.0
        mem = self._mem_fn(t)
        if mem < 0.0:
            mem = 0.0
        elif mem > 1.0:
            mem = 1.0
        net = self._net_rate * cpu
        return (
            cpu * self._vcpus,
            mem * self._ram_mb,
            net,
            net * 0.8,
            self._disk_gb,
        )


def compile_demand(demand: VMDemand) -> CompiledDemand:
    """Compile one VM's demand model for scalar single-timestamp evaluation."""
    return CompiledDemand(demand)
