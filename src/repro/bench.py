"""Performance benchmark harness: ``repro bench``.

Times the simulator's three hot paths on seeded, reproducible workloads
and writes ``BENCH_scale.json`` — the repo's perf trajectory artifact:

1. **Schedule throughput** — a Table 1/2-shaped request stream replayed
   through the FilterScheduler at scale 0.05 (~92 nodes), measured on the
   indexed fast path *and* on the legacy rebuild-per-request path, so the
   speedup ratio is machine-independent.  The two paths must produce
   identical placements (recorded as ``placements_identical``).
2. **Telemetry ingest** — 20 scrape cycles of vROps + Nova exporter
   output, measured through the per-sample ``ingest()`` loop and the
   columnar ``ingest_blocks()`` path.
3. **DRS round latency and a seeded regional simulation** — wall time of
   one DRS round over a populated scale-0.02 region, and of a multi-day
   end-to-end run (30 days in full mode).
4. **Scenario-sweep throughput** — an 8-cell micro-grid executed through
   the :mod:`repro.sweep` engine at 1 worker and at ``sweep_workers``
   workers: scenarios/hour for both, the speedup ratio, and a
   byte-identity check between the two merged reports.  The ratio tracks
   available CPUs (recorded as ``sweep_cpu_count``).

The frozen pre-PR baseline (measured on the same workloads at the commit
before the performance overhaul) ships in :data:`PRE_PR_BASELINE`, so
``*_speedup_vs_baseline`` keys are comparable run-over-run on the same
host; CI's smoke job instead asserts the in-run ratios, which do not
depend on the host at all.
"""

from __future__ import annotations

import json
import resource
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.datagen.population import FLAVOR_MIX
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import build_region, paper_region_spec
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import PlacementService
from repro.scheduler.request import RequestSpec
from repro.scheduler.stats import stats_of
from repro.telemetry.exporters import NodeUsage, NovaExporter, VropsExporter
from repro.telemetry.store import MetricStore

#: Pre-PR numbers for the exact workloads below (scale 0.05, 600 requests,
#: 20 ingest cycles, 30-day scale-0.02 simulation), measured at the commit
#: preceding the performance overhaul on the reference dev container.
#: Cross-host comparisons are indicative only; the in-run ``*_vs_legacy``
#: ratios are the portable signal.
PRE_PR_BASELINE = {
    "schedule_requests_per_s": 7432.0,
    "telemetry_ingest_samples_per_s": 1194873.0,
    "drs_round_latency_s": 0.1604,
    "sim_30day_wall_s": 751.5,
    "peak_rss_kb": 83024,
}


@dataclass(frozen=True)
class BenchConfig:
    """Knobs for one ``repro bench`` run."""

    scale: float = 0.05
    requests: int = 600
    ingest_cycles: int = 20
    rounds: int = 3
    sim_scale: float = 0.02
    sim_days: float = 30.0
    sim_initial_vms: int = 150
    sim_arrival_rate_per_hour: float = 6.0
    seed: int = 1
    sim_seed: int = 7
    run_sim: bool = True
    sweep_duration_days: float = 0.25
    sweep_initial_vms: int = 40
    sweep_workers: int = 4
    journal_records: int = 2000

    @classmethod
    def smoke(cls) -> "BenchConfig":
        """CI-sized config: same workloads, minutes-to-seconds runtime.

        The ingest stage keeps its full 20 cycles — it runs in
        milliseconds, and shrinking it would shrink the per-series blocks
        until fixed per-block cost drowns the columnar advantage the
        smoke check asserts.
        """
        return cls(
            requests=200,
            rounds=2,
            sim_days=1.0,
            sim_initial_vms=60,
            sim_arrival_rate_per_hour=4.0,
            sweep_duration_days=0.05,
            sweep_initial_vms=16,
            sweep_workers=2,
            journal_records=400,
        )


def _request_stream(n: int, seed: int) -> list[RequestSpec]:
    catalog = default_catalog()
    rng = np.random.default_rng(seed)
    names = [name for name, w in FLAVOR_MIX if w > 0]
    weights = np.asarray([w for _, w in FLAVOR_MIX if w > 0], dtype=float)
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=n, p=weights)
    return [
        RequestSpec(vm_id=f"vm-{i:05d}", flavor=catalog.get(names[int(p)]))
        for i, p in enumerate(picks)
    ]


def _replay(
    config: BenchConfig, requests: list[RequestSpec], scheduler_config: SchedulerConfig
) -> tuple[float, dict[str, str], dict[str, int]]:
    """Best wall time over ``rounds`` replays; returns placements and stats."""
    best = None
    placements: dict[str, str] = {}
    stats: dict[str, int] = {}
    for _ in range(config.rounds):
        region = build_region(paper_region_spec(scale=config.scale))
        placement = PlacementService()
        for bb in region.iter_building_blocks():
            placement.register_building_block(bb)
        scheduler = FilterScheduler(region, placement, scheduler_config)
        t0 = time.perf_counter()
        for spec in requests:
            try:
                scheduler.schedule(spec)
            except NoValidHost:
                pass
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
        placements = {
            spec.vm_id: (
                allocation.provider_id
                if (allocation := placement.allocation_for(spec.vm_id)) is not None
                else ""
            )
            for spec in requests
        }
        stats = stats_of(scheduler)
    return float(best), placements, stats


def bench_schedule(config: BenchConfig) -> dict:
    """Schedule-throughput on the indexed fast path vs the legacy path."""
    requests = _request_stream(config.requests, config.seed)
    fast = SchedulerConfig(track_filter_counts=False, use_index=True)
    legacy = SchedulerConfig(track_filter_counts=True, use_index=False)
    fast_s, fast_placements, fast_stats = _replay(config, requests, fast)
    legacy_s, legacy_placements, _ = _replay(config, requests, legacy)
    n = len(requests)
    return {
        "schedule_requests": n,
        "schedule_requests_per_s": n / fast_s,
        "schedule_requests_per_s_legacy": n / legacy_s,
        "schedule_speedup_vs_legacy": legacy_s / fast_s,
        "placements_identical": fast_placements == legacy_placements,
        "schedule_stats": fast_stats,
    }


def _scrape_workload(config: BenchConfig):
    """The per-sample and columnar forms of the same scrape traffic."""
    region = build_region(paper_region_spec(scale=config.scale))
    vrops, nova = VropsExporter(), NovaExporter()
    usage = NodeUsage(0.4, 0.5, 100.0, 80.0, 50.0, 12.0, 0.02)
    nodes = list(region.iter_nodes())
    timestamps = [900.0 * cycle for cycle in range(config.ingest_cycles)]
    samples = []
    for t in timestamps:
        for node in nodes:
            samples.extend(vrops.scrape_node(node, usage, t))
        samples.extend(nova.scrape_region(region, t))
    usages = [usage] * len(timestamps)
    blocks = []
    for node in nodes:
        blocks.extend(vrops.scrape_node_window(node, usages, timestamps))
    nova_samples = []
    for t in timestamps:
        nova_samples.extend(nova.scrape_region(region, t))
    return samples, blocks, nova_samples


def bench_ingest(config: BenchConfig) -> dict:
    """Telemetry ingest rate: per-sample loop vs columnar blocks."""
    samples, blocks, nova_samples = _scrape_workload(config)
    per_sample_best = None
    for _ in range(config.rounds):
        store = MetricStore()
        t0 = time.perf_counter()
        n_per_sample = store.ingest(samples)
        elapsed = time.perf_counter() - t0
        if per_sample_best is None or elapsed < per_sample_best:
            per_sample_best = elapsed
    block_best = None
    for _ in range(config.rounds):
        store = MetricStore()
        t0 = time.perf_counter()
        n_block = store.ingest_blocks(blocks)
        n_block += store.ingest(nova_samples)
        elapsed = time.perf_counter() - t0
        if block_best is None or elapsed < block_best:
            block_best = elapsed
    if n_block != n_per_sample:
        raise RuntimeError(
            f"ingest paths disagree on sample count: {n_block} != {n_per_sample}"
        )
    return {
        "ingest_samples": n_per_sample,
        "telemetry_ingest_samples_per_s": n_block / block_best,
        "telemetry_ingest_per_sample_per_s": n_per_sample / per_sample_best,
        "ingest_block_speedup_vs_per_sample": per_sample_best / block_best,
    }


def bench_drs(config: BenchConfig) -> dict:
    """One DRS round over a populated region (latency, seconds)."""
    from repro.drs.balancer import DrsBalancer
    from repro.simulation.runner import RegionSimulation, SimulationConfig

    spec = paper_region_spec(scale=config.sim_scale)
    sim = RegionSimulation(
        spec,
        SimulationConfig(
            duration_days=0.5,
            initial_vms=config.sim_initial_vms,
            seed=config.sim_seed,
        ),
    )
    sim.run()
    drs = DrsBalancer()
    t0 = time.perf_counter()
    for bb in sim.region.iter_building_blocks():
        if bb.policy == "pack":
            continue
        drs.run(bb)
    return {"drs_round_latency_s": time.perf_counter() - t0}


def _sim_digest(result) -> tuple:
    """Everything the two scrape paths must agree on, byte for byte."""
    return (
        {vm_id: vm.node_id for vm_id, vm in result.vms.items()},
        result.created,
        result.deleted,
        result.rejected,
        result.resized,
        result.drs_migrations,
        result.events_processed,
        dict(result.scheduler_stats),
        result.store.sample_count(),
        result.store.content_fingerprint(),
    )


def bench_sim(config: BenchConfig) -> dict:
    """Seeded end-to-end regional run: columnar vs legacy scrape path.

    The columnar run (stage profiler on) is the primary timing; a legacy
    per-sample run at identical config/seed provides the in-run
    ``sim_scrape_speedup_vs_legacy`` ratio and the byte-identity check
    (``sim_paths_identical``: placements, counters, scheduler stats, and
    the telemetry store's content fingerprint).
    """
    from repro.simulation.runner import RegionSimulation, SimulationConfig

    spec = paper_region_spec(scale=config.sim_scale)

    def one_run(scrape_path: str, profile: bool):
        t0 = time.perf_counter()
        sim = RegionSimulation(
            spec,
            SimulationConfig(
                duration_days=config.sim_days,
                initial_vms=config.sim_initial_vms,
                arrival_rate_per_hour=config.sim_arrival_rate_per_hour,
                seed=config.sim_seed,
                scrape_path=scrape_path,
                profile_stages=profile,
            ),
        )
        result = sim.run()
        return time.perf_counter() - t0, result

    fast_s, fast = one_run("columnar", True)
    legacy_s, legacy = one_run("legacy", False)
    stage_profile = fast.stage_profile or {}
    scrape_s = (
        stage_profile.get("demand_eval", 0.0)
        + stage_profile.get("exporter_format", 0.0)
        + stage_profile.get("ingest", 0.0)
    )
    samples = fast.store.sample_count()
    out = {
        "sim_days": config.sim_days,
        "sim_wall_s": fast_s,
        "sim_wall_s_legacy": legacy_s,
        "sim_scrape_speedup_vs_legacy": legacy_s / fast_s,
        "sim_paths_identical": _sim_digest(fast) == _sim_digest(legacy),
        "sim_events": fast.events_processed,
        "sim_samples": samples,
        "sim_scrape_samples_per_s": (
            samples / scrape_s if scrape_s > 0 else 0.0
        ),
        "sim_profile": {k: round(v, 3) for k, v in stage_profile.items()},
        "sim_scheduler_stats": dict(fast.scheduler_stats),
        "sim_placement_stats": fast.placement.stats(),
    }
    if config.sim_days == 30.0:
        # Deprecated alias of sim_wall_s, kept one release for external
        # consumers of BENCH_scale.json; see the artifact's schema notes.
        out["sim_30day_wall_s"] = fast_s
        out["sim_speedup_vs_pre_pr"] = PRE_PR_BASELINE["sim_30day_wall_s"] / fast_s
    return out


def _sweep_grid_doc(config: BenchConfig) -> dict:
    """An 8-cell micro-grid (2 arrival rates x 4 seeds) for throughput."""
    return {
        "base": {
            "duration_days": config.sweep_duration_days,
            "building_blocks": 2,
            "nodes_per_bb": 2,
            "initial_vms": config.sweep_initial_vms,
            "arrival_rate_per_hour": 6.0,
        },
        "seeds": [1, 2, 3, 4],
        "axes": {"arrival_rate_per_hour": [6.0, 12.0]},
    }


def bench_sweep(config: BenchConfig) -> dict:
    """Scenario-sweep throughput: 1 worker vs ``sweep_workers`` workers.

    Also re-asserts the engine's determinism contract in passing: the
    two runs must merge to byte-identical reports
    (``sweep_reports_identical``).  Parallel speedup scales with the
    CPUs actually available — ``sweep_cpu_count`` records them so a
    1-core container's flat ratio is legible in the artifact.
    """
    from repro.reporting import canonical_bytes
    from repro.sweep import grid_from_dict, run_sweep

    grid = grid_from_dict(_sweep_grid_doc(config))
    report_1w, stats_1w = run_sweep(grid, workers=1)
    report_nw, stats_nw = run_sweep(grid, workers=config.sweep_workers)
    return {
        "sweep_cells": len(grid.cells),
        "sweep_workers": config.sweep_workers,
        "sweep_cpu_count": stats_nw.cpu_count,
        "sweep_wall_1w_s": stats_1w.wall_s,
        "sweep_wall_nw_s": stats_nw.wall_s,
        "sweep_scenarios_per_hour_1w": stats_1w.scenarios_per_hour,
        "sweep_scenarios_per_hour_nw": stats_nw.scenarios_per_hour,
        "sweep_speedup_nw_vs_1w": stats_1w.wall_s / stats_nw.wall_s,
        "sweep_reports_identical": (
            canonical_bytes(report_1w) == canonical_bytes(report_nw)
        ),
        "sweep_failed_shards": len(report_1w.failures)
        + len(report_nw.failures),
    }


def bench_journal(config: BenchConfig) -> dict:
    """Journal-append throughput: ``durability=fsync`` vs ``flush``.

    The fsync mode is the crash-consistent default (every record durable
    at commit); flush is the sim-only fast path (``repro chaos
    --journal``).  The gap quantifies what power-loss durability costs on
    this host's storage, so a surprising fsync cliff in CI is visible in
    the artifact rather than silently absorbed.
    """
    import tempfile

    from repro.recovery import JournalWriter

    record = {
        "type": "bench",
        "record": {"vm_id": "vm-00000", "host": "node-000-00", "op": 0},
    }
    timings: dict[str, float] = {}
    for durability in ("fsync", "flush"):
        with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmp:
            writer = JournalWriter(
                Path(tmp) / "bench.journal", durability=durability
            )
            t0 = time.perf_counter()
            for i in range(config.journal_records):
                record["record"]["op"] = i
                writer.append(record)
            timings[durability] = time.perf_counter() - t0
            writer.close()
    n = config.journal_records
    return {
        "journal_records": n,
        "journal_append_per_s_fsync": n / timings["fsync"],
        "journal_append_per_s_flush": n / timings["flush"],
        "journal_flush_speedup_vs_fsync": timings["fsync"] / timings["flush"],
    }


def run_bench(config: BenchConfig | None = None, echo=None) -> dict:
    """Run every bench stage; returns the BENCH_scale.json payload."""
    config = config or BenchConfig()

    def say(msg: str) -> None:
        if echo is not None:
            echo(msg)

    results: dict = {}
    say(f"scheduling: {config.requests} requests at scale {config.scale} ...")
    results.update(bench_schedule(config))
    say(f"telemetry ingest: {config.ingest_cycles} scrape cycles ...")
    results.update(bench_ingest(config))
    say("DRS round latency ...")
    results.update(bench_drs(config))
    if config.run_sim:
        say(f"regional simulation: {config.sim_days:g} days ...")
        results.update(bench_sim(config))
    say(
        f"scenario sweep: 8 cells at 1 vs {config.sweep_workers} worker(s) ..."
    )
    results.update(bench_sweep(config))
    say(f"journal appends: {config.journal_records} records, fsync vs flush ...")
    results.update(bench_journal(config))
    results["peak_rss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    for key in ("schedule_requests_per_s", "telemetry_ingest_samples_per_s"):
        baseline = PRE_PR_BASELINE[key]
        results[f"{key.split('_per_s')[0]}_speedup_vs_baseline"] = (
            results[key] / baseline
        )
    return {
        "bench": "scale",
        "config": asdict(config),
        "baseline_pre_pr": dict(PRE_PR_BASELINE),
        "schema": {
            "deprecated": {
                "results.sim_30day_wall_s": (
                    "alias of results.sim_wall_s (emitted only while "
                    "sim_days == 30); consumers should read sim_wall_s"
                ),
            },
        },
        "results": results,
    }


#: (key, minimum) bounds the CI smoke job enforces; in-run ratios only, so
#: they hold on any host.  Keys starting with ``sim_`` are enforced only
#: when the sim stage actually ran (``sim_wall_s`` present).
CHECK_BOUNDS = (
    ("schedule_speedup_vs_legacy", 1.5),
    ("ingest_block_speedup_vs_per_sample", 3.0),
    ("sim_scrape_speedup_vs_legacy", 2.0),
)

#: Keys that must be present (and finite) in results for the artifact to
#: count as a valid BENCH_scale.json.
REQUIRED_KEYS = (
    "schedule_requests_per_s",
    "telemetry_ingest_samples_per_s",
    "drs_round_latency_s",
    "journal_append_per_s_fsync",
    "peak_rss_kb",
)


def check_results(payload: dict, notes: list[str] | None = None) -> list[str]:
    """Non-regression check; returns a list of violations (empty = pass).

    ``notes``, when given, collects non-fatal explanations (e.g. which
    asserts were skipped and why) so the CLI can surface them.
    """
    problems: list[str] = []
    results = payload.get("results", {})
    sim_ran = "sim_wall_s" in results
    for key in REQUIRED_KEYS:
        value = results.get(key)
        if value is None or not np.isfinite(value):
            problems.append(f"missing or non-finite result key: {key}")
    if not results.get("placements_identical", False):
        problems.append("indexed and legacy scheduling paths placed differently")
    if sim_ran and not results.get("sim_paths_identical", False):
        problems.append("columnar and legacy scrape paths diverged")
    if not results.get("sweep_reports_identical", True):
        problems.append("sweep reports differ between 1 and N workers")
    if results.get("sweep_failed_shards", 0):
        problems.append(
            f"sweep bench had {results['sweep_failed_shards']} failed shards"
        )
    # Parallel-sweep throughput must beat single-worker — but only where the
    # host can actually run workers concurrently.  On a 1-CPU box the ratio
    # measures scheduler overhead, not the sweep engine, so the assert is
    # skipped with an explicit note instead of failing dishonestly.
    nw = results.get("sweep_scenarios_per_hour_nw")
    one_w = results.get("sweep_scenarios_per_hour_1w")
    if nw is not None and one_w is not None:
        cpu_count = results.get("sweep_cpu_count", 1)
        if cpu_count > 1:
            if not (nw > one_w):
                problems.append(
                    f"sweep_scenarios_per_hour_nw = {nw:.2f} below required "
                    f"minimum of sweep_scenarios_per_hour_1w = {one_w:.2f} "
                    f"on {cpu_count} CPUs"
                )
        elif notes is not None:
            notes.append(
                "skipped sweep nw>1w throughput assert: "
                f"sweep_cpu_count == {cpu_count} (no parallelism available)"
            )
    for key, minimum in CHECK_BOUNDS:
        if key.startswith("sim_") and not sim_ran:
            if notes is not None:
                notes.append(
                    f"skipped bound {key} >= {minimum:.2f}: sim stage not run"
                )
            continue
        value = results.get(key, 0.0)
        if not (value >= minimum):
            problems.append(f"{key} = {value:.2f} below required {minimum:.2f}")
    return problems


def write_bench_json(payload: dict, path: str) -> None:
    """Write the artifact with stable formatting."""
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
