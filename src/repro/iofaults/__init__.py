"""Deterministic storage-fault injection and the durability torture harness.

:mod:`repro.iofaults.layer` is the injectable filesystem shim every
persistent artifact routes through; :mod:`repro.iofaults.torture` is the
harness that interleaves its faults with crash-point injection and
asserts every artifact recovers byte-identically or fails structurally.
"""

from repro.iofaults.layer import (
    FAULT_KINDS,
    FaultSpec,
    FaultyIO,
    IoFaultError,
    RealIO,
    active_io,
    atomic_write_bytes,
    inject,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultyIO",
    "IoFaultError",
    "RealIO",
    "active_io",
    "atomic_write_bytes",
    "inject",
    # lazily loaded from repro.iofaults.torture (imports recovery/verify):
    "ARTIFACTS",
    "TortureCase",
    "TortureConfig",
    "TortureReport",
    "run_torture",
]

_TORTURE_EXPORTS = {
    "ARTIFACTS",
    "TortureCase",
    "TortureConfig",
    "TortureReport",
    "run_torture",
}


def __getattr__(name):
    if name in _TORTURE_EXPORTS:
        from repro.iofaults import torture

        return getattr(torture, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
