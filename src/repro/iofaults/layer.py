"""The injectable filesystem shim every durable artifact routes through.

Every byte this repo promises to keep — the write-ahead journal, control
plane snapshots, the sweep resume journal, golden traces, every ``--out``
report — reaches disk through one of the operations below, each tagged
with a **named IO point** (``journal.append``, ``snapshot.rename``,
``report.dirsync``, ...).  That gives the storage layer the same two
properties :mod:`repro.faults.crashpoints` gave process death:

- **determinism** — a :class:`FaultSpec` pins a fault to the Nth
  operation at a named point, so an injected ENOSPC, EIO, short write,
  fsync failure/lie, or lost rename lands on the exact same byte every
  run;
- **structure** — every storage failure, injected *or real*, surfaces
  as :class:`IoFaultError` carrying the point, operation, and fault
  kind.  CLIs turn it into a one-line exit-2 message; the torture
  harness asserts it is raised instead of a torn artifact.

Two backends share the interface: :class:`RealIO` passes straight
through to the OS (wrapping real ``OSError`` into :class:`IoFaultError`
with the point named), and :class:`FaultyIO` injects scheduled faults
on top while tracking **durability** — which byte ranges an honest disk
would still hold after sudden power loss.  :meth:`FaultyIO.power_cut`
applies that model: appended bytes past the last successful fsync are
dropped, and renames never followed by a directory fsync are rolled
back.  A journal written with ``durability="flush"`` therefore loses
its tail on power cut exactly as a real page cache would.

Injection is ambient: :func:`inject` installs a backend in a context
variable and :func:`active_io` hands it to whichever component performs
IO inside the ``with`` block, so the torture harness can reach the
journal buried three layers inside a :class:`~repro.recovery.run.JournaledRun`
without threading parameters through every constructor.  Components also
accept an explicit ``io=`` for direct unit testing.
"""

from __future__ import annotations

import contextlib
import contextvars
import errno
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

#: The fault catalogue — every kind of storage misbehaviour the shim can
#: inject, named after what an operator would see.
FAULT_KINDS = (
    "enospc",       # write fails with ENOSPC; nothing reaches the file
    "eio-read",     # read fails with EIO at a byte offset
    "eio-write",    # write fails with EIO; nothing reaches the file
    "short-write",  # only a prefix reaches the file, then the write errors
    "fsync-fail",   # fsync raises; nothing new became durable
    "fsync-lie",    # fsync "succeeds" but hardens nothing (power_cut tells)
    "rename-fail",  # os.replace raises; old and new files both survive
    "rename-lost",  # os.replace succeeds but power_cut rolls it back
)

_ERRNO_OF = {
    "enospc": errno.ENOSPC,
    "eio-read": errno.EIO,
    "eio-write": errno.EIO,
    "short-write": errno.EIO,
    "fsync-fail": errno.EIO,
    "rename-fail": errno.EIO,
}


class IoFaultError(OSError):
    """A storage failure at a named IO point — injected or real.

    The structured twin of a raw ``OSError``: consumers get the IO
    point (``journal.append``), the operation (``write``), the path,
    and the fault kind (``enospc``/``eio``/``eacces``...), so every
    layer above can act on it — and no durable-artifact failure ever
    escapes as an anonymous traceback.
    """

    def __init__(
        self,
        point: str,
        op: str,
        path,
        kind: str,
        detail: str = "",
        *,
        injected: bool = True,
    ) -> None:
        self.point = point
        self.op = op
        self.fault_path = str(path)
        self.kind = kind
        self.detail = detail
        self.injected = injected
        origin = "injected " if injected else ""
        message = f"{origin}{kind} at IO point {point!r} ({op} {self.fault_path})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.errno = _ERRNO_OF.get(kind)


def _real_kind(exc: OSError) -> str:
    """The catalogue-style name of a genuine OSError (``enospc``, ...)."""
    code = errno.errorcode.get(exc.errno or 0, "")
    return code.lower() if code else type(exc).__name__.lower()


def _wrap_oserror(exc: OSError, point: str, op: str, path) -> IoFaultError:
    return IoFaultError(
        point,
        op,
        path,
        _real_kind(exc),
        detail=exc.strerror or str(exc),
        injected=False,
    )


@dataclass
class IoHandle:
    """One open file the IO layer is responsible for."""

    fh: object
    path: Path

    @property
    def closed(self) -> bool:
        return self.fh.closed


class RealIO:
    """Pass-through backend: the OS, with failures given their IO point."""

    def read_bytes(self, path, *, point: str) -> bytes:
        try:
            return Path(path).read_bytes()
        except OSError as exc:
            raise _wrap_oserror(exc, point, "read", path) from exc

    def open_append(self, path, *, point: str) -> IoHandle:
        try:
            return IoHandle(fh=open(path, "ab"), path=Path(path))
        except OSError as exc:
            raise _wrap_oserror(exc, point, "open", path) from exc

    def open_write(self, path, *, point: str) -> IoHandle:
        try:
            return IoHandle(fh=open(path, "wb"), path=Path(path))
        except OSError as exc:
            raise _wrap_oserror(exc, point, "open", path) from exc

    def write(self, handle: IoHandle, data: bytes, *, point: str) -> None:
        try:
            handle.fh.write(data)
        except OSError as exc:
            raise _wrap_oserror(exc, point, "write", handle.path) from exc

    def flush(self, handle: IoHandle, *, point: str) -> None:
        try:
            handle.fh.flush()
        except OSError as exc:
            raise _wrap_oserror(exc, point, "flush", handle.path) from exc

    def fsync(self, handle: IoHandle, *, point: str) -> None:
        try:
            handle.fh.flush()
            os.fsync(handle.fh.fileno())
        except OSError as exc:
            raise _wrap_oserror(exc, point, "fsync", handle.path) from exc

    def tell(self, handle: IoHandle) -> int:
        return handle.fh.tell()

    def close(self, handle: IoHandle) -> None:
        if not handle.fh.closed:
            handle.fh.close()

    def replace(self, src, dst, *, point: str) -> None:
        try:
            os.replace(src, dst)
        except OSError as exc:
            raise _wrap_oserror(exc, point, "rename", dst) from exc

    def fsync_dir(self, directory, *, point: str) -> None:
        """Harden a rename: fsync the directory holding the entry."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError as exc:
            raise _wrap_oserror(exc, point, "dirsync", directory) from exc
        try:
            os.fsync(fd)
        except OSError as exc:  # pragma: no cover - fs-dependent
            raise _wrap_oserror(exc, point, "dirsync", directory) from exc
        finally:
            os.close(fd)

    def truncate(self, path, size: int, *, point: str) -> None:
        try:
            with open(path, "r+b") as fh:
                fh.truncate(size)
                os.fsync(fh.fileno())
        except OSError as exc:
            raise _wrap_oserror(exc, point, "truncate", path) from exc


@dataclass(frozen=True)
class FaultSpec:
    """Inject ``kind`` the ``op_index``-th time IO hits ``point``.

    ``at_byte`` refines the two offset-sensitive kinds: the byte count a
    short write delivers before failing, or the offset an EIO read dies
    at (purely informational for reads — the whole read fails either
    way, as it does on a real disk).
    """

    point: str
    op_index: int = 0
    kind: str = "eio-write"
    at_byte: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.op_index < 0:
            raise ValueError("op_index must be >= 0")
        if self.at_byte is not None and self.at_byte < 0:
            raise ValueError("at_byte must be >= 0")

    def to_dict(self) -> dict:
        return {
            "point": self.point,
            "op_index": self.op_index,
            "kind": self.kind,
            "at_byte": self.at_byte,
        }


class FaultyIO(RealIO):
    """RealIO plus scheduled faults and an honest power-loss model.

    Counts every operation per IO point; when a :class:`FaultSpec`
    matches, the corresponding failure is injected (each spec fires at
    most once).  Independently of injection it tracks which bytes a
    sudden power loss would preserve: appended data becomes durable
    only at a successful (non-lying) fsync, and a rename only at the
    following directory fsync.  :meth:`power_cut` applies the model to
    the real filesystem, which is what makes ``fsync-lie`` and
    ``rename-lost`` observable.
    """

    def __init__(self, specs=()) -> None:
        self.specs: list[FaultSpec] = list(specs)
        #: Operations seen per IO point (also the clock specs fire on).
        self.counts: dict[str, int] = {}
        #: ``"kind@point"`` strings, in firing order.
        self.fired: list[str] = []
        self._consumed: set[int] = set()
        self._durable: dict[str, int] = {}
        self._pending_renames: dict[str, bytes | None] = {}
        # A disk that lies about one flush keeps lying (the write cache
        # is ignoring FLUSH, not having a momentary lapse) — otherwise
        # the graceful close's fsync would quietly harden everything and
        # the lie could never be observed.
        self._lying_files: set[str] = set()
        self._lying_dirs: set[str] = set()

    # -- scheduling -----------------------------------------------------------

    def _arm(self, point: str) -> FaultSpec | None:
        seen = self.counts.get(point, 0)
        self.counts[point] = seen + 1
        for i, spec in enumerate(self.specs):
            if i in self._consumed:
                continue
            if spec.point == point and spec.op_index == seen:
                self._consumed.add(i)
                self.fired.append(f"{spec.kind}@{point}")
                return spec
        return None

    def _mark_durable(self, handle: IoHandle) -> None:
        self._durable[str(handle.path)] = os.fstat(handle.fh.fileno()).st_size

    # -- faultable operations -------------------------------------------------

    def read_bytes(self, path, *, point: str) -> bytes:
        spec = self._arm(point)
        if spec is not None and spec.kind == "eio-read":
            offset = spec.at_byte if spec.at_byte is not None else 0
            raise IoFaultError(
                point, "read", path, spec.kind,
                detail=f"device error at byte {offset}",
            )
        return super().read_bytes(path, point=point)

    def open_append(self, path, *, point: str) -> IoHandle:
        spec = self._arm(point)
        if spec is not None:
            # O_CREAT on a full/failing disk: any scheduled kind fails
            # the open rather than silently consuming the spec.
            raise IoFaultError(point, "open", path, spec.kind)
        handle = super().open_append(path, point=point)
        key = str(handle.path)
        # Pre-existing bytes were someone else's commit; take them as durable.
        self._durable.setdefault(key, os.fstat(handle.fh.fileno()).st_size)
        return handle

    def open_write(self, path, *, point: str) -> IoHandle:
        spec = self._arm(point)
        if spec is not None:
            raise IoFaultError(point, "open", path, spec.kind)
        handle = super().open_write(path, point=point)
        self._durable[str(handle.path)] = 0
        return handle

    def write(self, handle: IoHandle, data: bytes, *, point: str) -> None:
        spec = self._arm(point)
        if spec is None:
            super().write(handle, data, point=point)
            return
        if spec.kind in ("enospc", "eio-write"):
            raise IoFaultError(point, "write", handle.path, spec.kind)
        if spec.kind == "short-write":
            cut = spec.at_byte if spec.at_byte is not None else len(data) // 2
            cut = max(0, min(cut, len(data)))
            super().write(handle, data[:cut], point=point)
            super().flush(handle, point=point)
            raise IoFaultError(
                point, "write", handle.path, spec.kind,
                detail=f"only {cut} of {len(data)} bytes written",
            )
        # A kind that does not apply to writes: inject a plain EIO so a
        # mis-targeted schedule is still a fault, not a silent no-op.
        raise IoFaultError(point, "write", handle.path, "eio-write")

    def flush(self, handle: IoHandle, *, point: str) -> None:
        spec = self._arm(point)
        if spec is not None:
            # Buffered bytes hit the disk at flush, so ENOSPC/EIO are
            # just as much flush failures as write failures.
            raise IoFaultError(point, "flush", handle.path, spec.kind)
        super().flush(handle, point=point)

    def fsync(self, handle: IoHandle, *, point: str) -> None:
        spec = self._arm(point)
        key = str(handle.path)
        if spec is not None:
            if spec.kind == "fsync-lie":
                # Reports success, hardens nothing — from now on.  The
                # data still reaches the OS (flush), so the *file* looks
                # complete until power_cut applies the truth.
                super().flush(handle, point=point)
                self._lying_files.add(key)
                return
            raise IoFaultError(point, "fsync", handle.path, spec.kind)
        if key in self._lying_files:
            super().flush(handle, point=point)
            return
        super().fsync(handle, point=point)
        self._mark_durable(handle)

    def replace(self, src, dst, *, point: str) -> None:
        spec = self._arm(point)
        if spec is not None and spec.kind == "rename-fail":
            raise IoFaultError(point, "rename", dst, spec.kind)
        dst_path = Path(dst)
        previous = dst_path.read_bytes() if dst_path.exists() else None
        super().replace(src, dst, point=point)
        key = str(dst_path)
        # The entry is not durable until the directory is fsynced.
        self._pending_renames[key] = previous
        moved = self._durable.pop(str(Path(src)), None)
        self._durable[key] = (
            moved if moved is not None else dst_path.stat().st_size
        )
        if spec is not None and spec.kind == "rename-lost":
            # The entry will never reach the platter: subsequent
            # directory fsyncs lie too, so only power_cut tells.
            self._lying_dirs.add(str(dst_path.parent))
        elif spec is not None:
            raise IoFaultError(point, "rename", dst, spec.kind)

    def fsync_dir(self, directory, *, point: str) -> None:
        spec = self._arm(point)
        key = str(Path(directory))
        if spec is not None:
            if spec.kind == "fsync-lie":
                self._lying_dirs.add(key)
                return
            raise IoFaultError(point, "dirsync", directory, spec.kind)
        if key in self._lying_dirs:
            return
        super().fsync_dir(directory, point=point)
        directory = Path(directory)
        for key in [
            k for k in self._pending_renames if Path(k).parent == directory
        ]:
            del self._pending_renames[key]

    def truncate(self, path, size: int, *, point: str) -> None:
        spec = self._arm(point)
        if spec is not None:
            raise IoFaultError(point, "truncate", path, spec.kind)
        super().truncate(path, size, point=point)
        key = str(Path(path))
        if key in self._durable:
            self._durable[key] = min(self._durable[key], size)

    # -- the power-loss model -------------------------------------------------

    def power_cut(self) -> list[str]:
        """Simulate sudden power loss; returns the paths that lost data.

        Renames never hardened by a directory fsync are rolled back
        (the old file contents restored, or the entry removed when
        nothing preceded it), and every tracked file is truncated to
        its last fsync-durable size.
        """
        affected: set[str] = set()
        for key, previous in self._pending_renames.items():
            target = Path(key)
            if previous is None:
                with contextlib.suppress(FileNotFoundError):
                    target.unlink()
            else:
                target.write_bytes(previous)
            self._durable.pop(key, None)
            affected.add(key)
        self._pending_renames.clear()
        for key, durable in self._durable.items():
            target = Path(key)
            if not target.exists():
                continue
            if target.stat().st_size > durable:
                with open(target, "r+b") as fh:
                    fh.truncate(durable)
                affected.add(key)
        return sorted(affected)


#: The process-default backend: the real filesystem.
REAL_IO = RealIO()

_ACTIVE: contextvars.ContextVar[RealIO | None] = contextvars.ContextVar(
    "repro_iofaults_active", default=None
)


def active_io() -> RealIO:
    """The currently injected IO backend, or the real filesystem."""
    return _ACTIVE.get() or REAL_IO


@contextlib.contextmanager
def inject(io: RealIO):
    """Route every IO-layer operation in this context through ``io``."""
    token = _ACTIVE.set(io)
    try:
        yield io
    finally:
        _ACTIVE.reset(token)


def atomic_write_bytes(
    path, data: bytes, *, points: str, io: RealIO | None = None
) -> Path:
    """The one torn-write-proof file commit: tmp → fsync → rename → dirsync.

    ``points`` prefixes the IO-point names (``report.write``,
    ``golden.fsync``, ...).  A crash or fault anywhere in the sequence
    leaves either the previous file or the complete new one — the temp
    file is fsynced before the rename, and the parent directory after
    it, so the guarantee holds across power loss, not just process
    death.
    """
    io = io or active_io()
    path = Path(path)
    directory = path.parent
    try:
        fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", dir=directory)
    except OSError as exc:
        raise _wrap_oserror(exc, f"{points}.create", "create", path) from exc
    os.close(fd)  # reopened through the IO layer so faults see the writes
    try:
        handle = io.open_write(tmp_name, point=f"{points}.write")
        try:
            io.write(handle, data, point=f"{points}.write")
            io.fsync(handle, point=f"{points}.fsync")
        finally:
            io.close(handle)
        io.replace(tmp_name, path, point=f"{points}.rename")
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    io.fsync_dir(directory, point=f"{points}.dirsync")
    return path
