"""Durability torture: seeded IO-fault × crash schedules for every artifact.

For each seed the harness derives a battery of randomized-but-seeded
*schedules* (``numpy`` Generator per (seed, index) — two runs of the
same config produce byte-identical reports) and drives every persistent
artifact in the repo through them:

- **wal** — a :class:`~repro.recovery.run.JournaledRun` executed under
  injected journal faults (ENOSPC / EIO / short writes on append,
  fsync failures and *lies* on commit), optionally interleaved with a
  :class:`~repro.faults.crashpoints.CrashSpec` kill, then power-cut
  (un-fsynced tail dropped, exactly as a real disk would), then
  recovered fault-free.  The recovered outcome must be field-identical
  to the uninterrupted baseline.
- **snapshot** — a :class:`~repro.recovery.snapshot.SnapshotStore`
  commit under faults at write/fsync/rename/dirsync; after a power cut
  ``load_latest`` must return the *old or the new* snapshot, never a
  torn one and never nothing.
- **report** — ``write_report`` under the same fault surface; the file
  on disk must afterwards hold the old or the new canonical bytes.
- **golden** — golden-store writes (old-or-new contract) and reads
  (EIO must surface as a structured :class:`IoFaultError`).
- **sweep-journal** — synthesized sweep resume records appended under
  faults and power cut; ``load_resume`` must hand back an intact
  *prefix* of what was acknowledged, or refuse structurally.

The invariant every case asserts is the tentpole's contract: an
injected-fault schedule ends in **byte-identical recovery or a
structured error naming its IO point** — never a raw traceback, never
a torn artifact that later parses.  Case details carry fault kinds and
IO points only (no filesystem paths), keeping the report byte-stable.
"""

from __future__ import annotations

import contextlib
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.faults.crashpoints import CrashInjector, CrashSpec, SimulatedCrash
from repro.iofaults.layer import FaultSpec, FaultyIO, IoFaultError, inject
from repro.recovery.journal import JournalWriter
from repro.recovery.run import CRASH_POINTS, JournaledRun, recover_and_continue
from repro.recovery.snapshot import SnapshotStore
from repro.reporting import ReportBase, canonical_json, write_report
from repro.scheduler.config import SchedulerConfig
from repro.verify.goldens import read_golden_text, write_golden_text
from repro.verify.oracle import diff_outcomes, replay_workload, workload_ops
from repro.verify.scenarios import get_scenario

#: Every persistent artifact the repo writes, torture-case vocabulary.
ARTIFACTS = ("wal", "snapshot", "report", "golden", "sweep-journal")

#: Fault kinds applicable per IO-operation family.
_WRITE_KINDS = ("enospc", "eio-write", "short-write")
_FSYNC_KINDS = ("fsync-fail", "fsync-lie")
_RENAME_KINDS = ("rename-fail", "rename-lost")


@dataclass(frozen=True)
class TortureConfig:
    """One torture invocation: scenario × seeds × schedules-per-seed."""

    scenario: str = "tiny"
    seeds: tuple[int, ...] = (7,)
    schedules: int = 15
    snapshot_every: int = 10
    durability: str = "fsync"

    def __post_init__(self) -> None:
        from repro.recovery.journal import DURABILITY_MODES

        if self.schedules < 1:
            raise ValueError("schedules must be >= 1")
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if self.durability not in DURABILITY_MODES:
            raise ValueError(
                f"unknown durability {self.durability!r}; "
                f"known: {', '.join(DURABILITY_MODES)}"
            )

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seeds": list(self.seeds),
            "schedules": self.schedules,
            "snapshot_every": self.snapshot_every,
            "durability": self.durability,
        }


@dataclass
class TortureCase:
    """One fault schedule applied to one artifact."""

    seed: int
    index: int
    artifact: str
    #: The scheduled faults (point/op/kind/at_byte), in spec order.
    faults: list[dict]
    #: Interleaved crash-point kill, when the schedule drew one.
    crash: dict | None
    power_cut: bool
    #: ``kind@point`` of every fault that actually fired, in order.
    fired: list[str]
    #: recovered-identical | intact-new | intact-old | intact-prefix |
    #: structured-error | diverged | torn-artifact | unstructured-error |
    #: refused
    outcome: str
    detail: str
    ok: bool

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "index": self.index,
            "artifact": self.artifact,
            "faults": self.faults,
            "crash": self.crash,
            "power_cut": self.power_cut,
            "fired": self.fired,
            "outcome": self.outcome,
            "detail": self.detail,
            "ok": self.ok,
        }


@dataclass
class TortureReport(ReportBase):
    """Everything one ``repro torture`` invocation proved (or failed to)."""

    config: TortureConfig
    cases: list[TortureCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    def to_dict(self) -> dict:
        outcomes: dict[str, int] = {}
        for case in self.cases:
            outcomes[case.outcome] = outcomes.get(case.outcome, 0) + 1
        return {
            "config": self.config.to_dict(),
            "cases": [case.to_dict() for case in self.cases],
            "outcomes": {k: outcomes[k] for k in sorted(outcomes)},
            "ok": self.ok,
        }

    def render(self) -> str:
        cfg = self.config
        lines = [
            f"durability torture: scenario {cfg.scenario}, seeds "
            f"{','.join(str(s) for s in cfg.seeds)}, "
            f"{cfg.schedules} schedules/seed, durability={cfg.durability}"
        ]
        for case in self.cases:
            fired = ",".join(case.fired) or "none"
            verdict = "OK" if case.ok else "FAILED"
            lines.append(
                f"  seed {case.seed} #{case.index} {case.artifact}: "
                f"fired {fired}"
                + (f" + crash@{case.crash['point']}" if case.crash else "")
                + (" + power-cut" if case.power_cut else "")
                + f" -> {case.outcome} — {verdict}"
            )
            if case.detail and not case.ok:
                lines.append(f"    {case.detail}")
        lines.append(f"result: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def _classify(exc: BaseException | None) -> str:
    """Structured-error vocabulary for whatever the faulted stage raised."""
    if exc is None:
        return ""
    if isinstance(exc, IoFaultError):
        return f"{exc.kind}@{exc.point} ({exc.op})"
    return f"{type(exc).__name__}"


def _draw_fault(rng, point: str, *, no_lie: bool = False) -> FaultSpec:
    """One seeded FaultSpec matched to what the point's operations allow.

    ``no_lie`` excludes ``fsync-lie`` — for artifacts committed by
    renaming over their *only* copy (reports, goldens), a disk that
    acknowledges the content fsync without persisting destroys old and
    new alike on power loss; no commit protocol survives that, so the
    torture contract does not pretend to (multi-file stores — the
    journal, the snapshot set — do survive it and are tortured with it).
    """
    if point.endswith((".append", ".write", ".header")):
        kinds = _WRITE_KINDS
    elif point.endswith((".fsync", ".flush", ".dirsync")):
        kinds = ("fsync-fail",) if no_lie else _FSYNC_KINDS
    elif point.endswith(".rename"):
        kinds = _RENAME_KINDS
    else:
        kinds = ("eio-read",)
    kind = kinds[int(rng.integers(0, len(kinds)))]
    # Journal points fire once per record — spread the fault across the
    # run.  Atomic-commit points fire once per commit (``.write`` twice:
    # the open at op 0, the payload at op 1), so pin them there.
    if point.startswith(("journal.", "sweep-journal.")):
        op_index = int(rng.integers(0, 40))
    elif point.endswith(".write"):
        op_index = int(rng.integers(0, 2))
    else:
        op_index = 0
    at_byte = int(rng.integers(1, 64)) if kind == "short-write" else None
    return FaultSpec(point=point, op_index=op_index, kind=kind, at_byte=at_byte)


@dataclass
class _ToyReport(ReportBase):
    """Minimal report the report-artifact cases write under fault."""

    payload: dict

    def to_dict(self) -> dict:
        return dict(self.payload)


def run_torture(
    config: TortureConfig,
    progress: Callable[[str], None] | None = None,
) -> TortureReport:
    """Run the full torture battery; returns a byte-stable report."""
    scenario = get_scenario(config.scenario)
    report = TortureReport(config=config)
    for seed in config.seeds:
        baseline = None  # computed lazily: only wal schedules need it
        for k in range(config.schedules):
            artifact = ARTIFACTS[k % len(ARTIFACTS)]
            rng = np.random.default_rng(seed * 1_000_003 + k)
            if progress is not None:
                progress(f"seed {seed}: schedule #{k} ({artifact})")
            if artifact == "wal":
                if baseline is None:
                    ops = workload_ops(scenario, seed)
                    baseline = replay_workload(
                        scenario.topology(),
                        ops,
                        SchedulerConfig(
                            use_index=True, track_filter_counts=False
                        ),
                        variant="uninterrupted",
                    )
                case = _wal_case(scenario, seed, k, rng, config, baseline)
            elif artifact == "snapshot":
                case = _snapshot_case(seed, k, rng)
            elif artifact == "report":
                case = _report_case(seed, k, rng)
            elif artifact == "golden":
                case = _golden_case(seed, k, rng)
            else:
                case = _sweep_journal_case(seed, k, rng)
            report.cases.append(case)
    return report


# -- per-artifact drivers ---------------------------------------------------


def _wal_case(
    scenario, seed, index, rng, config: TortureConfig, baseline
) -> TortureCase:
    specs = [
        _draw_fault(
            rng,
            ("journal.append", "journal.fsync")[int(rng.integers(0, 2))],
        )
        for _ in range(int(rng.integers(1, 3)))
    ]
    crash = None
    if rng.random() < 0.5:
        n_ops = len(workload_ops(scenario, seed))
        crash = CrashSpec(
            point=CRASH_POINTS[int(rng.integers(0, len(CRASH_POINTS)))],
            at_op=int(rng.integers(0, n_ops)),
        )
    workdir = tempfile.mkdtemp(prefix="repro-torture-")
    faulty = FaultyIO(specs)
    error: BaseException | None = None
    try:
        barrier = CrashInjector(crash) if crash is not None else None
        with inject(faulty):
            try:
                JournaledRun(
                    scenario,
                    seed,
                    workdir,
                    snapshot_every=config.snapshot_every,
                    barrier=barrier,
                    durability=config.durability,
                ).run()
            except (SimulatedCrash, IoFaultError) as exc:
                error = exc
            except Exception as exc:  # noqa: BLE001 - contract violation
                return _finish_wal(
                    seed, index, specs, crash, faulty,
                    "unstructured-error",
                    f"faulted run leaked {type(exc).__name__}", False,
                    workdir,
                )
            faulty.power_cut()
        try:
            outcome, _info = recover_and_continue(
                scenario,
                seed,
                workdir,
                snapshot_every=config.snapshot_every,
                durability=config.durability,
            )
        except Exception as exc:  # noqa: BLE001 - refusal is a failure here
            return _finish_wal(
                seed, index, specs, crash, faulty,
                "refused",
                f"recovery refused after {_classify(error) or 'clean run'}: "
                f"{type(exc).__name__}",
                False, workdir,
            )
        found = diff_outcomes(baseline, outcome) + outcome.index_mismatches
        if found:
            return _finish_wal(
                seed, index, specs, crash, faulty,
                "diverged",
                f"{len(found)} field mismatches after recovery",
                False, workdir,
            )
        return _finish_wal(
            seed, index, specs, crash, faulty,
            "recovered-identical", _classify(error), True, workdir,
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _finish_wal(
    seed, index, specs, crash, faulty, outcome, detail, ok, workdir
) -> TortureCase:
    return TortureCase(
        seed=seed,
        index=index,
        artifact="wal",
        faults=[s.to_dict() for s in specs],
        crash=(
            {"point": crash.point, "at_op": crash.at_op}
            if crash is not None
            else None
        ),
        power_cut=True,
        fired=list(faulty.fired),
        outcome=outcome,
        detail=detail,
        ok=ok,
    )


def _old_or_new_case(
    seed: int,
    index: int,
    artifact: str,
    specs: list[FaultSpec],
    faulty: FaultyIO,
    power_cut: bool,
    error: BaseException | None,
    state: str,  # "old" | "new" | "torn"
    detail_extra: str = "",
) -> TortureCase:
    """Shared verdict for the commit-must-be-atomic artifacts."""
    if error is not None and not isinstance(error, IoFaultError):
        outcome, ok = "unstructured-error", False
        detail = f"write leaked {type(error).__name__}"
    elif state == "new":
        outcome, ok, detail = "intact-new", True, _classify(error)
    elif state == "old":
        # Old content surviving is only legal if the write failed
        # structurally or the power cut rolled an un-synced rename back.
        ok = error is not None or power_cut
        outcome = "intact-old" if ok else "torn-artifact"
        detail = _classify(error) if ok else "new write acked but lost"
    else:
        outcome, ok = "torn-artifact", False
        detail = f"artifact neither old nor new after {_classify(error)}"
    if detail_extra:
        detail = f"{detail} [{detail_extra}]" if detail else detail_extra
    return TortureCase(
        seed=seed,
        index=index,
        artifact=artifact,
        faults=[s.to_dict() for s in specs],
        crash=None,
        power_cut=power_cut,
        fired=list(faulty.fired),
        outcome=outcome,
        detail=detail,
        ok=ok,
    )


_SNAPSHOT_POINTS = (
    "snapshot.write",
    "snapshot.fsync",
    "snapshot.rename",
    "snapshot.dirsync",
)


def _snapshot_case(seed, index, rng) -> TortureCase:
    point = _SNAPSHOT_POINTS[int(rng.integers(0, len(_SNAPSHOT_POINTS)))]
    specs = [_draw_fault(rng, point)]
    power_cut = bool(rng.random() < 0.5)
    workdir = Path(tempfile.mkdtemp(prefix="repro-torture-"))
    try:
        old_state = {"v": int(seed), "k": "old"}
        new_state = {"v": int(seed), "k": "new", "i": int(index)}
        store = SnapshotStore(workdir)
        store.write(1, old_state)
        faulty = FaultyIO(specs)
        error: BaseException | None = None
        with inject(faulty):
            store_faulty = SnapshotStore(workdir, io=faulty)
            try:
                store_faulty.write(2, new_state)
            except BaseException as exc:  # noqa: BLE001 - classified below
                error = exc
            if power_cut:
                faulty.power_cut()
        loaded = SnapshotStore(workdir).load_latest()
        if loaded == (2, new_state):
            state = "new"
        elif loaded == (1, old_state):
            state = "old"
        else:
            state = "torn"
        return _old_or_new_case(
            seed, index, "snapshot", specs, faulty, power_cut, error, state
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


_REPORT_POINTS = (
    "report.write",
    "report.fsync",
    "report.rename",
    "report.dirsync",
)


def _report_case(seed, index, rng) -> TortureCase:
    point = _REPORT_POINTS[int(rng.integers(0, len(_REPORT_POINTS)))]
    specs = [_draw_fault(rng, point, no_lie=point.endswith(".fsync"))]
    power_cut = bool(rng.random() < 0.5)
    workdir = Path(tempfile.mkdtemp(prefix="repro-torture-"))
    try:
        path = workdir / "report.json"
        old = _ToyReport({"seed": int(seed), "k": "old"})
        new = _ToyReport({"seed": int(seed), "k": "new", "i": int(index)})
        write_report(old, path)
        faulty = FaultyIO(specs)
        error: BaseException | None = None
        with inject(faulty):
            try:
                write_report(new, path)
            except BaseException as exc:  # noqa: BLE001 - classified below
                error = exc
            if power_cut:
                faulty.power_cut()
        text = path.read_text()
        if text == canonical_json(new.to_dict()):
            state = "new"
        elif text == canonical_json(old.to_dict()):
            state = "old"
        else:
            state = "torn"
        return _old_or_new_case(
            seed, index, "report", specs, faulty, power_cut, error, state
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


_GOLDEN_POINTS = (
    "golden.read",
    "golden.write",
    "golden.fsync",
    "golden.rename",
    "golden.dirsync",
)


def _golden_case(seed, index, rng) -> TortureCase:
    point = _GOLDEN_POINTS[int(rng.integers(0, len(_GOLDEN_POINTS)))]
    specs = [_draw_fault(rng, point, no_lie=point.endswith(".fsync"))]
    power_cut = bool(rng.random() < 0.5)
    workdir = Path(tempfile.mkdtemp(prefix="repro-torture-"))
    try:
        path = workdir / f"torture-seed{seed}.json.gz"
        old_text = f"old golden {seed}\n"
        new_text = f"new golden {seed}/{index}\n"
        write_golden_text(path, old_text)
        faulty = FaultyIO(specs)
        error: BaseException | None = None
        read_back: str | None = None
        with inject(faulty):
            try:
                if point == "golden.read":
                    read_back = read_golden_text(path)
                else:
                    write_golden_text(path, new_text)
            except BaseException as exc:  # noqa: BLE001 - classified below
                error = exc
            if power_cut:
                faulty.power_cut()
        if point == "golden.read":
            # An injected EIO must surface structurally; a schedule that
            # missed (op_index past the single read) returns the text.
            if isinstance(error, IoFaultError):
                outcome, ok, detail = "structured-error", True, _classify(error)
            elif error is not None:
                outcome, ok = "unstructured-error", False
                detail = f"read leaked {type(error).__name__}"
            elif read_back == old_text:
                outcome, ok, detail = "intact-old", True, ""
            else:
                outcome, ok, detail = "torn-artifact", False, "read text wrong"
            return TortureCase(
                seed=seed,
                index=index,
                artifact="golden",
                faults=[s.to_dict() for s in specs],
                crash=None,
                power_cut=power_cut,
                fired=list(faulty.fired),
                outcome=outcome,
                detail=detail,
                ok=ok,
            )
        text = read_golden_text(path)
        state = (
            "new" if text == new_text else "old" if text == old_text else "torn"
        )
        return _old_or_new_case(
            seed, index, "golden", specs, faulty, power_cut, error, state
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _sweep_journal_case(seed, index, rng) -> TortureCase:
    from repro.sweep import grid_from_dict
    from repro.sweep.engine import SweepResumeError, load_resume

    point = (
        "sweep-journal.append", "sweep-journal.fsync"
    )[int(rng.integers(0, 2))]
    specs = [_draw_fault(rng, point)]
    power_cut = bool(rng.random() < 0.5)
    workdir = Path(tempfile.mkdtemp(prefix="repro-torture-"))
    try:
        # Grid construction only builds specs — no simulation runs; the
        # records below are synthetic but carry the real spec hashes
        # load_resume validates against.
        grid = grid_from_dict(
            {
                "base": {
                    "duration_days": 0.05,
                    "building_blocks": 2,
                    "nodes_per_bb": 2,
                    "initial_vms": 4,
                },
                "seeds": [int(seed), int(seed) + 1, int(seed) + 2],
            }
        )
        path = workdir / "sweep.wal"
        faulty = FaultyIO(specs)
        error: BaseException | None = None
        acked: list[str] = []
        with inject(faulty):
            writer = None
            try:
                writer = JournalWriter(path, label="sweep-journal")
                writer.append(
                    {
                        "type": "sweep-header",
                        "format": 1,
                        "grid_sha256": grid.sha256,
                    }
                )
                for cell in grid.cells:
                    writer.append(
                        {
                            "type": "cell",
                            "record": {
                                "cell_id": cell.cell_id,
                                "spec_sha256": cell.sha256(),
                                "stats": {"i": int(index)},
                            },
                        }
                    )
                    acked.append(cell.cell_id)
            except BaseException as exc:  # noqa: BLE001 - classified below
                error = exc
            finally:
                if writer is not None:
                    with contextlib.suppress(OSError):
                        writer.close()
            if power_cut:
                faulty.power_cut()
        if error is not None and not isinstance(error, IoFaultError):
            outcome, ok = "unstructured-error", False
            detail = f"journal write leaked {type(error).__name__}"
        else:
            try:
                completed = load_resume(path, grid)
            except SweepResumeError:
                outcome, ok = "refused", False
                detail = f"resume refused after {_classify(error)}"
            else:
                attempted = [c.cell_id for c in grid.cells]
                recovered = [
                    c for c in attempted if c in completed
                ]
                # Resume may see fewer cells than acknowledged (a lying
                # fsync) or one more than acknowledged (a failed append
                # whose bytes landed anyway) — but always a *prefix* of
                # the attempted order, never invented or reordered.
                if recovered == attempted[: len(recovered)]:
                    outcome, ok = "intact-prefix", True
                    detail = _classify(error)
                else:
                    outcome, ok = "torn-artifact", False
                    detail = (
                        f"resume returned {len(recovered)} cells out of "
                        f"order ({len(acked)} acked)"
                    )
        return TortureCase(
            seed=seed,
            index=index,
            artifact="sweep-journal",
            faults=[s.to_dict() for s in specs],
            crash=None,
            power_cut=power_cut,
            fired=list(faulty.fired),
            outcome=outcome,
            detail=detail,
            ok=ok,
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
