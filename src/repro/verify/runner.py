"""The `repro verify` runner: check registry, report, exit semantics.

One :func:`run_verify` call executes a named set of checks for every
(scenario, seed) pair and folds the outcomes into a single JSON-ready
report.  The report is byte-stable by construction — no wall clock, no
host identity, sorted keys, rounded floats — so CI can diff two runs of
the same tree directly.

Checks:

``oracle``
    Differential scheduler oracle (naive vs indexed vs scalar weighers).
``desync``
    Harness self-test: replays the oracle with a deliberately injected
    index desync (ghost VM registry fork, no epoch bump) and *passes only
    if the corruption is detected* — guarding the guard.
``metamorphic``
    Telemetry + scheduler metamorphic properties.
``determinism_faults`` / ``determinism_chaos``
    The seeded fault / chaos scenario rendered to canonical JSON twice
    in-process; any byte difference is nondeterminism.  Replaces the
    former ``scripts/check_fault_determinism.sh`` and
    ``scripts/check_chaos_determinism.sh``.
``scrape_path``
    Columnar vs legacy scrape path on a seeded two-day fault scenario:
    placements, counters, scheduler stats, the fault report, and the
    telemetry store's content fingerprint must be byte-identical.
``sweep``
    Order-independence of the scenario-sweep engine: a micro-grid run
    sequentially, with one worker, and with two workers must merge to
    byte-identical reports.
``goldens``
    Golden-trace regression against ``tests/goldens/``.
``iofaults``
    Durability torture: seeded storage-fault × crash schedules against
    every persistent artifact; each must end in byte-identical recovery
    or a structured ``IoFaultError`` naming its IO point.
"""

from __future__ import annotations

import difflib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.reporting import ReportBase
from repro.verify.goldens import check_golden, update_golden
from repro.verify.metamorphic import run_metamorphic
from repro.verify.oracle import Mismatch, desync_index, run_oracle
from repro.verify.scenarios import VerifyScenario, get_scenario

#: Registry order is report order.
ALL_CHECKS = (
    "oracle",
    "desync",
    "metamorphic",
    "determinism_faults",
    "determinism_chaos",
    "scrape_path",
    "sweep",
    "goldens",
    "iofaults",
)

#: First verification seed; ``--seeds N`` runs seeds BASE_SEED..BASE_SEED+N-1.
BASE_SEED = 7


@dataclass(frozen=True)
class VerifyConfig:
    """One `repro verify` invocation."""

    scenario: str = "default"
    seeds: tuple[int, ...] = (BASE_SEED,)
    checks: tuple[str, ...] = ALL_CHECKS
    goldens_dir: str | None = None
    update_goldens: bool = False
    #: Corrupt the oracle run itself (demonstrates detection; run fails).
    inject_desync: bool = False

    def __post_init__(self) -> None:
        unknown = set(self.checks) - set(ALL_CHECKS)
        if unknown:
            raise ValueError(
                f"unknown checks {sorted(unknown)}; known: {list(ALL_CHECKS)}"
            )


@dataclass
class CheckOutcome:
    """One check on one (scenario, seed)."""

    check: str
    scenario: str
    seed: int
    ok: bool
    summary: str
    mismatches: list[Mismatch] = field(default_factory=list)
    diff: str = ""

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "summary": self.summary,
            "mismatches": [m.to_dict() for m in self.mismatches],
            "diff": self.diff,
        }


@dataclass
class VerifyReport(ReportBase):
    """Everything one `repro verify` run produced."""

    config: VerifyConfig
    outcomes: list[CheckOutcome]

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "format": 1,
            "scenario": self.config.scenario,
            "seeds": list(self.config.seeds),
            "checks": list(self.config.checks),
            "inject_desync": self.config.inject_desync,
            "ok": self.ok,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def to_json(self) -> str:
        """Byte-stable JSON rendering (sorted keys, no volatile fields)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        lines = []
        for o in self.outcomes:
            status = "ok" if o.ok else "FAIL"
            lines.append(f"{status:4s} {o.check:20s} seed {o.seed}: {o.summary}")
            for m in o.mismatches[:10]:
                lines.append(f"       {m.render()}")
            if len(o.mismatches) > 10:
                lines.append(f"       ... {len(o.mismatches) - 10} more")
            if o.diff and not o.ok:
                lines.extend(f"       {d}" for d in o.diff.splitlines()[:40])
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"verify {self.config.scenario} seeds {list(self.config.seeds)}: "
            f"{verdict} ({sum(o.ok for o in self.outcomes)}/"
            f"{len(self.outcomes)} checks ok)"
        )
        return "\n".join(lines)


def _check_oracle(
    scenario: VerifyScenario, seed: int, inject_desync: bool
) -> CheckOutcome:
    result = run_oracle(
        scenario, seed, perturb=desync_index if inject_desync else None
    )
    summary = (
        f"{result.ops} ops, {result.placed} placed, {result.rejected} rejected, "
        f"{len(result.mismatches)} mismatches"
    )
    if inject_desync:
        summary += " (desync injected)"
    return CheckOutcome(
        check="oracle",
        scenario=scenario.name,
        seed=seed,
        ok=result.ok,
        summary=summary,
        mismatches=result.mismatches,
    )


def _check_desync(scenario: VerifyScenario, seed: int) -> CheckOutcome:
    """Self-test: the oracle must catch a deliberately corrupted index."""
    result = run_oracle(scenario, seed, perturb=desync_index)
    detected = not result.ok
    named = any(m.subject and m.field for m in result.mismatches)
    return CheckOutcome(
        check="desync",
        scenario=scenario.name,
        seed=seed,
        ok=detected and named,
        summary=(
            f"injected desync detected: {len(result.mismatches)} structured "
            f"mismatches"
            if detected
            else "injected desync NOT detected — oracle is blind"
        ),
        # The mismatches are the *expected* detection; only report them
        # when the self-test fails (detection missing or unnamed).
        mismatches=[] if detected and named else result.mismatches,
    )


def _check_metamorphic(scenario: VerifyScenario, seed: int) -> CheckOutcome:
    mismatches = run_metamorphic(scenario, seed)
    return CheckOutcome(
        check="metamorphic",
        scenario=scenario.name,
        seed=seed,
        ok=not mismatches,
        summary=f"{len(mismatches)} property violations",
        mismatches=mismatches,
    )


def _twice_diff(render_once) -> tuple[bool, str]:
    first = render_once()
    second = render_once()
    if first == second:
        return True, ""
    diff = "".join(
        difflib.unified_diff(
            first.splitlines(keepends=True),
            second.splitlines(keepends=True),
            fromfile="first-run",
            tofile="second-run",
            n=2,
        )
    )
    return False, diff


def _check_determinism_faults(scenario: VerifyScenario, seed: int) -> CheckOutcome:
    from repro.faults.scenario import run_fault_scenario

    ok, diff = _twice_diff(
        lambda: run_fault_scenario(scenario.fault_scenario(seed)).fault_report.to_json()
    )
    return CheckOutcome(
        check="determinism_faults",
        scenario=scenario.name,
        seed=seed,
        ok=ok,
        summary="fault report byte-identical across two runs"
        if ok
        else "fault report DIFFERS between identical runs",
        diff=diff,
    )


def _check_determinism_chaos(scenario: VerifyScenario, seed: int) -> CheckOutcome:
    from repro.resilience.chaos import chaos_summary_json, run_chaos_scenario

    ok, diff = _twice_diff(
        lambda: chaos_summary_json(run_chaos_scenario(scenario.chaos_scenario(seed)))
    )
    return CheckOutcome(
        check="determinism_chaos",
        scenario=scenario.name,
        seed=seed,
        ok=ok,
        summary="chaos summary byte-identical across two runs"
        if ok
        else "chaos summary DIFFERS between identical runs",
        diff=diff,
    )


def _check_scrape_path(scenario: VerifyScenario, seed: int) -> CheckOutcome:
    """Columnar and legacy scrape paths must be observationally identical.

    The seeded fault scenario (stretched to two days so fault windows,
    DRS rounds, and stale scrapes all occur) is run once per path and
    rendered to one canonical document covering everything downstream
    consumers can observe: final placements, lifecycle counters,
    scheduler stats, the fault report, and the telemetry store's
    content fingerprint (every timestamp and value byte of every
    series, in insertion order).
    """
    from dataclasses import replace

    from repro.faults.scenario import run_fault_scenario

    base = replace(scenario.fault_scenario(seed), duration_days=2.0)

    def render(scrape_path: str) -> str:
        result = run_fault_scenario(replace(base, scrape_path=scrape_path))
        doc = {
            "placements": {
                vm_id: vm.node_id for vm_id, vm in sorted(result.vms.items())
            },
            "created": result.created,
            "deleted": result.deleted,
            "rejected": result.rejected,
            "resized": result.resized,
            "drs_migrations": result.drs_migrations,
            "events_processed": result.events_processed,
            "scheduler_stats": dict(result.scheduler_stats),
            "samples": result.store.sample_count(),
            "store_fingerprint": result.store.content_fingerprint(),
            "fault_report": json.loads(result.fault_report.to_json()),
        }
        return json.dumps(doc, indent=2, sort_keys=True)

    columnar = render("columnar")
    legacy = render("legacy")
    ok = columnar == legacy
    diff = ""
    if not ok:
        diff = "".join(
            difflib.unified_diff(
                legacy.splitlines(keepends=True),
                columnar.splitlines(keepends=True),
                fromfile="legacy",
                tofile="columnar",
                n=2,
            )
        )
    return CheckOutcome(
        check="scrape_path",
        scenario=scenario.name,
        seed=seed,
        ok=ok,
        summary=(
            "columnar == legacy: placements, counters, fault report, "
            "store fingerprint byte-identical over 2 days"
            if ok
            else "columnar scrape path DIVERGES from legacy"
        ),
        diff=diff,
    )


def _check_sweep(scenario: VerifyScenario, seed: int) -> CheckOutcome:
    """The sweep engine's order-independence contract, held by comparison.

    A micro-grid is executed three ways — sequentially in-process, and
    through the multiprocess engine at one and at two workers — and all
    three canonical renderings must be byte-identical.  Any divergence
    means shard isolation (worker count, scheduling order, process
    state) leaked into the merged report.
    """
    from repro.reporting import canonical_bytes
    from repro.sweep import grid_from_dict, run_sweep, run_sweep_inline

    grid = grid_from_dict(
        {
            "base": {
                "duration_days": 0.05,
                "building_blocks": 2,
                "nodes_per_bb": 2,
                "initial_vms": 8,
                "arrival_rate_per_hour": 4.0,
            },
            "seeds": [seed, seed + 1],
            "axes": {"arrival_rate_per_hour": [4.0, 8.0]},
        }
    )
    inline = canonical_bytes(run_sweep_inline(grid)).decode("utf-8")
    one_worker, _ = run_sweep(grid, workers=1)
    two_workers, _ = run_sweep(grid, workers=2)
    variants = {
        "workers-1": canonical_bytes(one_worker).decode("utf-8"),
        "workers-2": canonical_bytes(two_workers).decode("utf-8"),
    }
    diff = ""
    for name, rendered in variants.items():
        if rendered != inline:
            diff = "".join(
                difflib.unified_diff(
                    inline.splitlines(keepends=True),
                    rendered.splitlines(keepends=True),
                    fromfile="sequential",
                    tofile=name,
                    n=2,
                )
            )
            break
    ok = not diff
    return CheckOutcome(
        check="sweep",
        scenario=scenario.name,
        seed=seed,
        ok=ok,
        summary=(
            f"{len(grid.cells)}-cell grid byte-identical: sequential == "
            "1 worker == 2 workers"
            if ok
            else "sweep report DIFFERS across worker counts"
        ),
        diff=diff,
    )


def _check_goldens(
    scenario: VerifyScenario, seed: int, goldens_dir: str | None, update: bool
) -> CheckOutcome:
    directory = Path(goldens_dir) if goldens_dir else None
    if update:
        path = update_golden(scenario, seed, directory)
        return CheckOutcome(
            check="goldens",
            scenario=scenario.name,
            seed=seed,
            ok=True,
            summary=f"golden regenerated: {path}",
        )
    result = check_golden(scenario, seed, directory)
    return CheckOutcome(
        check="goldens",
        scenario=scenario.name,
        seed=seed,
        ok=result.ok,
        summary=f"golden {result.status}: {result.path}",
        diff=result.diff,
    )


def _check_iofaults(scenario: VerifyScenario, seed: int) -> CheckOutcome:
    """The storage layer's durability contract, held by torture.

    A small seeded battery (always the tiny workload — the contract is
    about the storage layer, not scenario scale) of IO-fault × crash
    schedules against every persistent artifact; any torn artifact,
    lost-but-acked state, or unstructured error fails the check.
    """
    from repro.iofaults.torture import TortureConfig, run_torture

    report = run_torture(
        TortureConfig(scenario="tiny", seeds=(seed,), schedules=10)
    )
    failed = [case for case in report.cases if not case.ok]
    fired = sum(1 for case in report.cases if case.fired)
    return CheckOutcome(
        check="iofaults",
        scenario=scenario.name,
        seed=seed,
        ok=report.ok,
        summary=(
            f"{len(report.cases)} fault schedules ({fired} fired): "
            "byte-identical recovery or structured IoFaultError"
            if report.ok
            else f"{len(failed)} schedules violated the durability "
            f"contract (first: {failed[0].artifact} #{failed[0].index} "
            f"{failed[0].outcome})"
        ),
    )


def run_verify(config: VerifyConfig, progress=None) -> VerifyReport:
    """Run every selected check for every seed; never raises on divergence.

    ``progress`` (a callable taking one string) is told which check is
    about to run — the CLI uses it to report where an interrupted run
    got to.
    """
    scenario = get_scenario(config.scenario)
    outcomes: list[CheckOutcome] = []
    for seed in config.seeds:
        for check in config.checks:
            if progress is not None:
                progress(f"{check} (seed {seed})")
            if check == "oracle":
                outcomes.append(
                    _check_oracle(scenario, seed, config.inject_desync)
                )
            elif check == "desync":
                outcomes.append(_check_desync(scenario, seed))
            elif check == "metamorphic":
                outcomes.append(_check_metamorphic(scenario, seed))
            elif check == "determinism_faults":
                outcomes.append(_check_determinism_faults(scenario, seed))
            elif check == "determinism_chaos":
                if not scenario.include_chaos:
                    continue
                outcomes.append(_check_determinism_chaos(scenario, seed))
            elif check == "scrape_path":
                outcomes.append(_check_scrape_path(scenario, seed))
            elif check == "sweep":
                outcomes.append(_check_sweep(scenario, seed))
            elif check == "goldens":
                outcomes.append(
                    _check_goldens(
                        scenario,
                        seed,
                        config.goldens_dir,
                        config.update_goldens,
                    )
                )
            elif check == "iofaults":
                outcomes.append(_check_iofaults(scenario, seed))
    return VerifyReport(config=config, outcomes=outcomes)
