"""Differential verification harness (see DESIGN.md "Verification model").

Four layers, unified behind ``repro verify``:

* :mod:`repro.verify.oracle` — differential scheduler oracle (naive vs
  indexed vs scalar-weigher replays of one pre-drawn workload);
* :mod:`repro.verify.metamorphic` — metamorphic properties for the
  telemetry store and the scheduler;
* :mod:`repro.verify.goldens` — golden-trace regression store under
  ``tests/goldens/`` with an ``--update-goldens`` flow;
* :mod:`repro.verify.runner` — the check registry and JSON report the
  CLI and CI consume.
"""

from repro.verify.oracle import Mismatch, OracleResult, desync_index, run_oracle
from repro.verify.runner import VerifyConfig, run_verify
from repro.verify.scenarios import SCENARIOS, VerifyScenario, get_scenario

__all__ = [
    "Mismatch",
    "OracleResult",
    "SCENARIOS",
    "VerifyConfig",
    "VerifyScenario",
    "desync_index",
    "get_scenario",
    "run_oracle",
    "run_verify",
]
