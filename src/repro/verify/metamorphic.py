"""Metamorphic properties for the telemetry store and the scheduler.

Differential oracles need a second implementation; metamorphic checks
need only a *relation*: transform the input in a way whose effect on the
output is known exactly, run the real code on both, and compare.  Each
check here returns a list of :class:`~repro.verify.oracle.Mismatch`
(empty means the property held), so the runner and CLI can report every
violation with the series / VM / field it concerns.

Telemetry relations (all seeded, no wall clock):

* **block-split invariance** — ingesting one exporter window as a single
  ``SampleBlock`` or as any partition of it must yield identical
  ``query_range`` results for every probe window;
* **downsample idempotence** — downsampling the mean-reconstruction of a
  downsampled series changes nothing: same window starts, same means
  (stale-only windows stay NaN, never laundered into numbers);
* **staleness monotonicity** — appending staleness markers never changes
  the observed sub-series, monotonically grows ``stale_count``, and
  instant queries at a marker report "unknown", not a stale value.

Scheduler relations (replayed through the oracle's RNG-free harness):

* **host-permutation invariance** — reversing building-block / DC
  registration order moves no placement (tie-breaks are by host id, so
  iteration order must not leak into decisions);
* **capacity-growth monotonicity** — adding one node to every building
  block must not shrink the *number* of admitted VMs.  Deliberately the
  count, not the per-VM set: online greedy placement has sequence
  effects, so under saturation an individual VM can legitimately be
  admitted in the base region and rejected in the grown one (a larger
  earlier VM now fits and takes its room) — the set-superset form fails
  on real seeds while the count form held across 100 seeds of the
  saturated ``dense`` scenario.
"""

from __future__ import annotations

import numpy as np

from repro.scheduler.config import SchedulerConfig
from repro.telemetry.query import instant, query_range
from repro.telemetry.store import MetricStore, SampleBlock
from repro.telemetry.timeseries import STALE, TimeSeries
from repro.verify.oracle import Mismatch, replay_workload, workload_ops
from repro.verify.scenarios import VerifyScenario

_METRIC = "verify_metamorphic_metric"


# -- seeded synthetic series -----------------------------------------------------


def _synthetic_series(seed: int, n_series: int = 4) -> list[tuple[dict, np.ndarray, np.ndarray]]:
    """Irregular seeded series with NaN (stale) runs and dead gaps."""
    rng = np.random.default_rng(seed)
    out = []
    for s in range(n_series):
        n = int(rng.integers(40, 160))
        # Irregular scrape cadence with occasional long gaps.
        deltas = rng.exponential(30.0, size=n)
        deltas[rng.random(n) < 0.05] += 1800.0
        ts = np.cumsum(deltas) + 1000.0 * s
        vs = rng.normal(50.0, 15.0, size=n)
        # Stale runs: a few contiguous stretches of markers.
        for _ in range(int(rng.integers(0, 3))):
            start = int(rng.integers(0, max(1, n - 5)))
            vs[start : start + int(rng.integers(1, 5))] = STALE
        out.append(({"series": f"s{s}"}, ts.astype(float), vs.astype(float)))
    return out


def _series_equal(a: TimeSeries, b: TimeSeries) -> bool:
    return np.array_equal(a.timestamps, b.timestamps) and np.array_equal(
        a.values, b.values, equal_nan=True
    )


def check_block_split_invariance(seed: int) -> list[Mismatch]:
    """query_range must not see how samples were batched at ingest."""
    rng = np.random.default_rng(seed + 1)
    whole = MetricStore()
    split = MetricStore()
    mismatches: list[Mismatch] = []
    for labels, ts, vs in _synthetic_series(seed):
        whole.ingest_blocks([SampleBlock(_METRIC, tuple(sorted(labels.items())), ts, vs)])
        # Partition the window at random cut points (empty parts allowed).
        cuts = np.sort(rng.integers(0, len(ts) + 1, size=int(rng.integers(1, 5))))
        blocks = []
        prev = 0
        for cut in [*cuts.tolist(), len(ts)]:
            blocks.append(
                SampleBlock(
                    _METRIC,
                    tuple(sorted(labels.items())),
                    ts[prev:cut],
                    vs[prev:cut],
                )
            )
            prev = cut
        split.ingest_blocks(blocks)
        lo, hi = float(ts[0]), float(ts[-1])
        probes = [
            (lo, hi + 1.0),
            (lo + (hi - lo) * 0.25, lo + (hi - lo) * 0.75),
            (hi + 10.0, hi + 20.0),  # empty window
        ]
        for start, end in probes:
            got_whole = query_range(whole, _METRIC, labels, start, end)
            got_split = query_range(split, _METRIC, labels, start, end)
            if not _series_equal(got_whole, got_split):
                mismatches.append(
                    Mismatch(
                        check="metamorphic/block_split",
                        variant="whole-vs-split",
                        subject=labels["series"],
                        field=f"query_range[{start:.1f},{end:.1f})",
                        expected=len(got_whole),
                        actual=len(got_split),
                    )
                )
    return mismatches


def check_downsample_idempotence(seed: int, window: float = 300.0) -> list[Mismatch]:
    """Downsampling a mean-reconstruction is a fixed point (starts+means)."""
    from repro.telemetry.downsample import downsample, reconstruct

    mismatches: list[Mismatch] = []
    for labels, ts, vs in _synthetic_series(seed + 2):
        series = TimeSeries(ts, vs)
        once = downsample(series, window)
        again = downsample(reconstruct(once, "mean"), window)
        subject = labels["series"]
        if len(once) != len(again):
            mismatches.append(
                Mismatch(
                    check="metamorphic/downsample_idempotence",
                    variant="once-vs-twice",
                    subject=subject,
                    field="chunks",
                    expected=len(once),
                    actual=len(again),
                )
            )
            continue
        for a, b in zip(once, again):
            if a.start != b.start:
                mismatches.append(
                    Mismatch(
                        check="metamorphic/downsample_idempotence",
                        variant="once-vs-twice",
                        subject=subject,
                        field="start",
                        expected=a.start,
                        actual=b.start,
                    )
                )
            same_mean = (a.mean == b.mean) or (
                np.isnan(a.mean) and np.isnan(b.mean)
            )
            if not same_mean:
                mismatches.append(
                    Mismatch(
                        check="metamorphic/downsample_idempotence",
                        variant="once-vs-twice",
                        subject=subject,
                        field=f"mean@{a.start:.0f}",
                        expected=a.mean,
                        actual=b.mean,
                    )
                )
    return mismatches


def check_staleness_monotonicity(seed: int) -> list[Mismatch]:
    """Markers accumulate monotonically and never leak into observations."""
    mismatches: list[Mismatch] = []
    for labels, ts, vs in _synthetic_series(seed + 3, n_series=2):
        store = MetricStore()
        store.ingest_blocks(
            [SampleBlock(_METRIC, tuple(sorted(labels.items())), ts, vs)]
        )
        subject = labels["series"]
        baseline = store.query(_METRIC, labels).present()
        last_stale = store.query(_METRIC, labels).stale_count
        t = float(ts[-1])
        for k in range(4):
            t += 60.0
            store.append_stale(_METRIC, labels, t)
            series = store.query(_METRIC, labels)
            if series.stale_count != last_stale + 1:
                mismatches.append(
                    Mismatch(
                        check="metamorphic/staleness",
                        variant="append_stale",
                        subject=subject,
                        field=f"stale_count@{k}",
                        expected=last_stale + 1,
                        actual=series.stale_count,
                    )
                )
            last_stale = series.stale_count
            if not _series_equal(series.present(), baseline):
                mismatches.append(
                    Mismatch(
                        check="metamorphic/staleness",
                        variant="append_stale",
                        subject=subject,
                        field=f"present@{k}",
                        expected=len(baseline),
                        actual=len(series.present()),
                    )
                )
            if instant(store, _METRIC, labels, t) is not None:
                mismatches.append(
                    Mismatch(
                        check="metamorphic/staleness",
                        variant="append_stale",
                        subject=subject,
                        field=f"instant@{t:.0f}",
                        expected=None,
                        actual=instant(store, _METRIC, labels, t),
                    )
                )
    return mismatches


# -- scheduler relations ---------------------------------------------------------

_INDEXED = SchedulerConfig(use_index=True, track_filter_counts=False)


def check_host_permutation_invariance(
    scenario: VerifyScenario, seed: int
) -> list[Mismatch]:
    """Registration order must not leak into placements or scores."""
    ops = workload_ops(scenario, seed)
    base = replay_workload(scenario.topology(), ops, _INDEXED, variant="base-order")
    perm = replay_workload(
        scenario.permuted_topology(), ops, _INDEXED, variant="permuted-order"
    )
    mismatches: list[Mismatch] = []
    for vm_id in sorted(set(base.placements) | set(perm.placements)):
        want = base.placements.get(vm_id)
        got = perm.placements.get(vm_id)
        if want != got:
            mismatches.append(
                Mismatch(
                    check="metamorphic/host_permutation",
                    variant="base-vs-permuted",
                    subject=vm_id,
                    field="host",
                    expected=want,
                    actual=got,
                )
            )
    for base_row, perm_row in zip(base.trace, perm.trace):
        if base_row[2] != perm_row[2]:
            mismatches.append(
                Mismatch(
                    check="metamorphic/host_permutation",
                    variant="base-vs-permuted",
                    subject=base_row[0],
                    field="score",
                    expected=base_row[2],
                    actual=perm_row[2],
                )
            )
    return mismatches


def check_capacity_monotonicity(
    scenario: VerifyScenario, seed: int
) -> list[Mismatch]:
    """Growing every building block never shrinks the admitted count.

    The per-VM superset form is *not* a valid relation for online greedy
    placement (sequence effects under saturation), so only the count is
    asserted — see the module docstring.
    """
    ops = workload_ops(scenario, seed)
    base = replay_workload(scenario.topology(), ops, _INDEXED, variant="base-capacity")
    grown = replay_workload(
        scenario.grown_topology(), ops, _INDEXED, variant="grown-capacity"
    )
    mismatches: list[Mismatch] = []
    base_placed = {vm for vm, host, _, _ in base.trace if host is not None}
    grown_placed = {vm for vm, host, _, _ in grown.trace if host is not None}
    if len(grown_placed) < len(base_placed):
        mismatches.append(
            Mismatch(
                check="metamorphic/capacity_monotonicity",
                variant="base-vs-grown",
                subject="region",
                field="placed_count",
                expected=len(base_placed),
                actual=len(grown_placed),
            )
        )
    return mismatches


def run_metamorphic(scenario: VerifyScenario, seed: int) -> list[Mismatch]:
    """All metamorphic properties for one (scenario, seed)."""
    return (
        check_block_split_invariance(seed)
        + check_downsample_idempotence(seed)
        + check_staleness_monotonicity(seed)
        + check_host_permutation_invariance(scenario, seed)
        + check_capacity_monotonicity(scenario, seed)
    )
