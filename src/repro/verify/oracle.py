"""The differential scheduler oracle.

Runs one pre-drawn, seeded placement workload through independent
implementations that must agree byte-for-byte:

* the **naive reference path** — ``use_index=False``: every request
  rebuilds every ``HostState`` from scratch and the full per-filter
  trace runs (the slow path PR 2 preserved exactly for this purpose);
* the **indexed fast path** — ``use_index=True`` with the trace off:
  incremental :class:`~repro.scheduler.index.HostStateIndex`, free-vCPU
  bucket pre-selection, cost-ordered short-circuiting filters;
* the **scalar-weigher variant** — the fast path with every weigher's
  batch ``raw_weights`` forced back through the per-host ``raw_weight``
  loop, pinning the batch/scalar equivalence.

After the replays the oracle diffs placements, per-request traces,
scheduler/placement counters, and the final placement inventory
field-by-field, and additionally checks every cached index state against
a from-scratch rebuild (``HostState.diff_fields``).  Any disagreement
becomes a structured :class:`Mismatch` naming the check, the subject
(VM or host), and the field — never a bare boolean.

The replay itself is RNG-free: the workload is drawn up front by
:func:`workload_ops`, so a mid-run perturbation (e.g. the deliberate
index-desync used by tests and ``repro verify --inject-desync``) cannot
shift the request stream between paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.population import FLAVOR_MIX
from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.hierarchy import BuildingBlock, ComputeNode, Region
from repro.infrastructure.topology import TopologySpec, build_region
from repro.infrastructure.vm import VM, VMState
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.hoststate import HostState
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import PlacementService
from repro.scheduler.request import RequestSpec
from repro.scheduler.weighers import Weigher
from repro.verify.scenarios import VerifyScenario

#: Tenant pool the workload draws from (exercises TenantIsolationFilter
#: bookkeeping and the HostState ``tenants`` field).
_TENANTS = ("t-alpha", "t-beta", "t-gamma", "t-delta")


@dataclass(frozen=True)
class Mismatch:
    """One structured disagreement between two implementations.

    ``check`` names the comparison ("placements", "trace", "stats",
    "inventory", "index_state"), ``variant`` the implementation pair,
    ``subject`` the VM or host the disagreement is about, and ``f``/
    ``expected``/``actual`` pin the exact field and values.
    """

    check: str
    variant: str
    subject: str
    field: str
    expected: object
    actual: object

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "variant": self.variant,
            "subject": self.subject,
            "field": self.field,
            "expected": _jsonable(self.expected),
            "actual": _jsonable(self.actual),
        }

    def render(self) -> str:
        return (
            f"[{self.check}/{self.variant}] {self.subject}.{self.field}: "
            f"expected {self.expected!r}, got {self.actual!r}"
        )


def _jsonable(value: object) -> object:
    if isinstance(value, frozenset):
        return sorted(value)
    if isinstance(value, float):
        return round(value, 9)
    return value


@dataclass(frozen=True)
class WorkloadOp:
    """One pre-drawn workload step: a VM create or delete."""

    op: str  # "create" | "delete"
    vm_id: str
    flavor_name: str = ""
    tenant: str = ""


def workload_ops(scenario: VerifyScenario, seed: int) -> list[WorkloadOp]:
    """Draw the scenario's full op schedule up front (pure data).

    Creates follow the paper-calibrated ``FLAVOR_MIX``; one random
    earlier VM is deleted after every ``delete_every`` creates, so
    release paths and incremental index updates are part of every
    differential run.
    """
    rng = np.random.default_rng(seed)
    catalog = default_catalog()
    names = [n for n, w in FLAVOR_MIX if w > 0 and n in catalog]
    weights = np.asarray(
        [w for n, w in FLAVOR_MIX if w > 0 and n in catalog], dtype=float
    )
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=scenario.requests, p=weights)
    tenant_picks = rng.integers(0, len(_TENANTS), size=scenario.requests)
    ops: list[WorkloadOp] = []
    live: list[str] = []
    for i, pick in enumerate(picks):
        vm_id = f"vf-{seed}-{i:05d}"
        ops.append(
            WorkloadOp(
                op="create",
                vm_id=vm_id,
                flavor_name=names[int(pick)],
                tenant=_TENANTS[int(tenant_picks[i])],
            )
        )
        live.append(vm_id)
        if (
            scenario.delete_every
            and (i + 1) % scenario.delete_every == 0
            and live
        ):
            victim = live.pop(int(rng.integers(0, len(live))))
            ops.append(WorkloadOp(op="delete", vm_id=victim))
    return ops


class _ScalarizedWeigher(Weigher):
    """Forces a weigher's batch path back through per-host dispatch."""

    def __init__(self, base: Weigher) -> None:
        super().__init__(base.multiplier)
        self.name = base.name
        self._base = base

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        return self._base.raw_weight(host, spec)

    # raw_weights deliberately NOT overridden: the abstract base class's
    # per-host loop is exactly the scalar path under test.


class _ScalarWeighScheduler(FilterScheduler):
    """FilterScheduler whose every weigher runs in scalar mode."""

    def _weighers_for(self, spec: RequestSpec):
        return [_ScalarizedWeigher(w) for w in super()._weighers_for(spec)]


@dataclass
class ReplayOutcome:
    """Everything one replay exposes for differential comparison."""

    variant: str
    #: Final residency: vm_id -> building block (deleted VMs absent).
    placements: dict[str, str]
    #: Per-create decision: (vm_id, host or None, rounded score, attempts).
    trace: list[tuple[str, str | None, float, int]]
    scheduler_stats: dict[str, int]
    placement_stats: dict[str, int]
    #: bb_id -> {field: value} snapshot of the final placement inventory.
    inventory: dict[str, dict[str, float | int]]
    #: Index-vs-truth disagreements (empty when the index is disabled).
    index_mismatches: list[Mismatch] = field(default_factory=list)


def desync_index(
    region: Region, placement: PlacementService, touched: frozenset[str]
) -> bool:
    """Deliberately desync the scheduler cache: ghost-write VM registries.

    Replaces every node ``vms`` dict of the first building block with a
    copy that gains a ghost VM, through ``object.__setattr__`` so the
    ``NODE_MUTATION_EPOCH`` bump the setter hook would perform never
    happens.  This violates the index's documented scan contract (nodes
    mutate their VM dicts in place, never replace them): the fingerprint
    scan keeps counting the orphaned dicts, so the ghosts — and every
    later placement onto the block — stay invisible to the incremental
    path, while the naive rebuild path sees the true registries on every
    request.  Exactly the class of bug (mutation outside the tracked
    paths, no epoch bump) the oracle exists to catch.

    Defers (returns ``False``) while recent ops touched the target block:
    forking then would freeze registries the index has not yet
    re-fingerprinted, and the pending drift would trigger a from-truth
    rebuild that heals the corruption before it can diverge.
    """
    bb = next(iter(region.iter_building_blocks()))
    if bb.bb_id in touched:
        return False
    catalog = default_catalog()
    flavor = next(catalog.get(n) for n, w in FLAVOR_MIX if w > 0 and n in catalog)
    for k, node in enumerate(bb.nodes.values()):
        ghost = VM(vm_id=f"vf-ghost-{k}", flavor=flavor, tenant="t-ghost")
        ghost.transition(VMState.BUILDING)
        ghost.transition(VMState.ACTIVE)
        forked = dict(node.vms)
        forked[ghost.vm_id] = ghost
        object.__setattr__(node, "vms", forked)
    return True


def replay_workload(
    spec: TopologySpec,
    ops: list[WorkloadOp],
    scheduler_config: SchedulerConfig,
    *,
    variant: str,
    scalar_weighers: bool = False,
    perturb=None,
    perturb_after: int = 0,
) -> ReplayOutcome:
    """Replay ``ops`` through a fresh region + scheduler; snapshot the end.

    ``perturb`` (called with ``(region, placement, touched)`` after every
    op from index ``perturb_after`` until it returns ``True``) lets
    callers inject corruption mid-run; ``touched`` is the set of building
    blocks whose node registries mutated since the last scheduler refresh,
    so a perturbation can defer until its target is quiescent.  Both
    differential paths replay identical ops and placements up to the
    injection point, hence apply the same perturbation at the same
    position.
    """
    region = build_region(spec)
    placement = PlacementService()
    for bb in region.iter_building_blocks():
        placement.register_building_block(bb)
    scheduler_cls = _ScalarWeighScheduler if scalar_weighers else FilterScheduler
    scheduler = scheduler_cls(region, placement, scheduler_config)
    catalog = default_catalog()
    bb_index = {bb.bb_id: bb for bb in region.iter_building_blocks()}
    node_of: dict[str, ComputeNode] = {}
    trace: list[tuple[str, str | None, float, int]] = []
    placements: dict[str, str] = {}
    perturbed = perturb is None
    #: Building blocks whose node registries mutated since the last
    #: scheduler refresh (schedule() refreshes the index on entry).
    touched: set[str] = set()

    for i, op in enumerate(ops):
        if op.op == "create":
            spec_req = RequestSpec(
                vm_id=op.vm_id,
                flavor=catalog.get(op.flavor_name),
                tenant=op.tenant,
            )
            touched.clear()
            try:
                result = scheduler.schedule(spec_req)
            except NoValidHost:
                trace.append((op.vm_id, None, 0.0, 0))
            else:
                bb = bb_index[result.host_id]
                node = _pick_node(bb, spec_req)
                if node is None:
                    # BB-level room but no single node fits: release, as
                    # the simulation runner does.
                    placement.release(op.vm_id)
                    trace.append((op.vm_id, None, 0.0, result.attempts))
                else:
                    vm = VM(
                        vm_id=op.vm_id,
                        flavor=spec_req.flavor,
                        tenant=op.tenant,
                    )
                    vm.transition(VMState.BUILDING)
                    vm.transition(VMState.ACTIVE)
                    node.add_vm(vm)
                    touched.add(result.host_id)
                    node_of[op.vm_id] = node
                    placements[op.vm_id] = result.host_id
                    trace.append(
                        (
                            op.vm_id,
                            result.host_id,
                            round(result.score, 9),
                            result.attempts,
                        )
                    )
        else:
            node = node_of.pop(op.vm_id, None)
            if node is None:
                continue  # the create was rejected on this path
            node.remove_vm(op.vm_id)
            placement.release(op.vm_id)
            bb_id = placements.pop(op.vm_id, None)
            if bb_id is not None:
                touched.add(bb_id)
        if not perturbed and i >= perturb_after:
            perturbed = bool(perturb(region, placement, frozenset(touched)))

    index_mismatches: list[Mismatch] = []
    if scheduler.index is not None:
        scheduler.index.refresh()
        for state in scheduler.index.states():
            truth = HostState.from_building_block(
                bb_index[state.host_id], placement
            )
            for name, actual, expected in state.diff_fields(truth):
                index_mismatches.append(
                    Mismatch(
                        check="index_state",
                        variant=variant,
                        subject=state.host_id,
                        field=name,
                        expected=expected,
                        actual=actual,
                    )
                )
    return ReplayOutcome(
        variant=variant,
        placements=placements,
        trace=trace,
        scheduler_stats=scheduler.stats_snapshot(),
        placement_stats={k: int(v) for k, v in placement.stats().items()},
        inventory=_inventory_snapshot(placement, bb_index),
        index_mismatches=index_mismatches,
    )


def _pick_node(bb: BuildingBlock, spec: RequestSpec) -> ComputeNode | None:
    """Policy-aware node choice, mirroring the simulation runner."""
    fitting = [
        n
        for n in bb.iter_nodes()
        if n.healthy and spec.requested().fits_within(n.free(bb.overcommit))
    ]
    if not fitting:
        return None
    if bb.policy == "pack":
        return max(
            fitting,
            key=lambda n: (
                n.allocated().memory_mb / n.physical.memory_mb,
                n.node_id,
            ),
        )
    return min(
        fitting, key=lambda n: (n.allocated().vcpus / n.physical.vcpus, n.node_id)
    )


#: Public aliases: the recovery layer replays the same workload through
#: the same node-choice policy and inventory snapshot as the oracle, so
#: a recovered run is comparable field-by-field with an oracle replay.
def pick_node(bb: BuildingBlock, spec: RequestSpec) -> ComputeNode | None:
    return _pick_node(bb, spec)


def inventory_snapshot(
    placement: PlacementService, bb_index: dict[str, BuildingBlock]
) -> dict[str, dict[str, float | int]]:
    return _inventory_snapshot(placement, bb_index)


def _inventory_snapshot(
    placement: PlacementService, bb_index: dict[str, BuildingBlock]
) -> dict[str, dict[str, float | int]]:
    from repro.scheduler.placement import DISK_GB, MEMORY_MB, VCPU

    out: dict[str, dict[str, float | int]] = {}
    for bb_id in sorted(bb_index):
        provider = placement.provider(bb_id)
        out[bb_id] = {
            "free_vcpus": round(provider.free(VCPU), 6),
            "free_ram_mb": round(provider.free(MEMORY_MB), 6),
            "free_disk_gb": round(provider.free(DISK_GB), 6),
            "capacity_vcpus": round(provider.capacity(VCPU), 6),
            "allocations": len(placement.allocations_on(bb_id)),
            "resident_vms": bb_index[bb_id].vm_count,
        }
    return out


def diff_outcomes(
    reference: ReplayOutcome, candidate: ReplayOutcome
) -> list[Mismatch]:
    """Field-by-field comparison of two replays of the same ops."""
    variant = f"{reference.variant}-vs-{candidate.variant}"
    mismatches: list[Mismatch] = []

    for vm_id in sorted(set(reference.placements) | set(candidate.placements)):
        want = reference.placements.get(vm_id)
        got = candidate.placements.get(vm_id)
        if want != got:
            mismatches.append(
                Mismatch("placements", variant, vm_id, "host", want, got)
            )

    for ref_row, cand_row in zip(reference.trace, candidate.trace):
        vm_id = ref_row[0]
        for name, want, got in zip(
            ("host", "score", "attempts"), ref_row[1:], cand_row[1:]
        ):
            if want != got:
                mismatches.append(
                    Mismatch("trace", variant, vm_id, name, want, got)
                )

    for scope, ref_stats, cand_stats in (
        ("scheduler", reference.scheduler_stats, candidate.scheduler_stats),
        ("placement", reference.placement_stats, candidate.placement_stats),
    ):
        for key in sorted(set(ref_stats) | set(cand_stats)):
            want, got = ref_stats.get(key), cand_stats.get(key)
            if want != got:
                mismatches.append(
                    Mismatch("stats", variant, scope, key, want, got)
                )

    for bb_id in sorted(set(reference.inventory) | set(candidate.inventory)):
        ref_row = reference.inventory.get(bb_id, {})
        cand_row = candidate.inventory.get(bb_id, {})
        for name in sorted(set(ref_row) | set(cand_row)):
            want, got = ref_row.get(name), cand_row.get(name)
            if want != got:
                mismatches.append(
                    Mismatch("inventory", variant, bb_id, name, want, got)
                )
    return mismatches


@dataclass
class OracleResult:
    """Outcome of one differential-oracle run."""

    scenario: str
    seed: int
    ops: int
    placed: int
    rejected: int
    mismatches: list[Mismatch]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ops": self.ops,
            "placed": self.placed,
            "rejected": self.rejected,
            "ok": self.ok,
            "mismatches": [m.to_dict() for m in self.mismatches],
        }

    def render(self) -> str:
        head = (
            f"oracle {self.scenario} seed {self.seed}: {self.ops} ops, "
            f"{self.placed} placed, {self.rejected} rejected — "
            f"{'OK' if self.ok else f'{len(self.mismatches)} MISMATCHES'}"
        )
        return "\n".join([head] + [f"  {m.render()}" for m in self.mismatches])


def run_oracle(
    scenario: VerifyScenario,
    seed: int,
    *,
    perturb=None,
    perturb_after: int | None = None,
) -> OracleResult:
    """Run all three implementations over one workload and diff them."""
    spec = scenario.topology()
    ops = workload_ops(scenario, seed)
    if perturb is not None and perturb_after is None:
        perturb_after = len(ops) // 2
    kwargs = {"perturb": perturb, "perturb_after": perturb_after or 0}
    reference = replay_workload(
        spec,
        ops,
        SchedulerConfig(use_index=False, track_filter_counts=True),
        variant="reference",
        **kwargs,
    )
    indexed = replay_workload(
        spec,
        ops,
        SchedulerConfig(use_index=True, track_filter_counts=False),
        variant="indexed",
        **kwargs,
    )
    scalar = replay_workload(
        spec,
        ops,
        SchedulerConfig(use_index=True, track_filter_counts=False),
        variant="scalar",
        scalar_weighers=True,
        **kwargs,
    )
    mismatches = (
        diff_outcomes(reference, indexed)
        + diff_outcomes(reference, scalar)
        + indexed.index_mismatches
        + scalar.index_mismatches
    )
    placed = sum(1 for _, host, _, _ in reference.trace if host is not None)
    return OracleResult(
        scenario=scenario.name,
        seed=seed,
        ops=len(ops),
        placed=placed,
        rejected=len(reference.trace) - placed,
        mismatches=mismatches,
    )
