"""Named scenarios for the differential verification harness.

A :class:`VerifyScenario` fixes everything a verification check needs to
be reproducible: the region topology, the seeded placement workload the
oracle replays, and the fault / chaos scenario shapes whose reports the
determinism checks hash.  The registry gives the ``repro verify`` CLI a
small matrix — ``tiny`` is the CI smoke size, ``default`` the local
deep check, ``dense`` drives the saturation / NoValidHost paths.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.faults.config import FaultConfig
from repro.infrastructure.capacity import Capacity, OvercommitPolicy
from repro.infrastructure.topology import (
    BuildingBlockSpec,
    DatacenterSpec,
    TopologySpec,
    paper_region_spec,
)


@dataclass(frozen=True)
class VerifyScenario:
    """One named, fully seeded verification workload."""

    name: str
    description: str
    #: Placement workload replayed by the differential oracle.
    requests: int = 80
    #: One VM deletion is interleaved after every ``delete_every`` creates
    #: (exercises release paths and incremental index updates).
    delete_every: int = 5
    #: Paper-shaped region scale; None selects the hand-built mixed
    #: topology below instead.
    region_scale: float | None = None
    #: Hand-built topology knobs (used when ``region_scale`` is None).
    general_bbs: int = 3
    hana_bbs: int = 1
    nodes_per_bb: int = 4
    #: Duration of the fault / chaos determinism runs.
    fault_days: float = 0.2
    chaos_days: float = 0.2
    #: Whether the (more expensive) chaos determinism check runs at all.
    include_chaos: bool = True

    def topology(self) -> TopologySpec:
        """The region spec every check of this scenario starts from."""
        if self.region_scale is not None:
            return paper_region_spec(
                scale=self.region_scale, region_id=f"verify-{self.name}"
            )
        return _mixed_topology(self.name, self.general_bbs, self.hana_bbs,
                               self.nodes_per_bb)

    def grown_topology(self) -> TopologySpec:
        """The same region with one extra node in every building block.

        Input of the capacity-growth metamorphic check: strictly more
        room everywhere, identical shape otherwise.
        """
        return _map_building_blocks(
            self.topology(), lambda bb: replace(bb, node_count=bb.node_count + 1)
        )

    def permuted_topology(self) -> TopologySpec:
        """The same region with building-block and DC order reversed.

        Input of the host-order permutation check: registration order is
        the only difference, so placements must not move.
        """
        spec = self.topology()
        return TopologySpec(
            region_id=spec.region_id,
            datacenters=tuple(
                DatacenterSpec(
                    dc_id=dc.dc_id,
                    az_id=dc.az_id,
                    building_blocks=tuple(reversed(dc.building_blocks)),
                )
                for dc in reversed(spec.datacenters)
            ),
        )

    def fault_scenario(self, seed: int):
        """The seeded fault scenario hashed by the determinism check."""
        from repro.faults.scenario import ScenarioConfig

        return ScenarioConfig(
            building_blocks=2,
            nodes_per_bb=3,
            duration_days=self.fault_days,
            seed=seed,
            arrival_rate_per_hour=8.0,
            initial_vms=40,
            scrape_interval_s=1800.0,
            faults=FaultConfig(
                seed=seed,
                host_failure_rate_per_day=18.0,
                repair_time_mean_s=2 * 3600.0,
                migration_abort_fraction=0.25,
                scrape_gap_probability=0.05,
                stale_node_probability=0.04,
                evac_backoff_base_s=15.0,
            ),
        )

    def chaos_scenario(self, seed: int):
        """The seeded chaos scenario hashed by the determinism check."""
        from repro.resilience.chaos import (
            ChaosConfig,
            default_chaos_faults,
            default_chaos_resilience,
        )

        return ChaosConfig(
            duration_days=self.chaos_days,
            seed=seed,
            initial_vms=40,
            faults=default_chaos_faults(seed + 17),
            resilience=default_chaos_resilience(),
        )


def _mixed_topology(
    name: str, general_bbs: int, hana_bbs: int, nodes_per_bb: int
) -> TopologySpec:
    """Two DCs mixing general-purpose (spread) and HANA (pack) blocks.

    Heterogeneous on purpose: aggregate classes, overcommit ratios, and
    policies all differ, so every default filter and both weigher
    policies participate in the differential replay.
    """
    general = tuple(
        BuildingBlockSpec(
            bb_id=f"vf-gp-{i:02d}",
            node_count=nodes_per_bb,
            node_capacity=Capacity(
                vcpus=64, memory_mb=512 * 1024, disk_gb=4096, network_gbps=200
            ),
        )
        for i in range(general_bbs)
    )
    hana = tuple(
        BuildingBlockSpec(
            bb_id=f"vf-hana-{i:02d}",
            node_count=nodes_per_bb,
            node_capacity=Capacity(
                vcpus=224, memory_mb=12288 * 1024, disk_gb=32768,
                network_gbps=200,
            ),
            overcommit=OvercommitPolicy(cpu_ratio=2.0),
            aggregate_class="hana",
            policy="pack",
        )
        for i in range(hana_bbs)
    )
    blocks = general + hana
    half = max(1, len(blocks) // 2)
    return TopologySpec(
        region_id=f"verify-{name}",
        datacenters=(
            DatacenterSpec(dc_id="dc1", az_id="az1", building_blocks=blocks[:half]),
            DatacenterSpec(dc_id="dc2", az_id="az2", building_blocks=blocks[half:]),
        ),
    )


def _map_building_blocks(spec: TopologySpec, fn) -> TopologySpec:
    return TopologySpec(
        region_id=spec.region_id,
        datacenters=tuple(
            DatacenterSpec(
                dc_id=dc.dc_id,
                az_id=dc.az_id,
                building_blocks=tuple(fn(bb) for bb in dc.building_blocks),
            )
            for dc in spec.datacenters
        ),
    )


SCENARIOS: dict[str, VerifyScenario] = {
    scenario.name: scenario
    for scenario in (
        VerifyScenario(
            name="tiny",
            description="CI smoke size: 4 mixed BBs, 60 requests",
            requests=60,
            delete_every=4,
            general_bbs=3,
            hana_bbs=1,
            nodes_per_bb=3,
            fault_days=0.15,
            chaos_days=0.15,
        ),
        VerifyScenario(
            name="default",
            description="paper-shaped region at scale 0.02, 150 requests",
            requests=150,
            delete_every=5,
            region_scale=0.02,
            fault_days=0.25,
            chaos_days=0.25,
        ),
        VerifyScenario(
            name="dense",
            description="small region saturated until NoValidHost fires",
            requests=400,
            delete_every=9,
            general_bbs=2,
            hana_bbs=1,
            nodes_per_bb=2,
            fault_days=0.2,
            include_chaos=False,
        ),
    )
}


def get_scenario(name: str) -> VerifyScenario:
    """Look up a scenario by name; raises ``KeyError`` with the catalogue."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
