"""Golden-trace regression store.

One golden file per (scenario, seed) under ``tests/goldens/``: a
canonical JSON document digesting the scheduler replay (every decision),
the fault run (report + telemetry digest), and the chaos run summary.
``repro verify`` recomputes the document and byte-compares it against
the checked-in file; any drift fails with a unified diff, and
``--update-goldens`` regenerates the files deterministically.

Canonical form: recursively sorted keys, floats rounded to 9 places,
NaN rendered as ``null`` (JSON has no NaN and goldens must be
byte-stable across platforms), trailing newline.  Nothing in the
document depends on wall clock, host name, or filesystem layout.

Storage: goldens are gzip-compressed (``.json.gz``, written with a
zeroed mtime so compression itself is byte-stable) — the documents are
highly repetitive JSON and compress ~20x.  Loading is transparent: a
legacy uncompressed ``.json`` file is still read if no ``.json.gz``
exists, and ``--update-goldens`` always writes the compressed form.
"""

from __future__ import annotations

import difflib
import gzip
import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.iofaults.layer import active_io, atomic_write_bytes
from repro.scheduler.config import SchedulerConfig
from repro.verify.oracle import replay_workload, workload_ops
from repro.verify.scenarios import VerifyScenario

#: Bump when the golden document layout changes; stale goldens then fail
#: with an explicit format mismatch instead of a wall of field diffs.
GOLDEN_FORMAT = 1

_INDEXED = SchedulerConfig(use_index=True, track_filter_counts=False)


def _canon(value):
    """Canonical JSON-ready form: sorted, rounded, NaN-free."""
    if isinstance(value, dict):
        return {str(k): _canon(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, frozenset) or isinstance(value, set):
        return sorted(_canon(v) for v in value)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return None
        return round(value, 9)
    return value


def _telemetry_digest(store) -> dict:
    """Order-independent digest of every series in a metric store."""
    digest: dict[str, dict] = {}
    for metric in store.metrics():
        series_digests = []
        for labels, series in store.select(metric):
            present = series.present()
            series_digests.append(
                {
                    "labels": dict(sorted(labels.items())),
                    "samples": len(series),
                    "stale": series.stale_count,
                    "value_sum": float(present.values.sum()) if len(present) else 0.0,
                    "first_ts": float(series.timestamps[0]) if len(series) else None,
                    "last_ts": float(series.timestamps[-1]) if len(series) else None,
                }
            )
        series_digests.sort(key=lambda d: json.dumps(d["labels"], sort_keys=True))
        digest[metric] = {
            "series": len(series_digests),
            "per_series": series_digests,
        }
    return digest


def golden_document(scenario: VerifyScenario, seed: int) -> dict:
    """Recompute the full golden document for one (scenario, seed)."""
    from repro.faults.scenario import run_fault_scenario
    from repro.resilience.chaos import chaos_summary, run_chaos_scenario

    ops = workload_ops(scenario, seed)
    replay = replay_workload(scenario.topology(), ops, _INDEXED, variant="golden")
    fault_result = run_fault_scenario(scenario.fault_scenario(seed))
    doc = {
        "format": GOLDEN_FORMAT,
        "scenario": scenario.name,
        "seed": seed,
        "schedule": {
            "ops": len(ops),
            "placements": replay.placements,
            "trace": [list(row) for row in replay.trace],
            "scheduler_stats": replay.scheduler_stats,
            "placement_stats": replay.placement_stats,
            "inventory": replay.inventory,
        },
        "faults": {
            "report": fault_result.fault_report.to_dict(),
            "telemetry": _telemetry_digest(fault_result.store),
        },
        "chaos": (
            chaos_summary(run_chaos_scenario(scenario.chaos_scenario(seed)))
            if scenario.include_chaos
            else None
        ),
    }
    return _canon(doc)


def render_document(doc: dict) -> str:
    """Byte-stable rendering of a golden document."""
    return json.dumps(doc, indent=2, sort_keys=True, allow_nan=False) + "\n"


def default_goldens_dir() -> Path:
    """``tests/goldens/`` resolved relative to the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "goldens"


def golden_path(goldens_dir: Path, scenario_name: str, seed: int) -> Path:
    """Canonical (compressed) golden location for one (scenario, seed)."""
    return Path(goldens_dir) / f"{scenario_name}-seed{seed}.json.gz"


def _legacy_path(path: Path) -> Path:
    """The pre-compression location: same name without the ``.gz``."""
    return path.with_suffix("")


def read_golden_text(path: Path) -> str | None:
    """Load a golden's text, transparently handling both storage forms.

    Prefers the compressed file at ``path``; falls back to a legacy
    uncompressed sibling.  Returns None when neither exists.
    """
    io = active_io()
    if path.exists():
        data = io.read_bytes(path, point="golden.read")
        return gzip.decompress(data).decode("utf-8")
    legacy = _legacy_path(path)
    if legacy.exists():
        return io.read_bytes(legacy, point="golden.read").decode("utf-8")
    return None


def write_golden_text(path: Path, text: str) -> None:
    """Store a golden compressed, byte-stably (fixed mtime), atomically.

    Committed through :func:`repro.iofaults.layer.atomic_write_bytes`
    (IO points ``golden.*``) — fsynced temp file, rename, directory
    fsync — so an interrupted ``--update-goldens`` can never leave a
    torn golden.  A leftover legacy ``.json`` sibling is removed so the
    store never holds two divergent copies of the same golden.
    """
    atomic_write_bytes(
        path, gzip.compress(text.encode("utf-8"), mtime=0), points="golden"
    )
    legacy = _legacy_path(path)
    if legacy.exists():
        legacy.unlink()


@dataclass
class GoldenResult:
    """Outcome of one golden comparison."""

    scenario: str
    seed: int
    path: str
    status: str  # "ok" | "missing" | "mismatch"
    diff: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "path": self.path,
            "status": self.status,
            "diff": self.diff,
        }


def check_golden(
    scenario: VerifyScenario, seed: int, goldens_dir: Path | None = None
) -> GoldenResult:
    """Recompute the document and byte-compare against the stored golden."""
    goldens_dir = Path(goldens_dir or default_goldens_dir())
    path = golden_path(goldens_dir, scenario.name, seed)
    got = render_document(golden_document(scenario, seed))
    want = read_golden_text(path)
    if want is None:
        return GoldenResult(
            scenario=scenario.name,
            seed=seed,
            path=str(path),
            status="missing",
            diff=f"golden file {path} does not exist; "
            "run `repro verify --update-goldens` to create it",
        )
    if want == got:
        return GoldenResult(
            scenario=scenario.name, seed=seed, path=str(path), status="ok"
        )
    diff = "".join(
        difflib.unified_diff(
            want.splitlines(keepends=True),
            got.splitlines(keepends=True),
            fromfile=f"golden/{path.name}",
            tofile="recomputed",
            n=3,
        )
    )
    return GoldenResult(
        scenario=scenario.name,
        seed=seed,
        path=str(path),
        status="mismatch",
        diff=diff,
    )


def update_golden(
    scenario: VerifyScenario, seed: int, goldens_dir: Path | None = None
) -> Path:
    """Regenerate one golden file (deterministic: same inputs, same bytes)."""
    goldens_dir = Path(goldens_dir or default_goldens_dir())
    goldens_dir.mkdir(parents=True, exist_ok=True)
    path = golden_path(goldens_dir, scenario.name, seed)
    write_golden_text(path, render_document(golden_document(scenario, seed)))
    return path
