"""The ResilienceReport: how the control plane defended itself.

Mirrors :class:`~repro.faults.report.FaultReport`: one dataclass holding
every counter the resilience services produce, with a deterministic
``to_json`` (sorted keys, rounded floats) so two seeded runs hash
identically — the chaos-smoke CI gate relies on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.reporting import ReportBase


@dataclass(frozen=True)
class InvariantViolation:
    """One machine-checked invariant that did not hold."""

    invariant: str
    subject: str
    detail: str
    time: float

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "subject": self.subject,
            "detail": self.detail,
            "time": round(self.time, 6),
        }


class InvariantViolationError(AssertionError):
    """Raised in fail-fast mode; carries the structured violations."""

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = violations
        lines = [f"{len(violations)} invariant violation(s):"]
        lines += [
            f"  [{v.invariant}] {v.subject}: {v.detail} (t={v.time:.0f})"
            for v in violations[:10]
        ]
        super().__init__("\n".join(lines))


@dataclass
class ResilienceReport(ReportBase):
    """Aggregated outcome of the resilience layer over one run."""

    seed: int = 0
    # -- host health -------------------------------------------------------
    heartbeats: int = 0
    transitions_observed: int = 0
    flaps_detected: int = 0
    quarantines: int = 0
    re_quarantines: int = 0
    readmissions: int = 0
    probations_passed: int = 0
    probation_failures: int = 0
    bb_quarantines: int = 0
    quarantined_nodes: list[str] = field(default_factory=list)
    # -- admission control -------------------------------------------------
    requests_submitted: int = 0
    requests_admitted: int = 0
    shed_rate_limit: int = 0
    shed_breaker: int = 0
    retries_scheduled: int = 0
    deadline_exceeded: int = 0
    breaker_opens: int = 0
    bb_breaker_opens: int = 0
    # -- reconciliation ----------------------------------------------------
    reconcile_runs: int = 0
    reconcile_clean_runs: int = 0
    orphaned_allocations_released: int = 0
    missing_allocations_claimed: int = 0
    mishomed_allocations_moved: int = 0
    capacity_drift_repairs: int = 0
    index_drift_invalidations: int = 0
    unrepairable_drift: int = 0
    # -- invariants --------------------------------------------------------
    invariant_checks: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)

    def record_violation(self, violation: InvariantViolation) -> None:
        self.violations.append(violation)

    @property
    def total_shed(self) -> int:
        return self.shed_rate_limit + self.shed_breaker

    def to_dict(self) -> dict:
        """Deterministic, JSON-ready view of the report."""
        return {
            "seed": self.seed,
            "health": {
                "heartbeats": self.heartbeats,
                "transitions_observed": self.transitions_observed,
                "flaps_detected": self.flaps_detected,
                "quarantines": self.quarantines,
                "re_quarantines": self.re_quarantines,
                "readmissions": self.readmissions,
                "probations_passed": self.probations_passed,
                "probation_failures": self.probation_failures,
                "bb_quarantines": self.bb_quarantines,
                "quarantined_nodes": sorted(set(self.quarantined_nodes)),
            },
            "admission": {
                "requests_submitted": self.requests_submitted,
                "requests_admitted": self.requests_admitted,
                "shed_rate_limit": self.shed_rate_limit,
                "shed_breaker": self.shed_breaker,
                "total_shed": self.total_shed,
                "retries_scheduled": self.retries_scheduled,
                "deadline_exceeded": self.deadline_exceeded,
                "breaker_opens": self.breaker_opens,
                "bb_breaker_opens": self.bb_breaker_opens,
            },
            "reconciler": {
                "runs": self.reconcile_runs,
                "clean_runs": self.reconcile_clean_runs,
                "orphaned_allocations_released": self.orphaned_allocations_released,
                "missing_allocations_claimed": self.missing_allocations_claimed,
                "mishomed_allocations_moved": self.mishomed_allocations_moved,
                "capacity_drift_repairs": self.capacity_drift_repairs,
                "index_drift_invalidations": self.index_drift_invalidations,
                "unrepairable_drift": self.unrepairable_drift,
            },
            "invariants": {
                "checks": self.invariant_checks,
                "violation_count": len(self.violations),
                "violations": [
                    v.to_dict()
                    for v in sorted(
                        self.violations,
                        key=lambda v: (v.time, v.invariant, v.subject),
                    )
                ],
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Byte-stable JSON rendering (sorted keys, rounded floats)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-oriented one-screen summary."""
        lines = [
            "Resilience report",
            f"  health       {self.heartbeats} heartbeats, "
            f"{self.flaps_detected} flaps detected, "
            f"{self.quarantines} quarantines "
            f"({self.re_quarantines} repeat), {self.readmissions} readmissions, "
            f"{self.bb_quarantines} BB quarantines",
            f"  admission    {self.requests_admitted}/{self.requests_submitted} "
            f"admitted, shed {self.shed_rate_limit} (rate) + "
            f"{self.shed_breaker} (breaker), {self.retries_scheduled} retries, "
            f"{self.deadline_exceeded} deadline-expired",
            f"  breakers     {self.breaker_opens} global opens, "
            f"{self.bb_breaker_opens} per-BB opens",
            f"  reconciler   {self.reconcile_runs} runs "
            f"({self.reconcile_clean_runs} clean): "
            f"{self.orphaned_allocations_released} orphans released, "
            f"{self.missing_allocations_claimed} missing claimed, "
            f"{self.mishomed_allocations_moved} mishomed moved, "
            f"{self.capacity_drift_repairs} capacity repairs",
            f"  invariants   {self.invariant_checks} checks, "
            f"{len(self.violations)} violations",
        ]
        for v in sorted(
            self.violations, key=lambda v: (v.time, v.invariant, v.subject)
        )[:10]:
            lines.append(f"    [{v.invariant}] {v.subject}: {v.detail}")
        return "\n".join(lines)
