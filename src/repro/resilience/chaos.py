"""The chaos scenario: correlated failures against a defended control plane.

A two-AZ region runs the full resilience stack (health/quarantine,
admission control, reconciler, invariant checker) while the fault layer
throws everything at it at once: independent host failures, a flapping
host, AZ- and BB-scoped outages, and exporter↔store scrape partitions.
Two AZs are the minimum honest topology — an AZ outage must hurt without
being able to kill the whole region.

The acceptance bar (mirrored by the ``chaos-smoke`` CI job) is that a
seeded run completes with **zero invariant violations** and a
byte-identical :class:`~repro.resilience.report.ResilienceReport` across
repeats.  Kept out of ``repro.resilience.__init__`` because it imports
the simulation runner (which imports the resilience services).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.faults.config import FaultConfig
from repro.infrastructure.topology import (
    BuildingBlockSpec,
    DatacenterSpec,
    TopologySpec,
)
from repro.reporting import ReportBase
from repro.resilience.config import ResilienceConfig
from repro.simulation.runner import (
    RegionSimulation,
    SimulationConfig,
    SimulationResult,
)


def default_chaos_faults(seed: int = 24) -> FaultConfig:
    """The full correlated-fault mix: hosts, a flapper, domains, partitions."""
    return FaultConfig(
        seed=seed,
        host_failure_rate_per_day=2.0,
        repair_time_mean_s=3 * 3600.0,
        migration_abort_fraction=0.15,
        scrape_gap_probability=0.02,
        stale_node_probability=0.02,
        az_outage_rate_per_day=1.5,
        bb_outage_rate_per_day=1.0,
        domain_outage_duration_mean_s=1800.0,
        partition_rate_per_day=1.5,
        partition_duration_mean_s=1800.0,
        partition_scope="bb",
        flapping_hosts=1,
        flapping_period_s=1800.0,
        flapping_cycles=5,
    )


def default_chaos_resilience(seed: int = 101) -> ResilienceConfig:
    """Resilience knobs matched to the chaos mix (admission enabled)."""
    return ResilienceConfig(
        seed=seed,
        heartbeat_interval_s=300.0,
        flap_window_s=2 * 3600.0,
        flap_threshold=4,
        quarantine_base_s=2 * 3600.0,
        admission_rate_per_s=0.05,
        admission_burst=10,
        request_deadline_s=2 * 3600.0,
        reconcile_interval_s=3600.0,
        invariant_interval_s=1800.0,
        fail_fast=True,
    )


@dataclass(frozen=True)
class ChaosConfig:
    """Shape, workload, and fault/resilience mix of the chaos scenario."""

    building_blocks_per_az: int = 2
    nodes_per_bb: int = 4
    duration_days: float = 1.0
    seed: int = 7
    arrival_rate_per_hour: float = 12.0
    initial_vms: int = 80
    scrape_interval_s: float = 900.0
    drs_interval_s: float = 3600.0
    faults: FaultConfig = field(default_factory=default_chaos_faults)
    resilience: ResilienceConfig = field(default_factory=default_chaos_resilience)

    def __post_init__(self) -> None:
        if self.building_blocks_per_az < 1 or self.nodes_per_bb < 1:
            raise ValueError("need at least one building block and node per AZ")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")


def chaos_topology(config: ChaosConfig) -> TopologySpec:
    """Two AZs of uniform general-purpose building blocks."""
    return TopologySpec(
        region_id="chaos-lab",
        datacenters=tuple(
            DatacenterSpec(
                dc_id=f"dc{az}",
                az_id=f"az{az}",
                building_blocks=tuple(
                    BuildingBlockSpec(
                        bb_id=f"az{az}-bb{i}", node_count=config.nodes_per_bb
                    )
                    for i in range(config.building_blocks_per_az)
                ),
            )
            for az in (1, 2)
        ),
    )


def run_chaos_scenario(
    config: ChaosConfig | None = None, journal=None
) -> SimulationResult:
    """Run the chaos scenario once; the result carries both reports.

    ``journal`` (a callable taking one JSON-able dict) receives every
    control-plane audit record — sim-clock advances, placement claims
    and releases, quarantine transitions, admission decisions — in
    event order; ``repro chaos --journal`` plugs a write-ahead
    :class:`~repro.recovery.journal.JournalWriter` in here.
    """
    config = config or ChaosConfig()
    sim = RegionSimulation(
        chaos_topology(config),
        SimulationConfig(
            duration_days=config.duration_days,
            scrape_interval_s=config.scrape_interval_s,
            drs_interval_s=config.drs_interval_s,
            arrival_rate_per_hour=config.arrival_rate_per_hour,
            initial_vms=config.initial_vms,
            seed=config.seed,
            faults=config.faults,
            resilience=config.resilience,
        ),
        journal=journal,
    )
    return sim.run()


def chaos_summary(result: SimulationResult) -> dict:
    """Deterministic JSON-ready digest of one chaos run (hashed by CI)."""
    stats = result.scheduler_stats
    return {
        "fault_report": result.fault_report.to_dict(),
        "resilience_report": result.resilience_report.to_dict(),
        "scheduler_stats": {k: stats[k] for k in sorted(stats)},
        "created": result.created,
        "deleted": result.deleted,
        "rejected": result.rejected,
    }


@dataclass
class ChaosSummary(ReportBase):
    """The chaos digest as a first-class :mod:`repro.reporting` report.

    Wraps one finished run so the chaos CLI's ``--out`` path flows
    through the same byte-stable writer as every other artifact.
    """

    result: SimulationResult

    def to_dict(self) -> dict:
        return chaos_summary(self.result)

    def render(self) -> str:
        return (
            self.result.resilience_report.render()
            + "\n"
            + self.result.fault_report.render()
        )


def chaos_summary_json(result: SimulationResult, indent: int | None = 2) -> str:
    """Byte-stable rendering of :func:`chaos_summary`."""
    return json.dumps(chaos_summary(result), indent=indent, sort_keys=True)
