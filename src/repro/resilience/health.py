"""Host health tracking, flap detection, and quarantine.

The control plane only ever sees a host through its heartbeats.  The
:class:`HostHealthService` samples every node's observed up/down state on
a fixed cadence, logs transitions, and declares a node *flapping* when it
oscillates too often inside the detection window.  Flapping nodes are
**quarantined**: fenced from new placements (``ComputeNode.quarantined``,
which the scheduler's node selection, the QuarantineFilter, and the
``HostStateIndex`` fingerprint all respect) while keeping any resident
VMs — quarantine is a fence, not an eviction.

The quarantine lifecycle is ``HEALTHY → QUARANTINED → PROBATION →
HEALTHY``, with seeded jitter on quarantine durations and exponential
escalation on repeat offenders; a failure observed during probation
re-quarantines immediately.  Once a configured fraction of a building
block's nodes is quarantined the whole block is quarantined too
(blast-radius containment) and the scheduler filter rejects it outright.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.infrastructure.hierarchy import ComputeNode, Region
from repro.resilience.config import ResilienceConfig
from repro.resilience.report import ResilienceReport
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import QUARANTINE_END


class HealthState(enum.Enum):
    """Control-plane health classification of one node."""

    HEALTHY = "healthy"
    QUARANTINED = "quarantined"
    PROBATION = "probation"


@dataclass
class _NodeRecord:
    """Per-node observation history and quarantine bookkeeping."""

    last_observed_down: bool = False
    transitions: deque = field(default_factory=deque)
    state: HealthState = HealthState.HEALTHY
    quarantine_count: int = 0
    probation_until: float = 0.0
    #: Bumped on every quarantine so stale QUARANTINE_END events are inert.
    epoch: int = 0


class HostHealthService:
    """Heartbeat-driven flap detection and quarantine for one region."""

    def __init__(
        self,
        region: Region,
        config: ResilienceConfig,
        report: ResilienceReport,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.region = region
        self.config = config
        self.report = report
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        self._records: dict[str, _NodeRecord] = {}
        self._nodes: list[ComputeNode] = list(region.iter_nodes())
        for node in self._nodes:
            self._records[node.node_id] = _NodeRecord(
                last_observed_down=node.failed
            )
        self._bb_nodes: dict[str, list[ComputeNode]] = {}
        for node in self._nodes:
            self._bb_nodes.setdefault(node.building_block, []).append(node)
        #: Building blocks currently quarantined as a unit; the scheduler's
        #: QuarantineFilter consults this set.
        self.quarantined_bbs: set[str] = set()
        #: Resident-VM snapshot taken at quarantine time, per node — the
        #: invariant checker asserts no additions while quarantined.
        self.quarantine_residents: dict[str, frozenset[str]] = {}
        #: Anything exposing ``invalidate_host(bb_id)`` (the scheduler).
        self.scheduler: Any = None
        #: Optional write-ahead hook: called with a JSON-able record on
        #: every quarantine transition (quarantine / extend / readmit),
        #: before the transition is applied to node state.
        self.journal_sink: Any = None

    # -- wiring ---------------------------------------------------------------

    def attach_scheduler(self, scheduler: Any) -> None:
        """Give the service a scheduler to invalidate on quarantine flips."""
        self.scheduler = scheduler

    @property
    def quarantined_hosts(self) -> frozenset[str]:
        """Quarantined scheduling targets: fenced BBs plus fenced nodes.

        Covers both granularities so the QuarantineFilter works for the
        BB-level FilterScheduler and the node-level holistic scheduler.
        """
        nodes = {
            node_id
            for node_id, rec in self._records.items()
            if rec.state is HealthState.QUARANTINED
        }
        return frozenset(nodes) | frozenset(self.quarantined_bbs)

    def state_of(self, node_id: str) -> HealthState:
        return self._records[node_id].state

    # -- heartbeat loop --------------------------------------------------------

    def on_heartbeat(self, engine: SimulationEngine, now: float) -> None:
        """One heartbeat sweep: observe, log transitions, detect flapping."""
        self.report.heartbeats += 1
        config = self.config
        for node in self._nodes:  # fixed order: part of the replay contract
            rec = self._records[node.node_id]
            observed_down = node.failed
            if observed_down != rec.last_observed_down:
                rec.last_observed_down = observed_down
                rec.transitions.append(now)
                self.report.transitions_observed += 1
                if rec.state is HealthState.PROBATION and observed_down:
                    # Failed again while on probation: straight back in,
                    # with the escalated duration.
                    self.report.probation_failures += 1
                    self._quarantine(engine, node, now)
                    continue
            window_start = now - config.flap_window_s
            while rec.transitions and rec.transitions[0] < window_start:
                rec.transitions.popleft()
            if (
                rec.state is HealthState.HEALTHY
                and len(rec.transitions) >= config.flap_threshold
            ):
                self.report.flaps_detected += 1
                self._quarantine(engine, node, now)
            elif rec.state is HealthState.PROBATION and now >= rec.probation_until:
                rec.state = HealthState.HEALTHY
                rec.quarantine_count = 0
                self.report.probations_passed += 1

    # -- quarantine lifecycle ---------------------------------------------------

    def _quarantine(
        self, engine: SimulationEngine, node: ComputeNode, now: float
    ) -> None:
        rec = self._records[node.node_id]
        if self.journal_sink is not None:
            self.journal_sink(
                {"t": "quarantine", "node": node.node_id, "time": now,
                 "epoch": rec.epoch + 1, "count": rec.quarantine_count + 1}
            )
        if rec.quarantine_count > 0:
            self.report.re_quarantines += 1
        rec.quarantine_count += 1
        rec.state = HealthState.QUARANTINED
        rec.epoch += 1
        rec.transitions.clear()
        node.quarantined = True
        self.quarantine_residents[node.node_id] = frozenset(node.vms)
        self.report.quarantines += 1
        self.report.quarantined_nodes.append(node.node_id)
        duration = min(
            self.config.quarantine_max_s,
            self.config.quarantine_base_s
            * self.config.quarantine_backoff ** (rec.quarantine_count - 1),
        )
        if self.config.quarantine_jitter_s > 0:
            duration += float(self.rng.uniform(0, self.config.quarantine_jitter_s))
        engine.schedule(
            now + duration,
            QUARANTINE_END,
            node_id=node.node_id,
            epoch=rec.epoch,
        )
        self._update_bb_quarantine(node.building_block)

    def on_quarantine_end(
        self, engine: SimulationEngine, node_id: str, epoch: int
    ) -> None:
        """Probation gate: re-admit the node, or extend if it is still down."""
        rec = self._records[node_id]
        if rec.state is not HealthState.QUARANTINED or rec.epoch != epoch:
            return  # stale event from an earlier quarantine
        node = next(n for n in self._nodes if n.node_id == node_id)
        if node.failed:
            # Still hard-down at expiry: keep the fence, probe again later.
            if self.journal_sink is not None:
                self.journal_sink(
                    {"t": "quarantine-extend", "node": node_id,
                     "time": engine.now, "epoch": epoch}
                )
            engine.schedule(
                engine.now + self.config.quarantine_base_s,
                QUARANTINE_END,
                node_id=node_id,
                epoch=epoch,
            )
            return
        if self.journal_sink is not None:
            self.journal_sink(
                {"t": "readmit", "node": node_id, "time": engine.now,
                 "epoch": epoch}
            )
        node.quarantined = False
        self.quarantine_residents.pop(node_id, None)
        rec.state = HealthState.PROBATION
        rec.probation_until = engine.now + self.config.probation_s
        rec.transitions.clear()
        rec.last_observed_down = node.failed
        self.report.readmissions += 1
        self._update_bb_quarantine(node.building_block)

    def _update_bb_quarantine(self, bb_id: str) -> None:
        nodes = self._bb_nodes.get(bb_id, [])
        if not nodes:
            return
        fraction = sum(1 for n in nodes if n.quarantined) / len(nodes)
        was = bb_id in self.quarantined_bbs
        if fraction >= self.config.bb_quarantine_fraction:
            if not was:
                self.quarantined_bbs.add(bb_id)
                self.report.bb_quarantines += 1
        elif was:
            self.quarantined_bbs.discard(bb_id)
        if self.scheduler is not None:
            invalidate = getattr(self.scheduler, "invalidate_host", None)
            if invalidate is not None:
                invalidate(bb_id)

    # -- snapshot / restore -----------------------------------------------------

    def export_state(self) -> dict:
        """JSON-able snapshot of all quarantine/flap bookkeeping."""
        return {
            "records": {
                node_id: {
                    "state": rec.state.value,
                    "last_observed_down": rec.last_observed_down,
                    "transitions": list(rec.transitions),
                    "quarantine_count": rec.quarantine_count,
                    "probation_until": rec.probation_until,
                    "epoch": rec.epoch,
                }
                for node_id, rec in sorted(self._records.items())
            },
            "quarantined_bbs": sorted(self.quarantined_bbs),
            "quarantine_residents": {
                node_id: sorted(vms)
                for node_id, vms in sorted(self.quarantine_residents.items())
            },
        }

    def restore_state(self, state: dict) -> None:
        """Reinstate an :meth:`export_state` snapshot, re-fencing nodes.

        Node ``quarantined`` flags are re-applied to this service's
        region so the scheduler-visible fences match the snapshot.
        """
        for node_id, saved in state["records"].items():
            rec = self._records[node_id]
            rec.state = HealthState(saved["state"])
            rec.last_observed_down = bool(saved["last_observed_down"])
            rec.transitions = deque(float(t) for t in saved["transitions"])
            rec.quarantine_count = int(saved["quarantine_count"])
            rec.probation_until = float(saved["probation_until"])
            rec.epoch = int(saved["epoch"])
        self.quarantined_bbs = set(state["quarantined_bbs"])
        self.quarantine_residents = {
            node_id: frozenset(vms)
            for node_id, vms in state["quarantine_residents"].items()
        }
        for node in self._nodes:
            node.quarantined = (
                self._records[node.node_id].state is HealthState.QUARANTINED
            )
