"""Control-plane resilience: the defences the fault layer is thrown at.

Four services wire into :class:`~repro.simulation.runner.RegionSimulation`
when ``SimulationConfig.resilience`` is set:

- :class:`~repro.resilience.health.HostHealthService` — heartbeat-driven
  flap detection; oscillating nodes are quarantined (fenced from new
  placements, residents kept) with seeded backoff and probation;
- :class:`~repro.resilience.admission.AdmissionController` — a token
  bucket, per-request deadlines, and circuit breakers (global and
  per building block) in front of the scheduler, shedding load with a
  retry-after instead of queueing it unboundedly;
- :class:`~repro.resilience.reconciler.InventoryReconciler` — a periodic
  audit that diffs placement allocations against ground-truth node
  residency and the scheduler's cached index, repairing drift;
- :class:`~repro.resilience.invariants.InvariantChecker` — a recurring
  sweep asserting the properties that must hold at every instant
  (single placement, non-negative capacity, no untracked ERROR VMs,
  quarantine fences respected), failing fast with a structured report.

Everything reports into one deterministic
:class:`~repro.resilience.report.ResilienceReport`; the chaos scenario in
:mod:`repro.resilience.chaos` (imported separately to avoid a cycle with
the runner) is the end-to-end exercise the ``chaos-smoke`` CI job hashes.
"""

from repro.resilience.admission import AdmissionController, AdmissionRejected
from repro.resilience.config import ResilienceConfig
from repro.resilience.health import HealthState, HostHealthService
from repro.resilience.invariants import InvariantChecker
from repro.resilience.reconciler import InventoryReconciler
from repro.resilience.report import (
    InvariantViolation,
    InvariantViolationError,
    ResilienceReport,
)

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "HealthState",
    "HostHealthService",
    "InvariantChecker",
    "InvariantViolation",
    "InvariantViolationError",
    "InventoryReconciler",
    "ResilienceConfig",
    "ResilienceReport",
]
