"""Admission control in front of the scheduler.

Every placement request passes through the :class:`AdmissionController`
before it reaches :class:`~repro.scheduler.pipeline.FilterScheduler`.
Three defences, in order:

1. **Global circuit breaker** — after ``breaker_threshold`` consecutive
   ``NoValidHost`` outcomes the scheduler is presumed saturated and
   requests are shed for a cooldown rather than burning filter cycles.
2. **Token bucket** — a seeded-jitter rate limit; an empty bucket sheds
   the request with a computed ``retry_after`` instead of queueing it.
3. **Per-building-block breakers** — consecutive failed *claims* on one
   block (races, capacity flapping) open a per-block circuit; open blocks
   are added to the request's exclusion set so retries route around them.

Shed requests are never silently dropped: :class:`AdmissionRejected`
carries ``retry_after_s`` and the caller (the simulation runner) either
reschedules the request or counts it deadline-expired.  Load is thereby
bounded without unbounded queues — the reality-check the paper's
operational sections call for.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

import numpy as np

from repro.resilience.config import ResilienceConfig
from repro.resilience.report import ResilienceReport
from repro.scheduler.request import RequestSpec


class AdmissionRejected(Exception):
    """Request shed before scheduling; retry after ``retry_after_s``."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(f"admission rejected ({reason}); "
                         f"retry after {retry_after_s:.1f}s")


class AdmissionController:
    """Token-bucket rate limiting plus circuit breakers for placement."""

    def __init__(
        self,
        scheduler: Any,
        config: ResilienceConfig,
        report: ResilienceReport,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config
        self.report = report
        self.rng = rng if rng is not None else np.random.default_rng(config.seed)
        # Token bucket (rate 0 disables it).
        self._tokens = float(config.admission_burst)
        self._last_refill = 0.0
        # Global breaker state.
        self._novalid_streak = 0
        self._breaker_open_until = 0.0
        # Per-building-block breaker state.
        self._bb_fail_streak: dict[str, int] = {}
        self._bb_open_until: dict[str, float] = {}
        # Sim-clock snapshot, advanced on every submit.  Claim feedback from
        # scheduler calls that bypass admission (evacuation) reuses the last
        # submit time, which is at most one event behind.
        self._now = 0.0
        # Observe claim outcomes from inside the scheduler's retry loop.
        observer = getattr(scheduler, "claim_observer", "absent")
        if observer is None:
            scheduler.claim_observer = self._on_claim
        #: Optional write-ahead hook: called with a JSON-able record on
        #: every admission decision (admit / shed), before the decision
        #: takes effect.
        self.journal_sink: Any = None

    # -- claim feedback ------------------------------------------------------

    def _on_claim(self, host_id: str, ok: bool) -> None:
        if ok:
            self._bb_fail_streak.pop(host_id, None)
            return
        streak = self._bb_fail_streak.get(host_id, 0) + 1
        self._bb_fail_streak[host_id] = streak
        if streak >= self.config.bb_breaker_threshold:
            self._bb_open_until[host_id] = (
                self._now + self.config.bb_breaker_cooldown_s
            )
            self._bb_fail_streak[host_id] = 0
            self.report.bb_breaker_opens += 1

    def open_bb_circuits(self, now: float) -> frozenset[str]:
        """Building blocks currently excluded by an open breaker."""
        return frozenset(
            bb for bb, until in self._bb_open_until.items() if until > now
        )

    # -- token bucket --------------------------------------------------------

    def _refill(self, now: float) -> None:
        rate = self.config.admission_rate_per_s
        if rate <= 0:
            return
        self._tokens = min(
            float(self.config.admission_burst),
            self._tokens + (now - self._last_refill) * rate,
        )
        self._last_refill = now

    def _retry_jitter(self) -> float:
        if self.config.admission_retry_jitter_s <= 0:
            return 0.0
        return float(self.rng.uniform(0, self.config.admission_retry_jitter_s))

    def _journal(self, decision: str, vm_id: str, now: float, *,
                 reason: str | None = None) -> None:
        if self.journal_sink is None:
            return
        record = {"t": "admission", "decision": decision, "vm": vm_id,
                  "time": now}
        if reason is not None:
            record["reason"] = reason
        self.journal_sink(record)

    # -- snapshot / restore --------------------------------------------------

    def export_state(self) -> dict:
        """JSON-able snapshot of bucket, breaker, and streak state."""
        return {
            "tokens": self._tokens,
            "last_refill": self._last_refill,
            "novalid_streak": self._novalid_streak,
            "breaker_open_until": self._breaker_open_until,
            "bb_fail_streak": dict(sorted(self._bb_fail_streak.items())),
            "bb_open_until": dict(sorted(self._bb_open_until.items())),
            "now": self._now,
        }

    def restore_state(self, state: dict) -> None:
        """Reinstate an :meth:`export_state` snapshot."""
        self._tokens = float(state["tokens"])
        self._last_refill = float(state["last_refill"])
        self._novalid_streak = int(state["novalid_streak"])
        self._breaker_open_until = float(state["breaker_open_until"])
        self._bb_fail_streak = {
            bb: int(v) for bb, v in state["bb_fail_streak"].items()
        }
        self._bb_open_until = {
            bb: float(v) for bb, v in state["bb_open_until"].items()
        }
        self._now = float(state["now"])

    # -- the front door ------------------------------------------------------

    def submit(self, spec: RequestSpec, now: float):
        """Admit ``spec`` to the scheduler or shed it with a retry hint.

        Returns whatever ``scheduler.schedule`` returns.  Raises
        :class:`AdmissionRejected` when shed, and re-raises the
        scheduler's own ``NoValidHost`` after updating breaker state.
        """
        self._now = now
        self.report.requests_submitted += 1

        if self._breaker_open_until > now:
            self.report.shed_breaker += 1
            self._journal("shed", spec.vm_id, now, reason="breaker_open")
            raise AdmissionRejected(
                "breaker_open",
                (self._breaker_open_until - now) + self._retry_jitter(),
            )

        if self.config.admission_rate_per_s > 0:
            self._refill(now)
            if self._tokens < 1.0:
                self.report.shed_rate_limit += 1
                self._journal("shed", spec.vm_id, now, reason="rate_limit")
                deficit = (1.0 - self._tokens) / self.config.admission_rate_per_s
                raise AdmissionRejected("rate_limit", deficit + self._retry_jitter())
            self._tokens -= 1.0

        open_bbs = self.open_bb_circuits(now) - spec.excluded_hosts
        if open_bbs:
            spec = replace(spec, excluded_hosts=spec.excluded_hosts | open_bbs)

        self._journal("admit", spec.vm_id, now)
        self.report.requests_admitted += 1
        try:
            result = self.scheduler.schedule(spec)
        except Exception:
            self._novalid_streak += 1
            if self._novalid_streak >= self.config.breaker_threshold:
                self._breaker_open_until = now + self.config.breaker_cooldown_s
                self._novalid_streak = 0
                self.report.breaker_opens += 1
            raise
        self._novalid_streak = 0
        return result
