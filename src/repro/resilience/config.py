"""Configuration for the control-plane resilience layer.

One frozen dataclass covers the four services the layer wires into the
regional simulation: host health / quarantine, admission control,
inventory reconciliation, and the continuous invariant checker.  Like
:class:`~repro.faults.config.FaultConfig`, all stochastic behaviour
(quarantine jitter, shed-retry jitter) flows from one private seeded RNG
so a resilience trace replays byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the health, admission, reconciler, and invariant services."""

    #: Seed for the layer's private RNG (independent of workload and fault
    #: seeds so enabling resilience perturbs neither stream).
    seed: int = 101

    # -- host health & quarantine -----------------------------------------
    #: Heartbeat evaluation period: how often the health service compares
    #: each node's observed up/down state against its last observation.
    heartbeat_interval_s: float = 300.0
    #: A node is *flapping* when it logs at least ``flap_threshold``
    #: up↔down transitions within ``flap_window_s``.
    flap_window_s: float = 3600.0
    flap_threshold: int = 4
    #: First quarantine duration; each re-quarantine multiplies it by
    #: ``quarantine_backoff`` (capped), plus seeded jitter in
    #: ``[0, quarantine_jitter_s)``.
    quarantine_base_s: float = 2 * 3600.0
    quarantine_backoff: float = 2.0
    quarantine_max_s: float = 24 * 3600.0
    quarantine_jitter_s: float = 120.0
    #: Probation window after re-admission: a failure during probation
    #: re-quarantines immediately with escalated duration.
    probation_s: float = 1800.0
    #: Quarantine a whole building block once this fraction of its nodes
    #: is quarantined (blast-radius containment; the scheduler's
    #: QuarantineFilter then rejects the block outright).
    bb_quarantine_fraction: float = 0.5

    # -- admission control -------------------------------------------------
    #: Token-bucket refill rate for placement requests; 0 disables rate
    #: limiting (every request reaches the scheduler).
    admission_rate_per_s: float = 0.0
    #: Token-bucket burst capacity.
    admission_burst: int = 20
    #: A shed request is retried ``retry_after`` later (plus jitter in
    #: ``[0, admission_retry_jitter_s)``) until its deadline passes.
    admission_retry_jitter_s: float = 30.0
    #: Per-request deadline: submit time + deadline; a request that cannot
    #: be admitted before it is dropped (counted, never queued unboundedly).
    request_deadline_s: float = 1800.0
    #: Global circuit breaker: consecutive NoValidHost outcomes before the
    #: scheduler is declared saturated and requests shed for the cooldown.
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 600.0
    #: Per-building-block breaker: consecutive failed claims on one block
    #: before it is excluded from requests for the cooldown.
    bb_breaker_threshold: int = 3
    bb_breaker_cooldown_s: float = 900.0

    # -- reconciliation & invariants ---------------------------------------
    #: How often the inventory reconciler diffs placement against ground
    #: truth; 0 disables the recurring run (it can still be called once).
    reconcile_interval_s: float = 3600.0
    #: How often the invariant checker sweeps; it always runs once more at
    #: the end of the simulation.
    invariant_interval_s: float = 1800.0
    #: Raise on the first invariant violation instead of only recording it.
    fail_fast: bool = True

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.flap_window_s <= 0 or self.flap_threshold < 2:
            raise ValueError("flap window must be positive and threshold >= 2")
        if self.quarantine_base_s <= 0 or self.quarantine_max_s <= 0:
            raise ValueError("quarantine durations must be positive")
        if self.quarantine_backoff < 1.0:
            raise ValueError("quarantine_backoff must be >= 1")
        if self.quarantine_jitter_s < 0 or self.probation_s < 0:
            raise ValueError("jitter and probation must be >= 0")
        if not 0.0 < self.bb_quarantine_fraction <= 1.0:
            raise ValueError("bb_quarantine_fraction must be in (0, 1]")
        if self.admission_rate_per_s < 0 or self.admission_burst < 1:
            raise ValueError("admission rate must be >= 0 and burst >= 1")
        if self.admission_retry_jitter_s < 0 or self.request_deadline_s <= 0:
            raise ValueError("retry jitter >= 0 and deadline > 0 required")
        if self.breaker_threshold < 1 or self.bb_breaker_threshold < 1:
            raise ValueError("breaker thresholds must be >= 1")
        if self.breaker_cooldown_s < 0 or self.bb_breaker_cooldown_s < 0:
            raise ValueError("breaker cooldowns must be >= 0")
        if self.reconcile_interval_s < 0 or self.invariant_interval_s < 0:
            raise ValueError("service intervals must be >= 0")

    @classmethod
    def from_dict(cls, data: object) -> "ResilienceConfig":
        """Build a config from parsed JSON; ``ValueError`` on any problem.

        Unknown keys are rejected by name (a typo must not silently fall
        back to a default threshold), and field validation runs as usual
        via ``__post_init__``.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"resilience config must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown resilience config keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ValueError(f"invalid resilience config: {exc}") from exc
