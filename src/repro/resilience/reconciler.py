"""Inventory reconciliation: placement records vs. ground truth.

In a real control plane the Placement database and the hypervisors drift:
crashed agents leave orphaned allocations, interrupted operations leave
VMs without a booking, and cached scheduler views go stale.  The
:class:`InventoryReconciler` is the periodic audit that closes the loop —
it diffs :class:`~repro.scheduler.placement.PlacementService` allocations
against actual node residency and the scheduler's cached index, repairing
what it can and counting every class of drift:

- **orphaned** allocation, no resident VM anywhere → released;
- **missing** allocation for a resident, alive VM → claimed;
- **mishomed** allocation pointing at the wrong building block → moved;
- **capacity drift**, provider ``used`` ≠ Σ of its allocations → rewritten;
- **index drift**, cached free capacity ≠ provider truth → invalidated.

In the simulation these paths stay near-zero (the invariant checker makes
sure of it) but the reconciler is what keeps byte-accurate runs honest
when fault handlers and admission retries interleave.
"""

from __future__ import annotations

from typing import Any

from repro.resilience.config import ResilienceConfig
from repro.resilience.report import ResilienceReport
from repro.scheduler.placement import DISK_GB, MEMORY_MB, VCPU, AllocationError

_EPS = 1e-6


class InventoryReconciler:
    """Periodic drift audit between placement, nodes, and the index."""

    def __init__(
        self, sim: Any, config: ResilienceConfig, report: ResilienceReport
    ) -> None:
        self.sim = sim
        self.config = config
        self.report = report

    def reconcile(self, now: float) -> int:
        """One full audit pass; returns the number of repairs applied."""
        self.report.reconcile_runs += 1
        repairs = 0
        residency = {
            vm_id: node
            for node in self.sim.region.iter_nodes()
            for vm_id in node.vms
        }
        repairs += self._reconcile_allocations(residency)
        repairs += self._reconcile_missing(residency)
        repairs += self._reconcile_capacity()
        repairs += self._reconcile_index()
        if repairs == 0:
            self.report.reconcile_clean_runs += 1
        return repairs

    # -- allocation-side drift -------------------------------------------------

    def _reconcile_allocations(self, residency: dict[str, Any]) -> int:
        placement = self.sim.placement
        repairs = 0
        for allocation in placement.all_allocations():
            vm_id = allocation.consumer_id
            node = residency.get(vm_id)
            if node is None:
                # Booked but resident nowhere: the agent died mid-teardown.
                placement.release(vm_id)
                self.report.orphaned_allocations_released += 1
                repairs += 1
            elif node.building_block != allocation.provider_id:
                try:
                    placement.move(vm_id, node.building_block)
                    self.report.mishomed_allocations_moved += 1
                    repairs += 1
                except AllocationError:
                    self.report.unrepairable_drift += 1
        return repairs

    def _reconcile_missing(self, residency: dict[str, Any]) -> int:
        placement = self.sim.placement
        vms = getattr(self.sim, "vms", {})
        repairs = 0
        for vm_id in sorted(residency):
            vm = vms.get(vm_id)
            if vm is None or not vm.alive:
                continue
            if placement.allocation_for(vm_id) is not None:
                continue
            node = residency[vm_id]
            try:
                placement.claim(vm_id, node.building_block, vm.flavor.requested())
                self.report.missing_allocations_claimed += 1
                repairs += 1
            except AllocationError:
                self.report.unrepairable_drift += 1
        return repairs

    # -- provider/index drift ----------------------------------------------------

    def _reconcile_capacity(self) -> int:
        placement = self.sim.placement
        repairs = 0
        for provider in sorted(placement.providers(), key=lambda p: p.provider_id):
            expected: dict[str, float] = {rc: 0.0 for rc in provider.inventory}
            for allocation in placement.allocations_on(provider.provider_id):
                for rc, amount in allocation.amounts.items():
                    expected[rc] = expected.get(rc, 0.0) + amount
            drifted = any(
                abs(provider.used.get(rc, 0.0) - amount) > _EPS
                for rc, amount in expected.items()
            )
            if drifted:
                provider.used.update(expected)
                self.report.capacity_drift_repairs += 1
                repairs += 1
                self._invalidate(provider.provider_id)
        return repairs

    def _reconcile_index(self) -> int:
        index = getattr(self.sim.scheduler, "index", None)
        if index is None:
            return 0
        placement = self.sim.placement
        repairs = 0
        # Compare the index's *cached* view against provider truth without
        # refreshing first — refresh is exactly what a drifted cache needs.
        cached = getattr(index, "_states", {})
        for bb_id in sorted(cached):
            state = cached[bb_id]
            try:
                provider = placement.provider(bb_id)
            except AllocationError:
                continue
            if (
                abs(state.free_vcpus - provider.free(VCPU)) > _EPS
                or abs(state.free_ram_mb - provider.free(MEMORY_MB)) > _EPS
                or abs(state.free_disk_gb - provider.free(DISK_GB)) > _EPS
            ):
                index.invalidate(bb_id)
                self.report.index_drift_invalidations += 1
                repairs += 1
        return repairs

    def _invalidate(self, bb_id: str) -> None:
        invalidate = getattr(self.sim.scheduler, "invalidate_host", None)
        if invalidate is not None:
            invalidate(bb_id)
