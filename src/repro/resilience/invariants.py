"""Continuous invariant checking over the live simulation state.

The checker runs as a recurring simulation event (and once more at the
end of every run) and asserts the structural properties that must hold
at *every* instant, no matter which faults fired:

- ``single-placement`` — no VM is resident on two nodes, and a resident
  VM's placement allocation points at the building block it lives in;
- ``capacity`` — no resource provider's free capacity is negative;
- ``error-vm-tracked`` — every VM in ERROR is either dead-lettered or
  has an evacuation retry still queued (nothing falls off the radar);
- ``quarantine-fence`` — a quarantined node holds no VM that was not
  already resident when the fence went up.

Violations become structured :class:`InvariantViolation` records on the
:class:`ResilienceReport`; in ``fail_fast`` mode the check raises
:class:`InvariantViolationError` immediately so a broken run dies loudly
instead of producing plausible-looking numbers.
"""

from __future__ import annotations

from typing import Any

from repro.infrastructure.vm import VMState
from repro.resilience.config import ResilienceConfig
from repro.resilience.report import (
    InvariantViolation,
    InvariantViolationError,
    ResilienceReport,
)
from repro.simulation.events import EVAC_RETRY

_EPS = 1e-6


class InvariantChecker:
    """Sweeps the simulation's ground truth for structural violations."""

    def __init__(
        self,
        sim: Any,
        config: ResilienceConfig,
        report: ResilienceReport,
        health: Any = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.report = report
        self.health = health

    def check(self, now: float) -> list[InvariantViolation]:
        """Run every invariant once; record, and raise when fail-fast."""
        self.report.invariant_checks += 1
        found: list[InvariantViolation] = []
        found += self._check_single_placement(now)
        found += self._check_capacity(now)
        found += self._check_error_vms(now)
        found += self._check_quarantine_fence(now)
        for violation in found:
            self.report.record_violation(violation)
        if found and self.config.fail_fast:
            raise InvariantViolationError(found)
        return found

    # -- individual invariants ------------------------------------------------

    def _residency(self) -> dict[str, list[Any]]:
        """vm_id -> nodes currently claiming residency (ground truth)."""
        residency: dict[str, list[Any]] = {}
        for node in self.sim.region.iter_nodes():
            for vm_id in node.vms:
                residency.setdefault(vm_id, []).append(node)
        return residency

    def _check_single_placement(self, now: float) -> list[InvariantViolation]:
        out: list[InvariantViolation] = []
        residency = self._residency()
        for vm_id in sorted(residency):
            nodes = residency[vm_id]
            if len(nodes) > 1:
                out.append(InvariantViolation(
                    invariant="single-placement",
                    subject=vm_id,
                    detail="resident on "
                    + ", ".join(sorted(n.node_id for n in nodes)),
                    time=now,
                ))
                continue
            allocation = self.sim.placement.allocation_for(vm_id)
            bb_id = nodes[0].building_block
            if allocation is not None and allocation.provider_id != bb_id:
                out.append(InvariantViolation(
                    invariant="single-placement",
                    subject=vm_id,
                    detail=f"resident in {bb_id} but allocated on "
                    f"{allocation.provider_id}",
                    time=now,
                ))
        return out

    def _check_capacity(self, now: float) -> list[InvariantViolation]:
        out: list[InvariantViolation] = []
        for provider in sorted(
            self.sim.placement.providers(), key=lambda p: p.provider_id
        ):
            for rc in sorted(provider.inventory):
                free = provider.free(rc)
                if free < -_EPS:
                    out.append(InvariantViolation(
                        invariant="capacity",
                        subject=provider.provider_id,
                        detail=f"negative free {rc}: {free:.3f}",
                        time=now,
                    ))
        return out

    def _check_error_vms(self, now: float) -> list[InvariantViolation]:
        out: list[InvariantViolation] = []
        fault_report = getattr(self.sim, "fault_report", None)
        dead = (
            set(fault_report.dead_lettered_vms) if fault_report is not None else set()
        )
        pending: set[str] = {
            event.payload["vm_id"]
            for event in self.sim.engine.iter_pending(EVAC_RETRY)
        }
        vms = getattr(self.sim, "vms", {})
        for vm_id in sorted(vms):
            vm = vms[vm_id]
            if vm.state is not VMState.ERROR:
                continue
            if vm_id not in dead and vm_id not in pending:
                out.append(InvariantViolation(
                    invariant="error-vm-tracked",
                    subject=vm_id,
                    detail="in ERROR with no queued evacuation and not "
                    "dead-lettered",
                    time=now,
                ))
        return out

    def _check_quarantine_fence(self, now: float) -> list[InvariantViolation]:
        if self.health is None:
            return []
        out: list[InvariantViolation] = []
        snapshots = self.health.quarantine_residents
        for node in self.sim.region.iter_nodes():
            if not node.quarantined:
                continue
            allowed = snapshots.get(node.node_id, frozenset())
            intruders = sorted(set(node.vms) - set(allowed))
            if intruders:
                out.append(InvariantViolation(
                    invariant="quarantine-fence",
                    subject=node.node_id,
                    detail="placed while quarantined: " + ", ".join(intruders),
                    time=now,
                ))
        return out
