"""Placement service: resource provider inventories and consumer allocations.

Models the OpenStack Placement API the Nova scheduler queries (§2.2,
Fig 2 step 5).  Each compute host (building block) is a *resource provider*
with VCPU / MEMORY_MB / DISK_GB inventories carrying allocation ratios;
each VM is a *consumer* holding one allocation against one provider.
Claims are atomic: either every resource class fits under its ratio or the
claim fails and nothing is recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.infrastructure.capacity import Capacity, OvercommitPolicy
from repro.infrastructure.hierarchy import BuildingBlock
from repro.scheduler.stats import PLACEMENT_STAT_KEYS, normalize_stats

VCPU = "VCPU"
MEMORY_MB = "MEMORY_MB"
DISK_GB = "DISK_GB"

RESOURCE_CLASSES = (VCPU, MEMORY_MB, DISK_GB)


class AllocationError(Exception):
    """A claim could not be satisfied or an allocation is inconsistent."""


@dataclass
class ResourceProvider:
    """One provider (compute host) with per-class inventory."""

    provider_id: str
    #: resource class -> (total, allocation_ratio, reserved)
    inventory: dict[str, tuple[float, float, float]] = field(default_factory=dict)
    #: resource class -> currently allocated amount
    used: dict[str, float] = field(default_factory=dict)
    aggregate_class: str = ""
    az: str = ""

    def set_inventory(
        self, resource_class: str, total: float, ratio: float = 1.0, reserved: float = 0.0
    ) -> None:
        """Define one resource class: total, allocation ratio, reserve."""
        if resource_class not in RESOURCE_CLASSES:
            raise ValueError(f"unknown resource class {resource_class!r}")
        if total < 0 or reserved < 0 or ratio <= 0:
            raise ValueError("total/reserved must be >= 0 and ratio > 0")
        self.inventory[resource_class] = (total, ratio, reserved)
        self.used.setdefault(resource_class, 0.0)

    def capacity(self, resource_class: str) -> float:
        """Allocatable amount: (total - reserved) * allocation_ratio."""
        total, ratio, reserved = self.inventory[resource_class]
        return (total - reserved) * ratio

    def free(self, resource_class: str) -> float:
        return self.capacity(resource_class) - self.used.get(resource_class, 0.0)

    def fits(self, amounts: dict[str, float]) -> bool:
        """Whether all requested amounts fit simultaneously."""
        for rc, amount in amounts.items():
            if rc not in self.inventory:
                return False
            if amount > self.free(rc) + 1e-9:
                return False
        return True


@dataclass(frozen=True)
class Allocation:
    """One consumer's allocation against one provider."""

    consumer_id: str
    provider_id: str
    amounts: dict[str, float]


def _amounts_from_capacity(cap: Capacity) -> dict[str, float]:
    return {VCPU: cap.vcpus, MEMORY_MB: cap.memory_mb, DISK_GB: cap.disk_gb}


#: Listener callback: ``(event, provider_id)`` where event is one of
#: "claim", "release", "remove".  A move fires "release" on the source
#: provider followed by "claim" on the target.
PlacementListener = Callable[[str, str], None]

#: Journal sink: ``(event, consumer_id, provider_id, amounts)``.  Unlike
#: the index listener above, this carries the full allocation identity so
#: a write-ahead journal can record exactly what changed.
PlacementJournalSink = Callable[[str, str, str, dict], None]


class PlacementService:
    """Inventory + allocation store with atomic claims."""

    def __init__(self) -> None:
        self._providers: dict[str, ResourceProvider] = {}
        self._allocations: dict[str, Allocation] = {}
        self._listeners: list[PlacementListener] = []
        self._journal_sinks: list[PlacementJournalSink] = []
        self._counters = {key: 0 for key in PLACEMENT_STAT_KEYS}

    # -- observability ----------------------------------------------------------

    def add_listener(self, listener: PlacementListener) -> None:
        """Subscribe to allocation changes (used by HostStateIndex)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: PlacementListener) -> None:
        """Unsubscribe a previously added listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def add_journal_sink(self, sink: PlacementJournalSink) -> None:
        """Subscribe a write-ahead journal to claims/releases/moves."""
        self._journal_sinks.append(sink)

    def remove_journal_sink(self, sink: PlacementJournalSink) -> None:
        """Unsubscribe a journal sink (no-op if absent)."""
        if sink in self._journal_sinks:
            self._journal_sinks.remove(sink)

    def _notify(self, event: str, provider_id: str) -> None:
        for listener in self._listeners:
            listener(event, provider_id)

    def _journal(
        self, event: str, consumer_id: str, provider_id: str, amounts: dict
    ) -> None:
        for sink in self._journal_sinks:
            sink(event, consumer_id, provider_id, amounts)

    def stats(self) -> dict[str, int]:
        """Canonical operation counters: claims, releases, moves, failed."""
        return normalize_stats(self._counters, PLACEMENT_STAT_KEYS)

    # -- provider management ----------------------------------------------------

    def register_building_block(self, bb: BuildingBlock) -> ResourceProvider:
        """Create a provider from a building block's physical inventory."""
        if bb.bb_id in self._providers:
            raise AllocationError(f"provider {bb.bb_id} already registered")
        provider = ResourceProvider(
            provider_id=bb.bb_id, aggregate_class=bb.aggregate_class, az=bb.az
        )
        physical = bb.physical()
        policy: OvercommitPolicy = bb.overcommit
        provider.set_inventory(VCPU, physical.vcpus, policy.cpu_ratio)
        provider.set_inventory(MEMORY_MB, physical.memory_mb, policy.memory_ratio)
        provider.set_inventory(DISK_GB, physical.disk_gb, policy.disk_ratio)
        self._providers[bb.bb_id] = provider
        return provider

    def provider(self, provider_id: str) -> ResourceProvider:
        """Look up a provider (AllocationError if unknown)."""
        try:
            return self._providers[provider_id]
        except KeyError:
            raise AllocationError(f"unknown provider: {provider_id}") from None

    def providers(self) -> list[ResourceProvider]:
        """All registered providers."""
        return list(self._providers.values())

    def remove_provider(self, provider_id: str) -> None:
        """Delete an allocation-free provider (host decommissioned)."""
        provider = self.provider(provider_id)
        if any(v > 1e-9 for v in provider.used.values()):
            raise AllocationError(
                f"provider {provider_id} still has allocations; delete them first"
            )
        del self._providers[provider_id]
        self._notify("remove", provider_id)

    # -- allocations ---------------------------------------------------------------

    def claim(self, consumer_id: str, provider_id: str, requested: Capacity) -> Allocation:
        """Atomically allocate ``requested`` for ``consumer_id``.

        A consumer holds at most one allocation (Nova: one instance, one
        host); re-claiming without releasing first is an error.

        The claim is exception-safe: every check — and the computation of
        every class's new usage — happens before the first write, so a
        failed claim leaves ``used`` untouched for *all* resource classes.
        """
        try:
            if consumer_id in self._allocations:
                raise AllocationError(
                    f"consumer {consumer_id} already has an allocation"
                )
            provider = self.provider(provider_id)
            amounts = _amounts_from_capacity(requested)
            for rc, amount in amounts.items():
                if not (amount >= 0.0):  # also rejects NaN
                    raise AllocationError(
                        f"claim for {consumer_id} requests invalid {rc} amount {amount}"
                    )
            if not provider.fits(amounts):
                raise AllocationError(
                    f"claim for {consumer_id} does not fit on {provider_id}"
                )
        except AllocationError:
            self._counters["failed"] += 1
            raise
        staged = {
            rc: provider.used.get(rc, 0.0) + amount for rc, amount in amounts.items()
        }
        self._journal("claim", consumer_id, provider_id, amounts)
        provider.used.update(staged)
        allocation = Allocation(consumer_id, provider_id, amounts)
        self._allocations[consumer_id] = allocation
        self._counters["claims"] += 1
        self._notify("claim", provider_id)
        return allocation

    def _drop_allocation(self, consumer_id: str) -> Allocation:
        """Remove the allocation, return usage, fire "release"."""
        allocation = self._allocations.pop(consumer_id, None)
        if allocation is None:
            raise AllocationError(f"consumer {consumer_id} has no allocation")
        provider = self.provider(allocation.provider_id)
        self._journal(
            "release", consumer_id, allocation.provider_id, allocation.amounts
        )
        for rc, amount in allocation.amounts.items():
            provider.used[rc] = max(0.0, provider.used.get(rc, 0.0) - amount)
        self._notify("release", allocation.provider_id)
        return allocation

    def release(self, consumer_id: str) -> None:
        """Drop a consumer's allocation (VM deleted or moved)."""
        self._drop_allocation(consumer_id)
        self._counters["releases"] += 1

    def move(self, consumer_id: str, new_provider_id: str) -> Allocation:
        """Re-home an allocation (migration): atomic release+claim."""
        allocation = self._allocations.get(consumer_id)
        if allocation is None:
            self._counters["failed"] += 1
            raise AllocationError(f"consumer {consumer_id} has no allocation")
        target = self.provider(new_provider_id)
        if not target.fits(allocation.amounts):
            self._counters["failed"] += 1
            raise AllocationError(
                f"move of {consumer_id} to {new_provider_id} does not fit"
            )
        self._drop_allocation(consumer_id)
        self._journal("claim", consumer_id, new_provider_id, allocation.amounts)
        for rc, amount in allocation.amounts.items():
            target.used[rc] = target.used.get(rc, 0.0) + amount
        moved = Allocation(consumer_id, new_provider_id, allocation.amounts)
        self._allocations[consumer_id] = moved
        self._counters["moves"] += 1
        self._notify("claim", new_provider_id)
        return moved

    def allocation_for(self, consumer_id: str) -> Allocation | None:
        """The consumer's allocation, or None if it has none."""
        return self._allocations.get(consumer_id)

    def allocations_on(self, provider_id: str) -> list[Allocation]:
        """Every allocation currently booked on one provider."""
        return [a for a in self._allocations.values() if a.provider_id == provider_id]

    def all_allocations(self) -> list[Allocation]:
        """Every allocation in the store, sorted by consumer for determinism.

        Audit surface for the inventory reconciler, which diffs this list
        against ground-truth node residency.
        """
        return [self._allocations[cid] for cid in sorted(self._allocations)]

    # -- snapshot / restore ------------------------------------------------------

    def export_state(self) -> dict:
        """JSON-able snapshot of the mutable store: usage, allocations, stats.

        Provider *inventories* are deliberately excluded — they derive
        from the building-block topology and are re-registered on
        recovery; only what claims mutated is captured.
        """
        return {
            "used": {
                pid: {rc: provider.used.get(rc, 0.0) for rc in provider.inventory}
                for pid, provider in sorted(self._providers.items())
            },
            "allocations": {
                cid: {
                    "provider": alloc.provider_id,
                    "amounts": dict(alloc.amounts),
                }
                for cid, alloc in sorted(self._allocations.items())
            },
            "counters": dict(self._counters),
        }

    def restore_state(self, state: dict) -> None:
        """Reinstate an :meth:`export_state` snapshot onto this store.

        Every provider named in the snapshot must already be registered
        (recovery rebuilds the region first); unknown providers raise
        :class:`AllocationError` instead of resurrecting ghosts.
        """
        for pid in state["used"]:
            if pid not in self._providers:
                raise AllocationError(
                    f"snapshot names unknown provider {pid!r}; "
                    "register the topology before restoring"
                )
        for pid, used in state["used"].items():
            self._providers[pid].used = {
                rc: float(amount) for rc, amount in used.items()
            }
        self._allocations = {
            cid: Allocation(
                consumer_id=cid,
                provider_id=alloc["provider"],
                amounts={rc: float(v) for rc, v in alloc["amounts"].items()},
            )
            for cid, alloc in state["allocations"].items()
        }
        self._counters = {
            key: int(state["counters"].get(key, 0)) for key in PLACEMENT_STAT_KEYS
        }
        for listener in self._listeners:
            for pid in state["used"]:
                listener("claim", pid)

    def usage_report(self) -> dict[str, dict[str, float]]:
        """Per-provider used/capacity fractions for each resource class."""
        report: dict[str, dict[str, float]] = {}
        for pid, provider in self._providers.items():
            report[pid] = {
                rc: (
                    provider.used.get(rc, 0.0) / provider.capacity(rc)
                    if provider.capacity(rc) > 0
                    else 0.0
                )
                for rc in provider.inventory
            }
        return report
