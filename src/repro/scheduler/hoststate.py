"""Scheduler's view of one candidate compute host.

In the SAP deployment a Nova compute host is a whole vSphere cluster /
building block (§3.1), so a :class:`HostState` summarises a building block:
free and total capacity from the placement provider, instance count, tenant
set, and scheduling-relevant attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.infrastructure.hierarchy import BuildingBlock
from repro.scheduler.placement import DISK_GB, MEMORY_MB, VCPU, PlacementService


@dataclass
class HostState:
    """Point-in-time candidate state consumed by filters and weighers."""

    host_id: str
    az: str = ""
    aggregate_class: str = ""
    policy: str = "spread"
    free_vcpus: float = 0.0
    free_ram_mb: float = 0.0
    free_disk_gb: float = 0.0
    total_vcpus: float = 0.0
    total_ram_mb: float = 0.0
    total_disk_gb: float = 0.0
    num_instances: int = 0
    #: Concurrent build/resize/migrate operations in flight on the host —
    #: Nova's IoOpsWeigher penalises hosts already busy provisioning.
    num_io_ops: int = 0
    tenants: frozenset[str] = frozenset()
    #: Tenants allowed on this host; empty means "any" (tenant isolation).
    allowed_tenants: frozenset[str] = frozenset()
    enabled: bool = True
    metadata: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_building_block(
        cls, bb: BuildingBlock, placement: PlacementService
    ) -> "HostState":
        """Build the candidate view of ``bb`` from placement inventories."""
        provider = placement.provider(bb.bb_id)
        tenants = frozenset(vm.tenant for vm in bb.vms())
        return cls(
            host_id=bb.bb_id,
            az=bb.az,
            aggregate_class=bb.aggregate_class,
            policy=bb.policy,
            free_vcpus=provider.free(VCPU),
            free_ram_mb=provider.free(MEMORY_MB),
            free_disk_gb=provider.free(DISK_GB),
            total_vcpus=provider.capacity(VCPU),
            total_ram_mb=provider.capacity(MEMORY_MB),
            total_disk_gb=provider.capacity(DISK_GB),
            num_instances=bb.vm_count,
            tenants=tenants,
            # A BB with no healthy member (all failed or draining) cannot
            # accept placements: the MaintenanceFilter rejects it outright.
            enabled=any(n.healthy for n in bb.nodes.values()),
        )

    def consume(self, vcpus: float, ram_mb: float, disk_gb: float) -> None:
        """Deduct a provisional claim (scheduler-local, pre-placement)."""
        self.free_vcpus -= vcpus
        self.free_ram_mb -= ram_mb
        self.free_disk_gb -= disk_gb
        self.num_instances += 1

    #: Fields compared by :meth:`diff_fields`.  ``metadata`` is excluded by
    #: contract: schedulers decorate it in place, so cached and rebuilt
    #: states legitimately differ there (see the index invariants).
    COMPARED_FIELDS = (
        "host_id", "az", "aggregate_class", "policy",
        "free_vcpus", "free_ram_mb", "free_disk_gb",
        "total_vcpus", "total_ram_mb", "total_disk_gb",
        "num_instances", "num_io_ops", "tenants", "allowed_tenants",
        "enabled",
    )

    def diff_fields(self, other: "HostState") -> list[tuple[str, object, object]]:
        """Field-by-field differences vs ``other`` as (field, self, other).

        The equality contract the incremental index must uphold against a
        from-scratch rebuild; the differential oracle reports each tuple
        as a structured mismatch.
        """
        return [
            (name, mine, theirs)
            for name in self.COMPARED_FIELDS
            if (mine := getattr(self, name)) != (theirs := getattr(other, name))
        ]
