"""Canonical counter names shared by schedulers and the placement service.

Scheduler implementations and :class:`~repro.scheduler.placement.PlacementService`
each keep simple operation counters.  Historically the key names drifted
("failed" vs "failures"); this module pins the canonical vocabulary and
provides one ``stats_of`` accessor the bench harness (and any other
consumer) can point at either object without caring which it got.
"""

from __future__ import annotations

from typing import Any, Mapping

#: Canonical counter keys for scheduling pipelines.
SCHEDULER_STAT_KEYS = ("requests", "placed", "failed", "retries")

#: Canonical counter keys for the placement service.
PLACEMENT_STAT_KEYS = ("claims", "releases", "moves", "failed")

#: Legacy spellings mapped onto the canonical keys.
_ALIASES = {
    "failures": "failed",
    "failure": "failed",
    "retry": "retries",
    "request": "requests",
    "placements": "placed",
}


def normalize_stats(
    raw: Mapping[str, int], keys: tuple[str, ...] | None = None
) -> dict[str, int]:
    """Return ``raw`` with legacy key spellings folded onto canonical ones.

    When ``keys`` is given, every canonical key is present in the result
    (missing counters default to 0) and unknown keys are preserved as-is.
    """
    out: dict[str, int] = {k: 0 for k in keys} if keys else {}
    for key, value in raw.items():
        out[_ALIASES.get(key, key)] = int(value)
    return out


def stats_of(obj: Any) -> dict[str, int]:
    """Canonical counter snapshot of a scheduler or placement service.

    Accepts anything exposing either a ``stats()`` method or a ``stats``
    mapping attribute and returns a normalized copy — the one API the
    bench harness uses for every counter source.
    """
    raw = obj.stats
    if callable(raw):
        raw = raw()
    if not isinstance(raw, Mapping):
        raise TypeError(f"{type(obj).__name__}.stats is not a counter mapping")
    return normalize_stats(raw)
