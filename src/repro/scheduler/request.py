"""Request specification handed from the Nova API/conductor to the scheduler."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.infrastructure.capacity import Capacity
from repro.infrastructure.flavors import Flavor


@dataclass(frozen=True)
class RequestSpec:
    """Everything the scheduler may consider for one placement request.

    Mirrors Nova's RequestSpec: flavor, tenant, requested AZ, scheduler
    hints, and whether this request is a new boot, a resize, or a migration
    of an existing instance.
    """

    vm_id: str
    flavor: Flavor
    tenant: str = "default"
    availability_zone: str | None = None
    operation: str = "create"  # "create" | "resize" | "migrate"
    #: Building blocks to avoid (e.g. the migration source, or previous
    #: failed attempts — Nova's retry mechanism excludes them).
    excluded_hosts: frozenset[str] = frozenset()
    scheduler_hints: dict[str, str] = field(default_factory=dict)

    def requested(self) -> Capacity:
        """Resources this request needs from the chosen host."""
        return self.flavor.requested()

    def excluding(self, host: str) -> "RequestSpec":
        """A copy that additionally excludes ``host`` (retry bookkeeping)."""
        return RequestSpec(
            vm_id=self.vm_id,
            flavor=self.flavor,
            tenant=self.tenant,
            availability_zone=self.availability_zone,
            operation=self.operation,
            excluded_hosts=self.excluded_hosts | {host},
            scheduler_hints=dict(self.scheduler_hints),
        )
