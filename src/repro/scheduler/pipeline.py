"""The FilterScheduler: Nova's filter/weigher pipeline with retries.

Implements the scheduling flow of Fig 3: collect all hosts, apply the filter
chain, rank survivors through the weigher pipeline, then claim the best
candidate against placement.  Nova's greedy-with-retries behaviour is
reproduced: if the claim races and fails, the next-ranked alternate is
tried, up to ``max_attempts``.

Configuration goes through :class:`~repro.scheduler.config.SchedulerConfig`;
the pre-config keyword arguments (``filters=``, ``weighers=``,
``max_attempts=``, ``alternates=``) are deprecated shims kept for one
release.

Hot-path behaviour: with ``config.use_index`` (the default) candidate
states come from an incremental :class:`~repro.scheduler.index.HostStateIndex`
instead of a per-request region rescan.  With ``track_filter_counts=False``
the pipeline additionally pre-narrows candidates via the index's free-vCPU
buckets and runs filters cheapest-first with early exit — survivors, and
therefore placements, are identical either way (only the per-filter trace
is dropped); the equivalence tests pin this.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.infrastructure.hierarchy import Region
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.filters import ComputeFilter, Filter, VCpuFilter, default_filters
from repro.scheduler.hoststate import HostState
from repro.scheduler.index import HostStateIndex
from repro.scheduler.placement import AllocationError, PlacementService
from repro.scheduler.policies import weighers_for_flavor
from repro.scheduler.request import RequestSpec
from repro.scheduler.stats import SCHEDULER_STAT_KEYS, normalize_stats
from repro.scheduler.weighers import Weigher, WeigherPipeline


class NoValidHost(Exception):
    """No host survived filtering, or all claim attempts failed."""


@dataclass
class SchedulingResult:
    """Outcome of one placement request."""

    vm_id: str
    host_id: str
    score: float
    attempts: int
    #: Hosts ranked below the winner (Nova's alternates for retries).
    alternates: list[str] = field(default_factory=list)
    filtered_counts: dict[str, int] = field(default_factory=dict)


class FilterScheduler:
    """Initial placement of VMs onto compute hosts (building blocks)."""

    def __init__(
        self,
        region: Region,
        placement: PlacementService,
        config: SchedulerConfig | None = None,
        *,
        filters: list[Filter] | None = None,
        weighers: list[Weigher] | None = None,
        max_attempts: int | None = None,
        alternates: int | None = None,
    ) -> None:
        if isinstance(config, (list, tuple)):
            # Legacy positional call: FilterScheduler(region, placement, [f...]).
            filters, config = list(config), None
        legacy = {
            key: value
            for key, value in (
                ("filters", filters),
                ("weighers", weighers),
                ("max_attempts", max_attempts),
                ("alternates", alternates),
            )
            if value is not None
        }
        if legacy:
            if config is not None:
                raise TypeError(
                    "pass either a SchedulerConfig or the legacy keyword "
                    "arguments, not both"
                )
            warnings.warn(
                "FilterScheduler(filters=/weighers=/max_attempts=/alternates=) "
                "is deprecated; pass a SchedulerConfig instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = SchedulerConfig(**legacy)
        elif config is None:
            config = SchedulerConfig()
        self.region = region
        self.placement = placement
        self.config = config
        self.filters = (
            list(config.filters) if config.filters is not None else default_filters()
        )
        self._fixed_weighers = (
            list(config.weighers) if config.weighers is not None else None
        )
        self.max_attempts = config.max_attempts
        self.alternates = config.alternates
        self.stats = {key: 0 for key in SCHEDULER_STAT_KEYS}
        # Cheapest filters first for the short-circuiting fast path; the
        # survivor *set* is order-independent (filters are pure predicates),
        # so this never changes placements, only work done.
        self._ordered_filters = sorted(
            self.filters, key=lambda flt: getattr(flt, "cost", 1)
        )
        # Bucket pre-selection is only sound when the chain contains a
        # free-vCPU capacity check that would eliminate the same hosts.
        self._vcpu_gated = any(
            isinstance(flt, (ComputeFilter, VCpuFilter)) for flt in self.filters
        )
        self._index: HostStateIndex | None = (
            HostStateIndex(region, placement) if config.use_index else None
        )
        self._pipelines: dict[str, WeigherPipeline] = {}
        #: Optional ``(host_id, ok)`` callback fired after every claim
        #: attempt in :meth:`schedule` — admission control's per-building-
        #: block circuit breakers listen here.
        self.claim_observer = None

    # -- host collection -----------------------------------------------------

    def host_states(self) -> list[HostState]:
        """Candidate states for every building block, rebuilt from scratch."""
        return [
            HostState.from_building_block(bb, self.placement)
            for bb in self.region.iter_building_blocks()
        ]

    def invalidate_host(self, host_id: str) -> None:
        """Tell the index a host mutated outside placement (e.g. failed)."""
        if self._index is not None:
            self._index.invalidate(host_id)

    @property
    def index(self) -> HostStateIndex | None:
        """The incremental host-state index, if enabled."""
        return self._index

    def stats_snapshot(self) -> dict[str, int]:
        """Canonical counter snapshot (shared stats() API)."""
        return normalize_stats(self.stats, SCHEDULER_STAT_KEYS)

    # -- subclass hooks ------------------------------------------------------

    def _prepare_states(self, states: list[HostState]) -> list[HostState]:
        """Decorate candidate states before filtering (subclass hook)."""
        return states

    def _weighers_for(self, spec: RequestSpec) -> list[Weigher]:
        """Weigher set for one request (subclass hook)."""
        if self._fixed_weighers is not None:
            return self._fixed_weighers
        return weighers_for_flavor(spec.flavor)

    def _weigher_cache_key(self, spec: RequestSpec) -> str | None:
        """Cache key for the weigher pipeline; None disables caching."""
        return spec.flavor.family

    def _pipeline_for(self, spec: RequestSpec) -> WeigherPipeline:
        key = self._weigher_cache_key(spec)
        if key is None:
            return WeigherPipeline(self._weighers_for(spec))
        pipeline = self._pipelines.get(key)
        if pipeline is None:
            pipeline = WeigherPipeline(self._weighers_for(spec))
            self._pipelines[key] = pipeline
        return pipeline

    # -- scheduling -------------------------------------------------------------

    def select_destinations(
        self, spec: RequestSpec
    ) -> tuple[list[tuple[HostState, float]], dict[str, int]]:
        """Filter + weigh; returns ranked candidates and per-filter counts."""
        config = self.config
        trace = config.track_filter_counts
        if self._index is not None:
            self._index.refresh()
            if trace or not self._vcpu_gated:
                hosts = self._index.states()
            else:
                hosts = self._index.candidates(spec.flavor.vcpus)
        else:
            hosts = self.host_states()
        hosts = self._prepare_states(hosts)
        counts: dict[str, int] = {"initial": len(hosts)}
        if trace:
            for flt in self.filters:
                hosts = flt.filter_all(hosts, spec)
                counts[flt.name] = len(hosts)
        else:
            for flt in self._ordered_filters:
                if not hosts:
                    break
                if flt.relevant(spec):
                    hosts = flt.filter_all(hosts, spec)
            counts["survivors"] = len(hosts)
        if not hosts:
            return [], counts
        ranked = self._pipeline_for(spec).rank(hosts, spec)
        return ranked, counts

    def schedule(self, spec: RequestSpec) -> SchedulingResult:
        """Place one request, claiming resources via placement.

        Raises :class:`NoValidHost` when no candidate passes filtering or
        every claim attempt fails.
        """
        self.stats["requests"] += 1
        attempts = 0
        current = spec
        last_counts: dict[str, int] = {}
        while attempts < self.max_attempts:
            ranked, counts = self.select_destinations(current)
            last_counts = counts
            if not ranked:
                break
            attempts += 1
            best, score = ranked[0]
            try:
                self.placement.claim(current.vm_id, best.host_id, current.requested())
            except AllocationError:
                # The greedy pick raced with another claim; exclude and retry.
                self.stats["retries"] += 1
                if self.claim_observer is not None:
                    self.claim_observer(best.host_id, False)
                current = current.excluding(best.host_id)
                continue
            self.stats["placed"] += 1
            if self.claim_observer is not None:
                self.claim_observer(best.host_id, True)
            return SchedulingResult(
                vm_id=spec.vm_id,
                host_id=best.host_id,
                score=score,
                attempts=attempts,
                alternates=[h.host_id for h, _ in ranked[1 : 1 + self.alternates]],
                filtered_counts=counts,
            )
        self.stats["failed"] += 1
        raise NoValidHost(
            f"no valid host for {spec.vm_id} "
            f"(flavor={spec.flavor.name}, attempts={attempts}, "
            f"filter_counts={last_counts})"
        )
