"""The FilterScheduler: Nova's filter/weigher pipeline with retries.

Implements the scheduling flow of Fig 3: collect all hosts, apply the filter
chain, rank survivors through the weigher pipeline, then claim the best
candidate against placement.  Nova's greedy-with-retries behaviour is
reproduced: if the claim races and fails, the next-ranked alternate is
tried, up to ``max_attempts``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.infrastructure.hierarchy import Region
from repro.scheduler.filters import Filter, default_filters
from repro.scheduler.hoststate import HostState
from repro.scheduler.placement import AllocationError, PlacementService
from repro.scheduler.policies import weighers_for_flavor
from repro.scheduler.request import RequestSpec
from repro.scheduler.weighers import Weigher, WeigherPipeline


class NoValidHost(Exception):
    """No host survived filtering, or all claim attempts failed."""


@dataclass
class SchedulingResult:
    """Outcome of one placement request."""

    vm_id: str
    host_id: str
    score: float
    attempts: int
    #: Hosts ranked below the winner (Nova's alternates for retries).
    alternates: list[str] = field(default_factory=list)
    filtered_counts: dict[str, int] = field(default_factory=dict)


class FilterScheduler:
    """Initial placement of VMs onto compute hosts (building blocks)."""

    def __init__(
        self,
        region: Region,
        placement: PlacementService,
        filters: list[Filter] | None = None,
        weighers: list[Weigher] | None = None,
        max_attempts: int = 3,
        alternates: int = 3,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.region = region
        self.placement = placement
        self.filters = filters if filters is not None else default_filters()
        self._fixed_weighers = weighers
        self.max_attempts = max_attempts
        self.alternates = alternates
        self.stats = {"requests": 0, "placed": 0, "failed": 0, "retries": 0}

    # -- host collection -----------------------------------------------------

    def host_states(self) -> list[HostState]:
        """Candidate states for every building block in the region."""
        return [
            HostState.from_building_block(bb, self.placement)
            for bb in self.region.iter_building_blocks()
        ]

    # -- scheduling -------------------------------------------------------------

    def select_destinations(
        self, spec: RequestSpec
    ) -> tuple[list[tuple[HostState, float]], dict[str, int]]:
        """Filter + weigh; returns ranked candidates and per-filter counts."""
        hosts = self.host_states()
        counts: dict[str, int] = {"initial": len(hosts)}
        for flt in self.filters:
            hosts = flt.filter_all(hosts, spec)
            counts[flt.name] = len(hosts)
        if not hosts:
            return [], counts
        weighers = self._fixed_weighers or weighers_for_flavor(spec.flavor)
        ranked = WeigherPipeline(weighers).rank(hosts, spec)
        return ranked, counts

    def schedule(self, spec: RequestSpec) -> SchedulingResult:
        """Place one request, claiming resources via placement.

        Raises :class:`NoValidHost` when no candidate passes filtering or
        every claim attempt fails.
        """
        self.stats["requests"] += 1
        attempts = 0
        current = spec
        last_counts: dict[str, int] = {}
        while attempts < self.max_attempts:
            ranked, counts = self.select_destinations(current)
            last_counts = counts
            if not ranked:
                break
            attempts += 1
            best, score = ranked[0]
            try:
                self.placement.claim(current.vm_id, best.host_id, current.requested())
            except AllocationError:
                # The greedy pick raced with another claim; exclude and retry.
                self.stats["retries"] += 1
                current = current.excluding(best.host_id)
                continue
            self.stats["placed"] += 1
            return SchedulingResult(
                vm_id=spec.vm_id,
                host_id=best.host_id,
                score=score,
                attempts=attempts,
                alternates=[h.host_id for h, _ in ranked[1 : 1 + self.alternates]],
                filtered_counts=counts,
            )
        self.stats["failed"] += 1
        raise NoValidHost(
            f"no valid host for {spec.vm_id} "
            f"(flavor={spec.flavor.name}, attempts={attempts}, "
            f"filter_counts={last_counts})"
        )
