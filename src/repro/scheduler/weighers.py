"""Nova-style weighers: score and rank surviving candidates.

Nova normalises each weigher's raw scores to [0, 1] across the candidate
list, multiplies by the weigher's multiplier, and sums (§2.2, Fig 3).  A
positive multiplier on a free-resource weigher spreads load (prefer emptier
hosts); a negative multiplier packs it (prefer fuller hosts) — the mechanism
behind the pack-vs-spread policy split of §3.2.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec


class Weigher(abc.ABC):
    """Base weigher with a Nova-style multiplier."""

    name = "Weigher"

    def __init__(self, multiplier: float = 1.0) -> None:
        self.multiplier = multiplier

    @abc.abstractmethod
    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        """Unnormalised score; higher means more preferred at multiplier 1."""

    def raw_weights(self, hosts: list[HostState], spec: RequestSpec) -> list[float]:
        """Batch form of :meth:`raw_weight`; override to skip per-host
        dispatch on the scheduling hot path."""
        raw_weight = self.raw_weight
        return [raw_weight(h, spec) for h in hosts]

    def __repr__(self) -> str:
        return f"<{self.name} x{self.multiplier}>"


class CPUWeigher(Weigher):
    """Scores by free vCPUs (Nova CPUWeigher)."""

    name = "CPUWeigher"

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        return host.free_vcpus

    def raw_weights(self, hosts: list[HostState], spec: RequestSpec) -> list[float]:
        return [h.free_vcpus for h in hosts]


class RAMWeigher(Weigher):
    """Scores by free memory (Nova RAMWeigher)."""

    name = "RAMWeigher"

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        return host.free_ram_mb

    def raw_weights(self, hosts: list[HostState], spec: RequestSpec) -> list[float]:
        return [h.free_ram_mb for h in hosts]


class DiskWeigher(Weigher):
    """Scores by free local storage."""

    name = "DiskWeigher"

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        return host.free_disk_gb

    def raw_weights(self, hosts: list[HostState], spec: RequestSpec) -> list[float]:
        return [h.free_disk_gb for h in hosts]


class NumInstancesWeigher(Weigher):
    """Scores by instance count; positive multiplier prefers fewer VMs."""

    name = "NumInstancesWeigher"

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        return -float(host.num_instances)

    def raw_weights(self, hosts: list[HostState], spec: RequestSpec) -> list[float]:
        return [-float(h.num_instances) for h in hosts]


class IoOpsWeigher(Weigher):
    """Scores by in-flight provisioning operations (Nova IoOpsWeigher).

    A positive multiplier prefers hosts with *fewer* concurrent
    build/resize/migrate operations, spreading provisioning I/O load.
    """

    name = "IoOpsWeigher"

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        return -float(host.num_io_ops)


class FitnessWeigher(Weigher):
    """Best-fit weigher: prefers hosts whose free capacity most tightly
    wraps the request (smaller leftover dominant share scores higher).

    Not in vanilla Nova — included as the "extension point" §7 recommends.
    """

    name = "FitnessWeigher"

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        requested = spec.requested()
        leftovers = []
        if host.total_vcpus > 0:
            leftovers.append((host.free_vcpus - requested.vcpus) / host.total_vcpus)
        if host.total_ram_mb > 0:
            leftovers.append((host.free_ram_mb - requested.memory_mb) / host.total_ram_mb)
        if not leftovers:
            return 0.0
        return -max(leftovers)


class WeigherPipeline:
    """Normalise, scale, and sum weigher scores across candidates."""

    def __init__(self, weighers: list[Weigher]) -> None:
        if not weighers:
            raise ValueError("need at least one weigher")
        self.weighers = weighers

    def rank(
        self, hosts: list[HostState], spec: RequestSpec
    ) -> list[tuple[HostState, float]]:
        """Candidates with combined scores, best first.

        Ties break by host_id for determinism.
        """
        if not hosts:
            return []
        # Candidate lists are small (a handful of BBs survive filtering), so
        # plain-Python min-max beats numpy's per-call overhead here.
        combined = [0.0] * len(hosts)
        for weigher in self.weighers:
            raw = weigher.raw_weights(hosts, spec)
            lo = min(raw)
            span = max(raw) - lo
            if span < 1e-12:
                continue  # constant column normalises to all-zeros
            multiplier = weigher.multiplier
            for i, value in enumerate(raw):
                combined[i] += multiplier * ((value - lo) / span)
        order = sorted(
            range(len(hosts)), key=lambda i: (-combined[i], hosts[i].host_id)
        )
        return [(hosts[i], combined[i]) for i in order]


def _normalize(raw: np.ndarray) -> np.ndarray:
    """Nova's min-max normalisation to [0, 1]; constant columns become 0."""
    lo, hi = raw.min(), raw.max()
    if hi - lo < 1e-12:
        return np.zeros_like(raw)
    return (raw - lo) / (hi - lo)
