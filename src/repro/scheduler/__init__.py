"""OpenStack Nova scheduler simulator.

Reproduces the scheduling architecture of §2.2 and Figures 2–3: a
filter/weigher pipeline performing *initial placement* of VMs onto compute
hosts (in the SAP deployment a compute host is a whole vSphere cluster /
building block), backed by a placement service that maintains resource
provider inventories and consumer allocations, with greedy
selection-plus-retries and alternates.
"""

from repro.scheduler.request import RequestSpec
from repro.scheduler.placement import (
    Allocation,
    AllocationError,
    PlacementService,
    ResourceProvider,
)
from repro.scheduler.filters import (
    AggregateInstanceExtraSpecsFilter,
    AllHostsFilter,
    AvailabilityZoneFilter,
    ComputeFilter,
    DiskFilter,
    Filter,
    MaintenanceFilter,
    NumInstancesFilter,
    RamFilter,
    TenantIsolationFilter,
    VCpuFilter,
)
from repro.scheduler.weighers import (
    CPUWeigher,
    DiskWeigher,
    FitnessWeigher,
    IoOpsWeigher,
    NumInstancesWeigher,
    RAMWeigher,
    Weigher,
    WeigherPipeline,
)
from repro.scheduler.pipeline import (
    FilterScheduler,
    HostState,
    NoValidHost,
    SchedulingResult,
)
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.index import HostStateIndex, bucket_key
from repro.scheduler.policies import pack_policy_weighers, spread_policy_weighers
from repro.scheduler.stats import (
    PLACEMENT_STAT_KEYS,
    SCHEDULER_STAT_KEYS,
    normalize_stats,
    stats_of,
)

__all__ = [
    "RequestSpec",
    "PlacementService",
    "ResourceProvider",
    "Allocation",
    "AllocationError",
    "Filter",
    "AllHostsFilter",
    "ComputeFilter",
    "RamFilter",
    "VCpuFilter",
    "DiskFilter",
    "AvailabilityZoneFilter",
    "AggregateInstanceExtraSpecsFilter",
    "TenantIsolationFilter",
    "MaintenanceFilter",
    "NumInstancesFilter",
    "Weigher",
    "WeigherPipeline",
    "CPUWeigher",
    "RAMWeigher",
    "DiskWeigher",
    "NumInstancesWeigher",
    "IoOpsWeigher",
    "FitnessWeigher",
    "FilterScheduler",
    "HostState",
    "SchedulingResult",
    "NoValidHost",
    "SchedulerConfig",
    "HostStateIndex",
    "bucket_key",
    "pack_policy_weighers",
    "spread_policy_weighers",
    "SCHEDULER_STAT_KEYS",
    "PLACEMENT_STAT_KEYS",
    "normalize_stats",
    "stats_of",
]
