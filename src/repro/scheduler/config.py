"""Unified scheduler configuration.

Historically :class:`~repro.scheduler.pipeline.FilterScheduler` grew one
keyword argument per knob (filters, weighers, max_attempts, alternates)
and callers wired policy selection by hand via ``weighers_for_flavor``.
:class:`SchedulerConfig` collapses that surface into one value object that
every entry point (simulation runner, fault scenarios, rebalancer,
benchmarks, examples) passes to ``FilterScheduler(region, placement,
config)``.  The old keyword arguments remain as deprecated shims for one
release.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # avoid import cycles; only needed for type checkers
    from repro.scheduler.filters import Filter
    from repro.scheduler.weighers import Weigher


@dataclass(frozen=True)
class SchedulerConfig:
    """Everything that shapes one FilterScheduler's behaviour.

    ``filters`` / ``weighers`` of ``None`` mean "use the deployment
    defaults": the SAP-like filter chain and the per-flavor pack/spread
    policy weighers (§3.2).  ``use_index`` enables the incremental
    :class:`~repro.scheduler.index.HostStateIndex`; ``track_filter_counts``
    keeps the legacy per-filter elimination trace on every result (turn it
    off on hot paths — survivors are identical, only the trace is dropped,
    and capacity bucket pre-selection plus cost-ordered short-circuiting
    kick in).
    """

    filters: Sequence["Filter"] | None = None
    weighers: Sequence["Weigher"] | None = None
    max_attempts: int = 3
    alternates: int = 3
    use_index: bool = True
    track_filter_counts: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.alternates < 0:
            raise ValueError("alternates must be >= 0")

    def fast(self) -> "SchedulerConfig":
        """This config with the per-filter trace disabled (hot-path mode)."""
        return replace(self, track_filter_counts=False)
