"""Nova server groups: scheduler-level affinity and anti-affinity.

Nova lets users create *server groups* with an affinity or anti-affinity
policy; the ServerGroup(Anti)AffinityFilter then keeps group members
together on (or apart from) the hosts of earlier members.  In the SAP
deployment this is the mechanism for HA pairs of database replicas —
anti-affinity across compute hosts complements the intra-cluster DRS rules
(:mod:`repro.drs.affinity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scheduler.filters import Filter
from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec

POLICIES = ("affinity", "anti-affinity", "soft-affinity", "soft-anti-affinity")


@dataclass
class ServerGroup:
    """One named group of VMs sharing a placement policy."""

    group_id: str
    policy: str
    members: set[str] = field(default_factory=set)
    #: host_id -> member count, maintained as members are placed.
    hosts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; known: {POLICIES}")


class ServerGroupRegistry:
    """Groups by id, plus the member → group index the filters consult."""

    def __init__(self) -> None:
        self._groups: dict[str, ServerGroup] = {}
        self._member_group: dict[str, str] = {}

    def create(self, group_id: str, policy: str) -> ServerGroup:
        """Create a new group with the given placement policy."""
        if group_id in self._groups:
            raise ValueError(f"group {group_id} already exists")
        group = ServerGroup(group_id=group_id, policy=policy)
        self._groups[group_id] = group
        return group

    def get(self, group_id: str) -> ServerGroup:
        """Look up a group (KeyError if unknown)."""
        try:
            return self._groups[group_id]
        except KeyError:
            raise KeyError(f"unknown server group: {group_id}") from None

    def add_member(self, group_id: str, vm_id: str) -> None:
        """Register a VM in a group; a VM belongs to at most one."""
        group = self.get(group_id)
        if vm_id in self._member_group:
            raise ValueError(f"{vm_id} already belongs to a group")
        group.members.add(vm_id)
        self._member_group[vm_id] = group_id

    def group_of(self, vm_id: str) -> ServerGroup | None:
        """The VM's group, or None for non-members."""
        group_id = self._member_group.get(vm_id)
        return self._groups[group_id] if group_id else None

    def record_placement(self, vm_id: str, host_id: str) -> None:
        """Register where a group member landed (call after scheduling)."""
        group = self.group_of(vm_id)
        if group is None:
            return
        group.hosts[host_id] = group.hosts.get(host_id, 0) + 1

    def record_removal(self, vm_id: str, host_id: str) -> None:
        """Unregister a member's placement (VM deleted or moved)."""
        group = self.group_of(vm_id)
        if group is None:
            return
        count = group.hosts.get(host_id, 0) - 1
        if count > 0:
            group.hosts[host_id] = count
        else:
            group.hosts.pop(host_id, None)


class ServerGroupAffinityFilter(Filter):
    """Hard affinity: members must share the host of earlier members."""

    name = "ServerGroupAffinityFilter"
    cost = 2

    def __init__(self, registry: ServerGroupRegistry) -> None:
        self.registry = registry

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        group = self.registry.group_of(spec.vm_id)
        if group is None or group.policy != "affinity" or not group.hosts:
            return True
        return host.host_id in group.hosts


class ServerGroupAntiAffinityFilter(Filter):
    """Hard anti-affinity: members must land on distinct hosts."""

    name = "ServerGroupAntiAffinityFilter"
    cost = 2

    def __init__(self, registry: ServerGroupRegistry) -> None:
        self.registry = registry

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        group = self.registry.group_of(spec.vm_id)
        if group is None or group.policy != "anti-affinity":
            return True
        return host.host_id not in group.hosts
