"""Incremental host-state index for the scheduling hot path.

The legacy pipeline rebuilds every building block's :class:`HostState`
from scratch for each request — O(building blocks × (nodes + VMs)) per
placement.  At paper scale (~1,800 hypervisors, ~48k VMs) that rescan
dominates the run.  The index keeps one long-lived ``HostState`` per
building block and maintains it incrementally:

* a :class:`~repro.scheduler.placement.PlacementService` listener updates
  free capacities the instant a claim / release / move lands — exactly,
  since free capacity derives from the provider alone, no rebuild needed;
* a cheap *fingerprint scan* — ``(vm_count, any_healthy)`` per building
  block, one pass over the node registries — catches mutations that do
  not flow through placement (host failures, maintenance, node-level VM
  bookkeeping).  The scan itself is skipped in O(1) whenever
  :data:`repro.infrastructure.hierarchy.NODE_MUTATION_EPOCH` shows no
  node changed since the last query;
* free-vCPU *buckets* (log₂-spaced) give a constant-time superset of the
  hosts that can possibly satisfy a request's vCPU demand, so capacity
  filters start from a pre-narrowed candidate list.

Invariants (checked by the property tests):

1. After ``refresh()``, every cached state equals
   ``HostState.from_building_block(bb, placement)`` field-for-field
   (modulo ``metadata``, which schedulers may decorate in place).
2. ``bucket(free) >= bucket(v)`` for every host with ``free >= v``, so
   ``candidates(v)`` is always a superset of the exact feasible set —
   pre-selection can never drop a host the filters would have kept.
"""

from __future__ import annotations

from repro.infrastructure import hierarchy
from repro.infrastructure.hierarchy import BuildingBlock, Region
from repro.scheduler.hoststate import HostState
from repro.scheduler.placement import (
    DISK_GB,
    MEMORY_MB,
    VCPU,
    AllocationError,
    PlacementService,
)


def bucket_key(free_vcpus: float) -> int:
    """Log₂ bucket of a free-vCPU amount (monotonic in ``free_vcpus``)."""
    return max(0, int(free_vcpus)).bit_length()


class HostStateIndex:
    """Long-lived, incrementally maintained HostStates for one region."""

    def __init__(self, region: Region, placement: PlacementService) -> None:
        self.region = region
        self.placement = placement
        self._bbs: dict[str, BuildingBlock] = {
            bb.bb_id: bb for bb in region.iter_building_blocks()
        }
        self._order: list[str] = list(self._bbs)
        self._states: dict[str, HostState] = {}
        #: bb_id -> (vm_count, any_healthy) at last rebuild
        self._fingerprints: dict[str, tuple[int, bool]] = {}
        self._dirty: set[str] = set(self._bbs)
        self._buckets: dict[int, set[str]] = {}
        self._bucket_of: dict[str, int] = {}
        #: Scan accelerators, refreshed on rebuild: the node tuple and the
        #: *live* per-node VM dicts (len() on them always reflects current
        #: occupancy — nodes mutate these dicts in place, never replace them).
        self._scan_nodes: dict[str, tuple] = {}
        self._scan_vms: dict[str, list[dict]] = {}
        #: Last hierarchy.NODE_MUTATION_EPOCH the fingerprint scan ran at;
        #: -1 forces the first scan.
        self._seen_epoch = -1
        placement.add_listener(self._on_placement_event)

    def close(self) -> None:
        """Unsubscribe from placement events (index becomes inert)."""
        self.placement.remove_listener(self._on_placement_event)

    # -- incremental maintenance ------------------------------------------------

    def _on_placement_event(self, event: str, provider_id: str) -> None:
        if provider_id not in self._bbs:
            return
        if event == "remove":
            self._discard(provider_id)
            return
        # Fast path: free capacities track the provider immediately and
        # exactly (they derive from nothing else).  The other fields
        # (tenants, num_instances, enabled) change only through node-level
        # mutations, which the fingerprint scan in :meth:`refresh` catches —
        # so a claim/release does NOT need a full rebuild.
        state = self._states.get(provider_id)
        if state is None:
            self._dirty.add(provider_id)
            return
        try:
            provider = self.placement.provider(provider_id)
        except AllocationError:
            return
        state.free_vcpus = provider.free(VCPU)
        state.free_ram_mb = provider.free(MEMORY_MB)
        state.free_disk_gb = provider.free(DISK_GB)
        self._place_in_bucket(provider_id, state.free_vcpus)

    def invalidate(self, host_id: str) -> None:
        """Force a from-scratch rebuild of one building block's state."""
        if host_id in self._bbs:
            self._dirty.add(host_id)

    def invalidate_all(self) -> None:
        """Force a full rebuild on the next :meth:`refresh`."""
        self._dirty.update(self._bbs)

    def refresh(self) -> None:
        """Bring every cached state up to date (fingerprint scan + rebuilds)."""
        dirty = self._dirty
        epoch = hierarchy.NODE_MUTATION_EPOCH
        if epoch != self._seen_epoch:
            self._seen_epoch = epoch
            self._fingerprint_scan(dirty)
        if dirty:
            for bb_id in dirty:
                self._rebuild_one(bb_id)
            dirty.clear()

    def _fingerprint_scan(self, dirty: set[str]) -> None:
        """Mark building blocks whose node-level view drifted as dirty."""
        fingerprints = self._fingerprints
        scan_nodes = self._scan_nodes
        scan_vms = self._scan_vms
        for bb_id, bb in self._bbs.items():
            if bb_id in dirty:
                continue
            # O(nodes) with a tiny constant: C-level sum over the cached
            # live VM dicts, short-circuiting any() on the raw flags (skips
            # per-node ``healthy`` property-call overhead).  Node membership
            # changes are caught by the length check.
            nodes = scan_nodes[bb_id]
            if len(nodes) != len(bb.nodes):
                dirty.add(bb_id)
                continue
            vm_count = sum(map(len, scan_vms[bb_id]))
            healthy = any(
                not (n.maintenance or n.failed or n.quarantined) for n in nodes
            )
            if fingerprints.get(bb_id) != (vm_count, healthy):
                dirty.add(bb_id)

    def _rebuild_one(self, bb_id: str) -> None:
        bb = self._bbs[bb_id]
        old = self._states.get(bb_id)
        state = HostState.from_building_block(bb, self.placement)
        if old is not None and old.metadata:
            # Preserve scheduler-side decorations (e.g. churn class) the
            # way a fresh from-scratch rebuild by the caller would re-stamp.
            state.metadata.update(old.metadata)
        self._states[bb_id] = state
        self._fingerprints[bb_id] = (bb.vm_count, state.enabled)
        nodes = tuple(bb.nodes.values())
        self._scan_nodes[bb_id] = nodes
        self._scan_vms[bb_id] = [n.vms for n in nodes]
        self._place_in_bucket(bb_id, state.free_vcpus)

    def _discard(self, bb_id: str) -> None:
        self._bbs.pop(bb_id, None)
        self._states.pop(bb_id, None)
        self._fingerprints.pop(bb_id, None)
        self._scan_nodes.pop(bb_id, None)
        self._scan_vms.pop(bb_id, None)
        self._dirty.discard(bb_id)
        if bb_id in self._order:
            self._order.remove(bb_id)
        old = self._bucket_of.pop(bb_id, None)
        if old is not None:
            self._buckets.get(old, set()).discard(bb_id)

    def _place_in_bucket(self, bb_id: str, free_vcpus: float) -> None:
        key = bucket_key(free_vcpus)
        old = self._bucket_of.get(bb_id)
        if old == key:
            return
        if old is not None:
            self._buckets[old].discard(bb_id)
        self._buckets.setdefault(key, set()).add(bb_id)
        self._bucket_of[bb_id] = key

    # -- queries ---------------------------------------------------------------

    def states(self) -> list[HostState]:
        """All cached states in region iteration order (call refresh first)."""
        states = self._states
        return [states[bb_id] for bb_id in self._order]

    def candidates(self, min_vcpus: float) -> list[HostState]:
        """States whose free-vCPU bucket can possibly fit ``min_vcpus``.

        A superset of the exact feasible set (invariant 2); capacity
        filters still run afterwards and provide the exact check.
        """
        want = bucket_key(min_vcpus)
        eligible: set[str] = set()
        for key, members in self._buckets.items():
            if key >= want:
                eligible.update(members)
        if len(eligible) == len(self._order):
            return self.states()
        states = self._states
        return [states[bb_id] for bb_id in self._order if bb_id in eligible]

    def buckets(self) -> dict[int, frozenset[str]]:
        """Snapshot of the bucket table (for tests / introspection)."""
        return {k: frozenset(v) for k, v in self._buckets.items() if v}
