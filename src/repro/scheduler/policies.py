"""Placement policies: the pack-vs-spread split of §3.2.

"The default strategy aims to load-balance general-purpose workloads,
whereas SAP S/4HANA workloads are explicitly bin-packed to maximize memory
utilization."  Spread uses positive free-resource multipliers; pack flips
the memory weigher negative so fuller hosts win.
"""

from __future__ import annotations

from repro.infrastructure.flavors import Flavor
from repro.scheduler.weighers import (
    CPUWeigher,
    DiskWeigher,
    NumInstancesWeigher,
    RAMWeigher,
    Weigher,
)


def spread_policy_weighers() -> list[Weigher]:
    """Load-balancing weighers for general-purpose workloads."""
    return [
        CPUWeigher(multiplier=1.0),
        RAMWeigher(multiplier=1.0),
        DiskWeigher(multiplier=0.2),
        NumInstancesWeigher(multiplier=0.3),
    ]


def pack_policy_weighers() -> list[Weigher]:
    """Memory bin-packing weighers for S/4HANA workloads."""
    return [
        RAMWeigher(multiplier=-2.0),
        CPUWeigher(multiplier=-0.5),
        NumInstancesWeigher(multiplier=-0.1),
    ]


def weighers_for_flavor(flavor: Flavor) -> list[Weigher]:
    """Pick the policy weigher set by workload family."""
    if flavor.family == "hana":
        return pack_policy_weighers()
    return spread_policy_weighers()
