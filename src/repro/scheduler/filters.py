"""Nova-style scheduler filters.

Each filter eliminates candidate hosts that cannot satisfy the request
(§2.2, Fig 3).  Filters are stateless callables: ``passes(host, spec)``.
The filter set mirrors the upstream Nova filters the paper names plus the
SAP-specific aggregate handling for special-purpose building blocks (§3.1).
"""

from __future__ import annotations

import abc

from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec


class Filter(abc.ABC):
    """Base class: one pass/fail decision per (host, request)."""

    name = "Filter"

    #: Relative evaluation cost; the scheduler's fast path runs cheaper
    #: filters first so inexpensive eliminations (capacity, aggregate)
    #: short-circuit expensive ones (affinity, QoS/NUMA).  Ordering never
    #: changes the survivor set — filters are pure per-host predicates.
    cost = 1

    @abc.abstractmethod
    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        """True when ``host`` remains a valid candidate for ``spec``."""

    def relevant(self, spec: RequestSpec) -> bool:
        """False when this filter cannot reject any host for ``spec``.

        The scheduler's fast path skips irrelevant filters entirely (e.g.
        the retry filter when nothing is excluded yet).  Must be
        conservative: only return False when ``passes`` would be True for
        every conceivable host.
        """
        return True

    def filter_all(
        self, hosts: list[HostState], spec: RequestSpec
    ) -> list[HostState]:
        """Hosts surviving this filter."""
        passes = self.passes
        return [h for h in hosts if passes(h, spec)]

    def __repr__(self) -> str:
        return f"<{self.name}>"


class AllHostsFilter(Filter):
    """No-op filter (Nova's default fallback)."""

    name = "AllHostsFilter"
    cost = 0

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return True

    def relevant(self, spec: RequestSpec) -> bool:
        return False


class ComputeFilter(Filter):
    """Rejects disabled hosts and hosts without compute capacity.

    Per the paper: "the ComputeFilter removes all hypervisors with
    insufficient compute resources (CPU, memory) for the VM."
    """

    name = "ComputeFilter"
    cost = 0

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        if not host.enabled:
            return False
        requested = spec.requested()
        return (
            host.free_vcpus >= requested.vcpus
            and host.free_ram_mb >= requested.memory_mb
        )

    def filter_all(
        self, hosts: list[HostState], spec: RequestSpec
    ) -> list[HostState]:
        # Hot path: resolve the requested capacity once per batch instead
        # of once per host.
        requested = spec.requested()
        vcpus, ram_mb = requested.vcpus, requested.memory_mb
        return [
            h
            for h in hosts
            if h.enabled and h.free_vcpus >= vcpus and h.free_ram_mb >= ram_mb
        ]


class VCpuFilter(Filter):
    """Free-vCPU check only (Nova CoreFilter)."""

    name = "VCpuFilter"
    cost = 0

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.free_vcpus >= spec.flavor.vcpus


class RamFilter(Filter):
    """Free-memory check only."""

    name = "RamFilter"
    cost = 0

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.free_ram_mb >= spec.flavor.ram_mb


class DiskFilter(Filter):
    """Free-local-storage check."""

    name = "DiskFilter"
    cost = 0

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.free_disk_gb >= spec.flavor.disk_gb


class AvailabilityZoneFilter(Filter):
    """Honours the requested AZ; requests without an AZ match any host."""

    name = "AvailabilityZoneFilter"
    cost = 0

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        if spec.availability_zone is None:
            return True
        return host.az == spec.availability_zone

    def relevant(self, spec: RequestSpec) -> bool:
        return spec.availability_zone is not None


class AggregateInstanceExtraSpecsFilter(Filter):
    """Matches flavor extra specs against host aggregate membership.

    Two-way exclusivity, per §3.1: flavors that demand an aggregate class
    (GPU, ≥3 TB HANA) only land on matching special-purpose building blocks,
    and those building blocks accept no other VMs.
    """

    name = "AggregateInstanceExtraSpecsFilter"
    cost = 0

    #: Aggregate classes that are exclusive to matching flavors.
    EXCLUSIVE_CLASSES = frozenset({"hana", "hana_xl", "gpu"})

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        wanted = spec.flavor.spec("aggregate_class")
        if wanted is not None:
            return host.aggregate_class == wanted
        return host.aggregate_class not in self.EXCLUSIVE_CLASSES


class TenantIsolationFilter(Filter):
    """Hosts with a tenant allowlist only accept those tenants."""

    name = "TenantIsolationFilter"
    cost = 0

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        if not host.allowed_tenants:
            return True
        return spec.tenant in host.allowed_tenants


class MaintenanceFilter(Filter):
    """Rejects hosts that are fully in maintenance."""

    name = "MaintenanceFilter"
    cost = 0

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.enabled


class NumInstancesFilter(Filter):
    """Caps the number of instances per host."""

    name = "NumInstancesFilter"
    cost = 0

    def __init__(self, max_instances: int = 10_000) -> None:
        if max_instances < 1:
            raise ValueError("max_instances must be positive")
        self.max_instances = max_instances

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.num_instances < self.max_instances


class RetryFilter(Filter):
    """Excludes hosts that already failed this request (Nova retries)."""

    name = "RetryFilter"
    cost = 0

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.host_id not in spec.excluded_hosts

    def relevant(self, spec: RequestSpec) -> bool:
        return bool(spec.excluded_hosts)


class QuarantineFilter(Filter):
    """Rejects hosts fenced by the host health service.

    Holds a reference to anything exposing ``quarantined_hosts`` (a set of
    host ids — building blocks and/or nodes, so the filter serves both the
    BB-level FilterScheduler and node-level schedulers).  The set is read
    live on every pass: quarantine decisions take effect on the next
    request without any filter rewiring.
    """

    name = "QuarantineFilter"
    cost = 0

    def __init__(self, health) -> None:
        self.health = health

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.host_id not in self.health.quarantined_hosts

    def relevant(self, spec: RequestSpec) -> bool:
        return bool(self.health.quarantined_hosts)


def default_filters() -> list[Filter]:
    """The filter chain used by the SAP-like deployment."""
    return [
        RetryFilter(),
        MaintenanceFilter(),
        AvailabilityZoneFilter(),
        AggregateInstanceExtraSpecsFilter(),
        TenantIsolationFilter(),
        ComputeFilter(),
        DiskFilter(),
    ]
