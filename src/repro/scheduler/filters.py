"""Nova-style scheduler filters.

Each filter eliminates candidate hosts that cannot satisfy the request
(§2.2, Fig 3).  Filters are stateless callables: ``passes(host, spec)``.
The filter set mirrors the upstream Nova filters the paper names plus the
SAP-specific aggregate handling for special-purpose building blocks (§3.1).
"""

from __future__ import annotations

import abc

from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec


class Filter(abc.ABC):
    """Base class: one pass/fail decision per (host, request)."""

    name = "Filter"

    @abc.abstractmethod
    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        """True when ``host`` remains a valid candidate for ``spec``."""

    def filter_all(
        self, hosts: list[HostState], spec: RequestSpec
    ) -> list[HostState]:
        """Hosts surviving this filter."""
        return [h for h in hosts if self.passes(h, spec)]

    def __repr__(self) -> str:
        return f"<{self.name}>"


class AllHostsFilter(Filter):
    """No-op filter (Nova's default fallback)."""

    name = "AllHostsFilter"

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return True


class ComputeFilter(Filter):
    """Rejects disabled hosts and hosts without compute capacity.

    Per the paper: "the ComputeFilter removes all hypervisors with
    insufficient compute resources (CPU, memory) for the VM."
    """

    name = "ComputeFilter"

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        if not host.enabled:
            return False
        requested = spec.requested()
        return (
            host.free_vcpus >= requested.vcpus
            and host.free_ram_mb >= requested.memory_mb
        )


class VCpuFilter(Filter):
    """Free-vCPU check only (Nova CoreFilter)."""

    name = "VCpuFilter"

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.free_vcpus >= spec.flavor.vcpus


class RamFilter(Filter):
    """Free-memory check only."""

    name = "RamFilter"

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.free_ram_mb >= spec.flavor.ram_mb


class DiskFilter(Filter):
    """Free-local-storage check."""

    name = "DiskFilter"

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.free_disk_gb >= spec.flavor.disk_gb


class AvailabilityZoneFilter(Filter):
    """Honours the requested AZ; requests without an AZ match any host."""

    name = "AvailabilityZoneFilter"

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        if spec.availability_zone is None:
            return True
        return host.az == spec.availability_zone


class AggregateInstanceExtraSpecsFilter(Filter):
    """Matches flavor extra specs against host aggregate membership.

    Two-way exclusivity, per §3.1: flavors that demand an aggregate class
    (GPU, ≥3 TB HANA) only land on matching special-purpose building blocks,
    and those building blocks accept no other VMs.
    """

    name = "AggregateInstanceExtraSpecsFilter"

    #: Aggregate classes that are exclusive to matching flavors.
    EXCLUSIVE_CLASSES = frozenset({"hana", "hana_xl", "gpu"})

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        wanted = spec.flavor.spec("aggregate_class")
        if wanted is not None:
            return host.aggregate_class == wanted
        return host.aggregate_class not in self.EXCLUSIVE_CLASSES


class TenantIsolationFilter(Filter):
    """Hosts with a tenant allowlist only accept those tenants."""

    name = "TenantIsolationFilter"

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        if not host.allowed_tenants:
            return True
        return spec.tenant in host.allowed_tenants


class MaintenanceFilter(Filter):
    """Rejects hosts that are fully in maintenance."""

    name = "MaintenanceFilter"

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.enabled


class NumInstancesFilter(Filter):
    """Caps the number of instances per host."""

    name = "NumInstancesFilter"

    def __init__(self, max_instances: int = 10_000) -> None:
        if max_instances < 1:
            raise ValueError("max_instances must be positive")
        self.max_instances = max_instances

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.num_instances < self.max_instances


class RetryFilter(Filter):
    """Excludes hosts that already failed this request (Nova retries)."""

    name = "RetryFilter"

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        return host.host_id not in spec.excluded_hosts


def default_filters() -> list[Filter]:
    """The filter chain used by the SAP-like deployment."""
    return [
        RetryFilter(),
        MaintenanceFilter(),
        AvailabilityZoneFilter(),
        AggregateInstanceExtraSpecsFilter(),
        TenantIsolationFilter(),
        ComputeFilter(),
        DiskFilter(),
    ]
