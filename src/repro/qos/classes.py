"""QoS class definitions.

Modelled on the Kubernetes/OpenStack convention of three service tiers:

- **guaranteed** — dedicated (pinned) CPU, no overcommit, NUMA-aligned;
  for latency-sensitive in-memory databases;
- **burstable** — shared CPU with a modest overcommit ceiling and a
  contention bound; the default for production application servers;
- **besteffort** — full overcommit, no contention bound; dev/CI churn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.infrastructure.flavors import Flavor


@dataclass(frozen=True, slots=True)
class QosClass:
    """One service tier and its scheduling constraints."""

    name: str
    #: Maximum vCPU:pCPU ratio tolerable for this tier (1.0 = dedicated).
    max_cpu_overcommit: float
    #: Upper bound on acceptable host CPU contention (%); placement must
    #: avoid hosts whose recent contention exceeds it.
    contention_ceiling_pct: float
    #: Whether vCPUs must be pinned to dedicated physical cores.
    requires_pinning: bool
    #: Whether the VM's memory must fit within a minimal NUMA node set.
    requires_numa_alignment: bool

    def __post_init__(self) -> None:
        if self.max_cpu_overcommit < 1.0:
            raise ValueError("max_cpu_overcommit must be >= 1.0")
        if self.contention_ceiling_pct < 0:
            raise ValueError("contention_ceiling_pct must be non-negative")


QOS_CLASSES: dict[str, QosClass] = {
    "guaranteed": QosClass(
        name="guaranteed",
        max_cpu_overcommit=1.0,
        contention_ceiling_pct=1.0,
        requires_pinning=True,
        requires_numa_alignment=True,
    ),
    "burstable": QosClass(
        name="burstable",
        max_cpu_overcommit=2.0,
        contention_ceiling_pct=10.0,  # the paper's strict threshold
        requires_pinning=False,
        requires_numa_alignment=True,
    ),
    "besteffort": QosClass(
        name="besteffort",
        max_cpu_overcommit=8.0,
        contention_ceiling_pct=30.0,  # the paper's moderate threshold
        requires_pinning=False,
        requires_numa_alignment=False,
    ),
}


def qos_for_flavor(flavor: Flavor) -> QosClass:
    """Default QoS tier for a flavor.

    An explicit ``qos_class`` extra spec wins; otherwise HANA in-memory
    databases are guaranteed, other large flavors burstable, and the rest
    best-effort.
    """
    explicit = flavor.spec("qos_class")
    if explicit is not None:
        try:
            return QOS_CLASSES[explicit]
        except KeyError:
            raise ValueError(f"unknown qos_class {explicit!r}") from None
    if flavor.family == "hana":
        return QOS_CLASSES["guaranteed"]
    if flavor.vcpus > 16:
        return QOS_CLASSES["burstable"]
    return QOS_CLASSES["besteffort"]
