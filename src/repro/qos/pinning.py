"""CPU pinning: dedicated physical cores for latency-sensitive VMs.

§8: CPU pinning "ensures reduced latency to performance-sensitive VMs by
reserving dedicated CPU cores on hosts."  The allocator partitions a
node's cores into a pinned set (exclusively owned, never overcommitted)
and a shared pool; pinned VMs are immune to the noisy-neighbour contention
of §3.2 because their cores never appear in the shared scheduler's supply.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class PinningError(Exception):
    """A pinning request could not be satisfied."""


@dataclass
class CpuPinningAllocator:
    """Core-set bookkeeping for one compute node."""

    total_cores: int
    #: Cores the hypervisor itself keeps (never pinnable or shareable).
    reserved_system_cores: int = 2
    _pinned: dict[str, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_cores < 1:
            raise ValueError("total_cores must be positive")
        if not 0 <= self.reserved_system_cores < self.total_cores:
            raise ValueError("reserved_system_cores must leave usable cores")

    @property
    def pinned_cores(self) -> int:
        return sum(len(cores) for cores in self._pinned.values())

    @property
    def shared_cores(self) -> int:
        """Cores left for the shared (overcommitted) pool."""
        return self.total_cores - self.reserved_system_cores - self.pinned_cores

    def pin(self, vm_id: str, vcpus: int) -> tuple[int, ...]:
        """Reserve ``vcpus`` dedicated cores for ``vm_id``.

        Returns the pinned core indices.  Pinned cores come off the shared
        pool permanently until released.
        """
        if vcpus < 1:
            raise PinningError("must pin at least one core")
        if vm_id in self._pinned:
            raise PinningError(f"{vm_id} already has pinned cores")
        if vcpus > self.shared_cores:
            raise PinningError(
                f"cannot pin {vcpus} cores; only {self.shared_cores} available"
            )
        taken = {core for cores in self._pinned.values() for core in cores}
        available = [
            core
            for core in range(self.reserved_system_cores, self.total_cores)
            if core not in taken
        ]
        chosen = tuple(available[:vcpus])
        self._pinned[vm_id] = chosen
        return chosen

    def unpin(self, vm_id: str) -> None:
        """Return a VM's cores to the shared pool."""
        if vm_id not in self._pinned:
            raise PinningError(f"{vm_id} has no pinned cores")
        del self._pinned[vm_id]

    def cores_of(self, vm_id: str) -> tuple[int, ...]:
        """The VM's pinned core indices (PinningError if none)."""
        try:
            return self._pinned[vm_id]
        except KeyError:
            raise PinningError(f"{vm_id} has no pinned cores") from None

    def effective_shared_supply(self, shared_demand_cores: float) -> float:
        """Shared-pool supply seen by the contention model.

        Pinned VMs shrink the shared pool, so the same shared demand
        contends more — quantifying the §8 trade-off between dedicating
        cores and fleet-wide overcommit headroom.
        """
        if shared_demand_cores < 0:
            raise ValueError("shared demand must be non-negative")
        return float(self.shared_cores)
