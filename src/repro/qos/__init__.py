"""QoS classes, NUMA alignment, and CPU pinning.

The paper's outlook (§8): "QoS requirements provide guarantees for certain
performance standards such as latency, network bandwidth, disk I/O,
non-uniform memory access (NUMA) alignment, and CPU-pinning.  The latter
ensures reduced latency to performance-sensitive VMs by reserving dedicated
CPU cores on hosts.  In our future work, we plan to evaluate OpenStack QoS
classes for more fine-grained management of different types of VMs."

This package implements that evaluation surface: QoS class definitions
with overcommit eligibility, a socket-level NUMA topology model with
alignment scoring, a dedicated-core pinning allocator, and the scheduler
filters/weighers wiring them into placement.
"""

from repro.qos.classes import QOS_CLASSES, QosClass, qos_for_flavor
from repro.qos.numa import NumaNode, NumaPlacement, NumaTopology
from repro.qos.pinning import CpuPinningAllocator, PinningError
from repro.qos.filters import NumaFitFilter, QosClassFilter, NumaAlignmentWeigher

__all__ = [
    "QosClass",
    "QOS_CLASSES",
    "qos_for_flavor",
    "NumaNode",
    "NumaTopology",
    "NumaPlacement",
    "CpuPinningAllocator",
    "PinningError",
    "QosClassFilter",
    "NumaFitFilter",
    "NumaAlignmentWeigher",
]
