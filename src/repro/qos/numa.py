"""Socket-level NUMA topology model and alignment scoring.

A VM is NUMA-aligned when its vCPUs and memory fit within the smallest
possible set of NUMA nodes; crossing sockets costs remote-memory latency,
which matters for the in-memory databases the paper hosts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.infrastructure.flavors import Flavor


@dataclass
class NumaNode:
    """One socket: cores and local memory, with current reservations."""

    node_index: int
    cores: int
    memory_mb: float
    reserved_cores: int = 0
    reserved_memory_mb: float = 0.0

    @property
    def free_cores(self) -> int:
        return self.cores - self.reserved_cores

    @property
    def free_memory_mb(self) -> float:
        return self.memory_mb - self.reserved_memory_mb


@dataclass(frozen=True)
class NumaPlacement:
    """A VM's assignment across NUMA nodes."""

    vm_id: str
    #: node_index -> (cores, memory_mb) slices.
    slices: dict[int, tuple[int, float]]

    @property
    def node_count(self) -> int:
        return len(self.slices)

    @property
    def aligned(self) -> bool:
        """True when the VM occupies a single NUMA node."""
        return self.node_count == 1


@dataclass
class NumaTopology:
    """A host's NUMA layout with reservation bookkeeping."""

    nodes: list[NumaNode] = field(default_factory=list)
    placements: dict[str, NumaPlacement] = field(default_factory=dict)

    @classmethod
    def symmetric(cls, sockets: int, cores_total: int, memory_mb_total: float) -> "NumaTopology":
        """An even split of a host's resources across ``sockets``."""
        if sockets < 1:
            raise ValueError("sockets must be >= 1")
        if cores_total < sockets:
            raise ValueError("need at least one core per socket")
        per_cores = cores_total // sockets
        per_mem = memory_mb_total / sockets
        return cls(
            nodes=[
                NumaNode(node_index=i, cores=per_cores, memory_mb=per_mem)
                for i in range(sockets)
            ]
        )

    def min_nodes_required(self, flavor: Flavor) -> int:
        """Fewest NUMA nodes that could ever host this flavor."""
        if not self.nodes:
            raise ValueError("topology has no NUMA nodes")
        per_cores = self.nodes[0].cores
        per_mem = self.nodes[0].memory_mb
        by_cpu = math.ceil(flavor.vcpus / per_cores) if per_cores else len(self.nodes) + 1
        by_mem = math.ceil(flavor.ram_mb / per_mem) if per_mem else len(self.nodes) + 1
        return max(by_cpu, by_mem, 1)

    def place(self, vm_id: str, flavor: Flavor) -> NumaPlacement:
        """Reserve the tightest NUMA slice set for a VM.

        Greedy: fill the emptiest nodes first, using as few nodes as
        current free capacity allows.  Raises ``ValueError`` when the VM
        cannot fit at all.
        """
        if vm_id in self.placements:
            raise ValueError(f"{vm_id} already placed on this topology")
        remaining_cores = flavor.vcpus
        remaining_mem = flavor.ram_mb
        slices: dict[int, tuple[int, float]] = {}
        # Most-free-first keeps big VMs on as few sockets as possible.
        for node in sorted(self.nodes, key=lambda n: (-n.free_cores, n.node_index)):
            if remaining_cores <= 0 and remaining_mem <= 0:
                break
            take_cores = min(remaining_cores, node.free_cores)
            take_mem = min(remaining_mem, node.free_memory_mb)
            if take_cores <= 0 and take_mem <= 0:
                continue
            # A slice must make progress on the binding dimension.
            slices[node.node_index] = (int(take_cores), float(take_mem))
            remaining_cores -= take_cores
            remaining_mem -= take_mem
        if remaining_cores > 0 or remaining_mem > 1e-6:
            raise ValueError(f"{vm_id} does not fit on this NUMA topology")
        for index, (cores, mem) in slices.items():
            node = self.nodes[index]
            node.reserved_cores += cores
            node.reserved_memory_mb += mem
        placement = NumaPlacement(vm_id=vm_id, slices=slices)
        self.placements[vm_id] = placement
        return placement

    def release(self, vm_id: str) -> None:
        """Free a VM's NUMA reservations (KeyError if absent)."""
        placement = self.placements.pop(vm_id, None)
        if placement is None:
            raise KeyError(f"{vm_id} has no NUMA placement")
        for index, (cores, mem) in placement.slices.items():
            node = self.nodes[index]
            node.reserved_cores -= cores
            node.reserved_memory_mb -= mem

    def can_fit(self, flavor: Flavor) -> bool:
        """Whether the flavor fits the current free capacity at all."""
        free_cores = sum(n.free_cores for n in self.nodes)
        free_mem = sum(n.free_memory_mb for n in self.nodes)
        return flavor.vcpus <= free_cores and flavor.ram_mb <= free_mem + 1e-6

    def can_fit_aligned(self, flavor: Flavor) -> bool:
        """Whether the flavor fits the *minimal* node count right now."""
        needed = self.min_nodes_required(flavor)
        if needed == 1:
            return any(
                n.free_cores >= flavor.vcpus and n.free_memory_mb >= flavor.ram_mb - 1e-6
                for n in self.nodes
            )
        # Multi-node flavors: the `needed` emptiest nodes must suffice.
        best = sorted(self.nodes, key=lambda n: -n.free_cores)[:needed]
        return (
            sum(n.free_cores for n in best) >= flavor.vcpus
            and sum(n.free_memory_mb for n in best) >= flavor.ram_mb - 1e-6
        )

    def alignment_score(self, flavor: Flavor) -> float:
        """1.0 when the flavor would land on its minimal node count, less
        when fragmentation forces extra sockets, 0.0 when it cannot fit."""
        if not self.can_fit(flavor):
            return 0.0
        if self.can_fit_aligned(flavor):
            return 1.0
        return float(self.min_nodes_required(flavor)) / len(self.nodes)
