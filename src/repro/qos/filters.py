"""Scheduler integration for QoS classes and NUMA alignment.

Wires the §8 QoS surface into the filter/weigher pipeline:
:class:`QosClassFilter` rejects hosts whose overcommit or recent
contention violates the request's tier; :class:`NumaFitFilter` and
:class:`NumaAlignmentWeigher` honour socket topology.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.qos.classes import qos_for_flavor
from repro.qos.numa import NumaTopology
from repro.scheduler.filters import Filter
from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec
from repro.scheduler.weighers import Weigher


class QosClassFilter(Filter):
    """Enforces the request's QoS tier against host properties.

    ``contention_scores`` maps host_id to recent contention % (as from
    :func:`repro.core.contention.contention_summary` per scope); hosts
    without a score count as contention-free.
    """

    name = "QosClassFilter"
    cost = 2

    def __init__(self, contention_scores: Mapping[str, float] | None = None) -> None:
        self.contention_scores = contention_scores or {}

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        qos = qos_for_flavor(spec.flavor)
        if host.total_vcpus > 0:
            # The host's configured overcommit is visible as the ratio of
            # allocatable vCPUs to physical cores recorded in metadata, or
            # conservatively inferred from totals when absent.
            ratio = float(host.metadata.get("cpu_overcommit", "0") or 0)
            if ratio and ratio > qos.max_cpu_overcommit:
                return False
        contention = float(self.contention_scores.get(host.host_id, 0.0))
        return contention <= qos.contention_ceiling_pct


class NumaFitFilter(Filter):
    """Rejects hosts whose NUMA topology cannot hold the request.

    ``topologies`` maps host_id to the host's (current) NUMA state.  Tiers
    requiring alignment must fit their minimal node count; others just
    need aggregate capacity.
    """

    name = "NumaFitFilter"
    cost = 3

    def __init__(self, topologies: Mapping[str, NumaTopology]) -> None:
        self.topologies = topologies

    def passes(self, host: HostState, spec: RequestSpec) -> bool:
        topology = self.topologies.get(host.host_id)
        if topology is None:
            return True  # hosts without NUMA data are unconstrained
        qos = qos_for_flavor(spec.flavor)
        if qos.requires_numa_alignment:
            return topology.can_fit_aligned(spec.flavor)
        return topology.can_fit(spec.flavor)


class NumaAlignmentWeigher(Weigher):
    """Prefers hosts where the request lands on fewer NUMA nodes."""

    name = "NumaAlignmentWeigher"

    def __init__(
        self, topologies: Mapping[str, NumaTopology], multiplier: float = 1.0
    ) -> None:
        super().__init__(multiplier)
        self.topologies = topologies

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        topology = self.topologies.get(host.host_id)
        if topology is None:
            return 0.0
        return topology.alignment_score(spec.flavor)
