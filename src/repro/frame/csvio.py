"""CSV round-trip for frames.

The public SAP dataset is distributed as anonymised CSV telemetry; these
helpers read and write that interchange format.  Numeric columns are
type-inferred (int, then float, else string).
"""

from __future__ import annotations

import csv
import io
import re
from pathlib import Path

import numpy as np

#: Decimal/scientific literals without leading zeros — "00"/"007" must stay
#: strings so anonymised identifiers round-trip losslessly.  nan/inf are
#: included because missing lifecycle timestamps serialise as "nan".
_FLOAT_RE = re.compile(r"-?((0|[1-9]\d*)(\.\d+)?([eE][+-]?\d+)?|nan|inf)")

from repro.frame.frame import Frame


def write_csv(frame: Frame, path: str | Path) -> None:
    """Write ``frame`` to ``path`` as UTF-8 CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(frame.names)
        columns = [frame[name] for name in frame.names]
        for i in range(len(frame)):
            writer.writerow([_render(col[i]) for col in columns])


def dumps_csv(frame: Frame) -> str:
    """Render ``frame`` as a CSV string (header + rows)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(frame.names)
    columns = [frame[name] for name in frame.names]
    for i in range(len(frame)):
        writer.writerow([_render(col[i]) for col in columns])
    return buf.getvalue()


def read_csv(path: str | Path) -> Frame:
    """Read a CSV file written by :func:`write_csv` back into a frame."""
    with Path(path).open("r", newline="", encoding="utf-8") as fh:
        return loads_csv(fh.read())


def loads_csv(text: str) -> Frame:
    """Parse CSV text into a frame, inferring column types."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        return Frame()
    raw: dict[str, list[str]] = {name: [] for name in header}
    for row in reader:
        if not row:
            continue
        for name, value in zip(header, row):
            raw[name].append(value)
    return Frame({name: _infer(values) for name, values in raw.items()})


def _render(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and value.is_integer():
        return str(value)
    return str(value)


def _infer(values: list[str]) -> np.ndarray:
    """Infer int -> float -> string column types from text cells.

    Only ASCII numerals qualify — Python's int()/float() accept exotic
    Unicode digits, which must stay strings to round-trip losslessly.
    """
    if not values:
        return np.asarray([])
    if all(v.isascii() for v in values):
        try:
            ints = [int(v) for v in values]
            # Only when every cell is in canonical form — "007" must stay a
            # string or it would not round-trip.
            if all(str(i) == v for i, v in zip(ints, values)):
                return np.asarray(ints)
        except (ValueError, OverflowError):
            pass
        if all(_FLOAT_RE.fullmatch(v) for v in values):
            try:
                return np.asarray([float(v) for v in values])
            except (ValueError, OverflowError):
                pass
    return np.asarray(values, dtype=object)
