"""Minimal columnar data table used throughout the analysis pipeline.

The public SAP dataset ships as CSV files; the original authors analysed it
with pandas.  This environment has no pandas, so :mod:`repro.frame` provides
the small, typed subset of tabular operations the analyses need: column
selection, row filtering, group-by aggregation, sorting, joins, and CSV
round-tripping.  Columns are numpy arrays, so vectorised math works directly.
"""

from repro.frame.frame import Frame
from repro.frame.groupby import GroupBy
from repro.frame.csvio import read_csv, write_csv

__all__ = ["Frame", "GroupBy", "read_csv", "write_csv"]
