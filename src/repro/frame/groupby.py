"""Group-by aggregation for :class:`repro.frame.Frame`."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any, Callable

import numpy as np

from repro.frame.frame import Frame

AGGREGATIONS: dict[str, Callable[[np.ndarray], Any]] = {
    "sum": lambda a: np.sum(np.asarray(a, dtype=float)),
    "mean": lambda a: np.mean(np.asarray(a, dtype=float)),
    "min": lambda a: np.min(np.asarray(a, dtype=float)),
    "max": lambda a: np.max(np.asarray(a, dtype=float)),
    "std": lambda a: np.std(np.asarray(a, dtype=float)),
    "median": lambda a: np.median(np.asarray(a, dtype=float)),
    "p95": lambda a: np.percentile(np.asarray(a, dtype=float), 95),
    "count": len,
    "first": lambda a: a[0],
    "last": lambda a: a[-1],
}


class GroupBy:
    """Lazy grouping of a frame by one or more key columns."""

    def __init__(self, frame: Frame, keys: Sequence[str]) -> None:
        self._frame = frame
        self._keys = list(keys)
        self._groups: dict[tuple, list[int]] = {}
        key_cols = [frame[k] for k in self._keys]
        for i in range(len(frame)):
            key = tuple(col[i] for col in key_cols)
            self._groups.setdefault(key, []).append(i)

    def __len__(self) -> int:
        return len(self._groups)

    def groups(self) -> dict[tuple, Frame]:
        """Mapping of group key tuple to the group's sub-frame."""
        return {
            key: self._frame.take(np.asarray(rows, dtype=int))
            for key, rows in self._groups.items()
        }

    def agg(self, **specs: str | tuple[str, str] | Callable) -> Frame:
        """Aggregate each group into one output row.

        Each keyword is an output column.  Its value is either

        - ``"colname:aggname"`` — e.g. ``cpu="cpu_used:mean"``,
        - a ``(colname, aggname)`` tuple, or
        - a callable receiving the group sub-frame.
        """
        records: list[dict[str, Any]] = []
        for key, rows in sorted(self._groups.items(), key=lambda kv: _sortable(kv[0])):
            sub = self._frame.take(np.asarray(rows, dtype=int))
            record: dict[str, Any] = dict(zip(self._keys, key))
            for out_name, spec in specs.items():
                record[out_name] = _apply(sub, spec)
            records.append(record)
        return Frame.from_records(records)

    def apply(self, func: Callable[[Frame], dict[str, Any]]) -> Frame:
        """Map each group's sub-frame through ``func`` returning a row dict."""
        records = []
        for key, rows in sorted(self._groups.items(), key=lambda kv: _sortable(kv[0])):
            sub = self._frame.take(np.asarray(rows, dtype=int))
            record = dict(zip(self._keys, key))
            record.update(func(sub))
            records.append(record)
        return Frame.from_records(records)

    def size(self) -> Frame:
        """Row counts per group as a frame with a ``count`` column."""
        return self.agg(count=lambda sub: len(sub))


def _sortable(key: tuple) -> tuple:
    return tuple(str(k) if not isinstance(k, (int, float, np.number)) else k for k in key)


def _apply(sub: Frame, spec: str | tuple[str, str] | Callable) -> Any:
    if callable(spec):
        return spec(sub)
    if isinstance(spec, str):
        col_name, _, agg_name = spec.partition(":")
        if not agg_name:
            raise ValueError(f"aggregation spec {spec!r} must be 'column:agg'")
    else:
        col_name, agg_name = spec
    try:
        agg = AGGREGATIONS[agg_name]
    except KeyError:
        raise ValueError(
            f"unknown aggregation {agg_name!r}; known: {sorted(AGGREGATIONS)}"
        ) from None
    return agg(sub[col_name])
