"""Columnar table built on numpy arrays.

A :class:`Frame` is an ordered mapping of column name to a 1-D numpy array.
All columns share one length.  Operations never mutate in place unless the
method name says so; they return new frames sharing column arrays where safe.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Callable

import numpy as np


def _as_column(values: Any, length: int | None = None) -> np.ndarray:
    """Coerce ``values`` to a 1-D numpy array, broadcasting scalars."""
    if isinstance(values, np.ndarray):
        arr = values
    elif np.isscalar(values) or values is None:
        if length is None:
            raise ValueError("cannot broadcast a scalar without a known length")
        arr = np.full(length, values)
    else:
        values = list(values)
        if values and isinstance(values[0], str):
            arr = np.asarray(values, dtype=object)
        else:
            arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"columns must be 1-D, got shape {arr.shape}")
    if length is not None and len(arr) != length:
        raise ValueError(f"column length {len(arr)} != frame length {length}")
    return arr


class Frame:
    """An immutable-by-convention columnar table.

    Parameters
    ----------
    columns:
        Mapping of column name to column data.  Scalars broadcast to the
        length of the first non-scalar column.
    """

    def __init__(self, columns: Mapping[str, Any] | None = None) -> None:
        self._columns: dict[str, np.ndarray] = {}
        if not columns:
            return
        length: int | None = None
        # First pass: find the length from any sized value.
        for value in columns.values():
            if hasattr(value, "__len__") and not isinstance(value, str):
                length = len(value)
                break
        for name, value in columns.items():
            arr = _as_column(value, length)
            if length is None:
                length = len(arr)
            self._columns[name] = arr

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "Frame":
        """Build a frame from an iterable of dict rows.

        Missing keys become ``None`` (object dtype columns).
        """
        rows = list(records)
        if not rows:
            return cls()
        names: list[str] = []
        seen: set[str] = set()
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        data: dict[str, list[Any]] = {name: [] for name in names}
        for row in rows:
            for name in names:
                data[name].append(row.get(name))
        return cls({name: values for name, values in data.items()})

    @classmethod
    def empty(cls, names: Sequence[str]) -> "Frame":
        """An empty frame with the given column names."""
        return cls({name: np.asarray([]) for name in names})

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        return self._columns[name]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frame):
            return NotImplemented
        if self.names != other.names or len(self) != len(other):
            return False
        return all(
            np.array_equal(self._columns[n], other._columns[n]) for n in self.names
        )

    def __repr__(self) -> str:
        return f"Frame({len(self)} rows x {len(self._columns)} cols: {self.names})"

    @property
    def names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self), len(self._columns))

    def column(self, name: str) -> np.ndarray:
        """The column array for ``name`` (alias of ``frame[name]``)."""
        return self._columns[name]

    def row(self, index: int) -> dict[str, Any]:
        """Row ``index`` as a plain dict."""
        return {name: col[index] for name, col in self._columns.items()}

    def rows(self) -> Iterable[dict[str, Any]]:
        """Iterate rows as dicts (slow path; prefer column math)."""
        for i in range(len(self)):
            yield self.row(i)

    def to_records(self) -> list[dict[str, Any]]:
        """All rows as a list of dicts."""
        return list(self.rows())

    # -- column-level edits (return new frames) -----------------------------

    def with_column(self, name: str, values: Any) -> "Frame":
        """A copy of this frame with column ``name`` added or replaced."""
        new = dict(self._columns)
        new[name] = _as_column(values, len(self) if self._columns else None)
        return Frame(new)

    def without(self, *names: str) -> "Frame":
        """A copy without the given columns."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise KeyError(f"columns not present: {missing}")
        return Frame({n: c for n, c in self._columns.items() if n not in names})

    def select(self, names: Sequence[str]) -> "Frame":
        """A copy with only the given columns, in the given order."""
        return Frame({name: self._columns[name] for name in names})

    def rename(self, mapping: Mapping[str, str]) -> "Frame":
        """A copy with columns renamed per ``mapping``."""
        return Frame({mapping.get(n, n): c for n, c in self._columns.items()})

    # -- row-level operations ------------------------------------------------

    def take(self, indices: Any) -> "Frame":
        """Rows selected by an index array / list."""
        idx = np.asarray(indices)
        return Frame({n: c[idx] for n, c in self._columns.items()})

    def filter(self, mask: Any) -> "Frame":
        """Rows where the boolean ``mask`` is true."""
        m = np.asarray(mask, dtype=bool)
        if len(m) != len(self):
            raise ValueError(f"mask length {len(m)} != frame length {len(self)}")
        return Frame({n: c[m] for n, c in self._columns.items()})

    def where(self, predicate: Callable[[dict[str, Any]], bool]) -> "Frame":
        """Rows where ``predicate(row_dict)`` is true (slow path)."""
        mask = np.fromiter(
            (bool(predicate(row)) for row in self.rows()), dtype=bool, count=len(self)
        )
        return self.filter(mask)

    def head(self, n: int = 5) -> "Frame":
        return self.take(np.arange(min(n, len(self))))

    def sort(self, by: str | Sequence[str], reverse: bool = False) -> "Frame":
        """Rows sorted by one or more columns (stable)."""
        keys = [by] if isinstance(by, str) else list(by)
        # np.lexsort sorts by the *last* key first, so reverse the key list.
        order = np.lexsort([self._sort_key(k) for k in reversed(keys)])
        if reverse:
            order = order[::-1]
        return self.take(order)

    def _sort_key(self, name: str) -> np.ndarray:
        col = self._columns[name]
        if col.dtype == object:
            return np.asarray([str(v) for v in col])
        return col

    def concat(self, other: "Frame") -> "Frame":
        """Rows of ``self`` followed by rows of ``other`` (same columns)."""
        if not self._columns:
            return other
        if not other._columns:
            return self
        if set(self.names) != set(other.names):
            raise ValueError(
                f"column mismatch: {sorted(self.names)} vs {sorted(other.names)}"
            )
        merged = {}
        for name in self.names:
            a, b = self._columns[name], other._columns[name]
            if a.dtype == object or b.dtype == object:
                merged[name] = np.asarray(list(a) + list(b), dtype=object)
            else:
                merged[name] = np.concatenate([a, b])
        return Frame(merged)

    def unique(self, name: str) -> np.ndarray:
        """Sorted unique values of a column."""
        col = self._columns[name]
        if col.dtype == object:
            return np.asarray(sorted({str(v) for v in col}), dtype=object)
        return np.unique(col)

    # -- group-by / join ------------------------------------------------------

    def groupby(self, by: str | Sequence[str]) -> "GroupBy":
        """Group rows by one or more key columns."""
        from repro.frame.groupby import GroupBy

        keys = [by] if isinstance(by, str) else list(by)
        return GroupBy(self, keys)

    def join(self, other: "Frame", on: str, how: str = "inner") -> "Frame":
        """Join with ``other`` on column ``on``.

        Supports ``inner`` and ``left``.  Right-side key duplicates keep the
        first occurrence (lookup-join semantics — sufficient for enriching a
        fact table with dimension attributes).
        """
        if how not in ("inner", "left"):
            raise ValueError(f"unsupported join type: {how}")
        right_index: dict[Any, int] = {}
        right_keys = other._columns[on]
        for i in range(len(other) - 1, -1, -1):
            right_index[right_keys[i]] = i
        left_keys = self._columns[on]
        left_rows: list[int] = []
        right_rows: list[int] = []
        matched: list[bool] = []
        for i, key in enumerate(left_keys):
            j = right_index.get(key)
            if j is not None:
                left_rows.append(i)
                right_rows.append(j)
                matched.append(True)
            elif how == "left":
                left_rows.append(i)
                right_rows.append(-1)
                matched.append(False)
        out: dict[str, Any] = {}
        for name in self.names:
            out[name] = self._columns[name][np.asarray(left_rows, dtype=int)]
        matched_arr = np.asarray(matched, dtype=bool)
        for name in other.names:
            if name == on:
                continue
            col = other._columns[name]
            taken = col[np.asarray([max(j, 0) for j in right_rows], dtype=int)]
            if how == "left" and not matched_arr.all():
                taken = np.asarray(list(taken), dtype=object)
                taken[~matched_arr] = None
            out_name = name if name not in out else f"{name}_right"
            out[out_name] = taken
        return Frame(out)

    # -- convenience ---------------------------------------------------------

    def describe(self, name: str) -> dict[str, float]:
        """Summary statistics of a numeric column."""
        col = np.asarray(self._columns[name], dtype=float)
        if len(col) == 0:
            return {"count": 0}
        return {
            "count": float(len(col)),
            "mean": float(np.mean(col)),
            "std": float(np.std(col)),
            "min": float(np.min(col)),
            "p50": float(np.percentile(col, 50)),
            "p95": float(np.percentile(col, 95)),
            "max": float(np.max(col)),
        }
