"""Typed, numpy-backed time series.

A :class:`TimeSeries` is a pair of equal-length arrays — epoch-second
timestamps (strictly increasing) and float values — plus convenience math
for the statistics the analyses need (daily means, percentiles, resampling
alignment).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

SECONDS_PER_DAY = 86_400

#: Staleness marker, following Prometheus: a sample whose *timestamp* is
#: real but whose value is explicitly "unknown" (stuck exporter, partial
#: scrape).  Stored as NaN; all statistics skip markers rather than
#: interpolating values that were never observed.
STALE = float("nan")


def is_stale(value: float) -> bool:
    """Whether ``value`` is the staleness marker."""
    return bool(np.isnan(value))


class TimeSeries:
    """An immutable (by convention) timestamped value sequence."""

    __slots__ = ("timestamps", "values")

    def __init__(self, timestamps: Iterable[float], values: Iterable[float]) -> None:
        ts = np.asarray(list(timestamps) if not isinstance(timestamps, np.ndarray) else timestamps, dtype=float)
        vs = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
        if ts.shape != vs.shape or ts.ndim != 1:
            raise ValueError(
                f"timestamps and values must be equal-length 1-D arrays, got {ts.shape} / {vs.shape}"
            )
        if len(ts) > 1 and not np.all(np.diff(ts) > 0):
            raise ValueError("timestamps must be strictly increasing")
        self.timestamps = ts
        self.values = vs

    # -- basics --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.timestamps)

    def __repr__(self) -> str:
        if len(self) == 0:
            return "TimeSeries(empty)"
        return (
            f"TimeSeries({len(self)} samples, "
            f"[{self.timestamps[0]:.0f}..{self.timestamps[-1]:.0f}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return np.array_equal(self.timestamps, other.timestamps) and np.array_equal(
            self.values, other.values
        )

    @classmethod
    def empty(cls) -> "TimeSeries":
        """A series with no samples."""
        return cls(np.asarray([]), np.asarray([]))

    @classmethod
    def regular(cls, start: float, step: float, values: Iterable[float]) -> "TimeSeries":
        """A series sampled every ``step`` seconds from ``start``."""
        vs = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
        if step <= 0:
            raise ValueError("step must be positive")
        ts = start + step * np.arange(len(vs))
        return cls(ts, vs)

    # -- slicing ---------------------------------------------------------------

    def between(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= t < end``."""
        mask = (self.timestamps >= start) & (self.timestamps < end)
        return TimeSeries(self.timestamps[mask], self.values[mask])

    def at_or_before(self, t: float) -> float | None:
        """Most recent value at or before ``t`` (Prometheus instant query).

        A staleness marker at that position returns ``None`` — the series
        explicitly does not know its value there, and inventing one by
        looking further back would be silent interpolation.
        """
        idx = np.searchsorted(self.timestamps, t, side="right") - 1
        if idx < 0:
            return None
        value = float(self.values[idx])
        return None if np.isnan(value) else value

    # -- staleness ---------------------------------------------------------------

    @property
    def stale_count(self) -> int:
        """Number of staleness markers in the series."""
        return int(np.isnan(self.values).sum())

    def present(self) -> "TimeSeries":
        """The sub-series of actually observed (non-stale) samples."""
        mask = ~np.isnan(self.values)
        return TimeSeries(self.timestamps[mask], self.values[mask])

    # -- statistics -------------------------------------------------------------

    def _observed(self, what: str) -> np.ndarray:
        """Finite values for statistics; raises when nothing was observed."""
        finite = self.values[~np.isnan(self.values)]
        if finite.size == 0:
            raise ValueError(f"{what} of series with no observed samples")
        return finite

    def mean(self) -> float:
        """Mean of the observed values (staleness markers are skipped)."""
        return float(np.mean(self._observed("mean")))

    def max(self) -> float:
        """Largest observed value (staleness markers are skipped)."""
        return float(np.max(self._observed("max")))

    def min(self) -> float:
        """Smallest observed value (staleness markers are skipped)."""
        return float(np.min(self._observed("min")))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the observed values."""
        return float(np.percentile(self._observed("percentile"), q))

    def integral(self) -> float:
        """Trapezoidal time-integral of the series (value·seconds).

        Only intervals whose *both* endpoints were observed contribute;
        intervals touching a staleness marker add nothing, so the result
        honestly under-counts across gaps instead of interpolating them.
        """
        if len(self) < 2:
            return 0.0
        if self.stale_count == 0:
            return float(np.trapezoid(self.values, self.timestamps))
        observed = ~np.isnan(self.values)
        both_ends = observed[:-1] & observed[1:]
        areas = (self.values[:-1] + self.values[1:]) / 2.0 * np.diff(self.timestamps)
        return float(np.sum(areas[both_ends]))

    # -- transforms ---------------------------------------------------------------

    def map(self, func) -> "TimeSeries":
        """Apply ``func`` to the value array."""
        return TimeSeries(self.timestamps, func(self.values))

    def clip(self, low: float, high: float) -> "TimeSeries":
        """Values clamped into ``[low, high]``."""
        return TimeSeries(self.timestamps, np.clip(self.values, low, high))

    def daily(self, agg: str = "mean", origin: float | None = None) -> "TimeSeries":
        """Aggregate into one sample per UTC day.

        ``agg`` is ``mean``, ``max``, ``min``, ``sum``, or ``p95``.  The
        result's timestamps are day starts.  ``origin`` overrides the epoch
        alignment (defaults to midnight-aligned epoch days).
        """
        return self.resample(SECONDS_PER_DAY, agg=agg, origin=origin)

    def resample(
        self, window: float, agg: str = "mean", origin: float | None = None
    ) -> "TimeSeries":
        """Aggregate into fixed windows of ``window`` seconds."""
        if window <= 0:
            raise ValueError("window must be positive")
        if len(self) == 0:
            return TimeSeries.empty()
        if origin is None:
            origin = float(np.floor(self.timestamps[0] / window) * window)
        bins = np.floor((self.timestamps - origin) / window).astype(int)
        agg_fn = _AGGS.get(agg)
        if agg_fn is None:
            raise ValueError(f"unknown aggregation {agg!r}; known: {sorted(_AGGS)}")
        out_ts: list[float] = []
        out_vs: list[float] = []
        for b in np.unique(bins):
            mask = bins == b
            vals = self.values[mask]
            finite = vals[~np.isnan(vals)]
            out_ts.append(origin + b * window)
            if finite.size == 0:
                # A window of pure staleness markers stays marked stale
                # (count honestly reports zero observed samples).
                out_vs.append(0.0 if agg == "count" else STALE)
            else:
                out_vs.append(agg_fn(finite))
        return TimeSeries(np.asarray(out_ts), np.asarray(out_vs))

    def align_with(self, other: "TimeSeries") -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Intersect timestamps, returning (ts, self_values, other_values)."""
        common, idx_a, idx_b = np.intersect1d(
            self.timestamps, other.timestamps, return_indices=True
        )
        return common, self.values[idx_a], other.values[idx_b]

    def __add__(self, other: "TimeSeries") -> "TimeSeries":
        ts, a, b = self.align_with(other)
        return TimeSeries(ts, a + b)


_AGGS = {
    "mean": lambda a: float(np.mean(a)),
    "max": lambda a: float(np.max(a)),
    "min": lambda a: float(np.min(a)),
    "sum": lambda a: float(np.sum(a)),
    "p95": lambda a: float(np.percentile(a, 95)),
    "count": lambda a: float(len(a)),
}
