"""A small PromQL-flavoured query language over the metric store.

The paper's pipeline is queried with PromQL in production; this module
provides the subset the analyses need so ad-hoc exploration doesn't require
Python code:

- ``metric_name`` — every series of that metric;
- ``metric_name{label="value", other="v"}`` — label-matched series;
- ``agg(expr)`` with ``agg`` ∈ mean/max/min/sum/p95/count — cross-series
  aggregation at each timestamp;
- ``expr[start, end]`` — half-open time-range restriction (epoch seconds);
- ``agg_over_time(expr, window, agg)`` — per-series resampling.

Examples::

    mean(vrops_hostsystem_cpu_contention_percentage)
    vrops_hostsystem_cpu_ready_milliseconds{hostsystem="node-07"}
    max(vrops_hostsystem_memory_usage_percentage{datacenter="dc-a"})[0, 86400]

This module is also the single *programmatic* query surface: the
:func:`query`, :func:`query_range` and :func:`instant` helpers delegate to
the store, replacing the deprecated ``MetricStore.query_range``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.telemetry.store import Labels, MetricStore
from repro.telemetry.timeseries import TimeSeries

AGGREGATIONS = ("mean", "max", "min", "sum", "p95", "count")


def query(
    store: MetricStore, metric: str, labels: dict[str, str] | Labels | None = None
) -> TimeSeries:
    """The exact series for (metric, labels); empty if absent."""
    return store.query(metric, labels)


def query_range(
    store: MetricStore,
    metric: str,
    labels: dict[str, str] | Labels | None,
    start: float,
    end: float,
) -> TimeSeries:
    """Samples of one series within [start, end).

    The canonical range read: delegates to the store's cached
    :meth:`~repro.telemetry.store.MetricStore.window`.
    """
    return store.window(metric, labels, start, end)


def instant(
    store: MetricStore,
    metric: str,
    labels: dict[str, str] | Labels | None,
    at: float,
) -> float | None:
    """The most recent non-stale value at or before ``at`` (PromQL instant)."""
    return store.query(metric, labels).at_or_before(at)

_TOKEN_RE = re.compile(
    r"""
    (?P<name>[a-zA-Z_][a-zA-Z0-9_]*)
  | (?P<string>"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<punct>[{}()\[\],=])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)


class QueryError(ValueError):
    """The query text is malformed."""


@dataclass(frozen=True)
class QueryResult:
    """Evaluation output: either one aggregated series or many raw ones."""

    series: list[tuple[dict[str, str], TimeSeries]]
    aggregated: bool

    def single(self) -> TimeSeries:
        """The sole series (aggregated queries, or one matched series)."""
        if len(self.series) != 1:
            raise QueryError(
                f"expected exactly one series, got {len(self.series)}"
            )
        return self.series[0][1]

    def __len__(self) -> int:
        return len(self.series)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QueryError(f"unexpected character at {pos}: {text[pos]!r}")
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, kind: str | None = None, value: str | None = None) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        if kind is not None and token[0] != kind:
            raise QueryError(f"expected {kind}, got {token[1]!r}")
        if value is not None and token[1] != value:
            raise QueryError(f"expected {value!r}, got {token[1]!r}")
        self.pos += 1
        return token[1]

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)


def evaluate(store: MetricStore, query: str) -> QueryResult:
    """Parse and evaluate ``query`` against ``store``."""
    parser = _Parser(_tokenize(query))
    result = _parse_expr(parser, store)
    if not parser.at_end():
        raise QueryError(f"trailing input: {parser.peek()[1]!r}")
    return result


def _parse_expr(parser: _Parser, store: MetricStore) -> QueryResult:
    token = parser.peek()
    if token is None:
        raise QueryError("empty query")
    kind, value = token

    if kind == "name" and value == "agg_over_time":
        parser.take()
        parser.take("punct", "(")
        inner = _parse_expr(parser, store)
        parser.take("punct", ",")
        window = float(parser.take("number"))
        parser.take("punct", ",")
        agg = parser.take("name")
        if agg not in AGGREGATIONS:
            raise QueryError(f"unknown aggregation {agg!r}")
        parser.take("punct", ")")
        resampled = [
            (labels, series.resample(window, agg))
            for labels, series in inner.series
        ]
        result = QueryResult(series=resampled, aggregated=inner.aggregated)
    elif kind == "name" and value in AGGREGATIONS:
        parser.take()
        parser.take("punct", "(")
        inner = _parse_selector(parser, store)
        parser.take("punct", ")")
        metric, matcher = inner
        combined = store.aggregate_across(metric, matcher, agg=value)
        result = QueryResult(
            series=[({"__agg__": value}, combined)], aggregated=True
        )
    elif kind == "name":
        metric, matcher = _parse_selector(parser, store)
        matched = list(store.select(metric, matcher))
        result = QueryResult(series=matched, aggregated=False)
    else:
        raise QueryError(f"unexpected token {value!r}")

    # Optional range suffix applies to whatever came before it.
    token = parser.peek()
    if token is not None and token[1] == "[":
        parser.take("punct", "[")
        start = float(parser.take("number"))
        parser.take("punct", ",")
        end = float(parser.take("number"))
        parser.take("punct", "]")
        if end <= start:
            raise QueryError("range end must be after start")
        result = QueryResult(
            series=[
                (labels, series.between(start, end))
                for labels, series in result.series
            ],
            aggregated=result.aggregated,
        )
    return result


def _parse_selector(
    parser: _Parser, store: MetricStore
) -> tuple[str, dict[str, str] | None]:
    metric = parser.take("name")
    matcher: dict[str, str] | None = None
    token = parser.peek()
    if token is not None and token[1] == "{":
        parser.take("punct", "{")
        matcher = {}
        while True:
            label = parser.take("name")
            parser.take("punct", "=")
            raw = parser.take("string")
            matcher[label] = raw[1:-1]
            token = parser.peek()
            if token is not None and token[1] == ",":
                parser.take("punct", ",")
                continue
            break
        parser.take("punct", "}")
    return metric, matcher
