"""Thanos-style downsampling.

The SAP pipeline stores long-term data through Thanos, which downsamples raw
series into coarser resolutions while retaining min/max/mean/sum/count per
window.  :func:`downsample` reproduces that so analyses can run on reduced
data without losing the extreme values contention analysis depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.timeseries import TimeSeries


@dataclass(frozen=True, slots=True)
class DownsampledChunk:
    """Aggregates of one downsampling window.

    ``count`` counts *observed* samples; staleness markers in the window
    are tallied separately in ``stale_count`` and excluded from the
    aggregates.  A window of pure markers keeps NaN aggregates — the
    data was scraped but never observed, and downsampling must not
    launder that into a number.
    """

    start: float
    count: int
    mean: float
    minimum: float
    maximum: float
    total: float
    stale_count: int = 0


def downsample(series: TimeSeries, window: float) -> list[DownsampledChunk]:
    """Reduce ``series`` to per-window aggregate chunks.

    Windows are aligned to multiples of ``window`` from the first sample's
    window start, matching Thanos' aligned blocks.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if len(series) == 0:
        return []
    origin = float(np.floor(series.timestamps[0] / window) * window)
    bins = np.floor((series.timestamps - origin) / window).astype(int)
    chunks: list[DownsampledChunk] = []
    for b in np.unique(bins):
        mask = bins == b
        vals = series.values[mask]
        finite = vals[~np.isnan(vals)]
        stale = int(mask.sum()) - finite.size
        if finite.size == 0:
            chunks.append(
                DownsampledChunk(
                    start=origin + b * window,
                    count=0,
                    mean=float("nan"),
                    minimum=float("nan"),
                    maximum=float("nan"),
                    total=0.0,
                    stale_count=stale,
                )
            )
            continue
        chunks.append(
            DownsampledChunk(
                start=origin + b * window,
                count=int(finite.size),
                mean=float(np.mean(finite)),
                minimum=float(np.min(finite)),
                maximum=float(np.max(finite)),
                total=float(np.sum(finite)),
                stale_count=stale,
            )
        )
    return chunks


def reconstruct(chunks: list[DownsampledChunk], field: str = "mean") -> TimeSeries:
    """Rebuild a coarse series from chunks using one aggregate field."""
    if field not in ("mean", "minimum", "maximum", "total", "count"):
        raise ValueError(f"unknown field {field!r}")
    ts = np.asarray([c.start for c in chunks], dtype=float)
    vs = np.asarray([getattr(c, field) for c in chunks], dtype=float)
    return TimeSeries(ts, vs)
