"""Label-indexed metric store with range queries and aggregation.

Models the Prometheus/Thanos role in the paper's pipeline (§4): exporters
append samples for ``(metric, labels)`` pairs; analyses issue range queries
and cross-series aggregations.  Storage is append-mostly; series are
finalised into sorted numpy arrays lazily on first read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.telemetry.timeseries import STALE, TimeSeries

Labels = tuple[tuple[str, str], ...]


def _normalize_labels(labels: dict[str, str] | Labels | None) -> Labels:
    if labels is None:
        return ()
    if isinstance(labels, dict):
        return tuple(sorted(labels.items()))
    return tuple(sorted(labels))


@dataclass(frozen=True, slots=True)
class Sample:
    """One observation of one series."""

    metric: str
    labels: Labels
    timestamp: float
    value: float


class _SeriesBuffer:
    """Append buffer that finalises into a TimeSeries on demand."""

    __slots__ = ("_ts", "_vs", "_finalized")

    def __init__(self) -> None:
        self._ts: list[float] = []
        self._vs: list[float] = []
        self._finalized: TimeSeries | None = None

    def append(self, t: float, v: float) -> None:
        self._ts.append(t)
        self._vs.append(v)
        self._finalized = None

    def extend(self, ts: Iterable[float], vs: Iterable[float]) -> None:
        self._ts.extend(ts)
        self._vs.extend(vs)
        self._finalized = None

    def series(self) -> TimeSeries:
        if self._finalized is None:
            ts = np.asarray(self._ts, dtype=float)
            vs = np.asarray(self._vs, dtype=float)
            order = np.argsort(ts, kind="stable")
            ts, vs = ts[order], vs[order]
            # Deduplicate identical timestamps, keeping the last write.
            if len(ts) > 1:
                keep = np.append(np.diff(ts) > 0, True)
                ts, vs = ts[keep], vs[keep]
            self._finalized = TimeSeries(ts, vs)
        return self._finalized

    def __len__(self) -> int:
        return len(self._ts)


class MetricStore:
    """In-memory time-series database keyed by (metric name, labels)."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, Labels], _SeriesBuffer] = {}

    # -- writes ----------------------------------------------------------------

    def append(
        self,
        metric: str,
        labels: dict[str, str] | Labels | None,
        timestamp: float,
        value: float,
    ) -> None:
        """Append one sample."""
        key = (metric, _normalize_labels(labels))
        buf = self._series.get(key)
        if buf is None:
            buf = self._series[key] = _SeriesBuffer()
        buf.append(timestamp, value)

    def append_series(
        self,
        metric: str,
        labels: dict[str, str] | Labels | None,
        series: TimeSeries,
    ) -> None:
        """Append a whole series at once (bulk ingest)."""
        key = (metric, _normalize_labels(labels))
        buf = self._series.get(key)
        if buf is None:
            buf = self._series[key] = _SeriesBuffer()
        buf.extend(series.timestamps, series.values)

    def append_stale(
        self,
        metric: str,
        labels: dict[str, str] | Labels | None,
        timestamp: float,
    ) -> None:
        """Record that the series was scraped but its value is unknown.

        Writes a staleness marker (Prometheus-style): queries and
        downsampling skip it instead of fabricating a value.
        """
        self.append(metric, labels, timestamp, STALE)

    def ingest(self, samples: Iterable[Sample]) -> int:
        """Ingest samples from an exporter scrape; returns the count."""
        n = 0
        for s in samples:
            self.append(s.metric, s.labels, s.timestamp, s.value)
            n += 1
        return n

    # -- reads ----------------------------------------------------------------

    def metrics(self) -> list[str]:
        """Distinct metric names, sorted."""
        return sorted({metric for metric, _ in self._series})

    def series_count(self, metric: str | None = None) -> int:
        """Number of stored series, optionally for one metric."""
        if metric is None:
            return len(self._series)
        return sum(1 for m, _ in self._series if m == metric)

    def sample_count(self) -> int:
        """Total samples across every series."""
        return sum(len(buf) for buf in self._series.values())

    def labelsets(self, metric: str) -> list[dict[str, str]]:
        """All label sets stored for ``metric``."""
        return [dict(labels) for m, labels in self._series if m == metric]

    def query(
        self, metric: str, labels: dict[str, str] | Labels | None = None
    ) -> TimeSeries:
        """The exact series for (metric, labels); empty if absent."""
        key = (metric, _normalize_labels(labels))
        buf = self._series.get(key)
        return buf.series() if buf is not None else TimeSeries.empty()

    def query_range(
        self,
        metric: str,
        labels: dict[str, str] | Labels | None,
        start: float,
        end: float,
    ) -> TimeSeries:
        """Samples of one series within [start, end)."""
        return self.query(metric, labels).between(start, end)

    def select(
        self, metric: str, matcher: dict[str, str] | None = None
    ) -> Iterator[tuple[dict[str, str], TimeSeries]]:
        """All series of ``metric`` whose labels include ``matcher``.

        Mirrors a PromQL selector ``metric{k="v", ...}``.
        """
        wanted = (matcher or {}).items()
        for (m, labels), buf in self._series.items():
            if m != metric:
                continue
            label_dict = dict(labels)
            if all(label_dict.get(k) == v for k, v in wanted):
                yield label_dict, buf.series()

    def aggregate_across(
        self,
        metric: str,
        matcher: dict[str, str] | None = None,
        agg: str | Callable[[np.ndarray], float] = "mean",
    ) -> TimeSeries:
        """Cross-series aggregation at each timestamp (PromQL ``agg(metric)``).

        Timestamps are the union of all matched series; at each timestamp the
        aggregation runs over the series that have a sample there.
        """
        agg_fn = _resolve_agg(agg)
        all_series = [s for _, s in self.select(metric, matcher)]
        if not all_series:
            return TimeSeries.empty()
        union = np.unique(np.concatenate([s.timestamps for s in all_series]))
        values = np.full((len(all_series), len(union)), np.nan)
        for i, s in enumerate(all_series):
            idx = np.searchsorted(union, s.timestamps)
            values[i, idx] = s.values
        out = np.empty(len(union))
        for j in range(len(union)):
            col = values[:, j]
            present = col[~np.isnan(col)]
            # All matched series stale/absent here: propagate the marker
            # rather than aggregating an empty set.
            out[j] = agg_fn(present) if present.size else STALE
        return TimeSeries(union, out)


def _resolve_agg(agg: str | Callable[[np.ndarray], float]):
    if callable(agg):
        return agg
    table = {
        "mean": np.mean,
        "max": np.max,
        "min": np.min,
        "sum": np.sum,
        "p95": lambda a: np.percentile(a, 95),
        "count": len,
    }
    try:
        return table[agg]
    except KeyError:
        raise ValueError(f"unknown aggregation {agg!r}; known: {sorted(table)}") from None
