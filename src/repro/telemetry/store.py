"""Label-indexed metric store with range queries and aggregation.

Models the Prometheus/Thanos role in the paper's pipeline (§4): exporters
append samples for ``(metric, labels)`` pairs; analyses issue range queries
and cross-series aggregations.

Storage is columnar and append-mostly: each series holds one
``array('d')`` buffer per column (timestamps, values) — no per-sample
Python objects — and is finalised into sorted numpy arrays lazily on
first read.  Staleness markers are NaN sentinels
(:data:`~repro.telemetry.timeseries.STALE`) stored inline in the value
column, so they survive every bulk path untouched.  Window reads go
through an LRU cache that is invalidated by appends (the cache key
carries the series' sample count, so a stale entry can never be served).

The PromQL-ish front-end in :mod:`repro.telemetry.query` is the public
query surface; the store-level :meth:`MetricStore.query_range` remains as
a deprecated shim for one release.
"""

from __future__ import annotations

import hashlib
import warnings
from array import array
from collections import OrderedDict
from typing import Callable, Iterable, Iterator, NamedTuple

import numpy as np

from repro.telemetry.timeseries import STALE, TimeSeries

Labels = tuple[tuple[str, str], ...]

_FLOAT64 = np.dtype(np.float64)

#: Max entries kept in the window-read LRU cache.
RANGE_CACHE_SIZE = 128


def _normalize_labels(labels: dict[str, str] | Labels | None) -> Labels:
    if labels is None:
        return ()
    if isinstance(labels, dict):
        return tuple(sorted(labels.items()))
    return tuple(sorted(labels))


class Sample(NamedTuple):
    """One observation of one series."""

    metric: str
    labels: Labels
    timestamp: float
    value: float


class SampleBlock(NamedTuple):
    """A contiguous window of one series: columnar exporter output.

    ``timestamps`` / ``values`` are equally sized 1-D float arrays; stale
    scrapes are NaN entries in ``values``.
    """

    metric: str
    labels: Labels
    timestamps: np.ndarray
    values: np.ndarray


class _SeriesBuffer:
    """Columnar append buffer finalised into a TimeSeries on demand."""

    __slots__ = ("_ts", "_vs", "_finalized")

    def __init__(self) -> None:
        self._ts: array = array("d")
        self._vs: array = array("d")
        self._finalized: TimeSeries | None = None

    def append(self, t: float, v: float) -> None:
        self._ts.append(t)
        self._vs.append(v)
        self._finalized = None

    def extend(self, ts: Iterable[float], vs: Iterable[float]) -> None:
        self._ts.extend(ts)
        self._vs.extend(vs)
        self._finalized = None

    def extend_columns(self, ts: np.ndarray, vs: np.ndarray) -> None:
        """Bulk append from float64 arrays (zero Python-level loop)."""
        self._ts.frombytes(ts.tobytes())
        self._vs.frombytes(vs.tobytes())
        self._finalized = None

    def series(self) -> TimeSeries:
        if self._finalized is None:
            # np.array(...) copies out of the buffer protocol; a view
            # (np.frombuffer) would pin the array and break later appends.
            ts = np.array(self._ts, dtype=float)
            vs = np.array(self._vs, dtype=float)
            order = np.argsort(ts, kind="stable")
            ts, vs = ts[order], vs[order]
            # Deduplicate identical timestamps, keeping the last write.
            if len(ts) > 1:
                keep = np.append(np.diff(ts) > 0, True)
                ts, vs = ts[keep], vs[keep]
            self._finalized = TimeSeries(ts, vs)
        return self._finalized

    def __len__(self) -> int:
        return len(self._ts)


class SeriesHandle:
    """Pre-resolved append cursor for one series.

    Exporters that emit the same (metric, labels) pair every scrape resolve
    the series once via :meth:`MetricStore.series_handle` and then append
    through the handle — no label normalisation, no dict lookup, no
    :class:`Sample` object per observation.  Appends are indistinguishable
    from :meth:`MetricStore.append` (same buffer, same finalisation
    invalidation).
    """

    __slots__ = ("_buf", "_ts", "_vs")

    def __init__(self, buf: _SeriesBuffer) -> None:
        self._buf = buf
        self._ts = buf._ts
        self._vs = buf._vs

    def append(self, timestamp: float, value: float) -> None:
        self._ts.append(timestamp)
        self._vs.append(value)
        self._buf._finalized = None


class MetricStore:
    """In-memory time-series database keyed by (metric name, labels)."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, Labels], _SeriesBuffer] = {}
        #: Memo of already-normalized label tuples (exporters emit the
        #: same tuples over and over; sorting them each time dominates
        #: per-sample ingest).
        self._label_cache: dict[Labels, Labels] = {}
        #: LRU of window reads keyed by (series key, sample count, start,
        #: end); appends bump the count, so stale entries are unreachable
        #: and age out.
        self._range_cache: OrderedDict[tuple, TimeSeries] = OrderedDict()

    def _normalize_cached(self, labels: dict[str, str] | Labels | None) -> Labels:
        if type(labels) is tuple:
            cached = self._label_cache.get(labels)
            if cached is None:
                cached = self._label_cache[labels] = tuple(sorted(labels))
            return cached
        return _normalize_labels(labels)

    def _buffer(self, metric: str, labels: dict[str, str] | Labels | None) -> _SeriesBuffer:
        key = (metric, self._normalize_cached(labels))
        buf = self._series.get(key)
        if buf is None:
            buf = self._series[key] = _SeriesBuffer()
        return buf

    def series_handle(
        self, metric: str, labels: dict[str, str] | Labels | None
    ) -> SeriesHandle:
        """Intern (metric, labels) into an append cursor.

        Creates the series if absent — callers that must reproduce a
        per-sample ingest byte-for-byte should therefore resolve handles
        in the same order that path would first touch each series, because
        insertion order is observable via :meth:`select` /
        :meth:`aggregate_across` and :meth:`content_fingerprint`.
        """
        return SeriesHandle(self._buffer(metric, labels))

    def content_fingerprint(self) -> str:
        """SHA-256 over every series' identity, order, and raw columns.

        Two stores fingerprint equal iff they hold the same series in the
        same insertion order with bit-identical timestamp/value buffers —
        the equivalence the columnar scrape path promises against the
        legacy per-sample path.
        """
        h = hashlib.sha256()
        for (metric, labels), buf in self._series.items():
            h.update(repr((metric, labels)).encode())
            h.update(len(buf._ts).to_bytes(8, "little"))
            h.update(buf._ts.tobytes())
            h.update(buf._vs.tobytes())
        return h.hexdigest()

    # -- writes ----------------------------------------------------------------

    def append(
        self,
        metric: str,
        labels: dict[str, str] | Labels | None,
        timestamp: float,
        value: float,
    ) -> None:
        """Append one sample."""
        self._buffer(metric, labels).append(timestamp, value)

    def append_series(
        self,
        metric: str,
        labels: dict[str, str] | Labels | None,
        series: TimeSeries,
    ) -> None:
        """Append a whole series at once (bulk ingest)."""
        self._buffer(metric, labels).extend(series.timestamps, series.values)

    def append_columns(
        self,
        metric: str,
        labels: dict[str, str] | Labels | None,
        timestamps: np.ndarray,
        values: np.ndarray,
    ) -> int:
        """Columnar bulk append: one buffer copy, no per-sample work.

        NaN entries in ``values`` are staleness markers and are stored
        verbatim.  Returns the number of samples appended.
        """
        ts = np.ascontiguousarray(timestamps, dtype=float)
        vs = np.ascontiguousarray(values, dtype=float)
        if ts.ndim != 1 or ts.shape != vs.shape:
            raise ValueError("timestamps/values must be equally sized 1-D arrays")
        self._buffer(metric, labels).extend_columns(ts, vs)
        return len(ts)

    def append_stale(
        self,
        metric: str,
        labels: dict[str, str] | Labels | None,
        timestamp: float,
    ) -> None:
        """Record that the series was scraped but its value is unknown.

        Writes a staleness marker (Prometheus-style): queries and
        downsampling skip it instead of fabricating a value.
        """
        self.append(metric, labels, timestamp, STALE)

    def ingest(self, samples: Iterable[Sample]) -> int:
        """Ingest samples from an exporter scrape; returns the count."""
        series = self._series
        label_cache = self._label_cache
        n = 0
        for metric, labels, timestamp, value in samples:
            if type(labels) is tuple:
                normalized = label_cache.get(labels)
                if normalized is None:
                    normalized = label_cache[labels] = tuple(sorted(labels))
            else:
                normalized = _normalize_labels(labels)
            key = (metric, normalized)
            buf = series.get(key)
            if buf is None:
                buf = series[key] = _SeriesBuffer()
            buf._ts.append(timestamp)
            buf._vs.append(value)
            buf._finalized = None
            n += 1
        return n

    def ingest_blocks(self, blocks: Iterable[SampleBlock]) -> int:
        """Ingest columnar exporter output; returns the sample count.

        Hot path for bulk backfill: exporter windows arrive as float64
        arrays, so conversion and validation are skipped when the columns
        already have the right shape.
        """
        n = 0
        series = self._series
        label_cache = self._label_cache
        ndarray = np.ndarray
        float64 = _FLOAT64
        for metric, labels, ts, vs in blocks:
            if not (
                type(ts) is ndarray
                and type(vs) is ndarray
                and ts.dtype == float64
                and vs.dtype == float64
                and ts.ndim == 1
                and ts.shape == vs.shape
            ):
                ts = np.ascontiguousarray(ts, dtype=float)
                vs = np.ascontiguousarray(vs, dtype=float)
                if ts.ndim != 1 or ts.shape != vs.shape:
                    raise ValueError(
                        "timestamps/values must be equally sized 1-D arrays"
                    )
            if type(labels) is tuple:
                normalized = label_cache.get(labels)
                if normalized is None:
                    normalized = label_cache[labels] = tuple(sorted(labels))
            else:
                normalized = _normalize_labels(labels)
            key = (metric, normalized)
            buf = series.get(key)
            if buf is None:
                buf = series[key] = _SeriesBuffer()
            buf._ts.frombytes(ts.tobytes())
            buf._vs.frombytes(vs.tobytes())
            buf._finalized = None
            n += len(ts)
        return n

    # -- reads ----------------------------------------------------------------

    def metrics(self) -> list[str]:
        """Distinct metric names, sorted."""
        return sorted({metric for metric, _ in self._series})

    def series_count(self, metric: str | None = None) -> int:
        """Number of stored series, optionally for one metric."""
        if metric is None:
            return len(self._series)
        return sum(1 for m, _ in self._series if m == metric)

    def sample_count(self) -> int:
        """Total samples across every series."""
        return sum(len(buf) for buf in self._series.values())

    def labelsets(self, metric: str) -> list[dict[str, str]]:
        """All label sets stored for ``metric``."""
        return [dict(labels) for m, labels in self._series if m == metric]

    def query(
        self, metric: str, labels: dict[str, str] | Labels | None = None
    ) -> TimeSeries:
        """The exact series for (metric, labels); empty if absent."""
        key = (metric, self._normalize_cached(labels))
        buf = self._series.get(key)
        return buf.series() if buf is not None else TimeSeries.empty()

    def window(
        self,
        metric: str,
        labels: dict[str, str] | Labels | None,
        start: float,
        end: float,
    ) -> TimeSeries:
        """Samples of one series within [start, end), LRU-cached.

        The cache key includes the series' current sample count, so any
        append invalidates every cached window of that series.
        """
        key = (metric, self._normalize_cached(labels))
        buf = self._series.get(key)
        if buf is None:
            return TimeSeries.empty()
        cache = self._range_cache
        cache_key = (key, len(buf), start, end)
        hit = cache.get(cache_key)
        if hit is not None:
            cache.move_to_end(cache_key)
            return hit
        result = buf.series().between(start, end)
        cache[cache_key] = result
        if len(cache) > RANGE_CACHE_SIZE:
            cache.popitem(last=False)
        return result

    def query_range(
        self,
        metric: str,
        labels: dict[str, str] | Labels | None,
        start: float,
        end: float,
    ) -> TimeSeries:
        """Deprecated: use :func:`repro.telemetry.query.query_range`.

        Kept as a shim for one release; delegates to :meth:`window`.
        """
        warnings.warn(
            "MetricStore.query_range is deprecated; use "
            "repro.telemetry.query.query_range (or MetricStore.window)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.window(metric, labels, start, end)

    def select(
        self, metric: str, matcher: dict[str, str] | None = None
    ) -> Iterator[tuple[dict[str, str], TimeSeries]]:
        """All series of ``metric`` whose labels include ``matcher``.

        Mirrors a PromQL selector ``metric{k="v", ...}``.
        """
        wanted = (matcher or {}).items()
        for (m, labels), buf in self._series.items():
            if m != metric:
                continue
            label_dict = dict(labels)
            if all(label_dict.get(k) == v for k, v in wanted):
                yield label_dict, buf.series()

    def aggregate_across(
        self,
        metric: str,
        matcher: dict[str, str] | None = None,
        agg: str | Callable[[np.ndarray], float] = "mean",
    ) -> TimeSeries:
        """Cross-series aggregation at each timestamp (PromQL ``agg(metric)``).

        Timestamps are the union of all matched series; at each timestamp the
        aggregation runs over the series that have a sample there.
        """
        agg_fn = _resolve_agg(agg)
        all_series = [s for _, s in self.select(metric, matcher)]
        if not all_series:
            return TimeSeries.empty()
        union = np.unique(np.concatenate([s.timestamps for s in all_series]))
        values = np.full((len(all_series), len(union)), np.nan)
        for i, s in enumerate(all_series):
            idx = np.searchsorted(union, s.timestamps)
            values[i, idx] = s.values
        out = np.empty(len(union))
        for j in range(len(union)):
            col = values[:, j]
            present = col[~np.isnan(col)]
            # All matched series stale/absent here: propagate the marker
            # rather than aggregating an empty set.
            out[j] = agg_fn(present) if present.size else STALE
        return TimeSeries(union, out)


def _resolve_agg(agg: str | Callable[[np.ndarray], float]):
    if callable(agg):
        return agg
    table = {
        "mean": np.mean,
        "max": np.max,
        "min": np.min,
        "sum": np.sum,
        "p95": lambda a: np.percentile(a, 95),
        "count": len,
    }
    try:
        return table[agg]
    except KeyError:
        raise ValueError(f"unknown aggregation {agg!r}; known: {sorted(table)}") from None
