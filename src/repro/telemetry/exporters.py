"""Exporter front-ends: translate simulation state into metric samples.

Two exporters feed the paper's monitoring system (§4):

- the **vROps exporter** publishes VMware vRealize Operations data as
  ``vrops_*`` metrics (host CPU/memory/network/storage and VM usage ratios);
- the **MySQL server exporter** over the Nova database publishes
  ``openstack_compute_*`` allocation gauges.

Here each exporter turns a point-in-time snapshot of the simulated
infrastructure into :class:`~repro.telemetry.store.Sample` records with the
exact metric names and label conventions of the public dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.infrastructure.hierarchy import ComputeNode, Region
from repro.telemetry.store import Sample, SampleBlock


@dataclass(frozen=True, slots=True)
class NodeUsage:
    """Measured (not allocated) utilisation of one node at one instant."""

    cpu_used_fraction: float  # 0..1 of physical CPU
    memory_used_fraction: float  # 0..1 of physical memory
    network_tx_kbps: float
    network_rx_kbps: float
    disk_used_gb: float
    cpu_ready_ms: float  # summed vCPU ready time in the sampling window
    cpu_contention_fraction: float  # 0..1


@dataclass(frozen=True, slots=True)
class VMUsage:
    """Measured utilisation ratios of one VM at one instant."""

    cpu_usage_ratio: float  # used / requested CPU, 0..1+
    memory_consumed_ratio: float  # used / requested memory, 0..1+


def _node_labels(node: ComputeNode) -> dict[str, str]:
    return {
        "hostsystem": node.node_id,
        "building_block": node.building_block,
        "datacenter": node.datacenter,
        "availability_zone": node.az,
    }


class VropsExporter:
    """Emits ``vrops_*`` samples for nodes and VMs."""

    def scrape_node(
        self, node: ComputeNode, usage: NodeUsage, timestamp: float
    ) -> list[Sample]:
        """All host-level vROps samples for one node at one instant."""
        labels = tuple(sorted(_node_labels(node).items()))
        return [
            Sample(
                "vrops_hostsystem_cpu_core_utilization_percentage",
                labels, timestamp, 100.0 * usage.cpu_used_fraction,
            ),
            Sample(
                "vrops_hostsystem_cpu_contention_percentage",
                labels, timestamp, 100.0 * usage.cpu_contention_fraction,
            ),
            Sample(
                "vrops_hostsystem_cpu_ready_milliseconds",
                labels, timestamp, usage.cpu_ready_ms,
            ),
            Sample(
                "vrops_hostsystem_memory_usage_percentage",
                labels, timestamp, 100.0 * usage.memory_used_fraction,
            ),
            Sample(
                "vrops_hostsystem_network_bytes_tx_kbps",
                labels, timestamp, usage.network_tx_kbps,
            ),
            Sample(
                "vrops_hostsystem_network_bytes_rx_kbps",
                labels, timestamp, usage.network_rx_kbps,
            ),
            Sample(
                "vrops_hostsystem_diskspace_usage_gigabytes",
                labels, timestamp, usage.disk_used_gb,
            ),
        ]

    def scrape_node_window(
        self,
        node: ComputeNode,
        usages: Sequence[NodeUsage],
        timestamps: Sequence[float],
    ) -> list[SampleBlock]:
        """Columnar host-level scrape: one block per metric over a window.

        Equivalent to ``scrape_node`` once per instant — same metrics,
        labels and values (stale instants stay NaN) — but emits
        :class:`~repro.telemetry.store.SampleBlock` columns for the
        store's bulk :meth:`~repro.telemetry.store.MetricStore.ingest_blocks`.
        """
        if len(usages) != len(timestamps):
            raise ValueError("usages and timestamps must be equally sized")
        labels = tuple(sorted(_node_labels(node).items()))
        ts = np.asarray(timestamps, dtype=float)
        columns = {
            "vrops_hostsystem_cpu_core_utilization_percentage": [
                100.0 * u.cpu_used_fraction for u in usages
            ],
            "vrops_hostsystem_cpu_contention_percentage": [
                100.0 * u.cpu_contention_fraction for u in usages
            ],
            "vrops_hostsystem_cpu_ready_milliseconds": [
                u.cpu_ready_ms for u in usages
            ],
            "vrops_hostsystem_memory_usage_percentage": [
                100.0 * u.memory_used_fraction for u in usages
            ],
            "vrops_hostsystem_network_bytes_tx_kbps": [
                u.network_tx_kbps for u in usages
            ],
            "vrops_hostsystem_network_bytes_rx_kbps": [
                u.network_rx_kbps for u in usages
            ],
            "vrops_hostsystem_diskspace_usage_gigabytes": [
                u.disk_used_gb for u in usages
            ],
        }
        return [
            SampleBlock(metric, labels, ts, np.asarray(values, dtype=float))
            for metric, values in columns.items()
        ]

    def scrape_vm(
        self, vm_id: str, node: ComputeNode, usage: VMUsage, timestamp: float
    ) -> list[Sample]:
        """VM-level usage-ratio samples."""
        labels = tuple(
            sorted({"virtualmachine": vm_id, "hostsystem": node.node_id}.items())
        )
        return [
            Sample(
                "vrops_virtualmachine_cpu_usage_ratio",
                labels, timestamp, usage.cpu_usage_ratio,
            ),
            Sample(
                "vrops_virtualmachine_memory_consumed_ratio",
                labels, timestamp, usage.memory_consumed_ratio,
            ),
        ]


class NovaExporter:
    """Emits ``openstack_compute_*`` allocation gauges from placement state.

    In the paper these come from the Nova database via the MySQL exporter;
    here they are read off the region's allocation bookkeeping.  Note that
    in the SAP deployment the Nova "compute host" is a whole building block,
    so the gauges are published per BB.
    """

    def scrape_region(self, region: Region, timestamp: float) -> list[Sample]:
        """All openstack_compute samples for one scrape of the region."""
        samples: list[Sample] = []
        total_vms = 0
        for bb in region.iter_building_blocks():
            labels = tuple(
                sorted(
                    {
                        "compute_host": bb.bb_id,
                        "datacenter": bb.datacenter,
                        "availability_zone": bb.az,
                    }.items()
                )
            )
            physical = bb.physical()
            allocatable = bb.overcommit.allocatable(physical)
            allocated = bb.allocated()
            total_vms += bb.vm_count
            samples.extend(
                [
                    Sample(
                        "openstack_compute_nodes_vcpus_gauge",
                        labels, timestamp, allocatable.vcpus,
                    ),
                    Sample(
                        "openstack_compute_nodes_vcpus_used_gauge",
                        labels, timestamp, allocated.vcpus,
                    ),
                    Sample(
                        "openstack_compute_nodes_memory_mb_gauge",
                        labels, timestamp, allocatable.memory_mb,
                    ),
                    Sample(
                        "openstack_compute_nodes_memory_mb_used_gauge",
                        labels, timestamp, allocated.memory_mb,
                    ),
                ]
            )
        samples.append(
            Sample(
                "openstack_compute_instances_total",
                (("region", region.region_id),),
                timestamp,
                float(total_vms),
            )
        )
        return samples
