"""Exporter front-ends: translate simulation state into metric samples.

Two exporters feed the paper's monitoring system (§4):

- the **vROps exporter** publishes VMware vRealize Operations data as
  ``vrops_*`` metrics (host CPU/memory/network/storage and VM usage ratios);
- the **MySQL server exporter** over the Nova database publishes
  ``openstack_compute_*`` allocation gauges.

Here each exporter turns a point-in-time snapshot of the simulated
infrastructure into :class:`~repro.telemetry.store.Sample` records with the
exact metric names and label conventions of the public dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.infrastructure.hierarchy import ComputeNode, Region
from repro.telemetry.store import MetricStore, Sample, SampleBlock, SeriesHandle


@dataclass(frozen=True, slots=True)
class NodeUsage:
    """Measured (not allocated) utilisation of one node at one instant."""

    cpu_used_fraction: float  # 0..1 of physical CPU
    memory_used_fraction: float  # 0..1 of physical memory
    network_tx_kbps: float
    network_rx_kbps: float
    disk_used_gb: float
    cpu_ready_ms: float  # summed vCPU ready time in the sampling window
    cpu_contention_fraction: float  # 0..1


@dataclass(frozen=True, slots=True)
class VMUsage:
    """Measured utilisation ratios of one VM at one instant."""

    cpu_usage_ratio: float  # used / requested CPU, 0..1+
    memory_consumed_ratio: float  # used / requested memory, 0..1+


def _node_labels(node: ComputeNode) -> dict[str, str]:
    return {
        "hostsystem": node.node_id,
        "building_block": node.building_block,
        "datacenter": node.datacenter,
        "availability_zone": node.az,
    }


#: Host-level vROps metrics in emission order (the order ``scrape_node``
#: lists them, hence the order their series appear in the store).
_NODE_METRICS = (
    "vrops_hostsystem_cpu_core_utilization_percentage",
    "vrops_hostsystem_cpu_contention_percentage",
    "vrops_hostsystem_cpu_ready_milliseconds",
    "vrops_hostsystem_memory_usage_percentage",
    "vrops_hostsystem_network_bytes_tx_kbps",
    "vrops_hostsystem_network_bytes_rx_kbps",
    "vrops_hostsystem_diskspace_usage_gigabytes",
)


class VropsExporter:
    """Emits ``vrops_*`` samples for nodes and VMs.

    :meth:`emit_node` is the interned fast path: the metric-name +
    label-tuple → series resolution happens once per node (lazily, at the
    node's first emission, preserving the series creation order of the
    per-sample path), after which each scrape is seven column appends.
    """

    def __init__(self) -> None:
        self._handle_store: MetricStore | None = None
        self._node_handles: dict[str, tuple[SeriesHandle, ...]] = {}

    def emit_node(
        self,
        store: MetricStore,
        node: ComputeNode,
        usage: NodeUsage,
        timestamp: float,
    ) -> int:
        """Append one node's host-level samples directly into ``store``.

        Same metrics, labels, and values as :meth:`scrape_node` +
        ``store.ingest`` — stale scrapes pass NaN fractions through the
        identical expressions — with zero per-sample objects.  Returns the
        number of samples appended.
        """
        if store is not self._handle_store:
            self._handle_store = store
            self._node_handles = {}
        handles = self._node_handles.get(node.node_id)
        if handles is None:
            labels = tuple(sorted(_node_labels(node).items()))
            handles = self._node_handles[node.node_id] = tuple(
                store.series_handle(metric, labels) for metric in _NODE_METRICS
            )
        h_cpu, h_cont, h_ready, h_mem, h_tx, h_rx, h_disk = handles
        h_cpu.append(timestamp, 100.0 * usage.cpu_used_fraction)
        h_cont.append(timestamp, 100.0 * usage.cpu_contention_fraction)
        h_ready.append(timestamp, usage.cpu_ready_ms)
        h_mem.append(timestamp, 100.0 * usage.memory_used_fraction)
        h_tx.append(timestamp, usage.network_tx_kbps)
        h_rx.append(timestamp, usage.network_rx_kbps)
        h_disk.append(timestamp, usage.disk_used_gb)
        return 7

    def scrape_node(
        self, node: ComputeNode, usage: NodeUsage, timestamp: float
    ) -> list[Sample]:
        """All host-level vROps samples for one node at one instant."""
        labels = tuple(sorted(_node_labels(node).items()))
        return [
            Sample(
                "vrops_hostsystem_cpu_core_utilization_percentage",
                labels, timestamp, 100.0 * usage.cpu_used_fraction,
            ),
            Sample(
                "vrops_hostsystem_cpu_contention_percentage",
                labels, timestamp, 100.0 * usage.cpu_contention_fraction,
            ),
            Sample(
                "vrops_hostsystem_cpu_ready_milliseconds",
                labels, timestamp, usage.cpu_ready_ms,
            ),
            Sample(
                "vrops_hostsystem_memory_usage_percentage",
                labels, timestamp, 100.0 * usage.memory_used_fraction,
            ),
            Sample(
                "vrops_hostsystem_network_bytes_tx_kbps",
                labels, timestamp, usage.network_tx_kbps,
            ),
            Sample(
                "vrops_hostsystem_network_bytes_rx_kbps",
                labels, timestamp, usage.network_rx_kbps,
            ),
            Sample(
                "vrops_hostsystem_diskspace_usage_gigabytes",
                labels, timestamp, usage.disk_used_gb,
            ),
        ]

    def scrape_node_window(
        self,
        node: ComputeNode,
        usages: Sequence[NodeUsage],
        timestamps: Sequence[float],
    ) -> list[SampleBlock]:
        """Columnar host-level scrape: one block per metric over a window.

        Equivalent to ``scrape_node`` once per instant — same metrics,
        labels and values (stale instants stay NaN) — but emits
        :class:`~repro.telemetry.store.SampleBlock` columns for the
        store's bulk :meth:`~repro.telemetry.store.MetricStore.ingest_blocks`.
        """
        if len(usages) != len(timestamps):
            raise ValueError("usages and timestamps must be equally sized")
        labels = tuple(sorted(_node_labels(node).items()))
        ts = np.asarray(timestamps, dtype=float)
        columns = {
            "vrops_hostsystem_cpu_core_utilization_percentage": [
                100.0 * u.cpu_used_fraction for u in usages
            ],
            "vrops_hostsystem_cpu_contention_percentage": [
                100.0 * u.cpu_contention_fraction for u in usages
            ],
            "vrops_hostsystem_cpu_ready_milliseconds": [
                u.cpu_ready_ms for u in usages
            ],
            "vrops_hostsystem_memory_usage_percentage": [
                100.0 * u.memory_used_fraction for u in usages
            ],
            "vrops_hostsystem_network_bytes_tx_kbps": [
                u.network_tx_kbps for u in usages
            ],
            "vrops_hostsystem_network_bytes_rx_kbps": [
                u.network_rx_kbps for u in usages
            ],
            "vrops_hostsystem_diskspace_usage_gigabytes": [
                u.disk_used_gb for u in usages
            ],
        }
        return [
            SampleBlock(metric, labels, ts, np.asarray(values, dtype=float))
            for metric, values in columns.items()
        ]

    def scrape_vm(
        self, vm_id: str, node: ComputeNode, usage: VMUsage, timestamp: float
    ) -> list[Sample]:
        """VM-level usage-ratio samples."""
        labels = tuple(
            sorted({"virtualmachine": vm_id, "hostsystem": node.node_id}.items())
        )
        return [
            Sample(
                "vrops_virtualmachine_cpu_usage_ratio",
                labels, timestamp, usage.cpu_usage_ratio,
            ),
            Sample(
                "vrops_virtualmachine_memory_consumed_ratio",
                labels, timestamp, usage.memory_consumed_ratio,
            ),
        ]


class NovaExporter:
    """Emits ``openstack_compute_*`` allocation gauges from placement state.

    In the paper these come from the Nova database via the MySQL exporter;
    here they are read off the region's allocation bookkeeping.  Note that
    in the SAP deployment the Nova "compute host" is a whole building block,
    so the gauges are published per BB.

    :meth:`emit_region` is the interned fast path: per-BB labels, series
    handles, and the static allocatable capacities are resolved once (the
    topology does not change mid-run), so each scrape reads only the live
    allocation state.
    """

    def __init__(self) -> None:
        self._handle_store: MetricStore | None = None
        #: (bb, allocatable_vcpus, allocatable_memory_mb, 4 gauge handles)
        self._bb_entries: list[tuple] = []
        self._total_handle: SeriesHandle | None = None

    def emit_region(
        self, store: MetricStore, region: Region, timestamp: float
    ) -> int:
        """Append one region scrape directly into ``store``.

        Identical samples (metrics, labels, values, order) to
        :meth:`scrape_region` + ``store.ingest``; returns the count.
        """
        if store is not self._handle_store or self._total_handle is None:
            self._handle_store = store
            entries: list[tuple] = []
            for bb in region.iter_building_blocks():
                labels = tuple(
                    sorted(
                        {
                            "compute_host": bb.bb_id,
                            "datacenter": bb.datacenter,
                            "availability_zone": bb.az,
                        }.items()
                    )
                )
                allocatable = bb.overcommit.allocatable(bb.physical())
                entries.append(
                    (
                        bb,
                        allocatable.vcpus,
                        allocatable.memory_mb,
                        store.series_handle(
                            "openstack_compute_nodes_vcpus_gauge", labels
                        ),
                        store.series_handle(
                            "openstack_compute_nodes_vcpus_used_gauge", labels
                        ),
                        store.series_handle(
                            "openstack_compute_nodes_memory_mb_gauge", labels
                        ),
                        store.series_handle(
                            "openstack_compute_nodes_memory_mb_used_gauge", labels
                        ),
                    )
                )
            self._bb_entries = entries
            self._total_handle = store.series_handle(
                "openstack_compute_instances_total",
                (("region", region.region_id),),
            )
        total_vms = 0
        n = 1
        for bb, alloc_vcpus, alloc_mem, h_v, h_vu, h_m, h_mu in self._bb_entries:
            allocated = bb.allocated()
            total_vms += bb.vm_count
            h_v.append(timestamp, alloc_vcpus)
            h_vu.append(timestamp, allocated.vcpus)
            h_m.append(timestamp, alloc_mem)
            h_mu.append(timestamp, allocated.memory_mb)
            n += 4
        self._total_handle.append(timestamp, float(total_vms))
        return n

    def scrape_region(self, region: Region, timestamp: float) -> list[Sample]:
        """All openstack_compute samples for one scrape of the region."""
        samples: list[Sample] = []
        total_vms = 0
        for bb in region.iter_building_blocks():
            labels = tuple(
                sorted(
                    {
                        "compute_host": bb.bb_id,
                        "datacenter": bb.datacenter,
                        "availability_zone": bb.az,
                    }.items()
                )
            )
            physical = bb.physical()
            allocatable = bb.overcommit.allocatable(physical)
            allocated = bb.allocated()
            total_vms += bb.vm_count
            samples.extend(
                [
                    Sample(
                        "openstack_compute_nodes_vcpus_gauge",
                        labels, timestamp, allocatable.vcpus,
                    ),
                    Sample(
                        "openstack_compute_nodes_vcpus_used_gauge",
                        labels, timestamp, allocated.vcpus,
                    ),
                    Sample(
                        "openstack_compute_nodes_memory_mb_gauge",
                        labels, timestamp, allocatable.memory_mb,
                    ),
                    Sample(
                        "openstack_compute_nodes_memory_mb_used_gauge",
                        labels, timestamp, allocated.memory_mb,
                    ),
                ]
            )
        samples.append(
            Sample(
                "openstack_compute_instances_total",
                (("region", region.region_id),),
                timestamp,
                float(total_vms),
            )
        )
        return samples
