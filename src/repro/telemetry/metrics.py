"""The metric catalogue of the study (Table 4).

Each metric carries its subsystem (compute host / VM / region), resource
class, unit, and the sampling interval used in the SAP deployment (30–300 s,
§4).  The names are the exact exporter names from the paper so analyses
written against this library translate directly to the public dataset.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class MetricSpec:
    """Metadata for one exported metric."""

    name: str
    subsystem: str  # "compute_host" | "vm" | "region"
    resource: str  # "cpu" | "memory" | "network" | "storage" | "inventory"
    unit: str
    description: str
    sampling_seconds: int = 300

    @property
    def source(self) -> str:
        """Which exporter produces this metric: ``vrops`` or ``openstack``."""
        return "vrops" if self.name.startswith("vrops_") else "openstack"


#: Table 4 of the paper, verbatim metric names.
METRIC_CATALOG: tuple[MetricSpec, ...] = (
    MetricSpec(
        "vrops_hostsystem_cpu_core_utilization_percentage",
        "compute_host", "cpu", "percent",
        "Utilization of CPU per compute host", 300,
    ),
    MetricSpec(
        "vrops_hostsystem_cpu_contention_percentage",
        "compute_host", "cpu", "percent",
        "Observed CPU contention per compute host", 300,
    ),
    MetricSpec(
        "vrops_hostsystem_cpu_ready_milliseconds",
        "compute_host", "cpu", "milliseconds",
        "Duration a VM is ready but waits for scheduling", 300,
    ),
    MetricSpec(
        "vrops_hostsystem_memory_usage_percentage",
        "compute_host", "memory", "percent",
        "Utilization of compute host memory", 300,
    ),
    MetricSpec(
        "vrops_hostsystem_network_bytes_tx_kbps",
        "compute_host", "network", "kbps",
        "Transmitted network traffic", 300,
    ),
    MetricSpec(
        "vrops_hostsystem_network_bytes_rx_kbps",
        "compute_host", "network", "kbps",
        "Received network traffic", 300,
    ),
    MetricSpec(
        "vrops_hostsystem_diskspace_usage_gigabytes",
        "compute_host", "storage", "gigabytes",
        "Utilization of local storage", 300,
    ),
    MetricSpec(
        "vrops_virtualmachine_cpu_usage_ratio",
        "vm", "cpu", "ratio",
        "Percentage of requested and used CPU", 30,
    ),
    MetricSpec(
        "vrops_virtualmachine_memory_consumed_ratio",
        "vm", "memory", "ratio",
        "Percentage of requested and used memory", 30,
    ),
    MetricSpec(
        "openstack_compute_nodes_vcpus_gauge",
        "compute_host", "cpu", "count",
        "Number of vCPUs per compute host", 300,
    ),
    MetricSpec(
        "openstack_compute_nodes_vcpus_used_gauge",
        "compute_host", "cpu", "count",
        "Number of vCPUs per compute host", 300,
    ),
    MetricSpec(
        "openstack_compute_nodes_memory_mb_gauge",
        "compute_host", "memory", "megabytes",
        "Amount of memory in MB per compute host", 300,
    ),
    MetricSpec(
        "openstack_compute_nodes_memory_mb_used_gauge",
        "compute_host", "memory", "megabytes",
        "Amount of utilized memory in MB per compute host", 300,
    ),
    MetricSpec(
        "openstack_compute_instances_total",
        "region", "inventory", "count",
        "Total number of VMs within the regional deployment", 300,
    ),
)

VROPS_METRICS: tuple[MetricSpec, ...] = tuple(
    m for m in METRIC_CATALOG if m.source == "vrops"
)
NOVA_METRICS: tuple[MetricSpec, ...] = tuple(
    m for m in METRIC_CATALOG if m.source == "openstack"
)

_BY_NAME: dict[str, MetricSpec] = {m.name: m for m in METRIC_CATALOG}


def get_metric(name: str) -> MetricSpec:
    """Look up a metric spec by its exporter name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown metric: {name!r}") from None


def metric_table() -> list[dict[str, str]]:
    """Table 4 as row dicts (name, subsystem, resource, description)."""
    return [
        {
            "metric": m.name,
            "subsystem": m.subsystem,
            "resource": m.resource,
            "unit": m.unit,
            "description": m.description,
            "source": m.source,
        }
        for m in METRIC_CATALOG
    ]
