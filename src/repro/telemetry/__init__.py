"""Telemetry substrate: a Prometheus/Thanos-like time-series pipeline.

The paper's monitoring stack is Prometheus + Thanos fed by two exporters:
the vROps exporter (``vrops_*`` metrics from VMware vRealize Operations) and
the MySQL server exporter over the Nova DB (``openstack_compute_*`` metrics).
This package reproduces that pipeline: typed time series, a label-indexed
metric store with range queries and aggregation, the exact Table 4 metric
catalogue, downsampling, and the CSV interchange format of the public
dataset.
"""

from repro.telemetry.timeseries import TimeSeries
from repro.telemetry.store import MetricStore, Sample, SampleBlock
from repro.telemetry.metrics import (
    METRIC_CATALOG,
    MetricSpec,
    NOVA_METRICS,
    VROPS_METRICS,
    metric_table,
)
from repro.telemetry.downsample import downsample
from repro.telemetry.exporters import NovaExporter, VropsExporter

__all__ = [
    "TimeSeries",
    "MetricStore",
    "Sample",
    "SampleBlock",
    "MetricSpec",
    "METRIC_CATALOG",
    "VROPS_METRICS",
    "NOVA_METRICS",
    "metric_table",
    "downsample",
    "VropsExporter",
    "NovaExporter",
]
