"""Virtual machine model and lifecycle states."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.infrastructure.capacity import Capacity
from repro.infrastructure.flavors import Flavor


class VMState(enum.Enum):
    """Lifecycle states, following Nova's instance state machine (reduced)."""

    REQUESTED = "requested"
    BUILDING = "building"
    ACTIVE = "active"
    MIGRATING = "migrating"
    RESIZING = "resizing"
    DELETED = "deleted"
    ERROR = "error"


#: Legal state transitions; anything else raises in :meth:`VM.transition`.
_TRANSITIONS: dict[VMState, frozenset[VMState]] = {
    VMState.REQUESTED: frozenset({VMState.BUILDING, VMState.ERROR}),
    VMState.BUILDING: frozenset({VMState.ACTIVE, VMState.ERROR, VMState.DELETED}),
    VMState.ACTIVE: frozenset(
        {VMState.MIGRATING, VMState.RESIZING, VMState.DELETED, VMState.ERROR}
    ),
    VMState.MIGRATING: frozenset({VMState.ACTIVE, VMState.ERROR}),
    VMState.RESIZING: frozenset({VMState.ACTIVE, VMState.ERROR}),
    VMState.DELETED: frozenset(),
    # ERROR -> BUILDING is the evacuation/rebuild path: a VM stranded by a
    # host failure is rebuilt on a new host (Nova evacuate).
    VMState.ERROR: frozenset({VMState.BUILDING, VMState.DELETED}),
}


@dataclass
class VM:
    """A virtual machine instance.

    Attributes
    ----------
    vm_id:
        Unique (anonymised) instance identifier.
    flavor:
        The resource template the VM was instantiated from.
    tenant:
        Project/tenant identifier (used by tenant isolation filters).
    az:
        Requested availability zone, or ``None`` for "any".
    created_at / deleted_at:
        Lifecycle timestamps in epoch seconds; ``deleted_at`` is ``None``
        while the VM is alive.
    node_id:
        Compute node currently hosting the VM (``None`` until placed).
    workload_profile:
        Name of the demand profile driving the VM's telemetry.
    """

    vm_id: str
    flavor: Flavor
    tenant: str = "default"
    az: str | None = None
    created_at: float = 0.0
    deleted_at: float | None = None
    node_id: str | None = None
    workload_profile: str = "general"
    state: VMState = VMState.REQUESTED
    migrations: int = 0
    metadata: dict[str, str] = field(default_factory=dict)

    def requested(self) -> Capacity:
        """Resources this VM requests from its host."""
        return self.flavor.requested()

    def transition(self, new_state: VMState) -> None:
        """Move to ``new_state``, enforcing the lifecycle state machine."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal VM state transition {self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def alive(self) -> bool:
        return self.state in (
            VMState.BUILDING,
            VMState.ACTIVE,
            VMState.MIGRATING,
            VMState.RESIZING,
        )

    def lifetime_seconds(self, now: float | None = None) -> float:
        """Observed lifetime: deletion (or ``now``) minus creation."""
        end = self.deleted_at if self.deleted_at is not None else now
        if end is None:
            raise ValueError("VM is alive; pass `now` to compute lifetime")
        return max(0.0, end - self.created_at)
