"""Topology construction: build regions from declarative specs.

Includes the paper's Appendix D (Table 5) per-datacenter deployment numbers
so benchmarks can rebuild the global footprint, and a parameterisable
regional spec matching the studied region (~1,800 hypervisors, ~48,000 VMs,
BBs of 2–128 nodes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.infrastructure.capacity import (
    Capacity,
    GENERAL_OVERCOMMIT,
    HANA_OVERCOMMIT,
    OvercommitPolicy,
)
from repro.infrastructure.hierarchy import (
    AvailabilityZone,
    BuildingBlock,
    ComputeNode,
    DataCenter,
    Region,
)

#: Default node hardware: dual-socket 64-core servers with 2 TiB RAM and a
#: 200 Gbps NIC (§5.3 states each node supports 200 Gbps).
DEFAULT_NODE = Capacity(vcpus=128, memory_mb=2048 * 1024, disk_gb=16384, network_gbps=200)

#: Beefier nodes for HANA building blocks (≥3 TB flavors need headroom).
HANA_NODE = Capacity(vcpus=224, memory_mb=12288 * 1024, disk_gb=32768, network_gbps=200)


@dataclass(frozen=True)
class BuildingBlockSpec:
    """Declarative spec for one building block."""

    bb_id: str
    node_count: int
    node_capacity: Capacity = DEFAULT_NODE
    overcommit: OvercommitPolicy = GENERAL_OVERCOMMIT
    aggregate_class: str = ""
    policy: str = "spread"

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError("building blocks need at least one node")


@dataclass(frozen=True)
class DatacenterSpec:
    """Declarative spec for one data center."""

    dc_id: str
    az_id: str
    building_blocks: tuple[BuildingBlockSpec, ...] = ()


@dataclass(frozen=True)
class TopologySpec:
    """Declarative spec for a whole region."""

    region_id: str
    datacenters: tuple[DatacenterSpec, ...] = ()


def build_region(spec: TopologySpec) -> Region:
    """Materialise a :class:`Region` from a :class:`TopologySpec`."""
    region = Region(region_id=spec.region_id)
    for dc_spec in spec.datacenters:
        az = region.azs.get(dc_spec.az_id)
        if az is None:
            az = AvailabilityZone(az_id=dc_spec.az_id)
            region.add_az(az)
        dc = DataCenter(dc_id=dc_spec.dc_id)
        for bb_spec in dc_spec.building_blocks:
            bb = BuildingBlock(
                bb_id=bb_spec.bb_id,
                overcommit=bb_spec.overcommit,
                aggregate_class=bb_spec.aggregate_class,
                policy=bb_spec.policy,
            )
            for i in range(bb_spec.node_count):
                node = ComputeNode(
                    node_id=f"{bb_spec.bb_id}-node-{i:03d}",
                    physical=bb_spec.node_capacity,
                )
                bb.add_node(node)
            dc.add_building_block(bb)
        az.add_datacenter(dc)
    return region


# --- Table 5: the paper's global data center footprint -----------------------

#: (region_id, datacenter_name, hypervisors, virtual_machines) — Appendix D.
PAPER_DATACENTERS: tuple[tuple[int, str, int, int], ...] = (
    (1, "A", 167, 4985),
    (1, "B", 65, 375),
    (2, "A", 244, 7913),
    (2, "B", 112, 1284),
    (3, "A", 202, 4475),
    (3, "B", 89, 1353),
    (4, "A", 191, 3977),
    (5, "A", 42, 395),
    (6, "A", 150, 5016),
    (7, "A", 63, 1096),
    (8, "A", 227, 5595),
    (8, "B", 270, 4206),
    (8, "D", 966, 34392),
    (9, "A", 751, 19464),
    (9, "B", 1072, 27652),
    (10, "A", 65, 1186),
    (10, "B", 152, 5713),
    (11, "A", 60, 2877),
    (12, "A", 62, 1996),
    (12, "B", 43, 362),
    (13, "A", 274, 7432),
    (13, "B", 99, 1149),
    (13, "D", 239, 3881),
    (14, "A", 330, 3809),
    (14, "B", 307, 5125),
    (15, "A", 209, 5442),
    (16, "A", 40, 504),
    (16, "B", 28, 156),
    (16, "D", 22, 78),
)


def paper_datacenter_table() -> list[dict[str, int | str]]:
    """Table 5 of the paper as a list of row dicts."""
    return [
        {
            "region_id": region,
            "datacenter_name": name,
            "hypervisors": hypervisors,
            "virtual_machines": vms,
        }
        for region, name, hypervisors, vms in PAPER_DATACENTERS
    ]


def datacenter_spec_from_counts(
    dc_id: str,
    az_id: str,
    node_count: int,
    hana_fraction: float = 0.30,
    min_bb_nodes: int = 2,
    max_bb_nodes: int = 128,
    typical_bb_nodes: int = 16,
) -> DatacenterSpec:
    """Split ``node_count`` hypervisors into BBs of realistic sizes.

    Building block sizes range 2–128 nodes (§3.1).  A ``hana_fraction`` of
    the nodes goes into bin-packed HANA BBs, the rest into spread
    general-purpose BBs, matching the paper's workload split.
    """
    if node_count < 1:
        raise ValueError("node_count must be positive")
    hana_nodes = int(round(node_count * hana_fraction))
    general_nodes = node_count - hana_nodes
    bbs: list[BuildingBlockSpec] = []

    def chunk(total: int, size: int) -> list[int]:
        if total <= 0:
            return []
        n_bbs = max(1, math.ceil(total / size))
        base = total // n_bbs
        sizes = [base] * n_bbs
        for i in range(total - base * n_bbs):
            sizes[i] += 1
        return [max(min_bb_nodes, min(max_bb_nodes, s)) for s in sizes if s > 0]

    for i, size in enumerate(chunk(general_nodes, typical_bb_nodes)):
        bbs.append(
            BuildingBlockSpec(
                bb_id=f"{dc_id}-gp-{i:02d}",
                node_count=size,
                node_capacity=DEFAULT_NODE,
                overcommit=GENERAL_OVERCOMMIT,
                policy="spread",
            )
        )
    hana_chunks = chunk(hana_nodes, typical_bb_nodes)
    if len(hana_chunks) == 1 and hana_chunks[0] >= 2 * min_bb_nodes:
        # Guarantee both aggregates exist even in small DCs: carve the
        # special-purpose ≥3 TB block out of the single HANA chunk (§3.1).
        xl_size = max(min_bb_nodes, hana_chunks[0] // 3)
        hana_chunks = [xl_size, hana_chunks[0] - xl_size]
    for i, size in enumerate(hana_chunks):
        # The first HANA BB is the special-purpose ≥3 TB aggregate (§3.1).
        is_xl = i == 0 and hana_nodes >= min_bb_nodes
        bbs.append(
            BuildingBlockSpec(
                bb_id=f"{dc_id}-hana-{i:02d}",
                node_count=size,
                node_capacity=HANA_NODE,
                overcommit=HANA_OVERCOMMIT,
                aggregate_class="hana_xl" if is_xl else "hana",
                policy="pack",
            )
        )
    return DatacenterSpec(dc_id=dc_id, az_id=az_id, building_blocks=tuple(bbs))


def paper_region_spec(scale: float = 1.0, region_id: str = "region-9") -> TopologySpec:
    """A spec shaped like the studied region (~1,800 nodes across 2 DCs).

    ``scale`` shrinks the deployment proportionally so tests and examples
    can run quickly; ``scale=1.0`` yields the full ≈1,800-hypervisor region
    (matching region 9 of Table 5: DCs of 751 and 1,072 nodes).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    dc_sizes = {"A": 751, "B": 1072}
    dcs = []
    for name, count in dc_sizes.items():
        scaled = max(4, int(round(count * scale)))
        dcs.append(
            datacenter_spec_from_counts(
                dc_id=f"{region_id}-dc-{name.lower()}",
                az_id=f"{region_id}{name.lower()}",
                node_count=scaled,
            )
        )
    return TopologySpec(region_id=region_id, datacenters=tuple(dcs))
