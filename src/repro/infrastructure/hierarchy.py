"""The region → AZ → DC → building block → compute node hierarchy (Figure 1).

A :class:`ComputeNode` is an individual hypervisor (ESXi host).  A
:class:`BuildingBlock` is a vSphere cluster of uniform nodes — the unit Nova
places onto (§3.1: "each vSphere cluster is represented as a single compute
host"); nodes inside it are balanced by DRS.  A :class:`DataCenter` is the
placement and scheduling domain of this study (§3.1, cross-DC migrations are
out of scope).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.infrastructure.capacity import Capacity, OvercommitPolicy
from repro.infrastructure.vm import VM


#: Monotonic counter bumped by every node-level mutation that can affect
#: scheduling: VM add/remove and the failure/maintenance flags.  The
#: scheduler's HostStateIndex compares it across queries to skip its
#: fingerprint scan entirely when no node changed — O(1) instead of
#: O(nodes) on the scheduling hot path.
NODE_MUTATION_EPOCH = 0


def _bump_node_epoch() -> None:
    global NODE_MUTATION_EPOCH
    NODE_MUTATION_EPOCH += 1


@dataclass
class ComputeNode:
    """One physical hypervisor.

    Tracks allocated (requested) resources of resident VMs.  Actual *usage*
    is a telemetry concern handled by the simulation; allocation here is the
    placement-relevant bookkeeping the Nova placement API maintains.
    """

    node_id: str
    physical: Capacity
    building_block: str = ""
    datacenter: str = ""
    az: str = ""
    vms: dict[str, VM] = field(default_factory=dict)
    maintenance: bool = False
    #: Hard failure (hypervisor down): resident VMs must be evacuated and no
    #: new placements may land here until recovery clears the flag.
    failed: bool = False
    #: Control-plane fence: the host health service quarantines nodes that
    #: flap (fail/recover oscillation).  A quarantined node keeps its
    #: resident VMs but accepts no new placements until re-admitted.
    quarantined: bool = False
    #: Bumped by add_vm/remove_vm; part of the allocated() cache guard.
    _vm_epoch: int = field(default=0, init=False, repr=False, compare=False)
    #: (vm_epoch, vms-dict ref, len, Capacity) of the last allocated() sum,
    #: or None.  The dict-identity + length guards catch mutations that
    #: bypass add_vm/remove_vm (e.g. the verify harness forking ``vms`` to
    #: inject a ghost VM), so a stale sum can never be served to a caller
    #: that would otherwise re-count the registry.
    _alloc_cache: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __setattr__(self, name: str, value) -> None:
        # Flipping a health flag must invalidate any scheduler-side cache;
        # writes to these fields are rare, so the hook costs nothing
        # where it matters.
        if name == "failed" or name == "maintenance" or name == "quarantined":
            _bump_node_epoch()
        object.__setattr__(self, name, value)

    @property
    def healthy(self) -> bool:
        """Neither draining, failed, nor fenced off by quarantine."""
        return not self.maintenance and not self.failed and not self.quarantined

    def allocated(self) -> Capacity:
        """Sum of resources requested by resident VMs (cached between
        mutations; any add/remove or registry swap recomputes)."""
        vms = self.vms
        cache = self._alloc_cache
        if (
            cache is not None
            and cache[0] == self._vm_epoch
            and cache[1] is vms
            and cache[2] == len(vms)
        ):
            return cache[3]
        total = Capacity()
        for vm in vms.values():
            total = total + vm.requested()
        object.__setattr__(
            self, "_alloc_cache", (self._vm_epoch, vms, len(vms), total)
        )
        return total

    def free(self, policy: OvercommitPolicy) -> Capacity:
        """Allocatable-minus-allocated capacity under ``policy``."""
        return policy.allocatable(self.physical) - self.allocated()

    def can_host(self, vm: VM, policy: OvercommitPolicy) -> bool:
        """True when the VM's request fits this node under ``policy``."""
        if not self.healthy:
            return False
        return vm.requested().fits_within(self.free(policy))

    def add_vm(self, vm: VM) -> None:
        """Place ``vm`` on this node and stamp its ``node_id``."""
        if vm.vm_id in self.vms:
            raise ValueError(f"VM {vm.vm_id} already on node {self.node_id}")
        self.vms[vm.vm_id] = vm
        vm.node_id = self.node_id
        object.__setattr__(self, "_vm_epoch", self._vm_epoch + 1)
        _bump_node_epoch()

    def remove_vm(self, vm_id: str) -> VM:
        """Remove and return a resident VM; clears its ``node_id``."""
        try:
            vm = self.vms.pop(vm_id)
        except KeyError:
            raise KeyError(f"VM {vm_id} not on node {self.node_id}") from None
        vm.node_id = None
        object.__setattr__(self, "_vm_epoch", self._vm_epoch + 1)
        _bump_node_epoch()
        return vm

    @property
    def vm_count(self) -> int:
        return len(self.vms)


@dataclass
class BuildingBlock:
    """A vSphere cluster: the aggregation Nova schedules onto.

    Nodes within a BB are homogeneous (§3.2: "hosts exhibit homogeneous
    hardware capabilities within a given building block").
    """

    bb_id: str
    datacenter: str = ""
    az: str = ""
    nodes: dict[str, ComputeNode] = field(default_factory=dict)
    overcommit: OvercommitPolicy = field(default_factory=OvercommitPolicy)
    #: Aggregate class for special-purpose BBs ("hana_xl", "gpu", or "" for
    #: general-purpose), matching §3.1's reserved building blocks.
    aggregate_class: str = ""
    #: Placement policy applied inside/onto this BB: "spread" or "pack".
    policy: str = "spread"
    #: (nodes-dict ref, len, Capacity) memo of physical(); node hardware is
    #: immutable, so the sum only changes when the member set does.
    _physical_cache: tuple | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def add_node(self, node: ComputeNode) -> None:
        """Add a member node, stamping its BB/DC/AZ identifiers."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node {node.node_id} in BB {self.bb_id}")
        node.building_block = self.bb_id
        node.datacenter = self.datacenter
        node.az = self.az
        self.nodes[node.node_id] = node
        _bump_node_epoch()

    def iter_nodes(self) -> Iterator[ComputeNode]:
        return iter(self.nodes.values())

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def physical(self) -> Capacity:
        """Total physical capacity across member nodes (memoised; any
        change to the member set recomputes)."""
        nodes = self.nodes
        cache = self._physical_cache
        if cache is not None and cache[0] is nodes and cache[1] == len(nodes):
            return cache[2]
        total = Capacity()
        for node in nodes.values():
            total = total + node.physical
        self._physical_cache = (nodes, len(nodes), total)
        return total

    def allocated(self) -> Capacity:
        """Sum of resources requested by VMs across member nodes."""
        total = Capacity()
        for node in self.nodes.values():
            total = total + node.allocated()
        return total

    def free(self) -> Capacity:
        """Free allocatable capacity across member nodes."""
        total = Capacity()
        for node in self.nodes.values():
            total = total + node.free(self.overcommit)
        return total

    def vms(self) -> list[VM]:
        """All VMs resident on this building block's nodes."""
        out: list[VM] = []
        for node in self.nodes.values():
            out.extend(node.vms.values())
        return out

    @property
    def vm_count(self) -> int:
        return sum(node.vm_count for node in self.nodes.values())


@dataclass
class DataCenter:
    """A data center: the placement/scheduling domain of the study."""

    dc_id: str
    az: str = ""
    building_blocks: dict[str, BuildingBlock] = field(default_factory=dict)

    def add_building_block(self, bb: BuildingBlock) -> None:
        """Add a building block, propagating DC/AZ identifiers down."""
        if bb.bb_id in self.building_blocks:
            raise ValueError(f"duplicate BB {bb.bb_id} in DC {self.dc_id}")
        bb.datacenter = self.dc_id
        bb.az = self.az
        for node in bb.nodes.values():
            node.datacenter = self.dc_id
            node.az = self.az
        self.building_blocks[bb.bb_id] = bb

    def iter_nodes(self) -> Iterator[ComputeNode]:
        for bb in self.building_blocks.values():
            yield from bb.iter_nodes()

    def iter_building_blocks(self) -> Iterator[BuildingBlock]:
        return iter(self.building_blocks.values())

    @property
    def node_count(self) -> int:
        return sum(bb.node_count for bb in self.building_blocks.values())

    @property
    def vm_count(self) -> int:
        return sum(bb.vm_count for bb in self.building_blocks.values())


@dataclass
class AvailabilityZone:
    """A logical group of independent, co-located DCs (§2.1)."""

    az_id: str
    datacenters: dict[str, DataCenter] = field(default_factory=dict)

    def add_datacenter(self, dc: DataCenter) -> None:
        """Add a data center, propagating the AZ identifier down."""
        if dc.dc_id in self.datacenters:
            raise ValueError(f"duplicate DC {dc.dc_id} in AZ {self.az_id}")
        dc.az = self.az_id
        for bb in dc.building_blocks.values():
            bb.az = self.az_id
            for node in bb.nodes.values():
                node.az = self.az_id
        self.datacenters[dc.dc_id] = dc


@dataclass
class Region:
    """The top of the hierarchy: one or more AZs."""

    region_id: str
    azs: dict[str, AvailabilityZone] = field(default_factory=dict)

    def add_az(self, az: AvailabilityZone) -> None:
        """Add an availability zone to the region."""
        if az.az_id in self.azs:
            raise ValueError(f"duplicate AZ {az.az_id} in region {self.region_id}")
        self.azs[az.az_id] = az

    def iter_datacenters(self) -> Iterator[DataCenter]:
        for az in self.azs.values():
            yield from az.datacenters.values()

    def iter_building_blocks(self) -> Iterator[BuildingBlock]:
        for dc in self.iter_datacenters():
            yield from dc.iter_building_blocks()

    def iter_nodes(self) -> Iterator[ComputeNode]:
        for dc in self.iter_datacenters():
            yield from dc.iter_nodes()

    def iter_vms(self) -> Iterator[VM]:
        for node in self.iter_nodes():
            yield from node.vms.values()

    def find_node(self, node_id: str) -> ComputeNode:
        """Look up one node anywhere in the region (KeyError if absent)."""
        for node in self.iter_nodes():
            if node.node_id == node_id:
                return node
        raise KeyError(f"unknown node: {node_id}")

    def find_building_block(self, bb_id: str) -> BuildingBlock:
        """Look up one building block (KeyError if absent)."""
        for bb in self.iter_building_blocks():
            if bb.bb_id == bb_id:
                return bb
        raise KeyError(f"unknown building block: {bb_id}")

    @property
    def node_count(self) -> int:
        return sum(dc.node_count for dc in self.iter_datacenters())

    @property
    def vm_count(self) -> int:
        return sum(dc.vm_count for dc in self.iter_datacenters())
