"""Resource capacity vectors and overcommit policy.

Capacities cover the four resources the paper's telemetry tracks per node:
vCPUs, memory, local storage, and network bandwidth (Table 4).  Overcommit
follows the OpenStack convention of per-resource allocation ratios — the
paper's Section 7 discusses the vCPU:pCPU overcommit factor explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Capacity:
    """A physical or requested resource vector.

    Attributes
    ----------
    vcpus:
        CPU cores.  On a node this is physical cores (pCPU); on a VM or
        flavor it is virtual cores (vCPU).
    memory_mb:
        Memory in MiB.
    disk_gb:
        Local storage in GiB.
    network_gbps:
        NIC bandwidth in Gbit/s.  The paper's nodes have 200 Gbps NICs.
    """

    vcpus: float = 0.0
    memory_mb: float = 0.0
    disk_gb: float = 0.0
    network_gbps: float = 0.0

    def __post_init__(self) -> None:
        for field in ("vcpus", "memory_mb", "disk_gb", "network_gbps"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")

    def __add__(self, other: "Capacity") -> "Capacity":
        return Capacity(
            self.vcpus + other.vcpus,
            self.memory_mb + other.memory_mb,
            self.disk_gb + other.disk_gb,
            self.network_gbps + other.network_gbps,
        )

    def __sub__(self, other: "Capacity") -> "Capacity":
        return Capacity(
            max(0.0, self.vcpus - other.vcpus),
            max(0.0, self.memory_mb - other.memory_mb),
            max(0.0, self.disk_gb - other.disk_gb),
            max(0.0, self.network_gbps - other.network_gbps),
        )

    def scaled(self, factor: float) -> "Capacity":
        """This capacity with every component multiplied by ``factor``."""
        return Capacity(
            self.vcpus * factor,
            self.memory_mb * factor,
            self.disk_gb * factor,
            self.network_gbps * factor,
        )

    def fits_within(self, other: "Capacity") -> bool:
        """True when every component of ``self`` fits in ``other``."""
        return (
            self.vcpus <= other.vcpus
            and self.memory_mb <= other.memory_mb
            and self.disk_gb <= other.disk_gb
            and self.network_gbps <= other.network_gbps
        )

    def dominant_share(self, total: "Capacity") -> float:
        """Largest per-resource fraction of ``self`` relative to ``total``.

        This is the dominant-resource share used by multi-dimensional
        bin-packing heuristics; resources with zero total are ignored.
        """
        shares = []
        for mine, whole in (
            (self.vcpus, total.vcpus),
            (self.memory_mb, total.memory_mb),
            (self.disk_gb, total.disk_gb),
            (self.network_gbps, total.network_gbps),
        ):
            if whole > 0:
                shares.append(mine / whole)
        return max(shares) if shares else 0.0


@dataclass(frozen=True, slots=True)
class OvercommitPolicy:
    """Per-resource OpenStack-style allocation ratios.

    A ratio of 4.0 for CPU means 4 vCPUs may be allocated per physical core
    (``cpu_allocation_ratio``).  The paper (§7) notes SAP derives the
    overcommit factor as the vCPU:pCPU ratio and recommends making it
    workload-dependent.
    """

    cpu_ratio: float = 4.0
    memory_ratio: float = 1.0
    disk_ratio: float = 1.0

    def __post_init__(self) -> None:
        for field in ("cpu_ratio", "memory_ratio", "disk_ratio"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    def allocatable(self, physical: Capacity) -> Capacity:
        """Allocatable capacity given the physical capacity of a node."""
        return Capacity(
            physical.vcpus * self.cpu_ratio,
            physical.memory_mb * self.memory_ratio,
            physical.disk_gb * self.disk_ratio,
            physical.network_gbps,
        )


#: Policy for memory-bound SAP HANA building blocks — memory is never
#: overcommitted (in-memory databases need residency, §6); the CPU ratio is
#: set so memory, not vCPUs, is the binding dimension for the HANA flavor
#: family (~16 GiB per vCPU), matching the bin-packed, memory-first
#: treatment the paper describes (§3.2).
HANA_OVERCOMMIT = OvercommitPolicy(cpu_ratio=3.5, memory_ratio=1.0, disk_ratio=1.0)

#: Default policy for general-purpose building blocks.
GENERAL_OVERCOMMIT = OvercommitPolicy(cpu_ratio=4.0, memory_ratio=1.0, disk_ratio=1.5)
