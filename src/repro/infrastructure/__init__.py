"""Infrastructure model: the region → AZ → DC → building block → node hierarchy.

Mirrors the hierarchy of Section 2.1/Figure 1 of the paper.  A *building
block* (BB) is a vSphere cluster of uniform ESXi compute nodes; Nova sees a
whole BB as one compute host, while VMware DRS balances VMs across the nodes
inside it.
"""

from repro.infrastructure.capacity import Capacity, OvercommitPolicy
from repro.infrastructure.flavors import Flavor, FlavorCatalog, default_catalog
from repro.infrastructure.vm import VM, VMState
from repro.infrastructure.hierarchy import (
    AvailabilityZone,
    BuildingBlock,
    ComputeNode,
    DataCenter,
    Region,
)
from repro.infrastructure.topology import (
    DatacenterSpec,
    TopologySpec,
    build_region,
    paper_datacenter_table,
    paper_region_spec,
)

__all__ = [
    "Capacity",
    "OvercommitPolicy",
    "Flavor",
    "FlavorCatalog",
    "default_catalog",
    "VM",
    "VMState",
    "Region",
    "AvailabilityZone",
    "DataCenter",
    "BuildingBlock",
    "ComputeNode",
    "DatacenterSpec",
    "TopologySpec",
    "build_region",
    "paper_datacenter_table",
    "paper_region_spec",
]
