"""Flavor catalogue.

In OpenStack a *flavor* is a predefined vCPU/memory/storage template; VMs are
instantiated from flavors (§2.1).  The default catalogue below spans the four
vCPU classes of Table 1 and the four RAM classes of Table 2, including the
memory-intensive HANA flavors of up to 12 TB the paper highlights (Table 3)
and the ≥3 TB flavors confined to special-purpose building blocks (§3.1).

Flavor names follow the SAP convention of a family prefix plus a size suffix
(e.g. ``g_c4_m32`` = general purpose, 4 vCPUs, 32 GiB RAM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator

from repro.infrastructure.capacity import Capacity

GIB_MB = 1024  # MiB per GiB; flavor RAM is specified in GiB in the paper.


@lru_cache(maxsize=1024)
def _requested_capacity(flavor: "Flavor") -> Capacity:
    # Flavor and Capacity are both frozen, so the shared instance is safe;
    # schedulers and DRS call requested() on every candidate check and the
    # Capacity churn shows up in profiles.
    return Capacity(
        vcpus=flavor.vcpus, memory_mb=flavor.ram_mb, disk_gb=flavor.disk_gb
    )


@dataclass(frozen=True, slots=True)
class Flavor:
    """A VM resource template.

    Attributes
    ----------
    name:
        Unique flavor identifier.
    vcpus / ram_gib / disk_gb:
        Requested resources; ``ram_gib`` uses GiB to match the paper's
        tables and figures.
    family:
        Workload family — ``"general"``, ``"hana"``, or ``"gpu"`` — used for
        the pack-vs-spread placement policy split (§3.2).
    extra_specs:
        Free-form scheduler hints, matching Nova's flavor extra_specs
        (consumed by AggregateInstanceExtraSpecsFilter).
    """

    name: str
    vcpus: int
    ram_gib: float
    disk_gb: float = 50.0
    family: str = "general"
    extra_specs: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ValueError("vcpus must be positive")
        if self.ram_gib <= 0:
            raise ValueError("ram_gib must be positive")
        if self.disk_gb < 0:
            raise ValueError("disk_gb must be non-negative")

    @property
    def ram_mb(self) -> float:
        """Requested memory in MiB."""
        return self.ram_gib * GIB_MB

    def requested(self) -> Capacity:
        """The capacity this flavor requests from a host (memoized)."""
        return _requested_capacity(self)

    def spec(self, key: str, default: str | None = None) -> str | None:
        """Look up an extra-spec value."""
        for k, v in self.extra_specs:
            if k == key:
                return v
        return default

    @property
    def vcpu_class(self) -> str:
        """Table 1 classification: small / medium / large / xlarge by vCPUs."""
        return classify_vcpus(self.vcpus)

    @property
    def ram_class(self) -> str:
        """Table 2 classification: small / medium / large / xlarge by RAM."""
        return classify_ram(self.ram_gib)


def classify_vcpus(vcpus: float) -> str:
    """Classify a vCPU count per Table 1 of the paper."""
    if vcpus <= 4:
        return "small"
    if vcpus <= 16:
        return "medium"
    if vcpus <= 64:
        return "large"
    return "xlarge"


def classify_ram(ram_gib: float) -> str:
    """Classify a RAM size (GiB) per Table 2 of the paper."""
    if ram_gib <= 2:
        return "small"
    if ram_gib <= 64:
        return "medium"
    if ram_gib <= 128:
        return "large"
    return "xlarge"


class FlavorCatalog:
    """A registry of flavors by name."""

    def __init__(self, flavors: list[Flavor] | None = None) -> None:
        self._flavors: dict[str, Flavor] = {}
        for flavor in flavors or []:
            self.register(flavor)

    def register(self, flavor: Flavor) -> None:
        """Add a flavor; duplicate names are rejected."""
        if flavor.name in self._flavors:
            raise ValueError(f"duplicate flavor name: {flavor.name}")
        self._flavors[flavor.name] = flavor

    def get(self, name: str) -> Flavor:
        """Look up a flavor by name (KeyError if unknown)."""
        try:
            return self._flavors[name]
        except KeyError:
            raise KeyError(f"unknown flavor: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._flavors

    def __iter__(self) -> Iterator[Flavor]:
        return iter(self._flavors.values())

    def __len__(self) -> int:
        return len(self._flavors)

    def by_family(self, family: str) -> list[Flavor]:
        """All flavors of one workload family."""
        return [f for f in self._flavors.values() if f.family == family]


def default_catalog() -> FlavorCatalog:
    """The flavor catalogue used across examples, datagen, and benchmarks.

    General-purpose flavors cover the small/medium/large vCPU classes (dev
    environments, CI/CD, Kubernetes infrastructure — §5.5); HANA flavors
    cover the memory-intensive large/xlarge end, up to the 12 TB maximum the
    paper reports in Table 3.
    """
    flavors: list[Flavor] = []
    general = [
        # (vcpus, ram_gib, disk_gb)
        (1, 1, 20),
        (1, 2, 20),
        (2, 4, 40),
        (2, 8, 40),
        (4, 8, 80),
        (4, 16, 80),
        (4, 32, 160),
        (8, 32, 160),
        (8, 64, 320),
        (16, 64, 320),
        (16, 128, 640),
        (32, 128, 640),
        (32, 256, 640),
        (64, 256, 1280),
    ]
    for vcpus, ram, disk in general:
        flavors.append(
            Flavor(
                name=f"g_c{vcpus}_m{ram}",
                vcpus=vcpus,
                ram_gib=ram,
                disk_gb=disk,
                family="general",
            )
        )
    hana = [
        (16, 256, 640),
        (32, 512, 1280),
        (48, 768, 1280),
        (64, 1024, 2560),
        (80, 1536, 2560),
        (96, 2048, 2560),
        (96, 3072, 5120),
        (112, 4096, 5120),
        (128, 6144, 10240),
        (128, 12288, 10240),
    ]
    for vcpus, ram, disk in hana:
        # HANA flavors are pinned to HANA host aggregates; the ≥3 TB ones go
        # to the reserved special-purpose building blocks (§3.1).
        if ram >= 3072:
            specs: tuple[tuple[str, str], ...] = (("aggregate_class", "hana_xl"),)
        else:
            specs = (("aggregate_class", "hana"),)
        flavors.append(
            Flavor(
                name=f"h_c{vcpus}_m{ram}",
                vcpus=vcpus,
                ram_gib=ram,
                disk_gb=disk,
                family="hana",
                extra_specs=specs,
            )
        )
    flavors.append(
        Flavor(
            name="gpu_c32_m256",
            vcpus=32,
            ram_gib=256,
            disk_gb=1280,
            family="gpu",
            extra_specs=(("aggregate_class", "gpu"),),
        )
    )
    return FlavorCatalog(flavors)
