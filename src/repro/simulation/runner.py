"""The regional discrete-event simulation.

Drives the full two-layer architecture: VM requests flow through the Nova
:class:`~repro.scheduler.pipeline.FilterScheduler` (BB-level placement with
placement-API claims), land on a node chosen by the BB's policy, are
periodically rebalanced by :class:`~repro.drs.balancer.DrsBalancer`, and are
scraped through the exporters into a metric store — the §4 measurement
pipeline running against live simulated state.

This is the substrate for the scheduler ablation benchmarks; the bulk
telemetry of the figure benchmarks comes from the faster vectorised
:mod:`repro.datagen` path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable

import numpy as np

from repro.drs.balancer import DrsBalancer, DrsConfig
from repro.faults import (
    EvacuationManager,
    FaultConfig,
    FaultInjector,
    FaultReport,
    MigrationFaultModel,
    ScrapePartition,
    TelemetryFaultModel,
    domain_members,
)
from repro.infrastructure.flavors import FlavorCatalog, default_catalog
from repro.infrastructure.hierarchy import BuildingBlock, ComputeNode, Region
from repro.infrastructure.topology import TopologySpec, build_region
from repro.infrastructure.vm import VM, VMState
from repro.resilience.admission import AdmissionController, AdmissionRejected
from repro.resilience.config import ResilienceConfig
from repro.resilience.health import HostHealthService
from repro.resilience.invariants import InvariantChecker
from repro.resilience.reconciler import InventoryReconciler
from repro.resilience.report import ResilienceReport
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.filters import QuarantineFilter, default_filters
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import PlacementService
from repro.scheduler.request import RequestSpec
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import (
    ADMISSION_RETRY,
    DOMAIN_FAIL,
    DOMAIN_RECOVER,
    DRS_RUN,
    EVAC_RETRY,
    HEALTH_CHECK,
    HOST_FAIL,
    HOST_RECOVER,
    INVARIANT_CHECK,
    MAINT_END,
    MAINT_START,
    PARTITION_END,
    PARTITION_START,
    QUARANTINE_END,
    RECONCILE,
    SCRAPE,
    VM_CREATE,
    VM_DELETE,
    VM_RESIZE,
)
from repro.simulation.hostsched import HostCpuModel
from repro.telemetry.exporters import NodeUsage, NovaExporter, VropsExporter
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import STALE
from repro.workloads.demand import DemandModel, VMDemand
from repro.workloads.lifetime import sample_lifetime
from repro.workloads.profiles import profile_for_flavor
from repro.workloads.waveform import CompiledDemand, compile_demand


@dataclass(frozen=True)
class SimulationConfig:
    """Run parameters for one regional simulation."""

    duration_days: float = 3.0
    scrape_interval_s: float = 900.0
    drs_interval_s: float = 3600.0
    #: VM arrivals per hour (Poisson).
    arrival_rate_per_hour: float = 20.0
    #: Resize events per hour (Poisson); a random live VM changes flavor.
    resize_rate_per_hour: float = 0.0
    #: Maintenance windows per day (Poisson); a random node drains for
    #: ``maintenance_duration_s`` (VMs stay, new placements avoid it).
    maintenance_rate_per_day: float = 0.0
    maintenance_duration_s: float = 4 * 3600.0
    #: Initial VMs to place before the clock starts.
    initial_vms: int = 200
    seed: int = 7
    start_time: float = 0.0
    #: Placement strategy: "nova" (BB-level filter/weigher pipeline) or
    #: "holistic" (node-level single-layer scheduler, §7).
    scheduler_factory: str = "nova"
    #: Scheduler knobs; None means the default config in fast mode (the
    #: per-filter trace off — placements are identical, see SchedulerConfig).
    scheduler_config: SchedulerConfig | None = None
    #: Fault-injection knobs (host failures, migration aborts, telemetry
    #: gaps); None runs the happy path with zero injection overhead.
    faults: FaultConfig | None = None
    #: Control-plane resilience knobs (host health / quarantine, admission
    #: control, reconciliation, invariants); None disables the layer.
    resilience: ResilienceConfig | None = None
    #: Scrape implementation: "columnar" evaluates demand through the
    #: compiled scalar fast path and appends through interned series
    #: handles (byte-identical telemetry, placements, and fault reports);
    #: "legacy" builds per-sample Sample objects through store.ingest.
    scrape_path: str = "columnar"
    #: Accumulate cumulative per-stage wall time (demand_eval,
    #: exporter_format, ingest, scheduler, drs) into
    #: SimulationResult.stage_profile.
    profile_stages: bool = False


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one run."""

    region: Region
    store: MetricStore
    placement: PlacementService
    scheduler_stats: dict[str, int]
    drs_migrations: int
    created: int
    deleted: int
    rejected: int
    events_processed: int
    vms: dict[str, VM] = field(default_factory=dict)
    resized: int = 0
    resize_failed: int = 0
    maintenance_windows: int = 0
    fault_report: FaultReport | None = None
    resilience_report: ResilienceReport | None = None
    #: Cumulative per-stage wall seconds (only with profile_stages=True).
    stage_profile: dict[str, float] | None = None


#: Stage keys reported by the profiler, in display order.
PROFILE_STAGES = ("demand_eval", "exporter_format", "ingest", "scheduler", "drs")


class RegionSimulation:
    """Wires engine + scheduler + DRS + telemetry for one region."""

    def __init__(
        self,
        spec: TopologySpec,
        config: SimulationConfig | None = None,
        scheduler: FilterScheduler | None = None,
        catalog: FlavorCatalog | None = None,
        journal: Callable[[dict], None] | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        if self.config.scrape_path not in ("columnar", "legacy"):
            raise ValueError(
                f"unknown scrape_path {self.config.scrape_path!r}; "
                "expected 'columnar' or 'legacy'"
            )
        self._columnar = self.config.scrape_path == "columnar"
        self._stages: dict[str, float] | None = (
            {stage: 0.0 for stage in PROFILE_STAGES}
            if self.config.profile_stages
            else None
        )
        self.rng = np.random.default_rng(self.config.seed)
        self.region = build_region(spec)
        self.placement = PlacementService()
        for bb in self.region.iter_building_blocks():
            self.placement.register_building_block(bb)
        # -- audit journal: one sink receives every control-plane record
        # (sim-clock advances, placement claims/releases, quarantine
        # transitions, admission decisions).  ``repro chaos --journal``
        # plugs a JournalWriter's append in here.
        self.journal = journal
        if journal is not None:
            self.placement.add_journal_sink(
                lambda event, cid, pid, amounts: journal(
                    {"t": event, "vm": cid, "bb": pid,
                     "amounts": dict(amounts)}
                )
            )
        scheduler_config = self.config.scheduler_config or SchedulerConfig().fast()

        # -- resilience layer, part 1: the health service must exist before
        # the scheduler so its QuarantineFilter can join the filter chain.
        resilience = self.config.resilience
        self.resilience_report: ResilienceReport | None = None
        self.health: HostHealthService | None = None
        self.admission: AdmissionController | None = None
        self.reconciler: InventoryReconciler | None = None
        self.invariants: InvariantChecker | None = None
        if resilience is not None:
            self.resilience_report = ResilienceReport(seed=resilience.seed)
            self.health = HostHealthService(
                self.region,
                resilience,
                self.resilience_report,
                rng=np.random.default_rng(resilience.seed),
            )
            self.health.journal_sink = journal
            filters = (
                list(scheduler_config.filters)
                if scheduler_config.filters is not None
                else default_filters()
            )
            filters.append(QuarantineFilter(self.health))
            scheduler_config = replace(scheduler_config, filters=filters)

        if scheduler is not None:
            self.scheduler = scheduler
        elif self.config.scheduler_factory == "holistic":
            from repro.core.advanced_placement import HolisticNodeScheduler

            self.scheduler = HolisticNodeScheduler(
                self.region, self.placement, scheduler_config
            )
        elif self.config.scheduler_factory == "nova":
            self.scheduler = FilterScheduler(
                self.region, self.placement, scheduler_config
            )
        else:
            raise ValueError(
                f"unknown scheduler_factory {self.config.scheduler_factory!r}"
            )
        self.catalog = catalog or default_catalog()
        self.store = MetricStore()
        self.vrops = VropsExporter()
        self.nova_exporter = NovaExporter()
        self.drs = DrsBalancer(config=DrsConfig())
        self.demand_model = DemandModel(self.rng)
        self.engine = SimulationEngine(start_time=self.config.start_time)
        self.engine.journal_sink = journal
        self.engine.on(VM_CREATE, self._timed("scheduler", self._handle_create))
        self.engine.on(VM_DELETE, self._handle_delete)
        self.engine.on(VM_RESIZE, self._timed("scheduler", self._handle_resize))
        self.engine.on(
            SCRAPE,
            self._handle_scrape_columnar if self._columnar else self._handle_scrape,
        )
        self.engine.on(DRS_RUN, self._timed("drs", self._handle_drs))
        self.engine.on(MAINT_START, self._handle_maintenance_start)
        self.engine.on(MAINT_END, self._handle_maintenance_end)

        # -- resilience layer, part 2: everything downstream of the scheduler.
        if resilience is not None:
            self.health.attach_scheduler(self.scheduler)
            self.admission = AdmissionController(
                self.scheduler,
                resilience,
                self.resilience_report,
                rng=np.random.default_rng(resilience.seed + 1),
            )
            self.admission.journal_sink = journal
            self.reconciler = InventoryReconciler(
                self, resilience, self.resilience_report
            )
            self.invariants = InvariantChecker(
                self, resilience, self.resilience_report, health=self.health
            )
            self.engine.on(HEALTH_CHECK, self._handle_health_check)
            self.engine.on(QUARANTINE_END, self._handle_quarantine_end)
            # An admission retry is a deferred VM_CREATE with its identity
            # and deadline already fixed; the same handler serves both.
            self.engine.on(
                ADMISSION_RETRY, self._timed("scheduler", self._handle_create)
            )
            self.engine.on(RECONCILE, self._handle_reconcile)
            self.engine.on(INVARIANT_CHECK, self._handle_invariant_check)

        # -- fault injection (all None/inert when config.faults is unset) -----
        faults = self.config.faults
        self.fault_report: FaultReport | None = None
        self.fault_injector: FaultInjector | None = None
        self.evacuation: EvacuationManager | None = None
        self.migration_faults: MigrationFaultModel | None = None
        self.telemetry_faults: TelemetryFaultModel | None = None
        self.partition: ScrapePartition | None = None
        if faults is not None:
            self.fault_report = FaultReport(seed=faults.seed)
            self.fault_injector = FaultInjector(faults)
            self.evacuation = EvacuationManager(self, faults, self.fault_report)
            # Each model owns an independent sub-seeded RNG so one fault
            # class's draw volume cannot shift another's replay.
            self.migration_faults = MigrationFaultModel(
                faults.migration_abort_fraction, seed=faults.seed + 1
            )
            self.telemetry_faults = TelemetryFaultModel(
                faults.scrape_gap_probability,
                faults.stale_node_probability,
                seed=faults.seed + 2,
            )
            self.partition = ScrapePartition()
            self.engine.on(HOST_FAIL, self._handle_host_fail)
            self.engine.on(HOST_RECOVER, self._handle_host_recover)
            self.engine.on(EVAC_RETRY, self._handle_evac_retry)
            self.engine.on(DOMAIN_FAIL, self._handle_domain_fail)
            self.engine.on(DOMAIN_RECOVER, self._handle_domain_recover)
            self.engine.on(PARTITION_START, self._handle_partition_start)
            self.engine.on(PARTITION_END, self._handle_partition_end)

        self.vms: dict[str, VM] = {}
        self.demands: dict[str, VMDemand] = {}
        #: Per-VM compiled waveform evaluators (columnar scrape path).
        #: Entries are validated by demand-object identity on every use and
        #: recompiled on mismatch, so create/resize (which swap the
        #: VMDemand) can never be served a stale waveform table; delete
        #: drops the entry.
        self._compiled: dict[str, CompiledDemand] = {}
        self._stale_usage = NodeUsage(
            cpu_used_fraction=STALE,
            memory_used_fraction=STALE,
            network_tx_kbps=STALE,
            network_rx_kbps=STALE,
            disk_used_gb=STALE,
            cpu_ready_ms=STALE,
            cpu_contention_fraction=STALE,
        )
        self._vm_counter = 0
        self.created = 0
        self.deleted = 0
        self.rejected = 0
        self.drs_migrations = 0
        self.resized = 0
        self.resize_failed = 0
        self.maintenance_windows = 0
        self._node_index: dict[str, ComputeNode] = {
            n.node_id: n for n in self.region.iter_nodes()
        }
        self._bb_index: dict[str, BuildingBlock] = {
            bb.bb_id: bb for bb in self.region.iter_building_blocks()
        }
        self._cpu_models: dict[str, HostCpuModel] = {
            n.node_id: HostCpuModel(n.physical.vcpus, efficiency=0.97)
            for n in self.region.iter_nodes()
        }

    # -- public API ---------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Seed the population, schedule recurring events, run to the end."""
        start = self.config.start_time
        end = start + self.config.duration_days * 86_400.0
        for _ in range(self.config.initial_vms):
            self.engine.schedule(start, VM_CREATE)
        self._schedule_poisson(start, end, self.config.arrival_rate_per_hour / 3600.0, VM_CREATE)
        self._schedule_poisson(start, end, self.config.resize_rate_per_hour / 3600.0, VM_RESIZE)
        self._schedule_poisson(
            start, end, self.config.maintenance_rate_per_day / 86_400.0, MAINT_START
        )
        t = start
        while t < end:
            self.engine.schedule(t, SCRAPE)
            t += self.config.scrape_interval_s
        t = start + self.config.drs_interval_s
        while t < end:
            self.engine.schedule(t, DRS_RUN)
            t += self.config.drs_interval_s
        if self.fault_injector is not None:
            self.fault_injector.schedule_host_failures(self.engine, start, end)
            self.fault_injector.schedule_domain_outages(self.engine, start, end)
            self.fault_injector.schedule_partitions(self.engine, start, end)
            self.fault_injector.schedule_flapping(self.engine, start, self.region)
        if self.config.resilience is not None:
            rcfg = self.config.resilience
            self._schedule_recurring(start, end, rcfg.heartbeat_interval_s, HEALTH_CHECK)
            self._schedule_recurring(start, end, rcfg.reconcile_interval_s, RECONCILE)
            self._schedule_recurring(
                start, end, rcfg.invariant_interval_s, INVARIANT_CHECK
            )
        self.engine.run_until(end)
        if self.invariants is not None:
            # The terminal sweep: a run only counts as clean if the
            # invariants hold over its *final* state too.
            self.invariants.check(self.engine.now)
        if self.fault_report is not None:
            self.fault_report.migrations_attempted = self.migration_faults.attempted
            self.fault_report.migrations_aborted = self.migration_faults.aborted
            self.fault_report.scrape_gaps = self.telemetry_faults.gaps
            self.fault_report.stale_node_scrapes = self.telemetry_faults.stale_scrapes
            self.fault_report.partitions = self.partition.partitions_started
            self.fault_report.blackholed_scrapes = self.partition.blackholed_scrapes
            self.fault_report.skipped_draws = self.fault_injector.skipped_draws
        scheduler_stats = dict(self.scheduler.stats)
        if self.resilience_report is not None:
            r = self.resilience_report
            scheduler_stats.update(
                admission_submitted=r.requests_submitted,
                admission_admitted=r.requests_admitted,
                admission_shed_rate_limit=r.shed_rate_limit,
                admission_shed_breaker=r.shed_breaker,
                admission_retries=r.retries_scheduled,
                admission_deadline_exceeded=r.deadline_exceeded,
                admission_breaker_opens=r.breaker_opens + r.bb_breaker_opens,
            )
        return SimulationResult(
            region=self.region,
            store=self.store,
            placement=self.placement,
            scheduler_stats=scheduler_stats,
            drs_migrations=self.drs_migrations,
            created=self.created,
            deleted=self.deleted,
            rejected=self.rejected,
            events_processed=self.engine.processed,
            vms=self.vms,
            resized=self.resized,
            resize_failed=self.resize_failed,
            maintenance_windows=self.maintenance_windows,
            fault_report=self.fault_report,
            resilience_report=self.resilience_report,
            stage_profile=dict(self._stages) if self._stages is not None else None,
        )

    # -- event handlers ----------------------------------------------------------

    def _timed(self, stage: str, handler: Callable) -> Callable:
        """Wrap a handler to accumulate wall time under ``stage``.

        Returns the handler untouched when profiling is off, so the hot
        loop pays nothing by default.
        """
        stages = self._stages
        if stages is None:
            return handler

        def wrapper(engine: SimulationEngine, event) -> None:
            t0 = perf_counter()
            handler(engine, event)
            stages[stage] += perf_counter() - t0

        return wrapper

    def _schedule_poisson(
        self, start: float, end: float, rate_s: float, kind: str
    ) -> None:
        if rate_s <= 0:
            return
        t = start
        while True:
            t += float(self.rng.exponential(1.0 / rate_s))
            if t >= end:
                break
            self.engine.schedule(t, kind)

    def _schedule_recurring(
        self, start: float, end: float, interval_s: float, kind: str
    ) -> None:
        if interval_s <= 0:
            return
        t = start + interval_s
        while t < end:
            self.engine.schedule(t, kind)
            t += interval_s

    def _handle_create(self, engine: SimulationEngine, event) -> None:
        payload = event.payload
        if "vm_id" in payload:
            # An ADMISSION_RETRY: identity, profile, and deadline were fixed
            # at first submission; only the clock has moved.
            vm_id = payload["vm_id"]
            flavor = payload["flavor"]
            profile = payload["profile"]
            deadline = payload["deadline"]
        else:
            vm_id = f"sim-vm-{self._vm_counter:06d}"
            self._vm_counter += 1
            flavor = self._pick_flavor()
            profile = profile_for_flavor(flavor, self.rng)
            deadline = (
                engine.now + self.config.resilience.request_deadline_s
                if self.admission is not None
                else 0.0
            )
        spec = RequestSpec(vm_id=vm_id, flavor=flavor)
        try:
            if self.admission is not None:
                result = self.admission.submit(spec, engine.now)
            else:
                result = self.scheduler.schedule(spec)
        except AdmissionRejected as shed:
            self._schedule_admission_retry(
                engine, shed, vm_id, flavor, profile, deadline
            )
            return
        except NoValidHost:
            self.rejected += 1
            return
        bb = self._bb_index.get(result.host_id)
        node = (
            self._node_index.get(result.host_id)
            if bb is None
            else self._pick_node(bb, flavor)
        )
        if bb is None:
            # Holistic scheduler returned a node id directly.
            bb = self._bb_index[node.building_block] if node is not None else None
        if node is None or bb is None:
            # BB had placement room but no single node fits: release and drop.
            self.placement.release(vm_id)
            self.rejected += 1
            return
        vm = VM(vm_id=vm_id, flavor=flavor, created_at=engine.now)
        vm.transition(VMState.BUILDING)
        vm.transition(VMState.ACTIVE)
        node.add_vm(vm)
        self.vms[vm_id] = vm
        self.demands[vm_id] = self.demand_model.demand_for(flavor, profile)
        self.created += 1
        lifetime = sample_lifetime(profile.name, self.rng)
        engine.schedule(engine.now + lifetime, VM_DELETE, vm_id=vm_id)

    def _handle_delete(self, engine: SimulationEngine, event) -> None:
        vm_id = event.payload["vm_id"]
        vm = self.vms.get(vm_id)
        if vm is None or not vm.alive:
            return
        node = self._node_index[vm.node_id]
        node.remove_vm(vm_id)
        vm.transition(VMState.DELETED)
        vm.deleted_at = engine.now
        self.placement.release(vm_id)
        self.demands.pop(vm_id, None)
        self._compiled.pop(vm_id, None)
        self.deleted += 1

    def _handle_resize(self, engine: SimulationEngine, event) -> None:
        """Resize a random live VM to the next-larger same-family flavor.

        Nova resizes re-run the scheduler; the VM may land on a different
        compute host.  On failure the original allocation is restored.
        """
        candidates = [vm for vm in self.vms.values() if vm.alive]
        if not candidates:
            return
        vm = candidates[int(self.rng.integers(0, len(candidates)))]
        bigger = sorted(
            (
                f
                for f in self.catalog.by_family(vm.flavor.family)
                if f.vcpus > vm.flavor.vcpus
                and f.spec("aggregate_class") == vm.flavor.spec("aggregate_class")
            ),
            key=lambda f: f.vcpus,
        )
        if not bigger:
            return
        new_flavor = bigger[0]
        old_flavor = vm.flavor
        old_node = self._node_index[vm.node_id]
        old_bb = self._bb_index[old_node.building_block]

        vm.transition(VMState.RESIZING)
        old_node.remove_vm(vm.vm_id)
        self.placement.release(vm.vm_id)
        spec = RequestSpec(
            vm_id=vm.vm_id, flavor=new_flavor, operation="resize"
        )
        try:
            result = self.scheduler.schedule(spec)
            bb = self._bb_index.get(result.host_id)
            node = (
                self._node_index.get(result.host_id)
                if bb is None
                else self._pick_node(bb, new_flavor)
            )
            if node is None:
                raise NoValidHost("no node fits the resized VM")
        except NoValidHost:
            # Roll back: re-claim the original size on the original host.
            if self.placement.allocation_for(vm.vm_id) is not None:
                self.placement.release(vm.vm_id)
            self.placement.claim(vm.vm_id, old_bb.bb_id, old_flavor.requested())
            old_node.add_vm(vm)
            vm.transition(VMState.ACTIVE)
            self.resize_failed += 1
            return
        vm.flavor = new_flavor
        node.add_vm(vm)
        vm.transition(VMState.ACTIVE)
        self.demands[vm.vm_id] = self.demand_model.demand_for(
            new_flavor, profile_for_flavor(new_flavor, self.rng)
        )
        self._compiled.pop(vm.vm_id, None)
        self.resized += 1

    def _schedule_admission_retry(
        self,
        engine: SimulationEngine,
        shed: AdmissionRejected,
        vm_id: str,
        flavor,
        profile,
        deadline: float,
    ) -> None:
        """Requeue a shed request, or drop it once its deadline has passed."""
        retry_at = engine.now + max(1.0, shed.retry_after_s)
        if retry_at > deadline:
            self.resilience_report.deadline_exceeded += 1
            self.rejected += 1
            return
        self.resilience_report.retries_scheduled += 1
        engine.schedule(
            retry_at,
            ADMISSION_RETRY,
            vm_id=vm_id,
            flavor=flavor,
            profile=profile,
            deadline=deadline,
        )

    def _handle_health_check(self, engine: SimulationEngine, event) -> None:
        self.health.on_heartbeat(engine, engine.now)

    def _handle_quarantine_end(self, engine: SimulationEngine, event) -> None:
        self.health.on_quarantine_end(
            engine, event.payload["node_id"], event.payload["epoch"]
        )

    def _handle_reconcile(self, engine: SimulationEngine, event) -> None:
        self.reconciler.reconcile(engine.now)

    def _handle_invariant_check(self, engine: SimulationEngine, event) -> None:
        self.invariants.check(engine.now)

    def _handle_host_fail(self, engine: SimulationEngine, event) -> None:
        """A hypervisor dies: evacuate its VMs, schedule its repair."""
        payload = event.payload
        if "node_id" in payload:
            # Targeted (flapping) failure with a fixed repair delay.
            victim = self.fault_injector.targeted_victim(
                self._node_index, payload["node_id"]
            )
        else:
            victim = self.fault_injector.pick_victim(self._node_index.values())
        if victim is None:
            return  # everything is already down, draining, or fenced
        self.evacuation.on_host_fail(engine, victim)
        repair_s = payload.get("repair_s")
        if repair_s is None:
            repair_s = self.fault_injector.draw_repair_time()
        engine.schedule(
            engine.now + repair_s,
            HOST_RECOVER,
            node_id=victim.node_id,
        )

    def _handle_domain_fail(self, engine: SimulationEngine, event) -> None:
        """A whole failure domain (AZ or building block) goes dark at once."""
        scope = event.payload["scope"]
        domain = self.fault_injector.pick_domain(self.region, scope)
        if domain is None:
            return  # no domain with a healthy node left
        victims = [
            n for n in domain_members(self.region, scope, domain) if n.healthy
        ]
        for node in victims:
            self.evacuation.on_host_fail(engine, node)
        report = self.fault_report
        if scope == "az":
            report.az_outages += 1
        else:
            report.bb_outages += 1
        report.outage_domains.append(f"{scope}:{domain}")
        report.domain_nodes_failed += len(victims)
        engine.schedule(
            engine.now + self.fault_injector.draw_outage_duration(),
            DOMAIN_RECOVER,
            node_ids=tuple(n.node_id for n in victims),
        )

    def _handle_domain_recover(self, engine: SimulationEngine, event) -> None:
        for node_id in event.payload["node_ids"]:
            self.evacuation.on_host_recover(engine, self._node_index[node_id])

    def _handle_partition_start(self, engine: SimulationEngine, event) -> None:
        """Exporter↔store partition: a domain's scrapes blackhole."""
        scope = event.payload["scope"]
        domain = self.fault_injector.pick_partition_domain(self.region, scope)
        if domain is None:
            return
        node_ids = frozenset(
            n.node_id for n in domain_members(self.region, scope, domain)
        )
        token = self.partition.start(node_ids)
        engine.schedule(
            engine.now + self.fault_injector.draw_partition_duration(),
            PARTITION_END,
            token=token,
        )

    def _handle_partition_end(self, engine: SimulationEngine, event) -> None:
        self.partition.end(event.payload["token"])

    def _handle_host_recover(self, engine: SimulationEngine, event) -> None:
        node = self._node_index[event.payload["node_id"]]
        self.evacuation.on_host_recover(engine, node)

    def _handle_evac_retry(self, engine: SimulationEngine, event) -> None:
        self.evacuation.on_retry(engine, event)

    def _handle_maintenance_start(self, engine: SimulationEngine, event) -> None:
        """Drain a random node: placements avoid it until the window ends."""
        nodes = [n for n in self._node_index.values() if n.healthy]
        if not nodes:
            return
        node = nodes[int(self.rng.integers(0, len(nodes)))]
        node.maintenance = True
        self.maintenance_windows += 1
        engine.schedule(
            engine.now + self.config.maintenance_duration_s,
            MAINT_END,
            node_id=node.node_id,
        )

    def _handle_maintenance_end(self, engine: SimulationEngine, event) -> None:
        self._node_index[event.payload["node_id"]].maintenance = False

    def _handle_scrape(self, engine: SimulationEngine, event) -> None:
        """Legacy per-sample scrape: Sample objects through store.ingest."""
        if self.telemetry_faults is not None and self.telemetry_faults.scrape_missed():
            return  # whole cycle lost: an honest hole in every series
        now = np.asarray([engine.now])
        stages = self._stages
        samples = []
        for node in self._node_index.values():
            if node.failed:
                continue  # dead host, dead exporter: no samples at all
            if self.partition is not None and self.partition.is_blackholed(
                node.node_id
            ):
                continue  # exporter unreachable: the domain's series freeze
            if self.telemetry_faults is not None and self.telemetry_faults.node_is_stale(
                node.node_id
            ):
                # The exporter answered but its data is stale: keep the
                # scrape timestamps, mark every value unknown.
                samples.extend(
                    self.vrops.scrape_node(node, self._stale_usage, engine.now)
                )
                continue
            cpu_demand = 0.0
            mem_mb = 0.0
            tx = rx = 0.0
            disk = 0.0
            if stages is not None:
                t0 = perf_counter()
            for vm in node.vms.values():
                demand = self.demands.get(vm.vm_id)
                if demand is None:
                    continue
                snap = demand.evaluate(now)
                cpu_demand += float(snap.cpu_cores[0])
                mem_mb += float(snap.memory_mb[0])
                tx += float(snap.network_tx_kbps[0])
                rx += float(snap.network_rx_kbps[0])
                disk += float(snap.disk_gb[0])
            if stages is not None:
                t1 = perf_counter()
                stages["demand_eval"] += t1 - t0
            usage_window = self._cpu_models[node.node_id].resolve_window(
                cpu_demand, self.config.scrape_interval_s
            )
            usage = NodeUsage(
                cpu_used_fraction=min(1.0, usage_window.cpu_used_fraction + 0.02),
                memory_used_fraction=min(
                    1.0, mem_mb / node.physical.memory_mb + 0.04
                ),
                network_tx_kbps=tx,
                network_rx_kbps=rx,
                disk_used_gb=min(disk, node.physical.disk_gb),
                cpu_ready_ms=usage_window.cpu_ready_ms,
                cpu_contention_fraction=usage_window.cpu_contention_fraction,
            )
            samples.extend(self.vrops.scrape_node(node, usage, engine.now))
            if stages is not None:
                stages["exporter_format"] += perf_counter() - t1
        if stages is not None:
            t2 = perf_counter()
        samples.extend(self.nova_exporter.scrape_region(self.region, engine.now))
        if stages is not None:
            t3 = perf_counter()
            stages["exporter_format"] += t3 - t2
        self.store.ingest(samples)
        if stages is not None:
            stages["ingest"] += perf_counter() - t3

    def _handle_scrape_columnar(self, engine: SimulationEngine, event) -> None:
        """Columnar scrape fast path.

        Byte-identical to :meth:`_handle_scrape` + ``store.ingest`` —
        same fault-draw order, same skip logic, same arithmetic (the
        compiled demand evaluators and branch-min expressions reproduce
        the legacy float operations bit for bit) — but with zero
        per-sample objects: demand is evaluated as scalars and values go
        straight into the store's column buffers through interned series
        handles.  In the stage profile the ingest row stays ~0 by
        construction: appends are fused into the exporter emit.
        """
        if self.telemetry_faults is not None and self.telemetry_faults.scrape_missed():
            return  # whole cycle lost: an honest hole in every series
        now = engine.now
        stages = self._stages
        store = self.store
        vrops = self.vrops
        demands = self.demands
        compiled = self._compiled
        interval = self.config.scrape_interval_s
        for node in self._node_index.values():
            if node.failed:
                continue  # dead host, dead exporter: no samples at all
            if self.partition is not None and self.partition.is_blackholed(
                node.node_id
            ):
                continue  # exporter unreachable: the domain's series freeze
            if self.telemetry_faults is not None and self.telemetry_faults.node_is_stale(
                node.node_id
            ):
                # Exporter answered with stale data: same timestamps,
                # every value a staleness marker.
                vrops.emit_node(store, node, self._stale_usage, now)
                continue
            cpu_demand = 0.0
            mem_mb = 0.0
            tx = rx = 0.0
            disk = 0.0
            if stages is not None:
                t0 = perf_counter()
            for vm in node.vms.values():
                demand = demands.get(vm.vm_id)
                if demand is None:
                    continue
                cd = compiled.get(vm.vm_id)
                if cd is None or cd.demand is not demand:
                    cd = compiled[vm.vm_id] = compile_demand(demand)
                cpu_c, mem_c, tx_c, rx_c, disk_c = cd.evaluate(now)
                cpu_demand += cpu_c
                mem_mb += mem_c
                tx += tx_c
                rx += rx_c
                disk += disk_c
            if stages is not None:
                t1 = perf_counter()
                stages["demand_eval"] += t1 - t0
            usage_window = self._cpu_models[node.node_id].resolve_window(
                cpu_demand, interval
            )
            usage = NodeUsage(
                cpu_used_fraction=min(1.0, usage_window.cpu_used_fraction + 0.02),
                memory_used_fraction=min(
                    1.0, mem_mb / node.physical.memory_mb + 0.04
                ),
                network_tx_kbps=tx,
                network_rx_kbps=rx,
                disk_used_gb=min(disk, node.physical.disk_gb),
                cpu_ready_ms=usage_window.cpu_ready_ms,
                cpu_contention_fraction=usage_window.cpu_contention_fraction,
            )
            vrops.emit_node(store, node, usage, now)
            if stages is not None:
                stages["exporter_format"] += perf_counter() - t1
        if stages is not None:
            t2 = perf_counter()
        self.nova_exporter.emit_region(store, self.region, now)
        if stages is not None:
            stages["exporter_format"] += perf_counter() - t2

    def _handle_drs(self, engine: SimulationEngine, event) -> None:
        if self._columnar:
            now_f = engine.now
            demands = self.demands
            compiled = self._compiled

            def load_fn(vm: VM) -> float:
                demand = demands.get(vm.vm_id)
                if demand is None:
                    return float(vm.flavor.vcpus)
                cd = compiled.get(vm.vm_id)
                if cd is None or cd.demand is not demand:
                    cd = compiled[vm.vm_id] = compile_demand(demand)
                return cd.evaluate(now_f)[0]

        else:
            now = np.asarray([engine.now])

            def load_fn(vm: VM) -> float:
                demand = self.demands.get(vm.vm_id)
                if demand is None:
                    return float(vm.flavor.vcpus)
                return float(demand.evaluate(now).cpu_cores[0])

        for bb in self._bb_index.values():
            if bb.policy == "pack":
                continue  # DRS load-balancing is for spread BBs.
            migrations = self.drs.run(bb, load_fn=load_fn, fault_model=self.migration_faults)
            self.drs_migrations += len(migrations)

    # -- helpers ------------------------------------------------------------------

    def _pick_flavor(self):
        from repro.datagen.population import FLAVOR_MIX

        names = [n for n, w in FLAVOR_MIX if w > 0 and n in self.catalog]
        weights = np.asarray([w for n, w in FLAVOR_MIX if w > 0 and n in self.catalog])
        idx = self.rng.choice(len(names), p=weights / weights.sum())
        return self.catalog.get(names[int(idx)])

    def _pick_node(self, bb: BuildingBlock, flavor) -> ComputeNode | None:
        fitting = [
            n
            for n in bb.iter_nodes()
            if n.healthy and flavor.requested().fits_within(n.free(bb.overcommit))
        ]
        if not fitting:
            return None
        if bb.policy == "pack":
            return max(
                fitting,
                key=lambda n: (
                    n.allocated().memory_mb / n.physical.memory_mb,
                    n.node_id,
                ),
            )
        return min(
            fitting,
            key=lambda n: (n.allocated().vcpus / n.physical.vcpus, n.node_id),
        )
