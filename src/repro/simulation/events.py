"""Event kinds used by the regional simulation.

The dataset's scheduling-relevant events (§4) are VM creation, migration,
resize, and deletion; SCRAPE models the periodic exporter scrape and DRS_RUN
the periodic VMware DRS balancing pass.
"""

VM_CREATE = "vm.create"
VM_DELETE = "vm.delete"
VM_RESIZE = "vm.resize"
VM_MIGRATE = "vm.migrate"
SCRAPE = "telemetry.scrape"
DRS_RUN = "drs.run"
MAINT_START = "maintenance.start"
MAINT_END = "maintenance.end"
# Fault-injection events (repro.faults): a hypervisor dies, later recovers,
# and each stranded VM is retried through the scheduler with backoff.
HOST_FAIL = "host.fail"
HOST_RECOVER = "host.recover"
EVAC_RETRY = "evacuation.retry"
# Correlated failure domains (repro.faults.domains): an AZ- or BB-scoped
# outage takes every member node down at once and recovers them as a unit;
# a network partition blackholes every scrape from a domain.
DOMAIN_FAIL = "domain.fail"
DOMAIN_RECOVER = "domain.recover"
PARTITION_START = "telemetry.partition_start"
PARTITION_END = "telemetry.partition_end"
# Control-plane resilience events (repro.resilience): periodic heartbeat
# evaluation, quarantine expiry, shed-request retries, and the recurring
# reconciliation / invariant sweeps.
HEALTH_CHECK = "health.check"
QUARANTINE_END = "health.quarantine_end"
ADMISSION_RETRY = "admission.retry"
RECONCILE = "reconcile.run"
INVARIANT_CHECK = "invariant.check"

ALL_KINDS = (
    VM_CREATE,
    VM_DELETE,
    VM_RESIZE,
    VM_MIGRATE,
    SCRAPE,
    DRS_RUN,
    MAINT_START,
    MAINT_END,
    HOST_FAIL,
    HOST_RECOVER,
    EVAC_RETRY,
    DOMAIN_FAIL,
    DOMAIN_RECOVER,
    PARTITION_START,
    PARTITION_END,
    HEALTH_CHECK,
    QUARANTINE_END,
    ADMISSION_RETRY,
    RECONCILE,
    INVARIANT_CHECK,
)
