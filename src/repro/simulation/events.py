"""Event kinds used by the regional simulation.

The dataset's scheduling-relevant events (§4) are VM creation, migration,
resize, and deletion; SCRAPE models the periodic exporter scrape and DRS_RUN
the periodic VMware DRS balancing pass.
"""

VM_CREATE = "vm.create"
VM_DELETE = "vm.delete"
VM_RESIZE = "vm.resize"
VM_MIGRATE = "vm.migrate"
SCRAPE = "telemetry.scrape"
DRS_RUN = "drs.run"
MAINT_START = "maintenance.start"
MAINT_END = "maintenance.end"
# Fault-injection events (repro.faults): a hypervisor dies, later recovers,
# and each stranded VM is retried through the scheduler with backoff.
HOST_FAIL = "host.fail"
HOST_RECOVER = "host.recover"
EVAC_RETRY = "evacuation.retry"

ALL_KINDS = (
    VM_CREATE,
    VM_DELETE,
    VM_RESIZE,
    VM_MIGRATE,
    SCRAPE,
    DRS_RUN,
    MAINT_START,
    MAINT_END,
    HOST_FAIL,
    HOST_RECOVER,
    EVAC_RETRY,
)
