"""Minimal deterministic discrete-event engine.

Events are ordered by (time, sequence number), so same-time events run in
scheduling order and replays are exactly reproducible.  Handlers are
registered per event kind; a handler may schedule further events.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled simulation event."""

    time: float
    seq: int = field(compare=True)
    kind: str = field(compare=False)
    payload: dict[str, Any] = field(compare=False, default_factory=dict)


Handler = Callable[["SimulationEngine", Event], None]


class SimulationEngine:
    """Priority-queue event loop with per-kind handlers."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._handlers: dict[str, Handler] = {}
        #: Per-kind index of queued events (seq → event), maintained by
        #: schedule/step so iter_pending(kind) is O(pending of that kind)
        #: instead of a full-queue scan — runner/faults poll it every tick.
        self._pending_by_kind: dict[str, dict[int, Event]] = {}
        self.now = start_time
        self.processed = 0
        #: Optional write-ahead hook: called with a JSON-able record for
        #: every sim-clock advance (one per dispatched event), *before*
        #: the handler runs — the clock position is durable even if the
        #: handler dies mid-flight.  None keeps the hot loop branch-cheap.
        self.journal_sink: Callable[[dict], None] | None = None

    def on(self, kind: str, handler: Handler) -> None:
        """Register the handler for an event kind (one handler per kind)."""
        if kind in self._handlers:
            raise ValueError(f"handler already registered for {kind!r}")
        self._handlers[kind] = handler

    def schedule(self, time: float, kind: str, **payload: Any) -> Event:
        """Enqueue an event.

        ``time == self.now`` is explicitly allowed: the event runs after the
        currently executing handler, in scheduling order (same-time FIFO).
        Past-dated times (a negative delay relative to ``now``) and NaN
        times are errors — NaN would silently corrupt the heap ordering.
        """
        if math.isnan(time):
            raise ValueError(f"cannot schedule {kind!r} at NaN time")
        if time < self.now:
            raise ValueError(
                f"cannot schedule {kind!r} at {time} before current time "
                f"{self.now} (negative delay)"
            )
        event = Event(time=time, seq=next(self._seq), kind=kind, payload=payload)
        heapq.heappush(self._queue, event)
        index = self._pending_by_kind.get(kind)
        if index is None:
            index = self._pending_by_kind[kind] = {}
        index[event.seq] = event
        return event

    def peek_time(self) -> float | None:
        """Timestamp of the next pending event, or None when idle."""
        return self._queue[0].time if self._queue else None

    def iter_pending(self, kind: str | None = None) -> list[Event]:
        """Snapshot of queued events (optionally one kind), unordered.

        Used by the invariant checker to verify that every ERROR VM still
        has a recovery event in flight; the heap's internal order is not
        meaningful, so callers must not rely on it.
        """
        if kind is None:
            return list(self._queue)
        index = self._pending_by_kind.get(kind)
        return list(index.values()) if index else []

    def step(self) -> Event | None:
        """Process one event; returns it, or None when the queue is empty."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        del self._pending_by_kind[event.kind][event.seq]
        self.now = event.time
        handler = self._handlers.get(event.kind)
        if handler is None:
            raise KeyError(f"no handler registered for event kind {event.kind!r}")
        if self.journal_sink is not None:
            self.journal_sink(
                {"t": "clock", "time": event.time, "seq": event.seq,
                 "kind": event.kind}
            )
        handler(self, event)
        self.processed += 1
        return event

    def run_until(self, end_time: float) -> int:
        """Process events with ``time <= end_time``; returns the count."""
        n = 0
        while self._queue and self._queue[0].time <= end_time:
            self.step()
            n += 1
        self.now = max(self.now, end_time)
        return n

    def run(self) -> int:
        """Drain the queue completely; returns the processed count."""
        n = 0
        while self.step() is not None:
            n += 1
        return n

    @property
    def pending(self) -> int:
        return len(self._queue)
