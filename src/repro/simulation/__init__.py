"""Discrete-event simulation of the regional cloud.

The engine replays 30 days of VM lifecycle events (create / resize / migrate
/ delete) against the infrastructure model, computes node-level resource
usage including the VMware-style CPU ready-time and contention metrics, and
scrapes telemetry through the exporters into a metric store — reproducing
the measurement pipeline of §4 end to end.
"""

from repro.simulation.engine import Event, SimulationEngine
from repro.simulation.events import (
    DRS_RUN,
    SCRAPE,
    VM_CREATE,
    VM_DELETE,
    VM_MIGRATE,
    VM_RESIZE,
)
from repro.simulation.hostsched import HostCpuModel, NodeWindowUsage
from repro.simulation.runner import RegionSimulation, SimulationConfig, SimulationResult

__all__ = [
    "Event",
    "SimulationEngine",
    "VM_CREATE",
    "VM_DELETE",
    "VM_RESIZE",
    "VM_MIGRATE",
    "SCRAPE",
    "DRS_RUN",
    "HostCpuModel",
    "NodeWindowUsage",
    "RegionSimulation",
    "SimulationConfig",
    "SimulationResult",
]
