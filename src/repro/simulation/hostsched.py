"""Host-level CPU scheduler model: ready time and contention.

The paper defines *CPU contention* as "time a virtual CPU (vCPU) is ready to
execute instructions but cannot be scheduled on a physical CPU (pCPU)"
(§5.1), matching VMware's CPU-ready/contention counters.  This module
derives both from aggregate vCPU demand versus pCPU supply over a sampling
window:

- Let ``D`` be the summed physical-core-equivalent demand of resident vCPUs
  and ``C`` the node's physical core count.  Demand beyond ``C`` cannot be
  scheduled.
- The unsatisfied demand over a window of ``w`` seconds is
  ``max(0, D - C) * w`` core-seconds.  Normalised per physical core this is
  the window's **CPU ready time**, ``max(0, D - C) / C * w`` — the average
  time each pCPU had runnable-but-waiting vCPUs queued on it.  Saturated
  nodes can exceed the wall-clock window (e.g. the ~30-minute outliers of
  Fig 8 in a 300 s window) because multiple waiting vCPUs stack per core.
- **Contention percentage** is the ready share of total demanded time:
  ``max(0, D - C) / D``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class NodeWindowUsage:
    """Resolved CPU usage of one node over one sampling window."""

    demand_cores: float  # aggregate vCPU demand in core-equivalents
    delivered_cores: float  # demand actually scheduled (<= physical cores)
    cpu_used_fraction: float  # delivered / physical, 0..1
    cpu_ready_ms: float  # summed vCPU ready time in the window
    cpu_contention_fraction: float  # ready / demanded time, 0..1


class HostCpuModel:
    """Maps vCPU demand to delivered CPU, ready time, and contention."""

    def __init__(self, physical_cores: float, efficiency: float = 1.0) -> None:
        """``efficiency`` discounts usable cores (hypervisor overhead)."""
        if physical_cores <= 0:
            raise ValueError("physical_cores must be positive")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must be within (0, 1]")
        self.physical_cores = physical_cores
        self.usable_cores = physical_cores * efficiency

    def resolve_window(self, demand_cores: float, window_seconds: float) -> NodeWindowUsage:
        """Resolve one sampling window of aggregate demand."""
        if demand_cores < 0:
            raise ValueError("demand_cores must be non-negative")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        delivered = min(demand_cores, self.usable_cores)
        unsatisfied = max(0.0, demand_cores - self.usable_cores)
        ready_ms = unsatisfied / self.usable_cores * window_seconds * 1000.0
        contention = unsatisfied / demand_cores if demand_cores > 0 else 0.0
        return NodeWindowUsage(
            demand_cores=demand_cores,
            delivered_cores=delivered,
            cpu_used_fraction=delivered / self.physical_cores,
            cpu_ready_ms=ready_ms,
            cpu_contention_fraction=contention,
        )

    def resolve_series(
        self, demand_cores: np.ndarray, window_seconds: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`resolve_window` over a demand array.

        Returns ``(cpu_used_fraction, cpu_ready_ms, contention_fraction)``.
        """
        demand = np.asarray(demand_cores, dtype=float)
        if np.any(demand < 0):
            raise ValueError("demand_cores must be non-negative")
        delivered = np.minimum(demand, self.usable_cores)
        unsatisfied = np.maximum(0.0, demand - self.usable_cores)
        used_fraction = delivered / self.physical_cores
        ready_ms = unsatisfied / self.usable_cores * window_seconds * 1000.0
        with np.errstate(divide="ignore", invalid="ignore"):
            contention = np.where(demand > 0, unsatisfied / demand, 0.0)
        return used_fraction, ready_ms, contention

    def fair_share(self, demands: np.ndarray) -> np.ndarray:
        """Per-VM delivered cores under proportional-share scheduling.

        When aggregate demand exceeds supply every vCPU is throttled
        proportionally — the noisy-neighbour effect (§3.2): a VM's delivered
        CPU depends on what its co-residents demand.
        """
        demands = np.asarray(demands, dtype=float)
        total = demands.sum()
        if total <= self.usable_cores:
            return demands.copy()
        return demands * (self.usable_cores / total)
