"""repro: reproduction of "The SAP Cloud Infrastructure Dataset" (IMC 2025).

A production-quality Python library rebuilding the paper's full system:

- :mod:`repro.infrastructure` — the region/AZ/DC/building-block/node model;
- :mod:`repro.telemetry` — the Prometheus-like metric pipeline with the
  paper's exact vROps / OpenStack metric catalogue (Table 4);
- :mod:`repro.workloads` — demand patterns, application profiles, and
  lifetime models for the SAP workload mix;
- :mod:`repro.scheduler` — the Nova filter/weigher scheduler and placement
  service; :mod:`repro.drs` — the VMware DRS rebalancer;
- :mod:`repro.simulation` — the discrete-event regional simulator;
- :mod:`repro.datagen` — the calibrated synthetic regeneration of the
  public trace;
- :mod:`repro.core` — the dataset facade plus every Section 5 analysis and
  Section 7 guidance analytic;
- :mod:`repro.analysis` — one builder per paper figure and table;
- :mod:`repro.baselines` — classic bin-packing and spread baselines.

Quickstart::

    from repro.datagen import GeneratorConfig, generate_dataset
    from repro.analysis import fig9_contention_aggregate

    dataset = generate_dataset(GeneratorConfig(scale=0.05))
    print(dataset.summary())
    print(fig9_contention_aggregate(dataset).head())
"""

from repro.core.dataset import SAPCloudDataset
from repro.datagen import GeneratorConfig, generate_dataset

__version__ = "1.0.0"

__all__ = ["SAPCloudDataset", "GeneratorConfig", "generate_dataset", "__version__"]
