"""DRS affinity / anti-affinity rules.

Anti-affinity keeps listed VMs on distinct nodes (HA pairs of HANA
replicas); affinity keeps groups co-located.  Rules constrain which
migrations the balancer may recommend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.infrastructure.hierarchy import BuildingBlock


@dataclass
class AffinityRules:
    """Rule set evaluated against a candidate migration."""

    #: Groups of VM ids that must share a node.
    affinity_groups: list[frozenset[str]] = field(default_factory=list)
    #: Groups of VM ids that must all be on distinct nodes.
    anti_affinity_groups: list[frozenset[str]] = field(default_factory=list)

    def add_affinity(self, vm_ids: set[str]) -> None:
        """Require the given VMs to share one node."""
        if len(vm_ids) < 2:
            raise ValueError("affinity groups need at least two VMs")
        self.affinity_groups.append(frozenset(vm_ids))

    def add_anti_affinity(self, vm_ids: set[str]) -> None:
        """Require the given VMs to stay on distinct nodes."""
        if len(vm_ids) < 2:
            raise ValueError("anti-affinity groups need at least two VMs")
        self.anti_affinity_groups.append(frozenset(vm_ids))

    def allows_move(
        self, bb: BuildingBlock, vm_id: str, target_node_id: str
    ) -> bool:
        """Whether moving ``vm_id`` to ``target_node_id`` keeps rules valid."""
        target = bb.nodes.get(target_node_id)
        if target is None:
            return False
        resident = set(target.vms)
        for group in self.anti_affinity_groups:
            if vm_id in group and resident & (group - {vm_id}):
                return False
        for group in self.affinity_groups:
            if vm_id in group:
                # Peers must either be on the target already or nowhere else.
                peers = group - {vm_id}
                placed_elsewhere = set()
                for node in bb.nodes.values():
                    if node.node_id == target_node_id:
                        continue
                    placed_elsewhere |= set(node.vms) & peers
                if placed_elsewhere:
                    return False
        return True
