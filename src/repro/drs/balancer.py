"""The DRS balancing loop.

DRS computes a cluster imbalance metric — the standard deviation of node
load fractions — and greedily recommends VM migrations from the most to the
least loaded node while (a) the imbalance exceeds the configured threshold,
(b) each move improves imbalance by a minimum margin (migrations are costly,
§3.2 "avoiding migration of heavy VMs"), and (c) capacity and affinity rules
hold on the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.drs.affinity import AffinityRules
from repro.infrastructure.hierarchy import BuildingBlock, ComputeNode
from repro.infrastructure.vm import VM

#: Maps a VM to its current load in physical-core-equivalents.
LoadFn = Callable[[VM], float]


def _allocated_load(vm: VM) -> float:
    """Fallback load model: the VM's allocated vCPUs."""
    return float(vm.flavor.vcpus)


@dataclass(frozen=True)
class DrsConfig:
    """Tuning knobs of the balancing loop."""

    #: Trigger threshold on the imbalance metric (std of load fractions).
    imbalance_threshold: float = 0.05
    #: A move must improve imbalance by at least this much.
    min_improvement: float = 0.005
    #: Cap on migrations per balancing pass.
    max_moves_per_run: int = 8
    #: VMs with load above this many cores are considered "heavy" and are
    #: only moved if nothing lighter fixes the imbalance (§3.2).
    heavy_vm_cores: float = 32.0


@dataclass(frozen=True)
class Migration:
    """One executed DRS migration."""

    vm_id: str
    source_node: str
    target_node: str
    load_cores: float
    improvement: float


@dataclass
class DrsBalancer:
    """Balances one building block (vSphere cluster)."""

    config: DrsConfig = field(default_factory=DrsConfig)
    rules: AffinityRules = field(default_factory=AffinityRules)

    def node_load_fractions(
        self, bb: BuildingBlock, load_fn: LoadFn = _allocated_load
    ) -> dict[str, float]:
        """Per-node load as a fraction of physical cores.

        Failed nodes are excluded: they carry no VMs and no usable
        capacity, so counting their zero load would read as imbalance the
        balancer can never fix (and must not "fix" by migrating onto them).
        """
        fractions: dict[str, float] = {}
        for node in bb.iter_nodes():
            if node.failed:
                continue
            load = sum(load_fn(vm) for vm in node.vms.values())
            fractions[node.node_id] = (
                load / node.physical.vcpus if node.physical.vcpus > 0 else 0.0
            )
        return fractions

    def imbalance(
        self, bb: BuildingBlock, load_fn: LoadFn = _allocated_load
    ) -> float:
        """Cluster imbalance: std-dev of node load fractions."""
        fractions = list(self.node_load_fractions(bb, load_fn).values())
        if len(fractions) < 2:
            return 0.0
        return float(np.std(fractions))

    def run(
        self,
        bb: BuildingBlock,
        load_fn: LoadFn = _allocated_load,
        fault_model=None,
    ) -> list[Migration]:
        """One balancing pass; executes and returns migrations.

        ``fault_model`` (a :class:`repro.faults.MigrationFaultModel`) may
        abort individual moves mid-precopy: the VM stays on its source and
        is not retried within this pass.
        """
        migrations: list[Migration] = []
        aborted: set[str] = set()
        for _ in range(self.config.max_moves_per_run):
            current = self.imbalance(bb, load_fn)
            if current <= self.config.imbalance_threshold:
                break
            move = self._best_move(bb, load_fn, current, exclude=aborted)
            if move is None:
                break
            vm_id, source, target, load, improvement = move
            if fault_model is not None and not fault_model.attempt(
                vm_id, source.node_id, target.node_id
            ):
                aborted.add(vm_id)
                continue
            vm = source.remove_vm(vm_id)
            target.add_vm(vm)
            vm.migrations += 1
            migrations.append(
                Migration(
                    vm_id=vm_id,
                    source_node=source.node_id,
                    target_node=target.node_id,
                    load_cores=load,
                    improvement=improvement,
                )
            )
        return migrations

    def _best_move(
        self,
        bb: BuildingBlock,
        load_fn: LoadFn,
        current_imbalance: float,
        exclude: set[str] = frozenset(),
    ) -> tuple[str, ComputeNode, ComputeNode, float, float] | None:
        """The single move with the largest imbalance improvement.

        Prefers light VMs: a heavy VM (above ``heavy_vm_cores``) is only
        chosen when no lighter candidate achieves the minimum improvement.
        VMs in ``exclude`` (e.g. this pass's aborted migrations) and
        unhealthy targets (failed or draining nodes) are never considered.
        """
        fractions = self.node_load_fractions(bb, load_fn)
        if len(fractions) < 2:
            return None
        ordered = sorted(fractions.items(), key=lambda kv: kv[1], reverse=True)
        source = bb.nodes[ordered[0][0]]
        # Candidate targets: every other node, least loaded first.
        targets = [bb.nodes[node_id] for node_id, _ in reversed(ordered[1:])]

        best: tuple[str, ComputeNode, ComputeNode, float, float] | None = None
        best_light: tuple[str, ComputeNode, ComputeNode, float, float] | None = None
        for vm in source.vms.values():
            if vm.vm_id in exclude:
                continue
            load = load_fn(vm)
            for target in targets:
                if target.node_id == source.node_id or not target.healthy:
                    continue
                if not vm.requested().fits_within(target.free(bb.overcommit)):
                    continue
                if not self.rules.allows_move(bb, vm.vm_id, target.node_id):
                    continue
                improvement = current_imbalance - self._imbalance_after(
                    fractions, source, target, load
                )
                if improvement < self.config.min_improvement:
                    continue
                candidate = (vm.vm_id, source, target, load, improvement)
                if best is None or improvement > best[4]:
                    best = candidate
                if load <= self.config.heavy_vm_cores and (
                    best_light is None or improvement > best_light[4]
                ):
                    best_light = candidate
        return best_light if best_light is not None else best

    @staticmethod
    def _imbalance_after(
        fractions: dict[str, float],
        source: ComputeNode,
        target: ComputeNode,
        load: float,
    ) -> float:
        """Imbalance if ``load`` cores moved from source to target."""
        updated = dict(fractions)
        updated[source.node_id] -= load / source.physical.vcpus
        updated[target.node_id] += load / target.physical.vcpus
        return float(np.std(list(updated.values())))
