"""Advisory mode: produce migration recommendations without executing them.

vCenter surfaces DRS recommendations with priority levels before applying
them; operators can run DRS in manual mode.  :func:`recommend_moves`
evaluates a building block and returns prioritised recommendations, leaving
the cluster untouched — useful for the what-if analyses of §7.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.drs.balancer import DrsBalancer, DrsConfig, LoadFn, _allocated_load
from repro.infrastructure.hierarchy import BuildingBlock


@dataclass(frozen=True)
class Recommendation:
    """One advisory migration, with a 1 (urgent) … 5 (marginal) priority."""

    vm_id: str
    source_node: str
    target_node: str
    improvement: float
    priority: int


def recommend_moves(
    bb: BuildingBlock,
    load_fn: LoadFn = _allocated_load,
    config: DrsConfig | None = None,
) -> list[Recommendation]:
    """Prioritised migration recommendations for one building block.

    Works on a deep copy, so the input cluster is never modified.
    """
    balancer = DrsBalancer(config=config or DrsConfig())
    snapshot = copy.deepcopy(bb)
    # Loads are keyed by vm_id so the copy can reuse the caller's load model.
    loads = {vm.vm_id: load_fn(vm) for vm in bb.vms()}
    migrations = balancer.run(snapshot, load_fn=lambda vm: loads.get(vm.vm_id, 0.0))
    if not migrations:
        return []
    max_improvement = max(m.improvement for m in migrations)
    recommendations = []
    for migration in migrations:
        ratio = migration.improvement / max_improvement if max_improvement > 0 else 0.0
        priority = 1 + int(round((1.0 - ratio) * 4))
        recommendations.append(
            Recommendation(
                vm_id=migration.vm_id,
                source_node=migration.source_node,
                target_node=migration.target_node,
                improvement=migration.improvement,
                priority=priority,
            )
        )
    return recommendations
