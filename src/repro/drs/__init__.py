"""VMware DRS simulator: intra-building-block load balancing.

The second scheduling layer of the SAP architecture (§3.1): Nova places a VM
onto a vSphere cluster (building block); DRS then "monitors the load of the
ESXi hosts and triggers automatic migrations of VMs from over-utilized to
less utilized hosts".  This package reproduces that loop: an imbalance
metric over member nodes, migration recommendations with cost thresholds,
and optional affinity rules.
"""

from repro.drs.balancer import DrsBalancer, DrsConfig, Migration
from repro.drs.recommendations import Recommendation, recommend_moves
from repro.drs.affinity import AffinityRules

__all__ = [
    "DrsBalancer",
    "DrsConfig",
    "Migration",
    "Recommendation",
    "recommend_moves",
    "AffinityRules",
]
