"""Pre-copy live-migration model.

Pre-copy migration transfers the VM's memory while it keeps running: the
first round copies all pages, each later round re-copies the pages dirtied
during the previous round, and when the remaining set is small enough (or
the round cap is hit) the VM is paused and the remainder moves in the
stop-and-copy phase — that pause is the downtime.

With memory ``M`` (MiB), link bandwidth ``B`` (MiB/s), and dirty rate ``D``
(MiB/s), round ``i`` transfers ``M * (D/B)^i``: the series converges only
when ``D < B``, which is exactly why §3.2 prefers not to migrate
memory-hot VMs — their dirty rate approaches the copy bandwidth and the
downtime explodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.infrastructure.flavors import Flavor


@dataclass(frozen=True, slots=True)
class MigrationEstimate:
    """Outcome of one simulated pre-copy migration."""

    rounds: int
    total_seconds: float
    downtime_seconds: float
    transferred_mb: float
    converged: bool  # False when the round cap forced stop-and-copy


class PrecopyModel:
    """Iterative pre-copy estimator."""

    def __init__(
        self,
        bandwidth_mbps: float = 10_000.0,  # MiB/s over the migration network
        downtime_target_mb: float = 512.0,
        max_rounds: int = 30,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        if downtime_target_mb <= 0:
            raise ValueError("downtime_target_mb must be positive")
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        self.bandwidth = bandwidth_mbps
        self.downtime_target_mb = downtime_target_mb
        self.max_rounds = max_rounds

    def estimate(self, memory_mb: float, dirty_rate_mbps: float) -> MigrationEstimate:
        """Simulate the pre-copy rounds for a VM.

        ``memory_mb`` is the resident working set; ``dirty_rate_mbps`` the
        rate at which the guest rewrites pages during the copy.
        """
        if memory_mb < 0 or dirty_rate_mbps < 0:
            raise ValueError("memory and dirty rate must be non-negative")
        remaining = memory_mb
        transferred = 0.0
        elapsed = 0.0
        rounds = 0
        converged = True
        while remaining > self.downtime_target_mb:
            if rounds >= self.max_rounds:
                converged = False
                break
            round_seconds = remaining / self.bandwidth
            transferred += remaining
            elapsed += round_seconds
            # Pages dirtied while this round was copying become next round.
            remaining = min(memory_mb, dirty_rate_mbps * round_seconds)
            rounds += 1
            if dirty_rate_mbps >= self.bandwidth:
                # Non-convergent: the dirty set no longer shrinks.
                converged = False
                break
        downtime = remaining / self.bandwidth
        transferred += remaining
        elapsed += downtime
        return MigrationEstimate(
            rounds=rounds,
            total_seconds=elapsed,
            downtime_seconds=downtime,
            transferred_mb=transferred,
            converged=converged,
        )

    def estimate_for_vm(
        self, flavor: Flavor, memory_ratio: float, write_intensity: float = 0.02
    ) -> MigrationEstimate:
        """Estimate from a flavor and its observed memory utilisation.

        ``write_intensity`` is the fraction of the resident set rewritten
        per second — in-memory databases sit at the high end, which is why
        the paper avoids migrating them.
        """
        if not 0.0 <= memory_ratio <= 1.0:
            raise ValueError("memory_ratio must be within [0, 1]")
        if write_intensity < 0:
            raise ValueError("write_intensity must be non-negative")
        resident_mb = flavor.ram_mb * memory_ratio
        return self.estimate(resident_mb, resident_mb * write_intensity)

    def is_heavy(self, flavor: Flavor, memory_ratio: float,
                 write_intensity: float = 0.02,
                 downtime_budget_s: float = 1.0) -> bool:
        """Whether migrating this VM would blow the downtime budget."""
        estimate = self.estimate_for_vm(flavor, memory_ratio, write_intensity)
        return not estimate.converged or estimate.downtime_seconds > downtime_budget_s
