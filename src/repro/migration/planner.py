"""Cost-aware migration planning.

§7: "Continuous migration mechanisms across BBs are required to maintain
balanced resource distribution" — but §3.2 warns that migrations cost
performance.  The planner reconciles the two: candidate moves are scored by
imbalance improvement per unit of migration cost (pre-copy transfer time),
and only moves whose benefit clears a configurable cost factor are emitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.infrastructure.capacity import GENERAL_OVERCOMMIT, Capacity
from repro.infrastructure.hierarchy import ComputeNode, Region
from repro.infrastructure.vm import VM
from repro.migration.precopy import MigrationEstimate, PrecopyModel

#: Maps a VM to (cpu_load_cores, memory_ratio) for costing and balancing.
LoadView = Callable[[VM], tuple[float, float]]


def _allocated_view(vm: VM) -> tuple[float, float]:
    return float(vm.flavor.vcpus), 0.8


@dataclass(frozen=True)
class PlannedMove:
    """One migration the planner recommends."""

    vm_id: str
    source_node: str
    target_node: str
    improvement: float  # imbalance reduction (std of load fractions)
    estimate: MigrationEstimate

    @property
    def benefit_per_second(self) -> float:
        if self.estimate.total_seconds <= 0:
            return float("inf")
        return self.improvement / self.estimate.total_seconds


@dataclass
class MigrationPlan:
    """A batch of planned moves with aggregate cost."""

    moves: list[PlannedMove] = field(default_factory=list)

    @property
    def total_transfer_mb(self) -> float:
        return sum(m.estimate.transferred_mb for m in self.moves)

    @property
    def total_downtime_s(self) -> float:
        return sum(m.estimate.downtime_seconds for m in self.moves)

    def __len__(self) -> int:
        return len(self.moves)


class MigrationPlanner:
    """Plans cross-node (and cross-BB) rebalancing moves under cost limits."""

    def __init__(
        self,
        precopy: PrecopyModel | None = None,
        min_benefit_per_second: float = 1e-5,
        downtime_budget_s: float = 2.0,
        max_moves: int = 16,
    ) -> None:
        self.precopy = precopy or PrecopyModel()
        self.min_benefit_per_second = min_benefit_per_second
        self.downtime_budget_s = downtime_budget_s
        self.max_moves = max_moves

    def plan_for_nodes(
        self,
        nodes: list[ComputeNode],
        capacity_of: Callable[[ComputeNode], float],
        load_view: LoadView = _allocated_view,
        allocatable_of: Callable[[ComputeNode], Capacity] | None = None,
    ) -> MigrationPlan:
        """Plan moves across an arbitrary node set (intra- or inter-BB).

        ``capacity_of`` returns each node's CPU capacity in cores; the
        balancing objective is the std-dev of load fractions, the same
        metric DRS uses.  ``allocatable_of`` bounds what a target node may
        accept (defaults to the general-purpose overcommit policy).
        """
        if allocatable_of is None:
            allocatable_of = lambda n: GENERAL_OVERCOMMIT.allocatable(n.physical)
        plan = MigrationPlan()
        loads = {
            node.node_id: sum(load_view(vm)[0] for vm in node.vms.values())
            for node in nodes
        }
        capacities = {node.node_id: capacity_of(node) for node in nodes}
        by_id = {node.node_id: node for node in nodes}

        def imbalance() -> float:
            fractions = [
                loads[n] / capacities[n] for n in loads if capacities[n] > 0
            ]
            return float(np.std(fractions)) if len(fractions) > 1 else 0.0

        moved: set[str] = set()
        for _ in range(self.max_moves):
            current = imbalance()
            best: PlannedMove | None = None
            ordered = sorted(loads, key=lambda n: -loads[n] / max(capacities[n], 1e-9))
            source = by_id[ordered[0]]
            for vm in source.vms.values():
                if vm.vm_id in moved:
                    continue
                cpu_load, mem_ratio = load_view(vm)
                estimate = self.precopy.estimate_for_vm(vm.flavor, mem_ratio)
                if (
                    not estimate.converged
                    or estimate.downtime_seconds > self.downtime_budget_s
                ):
                    continue  # §3.2: leave heavy VMs alone
                for target_id in reversed(ordered[1:]):
                    target = by_id[target_id]
                    if not vm.requested().fits_within(
                        allocatable_of(target) - target.allocated()
                    ):
                        continue
                    after = self._imbalance_after(
                        loads, capacities, source.node_id, target_id, cpu_load
                    )
                    improvement = current - after
                    if improvement <= 0:
                        continue
                    candidate = PlannedMove(
                        vm_id=vm.vm_id,
                        source_node=source.node_id,
                        target_node=target_id,
                        improvement=improvement,
                        estimate=estimate,
                    )
                    if candidate.benefit_per_second < self.min_benefit_per_second:
                        continue
                    if best is None or candidate.improvement > best.improvement:
                        best = candidate
            if best is None:
                break
            plan.moves.append(best)
            moved.add(best.vm_id)
            cpu_load, _ = load_view(by_id[best.source_node].vms[best.vm_id])
            loads[best.source_node] -= cpu_load
            loads[best.target_node] += cpu_load
        return plan

    def plan_cross_bb(
        self,
        region: Region,
        datacenter: str,
        load_view: LoadView = _allocated_view,
    ) -> MigrationPlan:
        """Plan rebalancing across general-purpose BBs of one DC (§7).

        Cross-DC moves are out of scope, as in the paper.
        """
        nodes: list[ComputeNode] = []
        for bb in region.iter_building_blocks():
            if bb.datacenter != datacenter or bb.aggregate_class:
                continue
            nodes.extend(bb.iter_nodes())
        if len(nodes) < 2:
            return MigrationPlan()
        return self.plan_for_nodes(
            nodes, capacity_of=lambda n: n.physical.vcpus, load_view=load_view
        )

    @staticmethod
    def _imbalance_after(loads, capacities, source, target, cpu_load) -> float:
        updated = dict(loads)
        updated[source] -= cpu_load
        updated[target] += cpu_load
        fractions = [
            updated[n] / capacities[n] for n in updated if capacities[n] > 0
        ]
        return float(np.std(fractions)) if len(fractions) > 1 else 0.0
