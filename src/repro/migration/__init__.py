"""Live-migration cost modelling.

§3.2 ("Avoiding migration of heavy VMs"): migrating VMs with high memory
activity incurs overhead because updated pages must be re-copied.  This
package implements the standard pre-copy live-migration model — iterative
memory copying against a dirty-page rate — yielding total migration time,
downtime, and transferred volume, plus a planner that weighs migration
cost against rebalancing benefit.
"""

from repro.migration.precopy import MigrationEstimate, PrecopyModel
from repro.migration.planner import MigrationPlan, MigrationPlanner, PlannedMove

__all__ = [
    "PrecopyModel",
    "MigrationEstimate",
    "MigrationPlanner",
    "MigrationPlan",
    "PlannedMove",
]
