"""The unified scenario configuration: one spec for every runnable workload.

Every CLI in this repo ultimately runs the same thing — a seeded
:class:`~repro.simulation.runner.RegionSimulation` over some topology
with some mix of scheduler / fault / resilience knobs — yet each grew
its own config shape (``repro faults --config`` took flat
:class:`~repro.faults.config.FaultConfig` fields, ``repro chaos
--config`` took ``{"faults": ..., "resilience": ...}`` sections).
:class:`ScenarioSpec` collapses that surface into one JSON-able value
object that composes all three layers plus the simulation knobs, and is
the unit the :mod:`repro.sweep` engine shards across worker processes.

Canonical JSON shape (all keys optional, unknown keys rejected)::

    {
      "topology": "lab" | "chaos" | "paper",
      "building_blocks": 3, "nodes_per_bb": 4,          # lab
      "building_blocks_per_az": 2,                      # chaos
      "region_scale": 0.02,                             # paper
      "duration_days": 1.0, "seed": 7,
      "arrival_rate_per_hour": 12.0, "initial_vms": 120,
      "scrape_interval_s": 900.0, "drs_interval_s": 3600.0,
      "scheduler_factory": "nova",
      "scheduler":  { ... SchedulerConfig scalar fields ... },
      "faults":     { ... FaultConfig fields ... },
      "resilience": { ... ResilienceConfig fields ... }
    }

The old per-CLI shapes remain readable through the deprecated shims
:func:`spec_from_legacy_faults_dict` / :func:`spec_from_legacy_chaos_dict`
for one release; ``scripts/check_api_deprecations.sh`` gates first-party
code onto the canonical shape.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING

from repro.faults.config import FaultConfig
from repro.infrastructure.topology import (
    BuildingBlockSpec,
    DatacenterSpec,
    TopologySpec,
    paper_region_spec,
)
from repro.resilience.config import ResilienceConfig
from repro.scheduler.config import SchedulerConfig

if TYPE_CHECKING:  # the runner import is deferred to run() to avoid cycles
    from repro.simulation.runner import SimulationResult

#: Topologies a spec can name.  ``lab`` is the flat one-DC region the
#: fault scenarios use, ``chaos`` the two-AZ region of the chaos
#: scenario, ``paper`` the paper-shaped region at ``region_scale``.
TOPOLOGIES = ("lab", "chaos", "paper")

#: SchedulerConfig fields that are JSON-able scalars; ``filters`` /
#: ``weighers`` hold live objects and cannot round-trip through a spec.
_SCHEDULER_SCALAR_FIELDS = (
    "max_attempts",
    "alternates",
    "use_index",
    "track_filter_counts",
)

#: Nested sections of the canonical dict shape.
_SECTIONS = ("scheduler", "faults", "resilience")


def scheduler_config_to_dict(config: SchedulerConfig) -> dict:
    """JSON-able view of a SchedulerConfig; rejects live filter objects."""
    if config.filters is not None or config.weighers is not None:
        raise ValueError(
            "a SchedulerConfig with custom filter/weigher objects cannot "
            "be serialised into a ScenarioSpec"
        )
    return {name: getattr(config, name) for name in _SCHEDULER_SCALAR_FIELDS}


def scheduler_config_from_dict(data: object) -> SchedulerConfig:
    """Build a SchedulerConfig from parsed JSON; ``ValueError`` on problems."""
    if not isinstance(data, dict):
        raise ValueError(
            f"scheduler config must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - set(_SCHEDULER_SCALAR_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown scheduler config keys: {', '.join(unknown)} "
            f"(known: {', '.join(_SCHEDULER_SCALAR_FIELDS)})"
        )
    try:
        return SchedulerConfig(**data)
    except TypeError as exc:
        raise ValueError(f"invalid scheduler config: {exc}") from exc


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully described, runnable simulation scenario.

    The frozen composition of topology + workload + the three optional
    config layers.  ``from_dict``/``to_dict`` round-trip losslessly, so a
    spec has a stable content hash (:meth:`sha256`) — the identity the
    sweep engine journals to make resume safe against grid edits.
    """

    # -- topology ----------------------------------------------------------
    topology: str = "lab"
    building_blocks: int = 3
    nodes_per_bb: int = 4
    building_blocks_per_az: int = 2
    region_scale: float = 0.02
    # -- workload ----------------------------------------------------------
    duration_days: float = 1.0
    seed: int = 7
    arrival_rate_per_hour: float = 12.0
    initial_vms: int = 120
    scrape_interval_s: float = 900.0
    drs_interval_s: float = 3600.0
    scheduler_factory: str = "nova"
    # -- composed layers (None = subsystem disabled / defaults) ------------
    scheduler: SchedulerConfig | None = None
    faults: FaultConfig | None = None
    resilience: ResilienceConfig | None = None

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"topology must be one of {', '.join(TOPOLOGIES)}, "
                f"got {self.topology!r}"
            )
        if self.building_blocks < 1 or self.nodes_per_bb < 1:
            raise ValueError("need at least one building block and node")
        if self.building_blocks_per_az < 1:
            raise ValueError("building_blocks_per_az must be >= 1")
        if self.region_scale <= 0:
            raise ValueError("region_scale must be positive")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.arrival_rate_per_hour < 0 or self.initial_vms < 0:
            raise ValueError("arrival rate and initial_vms must be >= 0")
        if self.scrape_interval_s <= 0 or self.drs_interval_s <= 0:
            raise ValueError("scrape/DRS intervals must be positive")
        if self.scheduler_factory not in ("nova", "holistic"):
            raise ValueError(
                f"scheduler_factory must be 'nova' or 'holistic', "
                f"got {self.scheduler_factory!r}"
            )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """Complete, JSON-able, deterministic view (sections only when set)."""
        doc: dict = {
            "topology": self.topology,
            "building_blocks": self.building_blocks,
            "nodes_per_bb": self.nodes_per_bb,
            "building_blocks_per_az": self.building_blocks_per_az,
            "region_scale": self.region_scale,
            "duration_days": self.duration_days,
            "seed": self.seed,
            "arrival_rate_per_hour": self.arrival_rate_per_hour,
            "initial_vms": self.initial_vms,
            "scrape_interval_s": self.scrape_interval_s,
            "drs_interval_s": self.drs_interval_s,
            "scheduler_factory": self.scheduler_factory,
        }
        if self.scheduler is not None:
            doc["scheduler"] = scheduler_config_to_dict(self.scheduler)
        if self.faults is not None:
            doc["faults"] = {
                f.name: getattr(self.faults, f.name)
                for f in fields(FaultConfig)
            }
        if self.resilience is not None:
            doc["resilience"] = {
                f.name: getattr(self.resilience, f.name)
                for f in fields(ResilienceConfig)
            }
        return doc

    @classmethod
    def from_dict(cls, data: object) -> "ScenarioSpec":
        """Build a spec from parsed JSON; ``ValueError`` on any problem.

        Unknown keys are rejected by name (a typo must not silently fall
        back to a default), nested sections are parsed through each
        layer's own validating ``from_dict``.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"scenario config must be a JSON object, got "
                f"{type(data).__name__}"
            )
        scalar_names = [
            f.name for f in fields(cls) if f.name not in _SECTIONS
        ]
        known = set(scalar_names) | set(_SECTIONS)
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario config keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        kwargs: dict = {
            name: data[name] for name in scalar_names if name in data
        }
        if "scheduler" in data:
            kwargs["scheduler"] = scheduler_config_from_dict(data["scheduler"])
        if "faults" in data:
            kwargs["faults"] = FaultConfig.from_dict(data["faults"])
        if "resilience" in data:
            kwargs["resilience"] = ResilienceConfig.from_dict(
                data["resilience"]
            )
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ValueError(f"invalid scenario config: {exc}") from exc

    def canonical_json(self) -> str:
        """Compact canonical rendering — input of :meth:`sha256`."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )

    def sha256(self) -> str:
        """Content hash: the spec's identity in sweep journals/reports."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # -- execution ---------------------------------------------------------

    def topology_spec(self) -> TopologySpec:
        """The region this spec runs against."""
        if self.topology == "paper":
            return paper_region_spec(scale=self.region_scale)
        if self.topology == "chaos":
            # Mirrors repro.resilience.chaos.chaos_topology: two AZs of
            # uniform general-purpose blocks.
            return TopologySpec(
                region_id="chaos-lab",
                datacenters=tuple(
                    DatacenterSpec(
                        dc_id=f"dc{az}",
                        az_id=f"az{az}",
                        building_blocks=tuple(
                            BuildingBlockSpec(
                                bb_id=f"az{az}-bb{i}",
                                node_count=self.nodes_per_bb,
                            )
                            for i in range(self.building_blocks_per_az)
                        ),
                    )
                    for az in (1, 2)
                ),
            )
        # "lab": mirrors repro.faults.scenario.scenario_topology — one DC
        # of uniform general-purpose blocks (same ids, so fault traces
        # replayed through a spec are byte-identical to the legacy path).
        return TopologySpec(
            region_id="fault-lab",
            datacenters=(
                DatacenterSpec(
                    dc_id="dc1",
                    az_id="az1",
                    building_blocks=tuple(
                        BuildingBlockSpec(
                            bb_id=f"bb{i}", node_count=self.nodes_per_bb
                        )
                        for i in range(self.building_blocks)
                    ),
                ),
            ),
        )

    def simulation_config(self):
        """The :class:`~repro.simulation.runner.SimulationConfig` this
        spec describes."""
        from repro.simulation.runner import SimulationConfig

        return SimulationConfig(
            duration_days=self.duration_days,
            scrape_interval_s=self.scrape_interval_s,
            drs_interval_s=self.drs_interval_s,
            arrival_rate_per_hour=self.arrival_rate_per_hour,
            initial_vms=self.initial_vms,
            seed=self.seed,
            scheduler_factory=self.scheduler_factory,
            scheduler_config=self.scheduler,
            faults=self.faults,
            resilience=self.resilience,
        )

    def run(self, journal=None) -> "SimulationResult":
        """Run the scenario once; returns the full simulation result."""
        from repro.simulation.runner import RegionSimulation

        sim = RegionSimulation(
            self.topology_spec(), self.simulation_config(), journal=journal
        )
        return sim.run()


# -- deprecated per-CLI config shims ---------------------------------------
#
# Kept for one release so existing --config files keep working; gated by
# scripts/check_api_deprecations.sh so no first-party code depends on
# them.  New files should use the canonical ScenarioSpec shape above.


def looks_like_legacy_faults_dict(data: dict) -> bool:
    """True when ``data`` is the old flat FaultConfig shape.

    The discriminator is conservative: every key must be a FaultConfig
    field.  (``{"seed": N}`` alone is ambiguous and stays legacy, which
    preserves the historical ``repro faults --config`` semantics.)
    """
    fault_fields = {f.name for f in fields(FaultConfig)}
    return bool(data) and set(data) <= fault_fields


def looks_like_legacy_chaos_dict(data: dict) -> bool:
    """True when ``data`` is the old sections-only chaos shape."""
    return bool(data) and set(data) <= {"faults", "resilience"}


def spec_from_legacy_faults_dict(
    data: dict, base: ScenarioSpec
) -> ScenarioSpec:
    """Deprecated: flat FaultConfig fields → ``base`` with those faults."""
    warnings.warn(
        "flat FaultConfig --config files are deprecated; use the "
        'ScenarioSpec shape ({"faults": {...}, ...}) instead',
        DeprecationWarning,
        stacklevel=2,
    )
    return replace(base, faults=FaultConfig.from_dict(data))


def spec_from_legacy_chaos_dict(
    data: dict, base: ScenarioSpec
) -> ScenarioSpec:
    """Deprecated: sections-only chaos shape → ``base`` with overrides."""
    warnings.warn(
        'sections-only chaos --config files ({"faults": ..., '
        '"resilience": ...}) are deprecated; use the full ScenarioSpec '
        'shape (add "topology": "chaos") instead',
        DeprecationWarning,
        stacklevel=2,
    )
    spec = base
    if "faults" in data:
        spec = replace(spec, faults=FaultConfig.from_dict(data["faults"]))
    if "resilience" in data:
        spec = replace(
            spec, resilience=ResilienceConfig.from_dict(data["resilience"])
        )
    return spec
