"""Crash-point injection and byte-level journal corruption.

Two fault families for the crash-consistency layer
(:mod:`repro.recovery`):

- **process death** — :class:`CrashInjector` is a barrier callback for
  :class:`~repro.recovery.run.JournaledRun` that raises
  :class:`SimulatedCrash` the first time a named barrier fires on a
  chosen op.  Because the run's op stream and barrier sequence are
  deterministic, a :class:`CrashSpec` pins the kill to an exact byte
  position in the journal, repeatably;
- **storage damage** — :func:`corrupt_journal` applies byte-level
  damage a real disk or filesystem could inflict: tail truncation at an
  arbitrary offset, a bit flip inside a record payload (tail or
  interior), and a duplicated tail record (a misdirected retry of the
  last append).

Both are *injection only*: detection and refusal live in the recovery
layer, and tests assert each damage mode is reported with a named
journal offset rather than silently replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.recovery.journal import HEADER, _FRAME, read_journal
from repro.recovery.run import CRASH_POINTS


class SimulatedCrash(Exception):
    """The injected process death; carries the barrier it happened at."""

    def __init__(self, point: str, at_op: int) -> None:
        self.point = point
        self.at_op = at_op
        super().__init__(f"simulated crash at {point!r} during op {at_op}")


@dataclass(frozen=True)
class CrashSpec:
    """Kill the process the first time ``point`` fires on op ``at_op``.

    Snapshot points (``mid-snapshot`` / ``post-snapshot``) only fire on
    the run's snapshot cadence, so ``at_op`` must be the last op of a
    snapshot window for those to trigger.
    """

    point: str
    at_op: int

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {self.point!r}; "
                f"expected one of {CRASH_POINTS}"
            )
        if self.at_op < 0:
            raise ValueError("at_op must be >= 0")


class CrashInjector:
    """Barrier callback that dies once at the configured crash point.

    Counts ``pre-op`` barrier firings to track the op index, so it
    needs no channel to the run beyond the barrier itself.  After the
    crash fires once the injector goes inert — a recovery driven with
    the same injector instance will not crash again.
    """

    def __init__(self, spec: CrashSpec) -> None:
        self.spec = spec
        self.fired = False
        self._op = -1

    def __call__(self, point: str) -> None:
        if point == "pre-op":
            self._op += 1
        if self.fired:
            return
        if point == self.spec.point and self._op == self.spec.at_op:
            self.fired = True
            raise SimulatedCrash(point, self._op)


#: Byte-level damage modes :func:`corrupt_journal` understands.
CORRUPTION_MODES = ("truncate", "bitflip-tail", "bitflip-interior", "dup-tail")


def corrupt_journal(path: str | Path, mode: str, *, offset: int | None = None) -> int:
    """Damage a journal file in place; returns the affected byte offset.

    Modes:

    - ``truncate`` — cut the file at ``offset`` (default: mid-way into
      the final record), producing a torn tail;
    - ``bitflip-tail`` — flip one bit inside the *last* record's
      payload (recoverable: the tail is truncated and re-executed);
    - ``bitflip-interior`` — flip one bit inside the *first* record's
      payload (unrecoverable: interior history changed);
    - ``dup-tail`` — append a byte-exact copy of the last framed
      record, as a misdirected retried write would.
    """
    path = Path(path)
    scan = read_journal(path)
    if not scan.records:
        raise ValueError(f"journal {path} has no records to corrupt")
    data = bytearray(path.read_bytes())
    first_off, _ = scan.records[0]
    last_off, _ = scan.records[-1]
    if mode == "truncate":
        if offset is None:
            offset = last_off + _FRAME.size + 1
        if not len(HEADER) <= offset < len(data):
            raise ValueError(f"truncation offset {offset} out of range")
        with open(path, "r+b") as fh:
            fh.truncate(offset)
        return offset
    if mode == "bitflip-tail":
        target = last_off + _FRAME.size
    elif mode == "bitflip-interior":
        target = first_off + _FRAME.size
    elif mode == "dup-tail":
        with open(path, "ab") as fh:
            fh.write(bytes(data[last_off:]))
        return len(data)
    else:
        raise ValueError(
            f"unknown corruption mode {mode!r}; "
            f"expected one of {CORRUPTION_MODES}"
        )
    if offset is not None:
        target = offset
    data[target] ^= 0x01
    path.write_bytes(bytes(data))
    return target
