"""Canned end-to-end fault scenario: one small region under injected chaos.

Shared by the ``repro faults`` CLI subcommand, ``examples/
fault_scenarios.py``, and the determinism smoke tests.  Kept out of
``repro.faults.__init__`` because it imports the simulation runner (which
itself imports the fault models).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.config import FaultConfig
from repro.infrastructure.topology import (
    BuildingBlockSpec,
    DatacenterSpec,
    TopologySpec,
)
from repro.simulation.runner import (
    RegionSimulation,
    SimulationConfig,
    SimulationResult,
)


@dataclass(frozen=True)
class ScenarioConfig:
    """Shape and workload of the fault scenario."""

    building_blocks: int = 3
    nodes_per_bb: int = 4
    duration_days: float = 1.0
    seed: int = 7
    arrival_rate_per_hour: float = 12.0
    initial_vms: int = 120
    scrape_interval_s: float = 900.0
    drs_interval_s: float = 3600.0
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Scrape implementation ("columnar" or "legacy"); forwarded to
    #: SimulationConfig so the verify harness can run both differentially.
    scrape_path: str = "columnar"

    def __post_init__(self) -> None:
        if self.building_blocks < 1 or self.nodes_per_bb < 1:
            raise ValueError("need at least one building block and node")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")


def scenario_topology(config: ScenarioConfig) -> TopologySpec:
    """A one-DC region of uniform general-purpose building blocks."""
    return TopologySpec(
        region_id="fault-lab",
        datacenters=(
            DatacenterSpec(
                dc_id="dc1",
                az_id="az1",
                building_blocks=tuple(
                    BuildingBlockSpec(
                        bb_id=f"bb{i}", node_count=config.nodes_per_bb
                    )
                    for i in range(config.building_blocks)
                ),
            ),
        ),
    )


def run_fault_scenario(config: ScenarioConfig | None = None) -> SimulationResult:
    """Run the scenario once; the result carries the FaultReport."""
    config = config or ScenarioConfig()
    sim = RegionSimulation(
        scenario_topology(config),
        SimulationConfig(
            duration_days=config.duration_days,
            scrape_interval_s=config.scrape_interval_s,
            drs_interval_s=config.drs_interval_s,
            arrival_rate_per_hour=config.arrival_rate_per_hour,
            initial_vms=config.initial_vms,
            seed=config.seed,
            faults=config.faults,
            scrape_path=config.scrape_path,
        ),
    )
    return sim.run()


def default_chaos(seed: int = 23) -> FaultConfig:
    """A lively but survivable default fault mix for demos and smoke tests."""
    return FaultConfig(
        seed=seed,
        host_failure_rate_per_day=3.0,
        repair_time_mean_s=4 * 3600.0,
        migration_abort_fraction=0.2,
        scrape_gap_probability=0.03,
        stale_node_probability=0.02,
    )
