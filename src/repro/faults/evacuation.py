"""Evacuation of VMs stranded by host failures.

On a host failure every resident VM loses its placement allocation and
enters ERROR; the :class:`EvacuationManager` then drives each one back
through the region's scheduler with bounded retries and exponential
backoff in *simulation* time.  When the retry budget is exhausted the VM
is parked in the dead-letter queue (Nova's NoValidHost terminal state)
and reported, never silently dropped.

The manager is deliberately coupled to the simulation object (duck-typed
``RegionSimulation``): evacuation must mutate the same node/placement/VM
state the event handlers use, and going through the sim keeps one source
of truth for node selection inside a building block.
"""

from __future__ import annotations

from typing import Any

from repro.faults.config import FaultConfig
from repro.faults.report import DeadLetter, FaultReport
from repro.infrastructure.hierarchy import ComputeNode
from repro.infrastructure.vm import VMState
from repro.scheduler.placement import AllocationError
from repro.scheduler.pipeline import NoValidHost
from repro.scheduler.request import RequestSpec
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import EVAC_RETRY


class EvacuationManager:
    """Reschedules VMs off failed hosts; dead-letters the unplaceable."""

    def __init__(self, sim: Any, config: FaultConfig, report: FaultReport) -> None:
        self.sim = sim
        self.config = config
        self.report = report

    # -- host lifecycle ---------------------------------------------------------

    def on_host_fail(self, engine: SimulationEngine, node: ComputeNode) -> None:
        """Mark the node failed and queue every resident VM for evacuation.

        Evacuations start in batches of ``max_concurrent_evacuations``,
        spaced ``evac_batch_spacing_s`` apart — recovery bandwidth is
        bounded, a thundering herd of live migrations is not free.
        """
        node.failed = True
        self.report.host_failures += 1
        self.report.failed_hosts.append(node.node_id)
        # The failure flag bypasses placement, so tell an indexing
        # scheduler its cached view of this building block is stale.
        self._invalidate_host(node.building_block)
        victims = list(node.vms.values())
        for i, vm in enumerate(victims):
            node.remove_vm(vm.vm_id)
            vm.transition(VMState.ERROR)
            try:
                self.sim.placement.release(vm.vm_id)
            except AllocationError:
                pass  # never claimed (mid-operation); nothing to free
            self.report.evacuations_requested += 1
            batch = i // self.config.max_concurrent_evacuations
            engine.schedule(
                engine.now + batch * self.config.evac_batch_spacing_s,
                EVAC_RETRY,
                vm_id=vm.vm_id,
                attempt=1,
                failed_at=engine.now,
                failed_host=node.node_id,
                excluded=(),
            )

    def on_host_recover(self, engine: SimulationEngine, node: ComputeNode) -> None:
        """Clear the failure flag; the node is placeable again."""
        if node.failed:
            node.failed = False
            self.report.host_recoveries += 1
            self._invalidate_host(node.building_block)

    def _invalidate_host(self, bb_id: str) -> None:
        invalidate = getattr(self.sim.scheduler, "invalidate_host", None)
        if invalidate is not None:
            invalidate(bb_id)

    # -- retry loop -------------------------------------------------------------

    def on_retry(self, engine: SimulationEngine, event: Any) -> None:
        """One evacuation attempt for one VM."""
        payload = event.payload
        vm = self.sim.vms.get(payload["vm_id"])
        if vm is None or vm.state is not VMState.ERROR:
            return  # deleted or already evacuated; the retry is moot
        excluded = frozenset(payload["excluded"])
        spec = RequestSpec(
            vm_id=vm.vm_id,
            flavor=vm.flavor,
            tenant=vm.tenant,
            operation="migrate",
            excluded_hosts=excluded,
        )
        try:
            result = self.sim.scheduler.schedule(spec)
        except NoValidHost:
            self._attempt_failed(engine, payload, excluded)
            return
        bb = self.sim._bb_index.get(result.host_id)
        node = (
            self.sim._node_index.get(result.host_id)
            if bb is None
            else self.sim._pick_node(bb, vm.flavor)
        )
        if bb is None and node is not None:
            bb = self.sim._bb_index.get(node.building_block)
        if node is None or bb is None:
            # The BB-level claim succeeded but no single node fits: roll the
            # claim back and retry with this building block excluded.
            if self.sim.placement.allocation_for(vm.vm_id) is not None:
                self.sim.placement.release(vm.vm_id)
            self._attempt_failed(engine, payload, excluded | {result.host_id})
            return
        vm.transition(VMState.BUILDING)
        vm.transition(VMState.ACTIVE)
        node.add_vm(vm)
        self.report.record_evacuation_success(
            latency_s=engine.now - payload["failed_at"],
            attempts=payload["attempt"],
        )

    def _attempt_failed(
        self,
        engine: SimulationEngine,
        payload: dict,
        excluded: frozenset[str],
    ) -> None:
        attempt = payload["attempt"]
        if attempt >= self.config.evac_max_retries:
            self.report.record_dead_letter(
                DeadLetter(
                    vm_id=payload["vm_id"],
                    failed_host=payload["failed_host"],
                    attempts=attempt,
                    failed_at=payload["failed_at"],
                    dead_lettered_at=engine.now,
                )
            )
            self.sim.demands.pop(payload["vm_id"], None)
            return
        self.report.evacuation_retries += 1
        backoff = self.config.evac_backoff_base_s * (
            self.config.evac_backoff_factor ** (attempt - 1)
        )
        engine.schedule(
            engine.now + backoff,
            EVAC_RETRY,
            vm_id=payload["vm_id"],
            attempt=attempt + 1,
            failed_at=payload["failed_at"],
            failed_host=payload["failed_host"],
            excluded=tuple(sorted(excluded)),
        )
