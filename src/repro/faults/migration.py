"""Live-migration fault model.

A configurable fraction of live migrations abort mid-precopy — the source
keeps running the VM, the destination discards the partially copied state,
and any placement claim made for the destination must be rolled back
atomically.  Real triggers include precopy non-convergence under memory
pressure, migration-network congestion, and destination-host admission
failures (§3.2's reluctance to migrate heavy VMs exists precisely because
these aborts are common).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AbortedMigration:
    """One migration that failed mid-precopy and was rolled back."""

    vm_id: str
    source: str
    target: str


class MigrationFaultModel:
    """Seeded Bernoulli abort decisions, with bookkeeping.

    Draw order is the call order of :meth:`attempt`, which the deterministic
    event loop fixes, so replays with the same seed abort the same moves.
    """

    def __init__(
        self,
        abort_fraction: float = 0.0,
        rng: np.random.Generator | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= abort_fraction <= 1.0:
            raise ValueError("abort_fraction must be within [0, 1]")
        self.abort_fraction = abort_fraction
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.attempted = 0
        self.aborted = 0
        self.abort_log: list[AbortedMigration] = []

    def attempt(self, vm_id: str, source: str, target: str) -> bool:
        """Record one migration attempt; returns False when it aborts."""
        self.attempted += 1
        if self.abort_fraction > 0.0 and float(self.rng.random()) < self.abort_fraction:
            self.aborted += 1
            self.abort_log.append(AbortedMigration(vm_id, source, target))
            return False
        return True
