"""The FaultInjector: turns hazard rates into scheduled simulation events.

Failure *times* are pre-drawn as a Poisson process when the scenario is
set up; the *victim* of each failure is drawn when the event fires, from
the nodes healthy at that moment.  Both draws come from the injector's
private seeded RNG, so the full fault trace is a pure function of
(config, topology, event order) and replays byte-identically.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.faults.config import FaultConfig
from repro.infrastructure.hierarchy import ComputeNode
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import HOST_FAIL


class FaultInjector:
    """Schedules host failures and draws repair times and victims."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.scheduled_failures = 0

    # -- scheduling -----------------------------------------------------------

    def schedule_host_failures(
        self, engine: SimulationEngine, start: float, end: float
    ) -> int:
        """Enqueue HOST_FAIL events over [start, end); returns the count."""
        rate_s = self.config.host_failure_rate_per_day / 86_400.0
        if rate_s <= 0 or end <= start:
            return 0
        n = 0
        t = start
        while True:
            t += float(self.rng.exponential(1.0 / rate_s))
            if t >= end:
                break
            engine.schedule(t, HOST_FAIL)
            n += 1
        self.scheduled_failures += n
        return n

    # -- draws at fire time ----------------------------------------------------

    def pick_victim(self, nodes: Iterable[ComputeNode]) -> ComputeNode | None:
        """A uniformly random healthy node, or None if all are down."""
        healthy = [n for n in nodes if n.healthy]
        if not healthy:
            return None
        return healthy[int(self.rng.integers(0, len(healthy)))]

    def draw_repair_time(self) -> float:
        """Exponential time-to-repair, floored at the configured minimum."""
        draw = float(self.rng.exponential(self.config.repair_time_mean_s))
        return max(self.config.repair_time_min_s, draw)
