"""The FaultInjector: turns hazard rates into scheduled simulation events.

Failure *times* are pre-drawn as a Poisson process when the scenario is
set up; the *victim* of each failure is drawn when the event fires, from
the nodes healthy at that moment.  Both draws come from the injector's
private seeded RNG, so the full fault trace is a pure function of
(config, topology, event order) and replays byte-identically.

Every draw-at-fire-time path degrades gracefully: when no eligible victim
remains (all nodes down, draining, or quarantined; every domain already
dark) the draw is a counted no-op (``skipped_draws``) instead of an
exception mid-simulation — a chaos run must never be killed by its own
chaos.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.faults.config import FaultConfig
from repro.faults.domains import domain_ids, domain_members
from repro.infrastructure.hierarchy import ComputeNode, Region
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import (
    DOMAIN_FAIL,
    HOST_FAIL,
    PARTITION_START,
)


class FaultInjector:
    """Schedules host failures and draws repair times and victims."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.scheduled_failures = 0
        self.scheduled_domain_outages = 0
        self.scheduled_partitions = 0
        self.scheduled_flap_events = 0
        #: Draws that found no eligible victim and were skipped (satellite:
        #: graceful no-op instead of raising mid-simulation).
        self.skipped_draws = 0

    # -- scheduling -----------------------------------------------------------

    def _schedule_poisson(
        self,
        engine: SimulationEngine,
        start: float,
        end: float,
        rate_s: float,
        kind: str,
        **payload,
    ) -> int:
        if rate_s <= 0 or end <= start:
            return 0
        n = 0
        t = start
        while True:
            t += float(self.rng.exponential(1.0 / rate_s))
            if t >= end:
                break
            engine.schedule(t, kind, **payload)
            n += 1
        return n

    def schedule_host_failures(
        self, engine: SimulationEngine, start: float, end: float
    ) -> int:
        """Enqueue HOST_FAIL events over [start, end); returns the count."""
        rate_s = self.config.host_failure_rate_per_day / 86_400.0
        n = self._schedule_poisson(engine, start, end, rate_s, HOST_FAIL)
        self.scheduled_failures += n
        return n

    def schedule_domain_outages(
        self, engine: SimulationEngine, start: float, end: float
    ) -> int:
        """Enqueue correlated AZ- and BB-scoped DOMAIN_FAIL events."""
        n = self._schedule_poisson(
            engine,
            start,
            end,
            self.config.az_outage_rate_per_day / 86_400.0,
            DOMAIN_FAIL,
            scope="az",
        )
        n += self._schedule_poisson(
            engine,
            start,
            end,
            self.config.bb_outage_rate_per_day / 86_400.0,
            DOMAIN_FAIL,
            scope="bb",
        )
        self.scheduled_domain_outages += n
        return n

    def schedule_partitions(
        self, engine: SimulationEngine, start: float, end: float
    ) -> int:
        """Enqueue exporter↔store PARTITION_START events."""
        n = self._schedule_poisson(
            engine,
            start,
            end,
            self.config.partition_rate_per_day / 86_400.0,
            PARTITION_START,
            scope=self.config.partition_scope,
        )
        self.scheduled_partitions += n
        return n

    def schedule_flapping(
        self, engine: SimulationEngine, start: float, region: Region
    ) -> int:
        """Afflict ``flapping_hosts`` nodes with a deterministic fail cycle.

        Victims are drawn once, seeded, from the sorted node list; each gets
        ``flapping_cycles`` HOST_FAIL events spaced ``flapping_period_s``
        apart with a targeted half-period repair — the oscillation the host
        health service must detect and quarantine.
        """
        count = self.config.flapping_hosts
        if count < 1:
            return 0
        node_ids = sorted(n.node_id for n in region.iter_nodes())
        if not node_ids:
            return 0
        picks = self.rng.choice(
            len(node_ids), size=min(count, len(node_ids)), replace=False
        )
        period = self.config.flapping_period_s
        n = 0
        for offset, idx in enumerate(sorted(int(i) for i in picks)):
            node_id = node_ids[idx]
            # Stagger victims half a period apart so their evacuation bursts
            # do not all land on the same instant.
            first = start + period * (0.25 + 0.5 * offset)
            for cycle in range(self.config.flapping_cycles):
                engine.schedule(
                    first + cycle * period,
                    HOST_FAIL,
                    node_id=node_id,
                    repair_s=period / 2.0,
                )
                n += 1
        self.scheduled_flap_events += n
        return n

    # -- draws at fire time ----------------------------------------------------

    def pick_victim(self, nodes: Iterable[ComputeNode]) -> ComputeNode | None:
        """A uniformly random healthy (non-quarantined) node.

        Returns None — bumping ``skipped_draws`` — when nothing is
        eligible, so a failure event firing into an already-dark region is
        a graceful no-op.
        """
        healthy = [n for n in nodes if n.healthy]
        if not healthy:
            self.skipped_draws += 1
            return None
        return healthy[int(self.rng.integers(0, len(healthy)))]

    def pick_domain(self, region: Region, scope: str) -> str | None:
        """A uniformly random domain with at least one healthy node.

        Like :meth:`pick_victim`, a draw with no live domain left is a
        counted no-op rather than an error.
        """
        eligible = [
            d
            for d in domain_ids(region, scope)
            if any(n.healthy for n in domain_members(region, scope, d))
        ]
        if not eligible:
            self.skipped_draws += 1
            return None
        return eligible[int(self.rng.integers(0, len(eligible)))]

    def pick_partition_domain(self, region: Region, scope: str) -> str | None:
        """A uniformly random domain to partition (any non-empty one).

        A partition does not need healthy members — cutting off a
        recovering domain is a perfectly good fault — only existing ones.
        """
        eligible = [
            d
            for d in domain_ids(region, scope)
            if domain_members(region, scope, d)
        ]
        if not eligible:
            self.skipped_draws += 1
            return None
        return eligible[int(self.rng.integers(0, len(eligible)))]

    def targeted_victim(
        self, nodes: Sequence[ComputeNode] | dict[str, ComputeNode], node_id: str
    ) -> ComputeNode | None:
        """Resolve a targeted (flapping) victim; no-op if not healthy now."""
        if isinstance(nodes, dict):
            node = nodes.get(node_id)
        else:
            node = next((n for n in nodes if n.node_id == node_id), None)
        if node is None or not node.healthy:
            self.skipped_draws += 1
            return None
        return node

    def draw_repair_time(self) -> float:
        """Exponential time-to-repair, floored at the configured minimum."""
        draw = float(self.rng.exponential(self.config.repair_time_mean_s))
        return max(self.config.repair_time_min_s, draw)

    def draw_outage_duration(self) -> float:
        """Exponential domain-outage duration, floored at the minimum."""
        draw = float(
            self.rng.exponential(self.config.domain_outage_duration_mean_s)
        )
        return max(self.config.domain_outage_duration_min_s, draw)

    def draw_partition_duration(self) -> float:
        """Exponential partition duration, floored at the minimum."""
        draw = float(self.rng.exponential(self.config.partition_duration_mean_s))
        return max(self.config.partition_duration_min_s, draw)
