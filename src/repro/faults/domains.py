"""Correlated failure domains: AZ/rack outages and scrape partitions.

PR 1's faults are independent per host; real incidents are correlated — a
rack loses power, an AZ loses a spine switch, a network partition cuts the
metric store off from every exporter in a domain.  This module provides the
shared bookkeeping for domain-scoped faults:

- :func:`domain_members` resolves a ``(scope, domain_id)`` pair to the
  member nodes, giving every fault class one definition of "the domain";
- :class:`ScrapePartition` tracks which nodes are currently blackholed by
  an exporter↔store partition.  Unlike a scrape *gap* (one cycle lost
  everywhere) or a *stale* exporter (markers ingested), a partition loses
  every sample from one domain for its whole duration — the control-plane
  view of that domain silently freezes, which is exactly the staleness
  hazard the paper's scheduling critique turns on.

Victim and duration draws stay in :class:`~repro.faults.injector.
FaultInjector` so the full fault trace remains a pure function of
(config, topology, event order).
"""

from __future__ import annotations

from repro.infrastructure.hierarchy import ComputeNode, Region

#: Valid domain scopes: an availability zone or one building block (the
#: simulation's rack-equivalent blast radius).
DOMAIN_SCOPES = ("az", "bb")


def domain_ids(region: Region, scope: str) -> list[str]:
    """Sorted identifiers of every domain of ``scope`` in the region."""
    if scope == "az":
        return sorted(region.azs)
    if scope == "bb":
        return sorted(bb.bb_id for bb in region.iter_building_blocks())
    raise ValueError(f"unknown domain scope {scope!r}")


def domain_members(region: Region, scope: str, domain_id: str) -> list[ComputeNode]:
    """Member nodes of one domain, in region iteration order."""
    if scope == "az":
        return [n for n in region.iter_nodes() if n.az == domain_id]
    if scope == "bb":
        return [n for n in region.iter_nodes() if n.building_block == domain_id]
    raise ValueError(f"unknown domain scope {scope!r}")


class ScrapePartition:
    """Which nodes are currently cut off from the metric store.

    Multiple overlapping partitions are supported: each start returns a
    token, and a node stays blackholed until every partition covering it
    has ended (a node can sit behind two failed links at once).
    """

    def __init__(self) -> None:
        self._active: dict[int, frozenset[str]] = {}
        self._token = 0
        #: Partitions started / healed, and scrapes lost to blackholing.
        self.partitions_started = 0
        self.partitions_healed = 0
        self.blackholed_scrapes = 0

    def start(self, node_ids: frozenset[str]) -> int:
        """Begin a partition covering ``node_ids``; returns its token."""
        self._token += 1
        self._active[self._token] = node_ids
        self.partitions_started += 1
        return self._token

    def end(self, token: int) -> None:
        """Heal one partition (idempotent for stale tokens)."""
        if self._active.pop(token, None) is not None:
            self.partitions_healed += 1

    def is_blackholed(self, node_id: str) -> bool:
        """Whether any active partition covers this node (counts a loss)."""
        for members in self._active.values():
            if node_id in members:
                self.blackholed_scrapes += 1
                return True
        return False

    @property
    def active_nodes(self) -> frozenset[str]:
        """Union of all currently partitioned nodes."""
        out: frozenset[str] = frozenset()
        for members in self._active.values():
            out |= members
        return out
