"""Seeded, deterministic fault injection for the regional simulation.

The subsystem's parts:

- :class:`~repro.faults.config.FaultConfig` — hazard rates and recovery
  knobs, one frozen dataclass;
- :class:`~repro.faults.injector.FaultInjector` — schedules host failures
  from a Poisson hazard and draws victims/repair times;
- :class:`~repro.faults.migration.MigrationFaultModel` — aborts a seeded
  fraction of live migrations mid-precopy;
- :class:`~repro.faults.telemetry.TelemetryFaultModel` — scrape gaps and
  stale-exporter injection for the metric pipeline;
- :mod:`repro.faults.domains` — correlated failure domains: AZ/rack-scoped
  outages and :class:`~repro.faults.domains.ScrapePartition`, the
  exporter↔store partition that blackholes a whole domain's scrapes;
- :class:`~repro.faults.evacuation.EvacuationManager` — retries stranded
  VMs through the scheduler with backoff, dead-lettering the unplaceable;
- :mod:`repro.faults.crashpoints` — control-plane process death at named
  barriers (:class:`~repro.faults.crashpoints.CrashInjector`) and
  byte-level journal corruption.  Imported separately (like
  ``repro.faults.scenario``) because it depends on :mod:`repro.recovery`,
  which would cycle back through this package.

Everything reports into one :class:`~repro.faults.report.FaultReport`,
whose JSON rendering is byte-stable per seed.  ``repro.faults.scenario``
(imported separately to avoid a cycle with the runner) packages a ready
end-to-end scenario used by the CLI, the example, and the CI smoke test.
"""

from repro.faults.config import FaultConfig
from repro.faults.domains import ScrapePartition, domain_ids, domain_members
from repro.faults.evacuation import EvacuationManager
from repro.faults.injector import FaultInjector
from repro.faults.migration import AbortedMigration, MigrationFaultModel
from repro.faults.report import DeadLetter, FaultReport
from repro.faults.telemetry import TelemetryFaultModel

__all__ = [
    "AbortedMigration",
    "DeadLetter",
    "EvacuationManager",
    "FaultConfig",
    "FaultInjector",
    "FaultReport",
    "MigrationFaultModel",
    "ScrapePartition",
    "TelemetryFaultModel",
    "domain_ids",
    "domain_members",
]
