"""The FaultReport: what was injected and how recovery went.

The report is the scenario's primary artefact: counters for every injected
fault class, the evacuation latency distribution, a retry histogram, and
the dead-letter queue.  :meth:`FaultReport.to_json` is deterministic
(sorted keys, fixed float handling) so two runs with the same seed produce
byte-identical output — the CI smoke job hashes it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.reporting import ReportBase


@dataclass(frozen=True)
class DeadLetter:
    """One VM whose evacuation exhausted its retry budget."""

    vm_id: str
    failed_host: str
    attempts: int
    failed_at: float
    dead_lettered_at: float

    def to_dict(self) -> dict:
        return {
            "vm_id": self.vm_id,
            "failed_host": self.failed_host,
            "attempts": self.attempts,
            "failed_at": round(self.failed_at, 6),
            "dead_lettered_at": round(self.dead_lettered_at, 6),
        }


@dataclass
class FaultReport(ReportBase):
    """Aggregated outcome of one fault-injection scenario."""

    seed: int = 0
    # -- injected faults --------------------------------------------------
    host_failures: int = 0
    host_recoveries: int = 0
    failed_hosts: list[str] = field(default_factory=list)
    migrations_attempted: int = 0
    migrations_aborted: int = 0
    scrape_gaps: int = 0
    stale_node_scrapes: int = 0
    # -- correlated failure domains ---------------------------------------
    az_outages: int = 0
    bb_outages: int = 0
    #: ``scope:domain_id`` of every fired domain outage.
    outage_domains: list[str] = field(default_factory=list)
    #: Nodes taken down by domain outages (also counted in host_failures).
    domain_nodes_failed: int = 0
    partitions: int = 0
    blackholed_scrapes: int = 0
    #: Victim/domain draws skipped because nothing eligible remained.
    skipped_draws: int = 0
    # -- recovery ---------------------------------------------------------
    evacuations_requested: int = 0
    evacuations_succeeded: int = 0
    evacuation_retries: int = 0
    #: seconds from host failure to successful re-placement, per VM
    evacuation_latencies_s: list[float] = field(default_factory=list)
    #: attempts needed for each successful evacuation -> count
    retry_histogram: dict[int, int] = field(default_factory=dict)
    dead_letters: list[DeadLetter] = field(default_factory=list)

    # -- recording helpers -------------------------------------------------

    def record_evacuation_success(self, latency_s: float, attempts: int) -> None:
        self.evacuations_succeeded += 1
        self.evacuation_latencies_s.append(latency_s)
        self.retry_histogram[attempts] = self.retry_histogram.get(attempts, 0) + 1

    def record_dead_letter(self, entry: DeadLetter) -> None:
        self.dead_letters.append(entry)

    @property
    def dead_lettered_vms(self) -> list[str]:
        return [d.vm_id for d in self.dead_letters]

    # -- summaries ----------------------------------------------------------

    def latency_summary(self) -> dict[str, float]:
        """count/mean/p50/p95/max of evacuation latency, all rounded."""
        lat = sorted(self.evacuation_latencies_s)
        if not lat:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}

        def pct(q: float) -> float:
            idx = min(len(lat) - 1, int(q * (len(lat) - 1) + 0.5))
            return lat[idx]

        return {
            "count": len(lat),
            "mean": round(sum(lat) / len(lat), 6),
            "p50": round(pct(0.50), 6),
            "p95": round(pct(0.95), 6),
            "max": round(lat[-1], 6),
        }

    def to_dict(self) -> dict:
        """Deterministic, JSON-ready view of the report."""
        return {
            "seed": self.seed,
            "host_failures": self.host_failures,
            "host_recoveries": self.host_recoveries,
            "failed_hosts": sorted(self.failed_hosts),
            "migrations_attempted": self.migrations_attempted,
            "migrations_aborted": self.migrations_aborted,
            "scrape_gaps": self.scrape_gaps,
            "stale_node_scrapes": self.stale_node_scrapes,
            "az_outages": self.az_outages,
            "bb_outages": self.bb_outages,
            "outage_domains": sorted(self.outage_domains),
            "domain_nodes_failed": self.domain_nodes_failed,
            "partitions": self.partitions,
            "blackholed_scrapes": self.blackholed_scrapes,
            "skipped_draws": self.skipped_draws,
            "evacuations_requested": self.evacuations_requested,
            "evacuations_succeeded": self.evacuations_succeeded,
            "evacuation_retries": self.evacuation_retries,
            "evacuation_latency": self.latency_summary(),
            "retry_histogram": {
                str(k): v for k, v in sorted(self.retry_histogram.items())
            },
            "dead_lettered": [
                d.to_dict() for d in sorted(self.dead_letters, key=lambda d: d.vm_id)
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Byte-stable JSON rendering (sorted keys, no locale dependence)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-oriented one-screen summary."""
        lat = self.latency_summary()
        lines = [
            "Fault-injection report",
            f"  host failures      {self.host_failures} "
            f"(recovered {self.host_recoveries})",
            f"  migrations         {self.migrations_attempted} attempted, "
            f"{self.migrations_aborted} aborted mid-precopy",
            f"  telemetry          {self.scrape_gaps} scrape gaps, "
            f"{self.stale_node_scrapes} stale node scrapes",
            f"  domains            {self.az_outages} AZ + {self.bb_outages} BB "
            f"outages ({self.domain_nodes_failed} nodes), "
            f"{self.partitions} partitions "
            f"({self.blackholed_scrapes} scrapes blackholed)",
            f"  evacuations        {self.evacuations_succeeded}/"
            f"{self.evacuations_requested} succeeded "
            f"({self.evacuation_retries} retries)",
            f"  evac latency (s)   mean {lat['mean']:.1f}  p50 {lat['p50']:.1f}  "
            f"p95 {lat['p95']:.1f}  max {lat['max']:.1f}",
            f"  dead-lettered      {len(self.dead_letters)} VMs",
        ]
        for d in sorted(self.dead_letters, key=lambda d: d.vm_id)[:10]:
            lines.append(
                f"    {d.vm_id} (host {d.failed_host}, {d.attempts} attempts)"
            )
        return "\n".join(lines)
