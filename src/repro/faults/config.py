"""Configuration for the fault-injection subsystem.

All stochastic behaviour is driven by one seeded generator owned by the
injector, so a :class:`FaultConfig` plus a topology plus a workload seed
fully determines every injected fault — determinism is load-bearing for
the dataset-regeneration pillar (same seed ⇒ byte-identical report).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class FaultConfig:
    """Hazard rates and recovery knobs for one simulated region.

    Rates are region-wide expectations; individual victims are drawn
    uniformly from the currently healthy nodes when each event fires.
    """

    #: Seed for the injector's private RNG (independent of the workload RNG
    #: so enabling faults does not perturb the arrival stream).
    seed: int = 23
    #: Expected hard host failures per day across the region (Poisson).
    host_failure_rate_per_day: float = 0.0
    #: Mean time-to-repair for a failed host (exponential draw).
    repair_time_mean_s: float = 6 * 3600.0
    #: Floor on any repair draw (a reboot is never instantaneous).
    repair_time_min_s: float = 600.0
    #: Fraction of live migrations that abort mid-precopy and roll back.
    migration_abort_fraction: float = 0.0
    #: Probability that one whole scrape cycle is missed (exporter gap).
    scrape_gap_probability: float = 0.0
    #: Per-node-per-scrape probability of reporting staleness markers
    #: instead of fresh samples (stuck exporter / stale cache).
    stale_node_probability: float = 0.0
    #: Evacuation attempts per stranded VM before dead-lettering.
    evac_max_retries: int = 5
    #: First retry backoff; later retries multiply by ``evac_backoff_factor``.
    evac_backoff_base_s: float = 30.0
    evac_backoff_factor: float = 2.0
    #: Cap on evacuations launched in one batch; surplus VMs start one
    #: ``evac_batch_spacing_s`` later per batch (bounded recovery bandwidth).
    max_concurrent_evacuations: int = 8
    evac_batch_spacing_s: float = 60.0
    # -- correlated failure domains ---------------------------------------
    #: Expected AZ-scoped outages per day (Poisson): every healthy node in
    #: one availability zone fails at once and recovers as a unit.
    az_outage_rate_per_day: float = 0.0
    #: Expected building-block-scoped (rack) outages per day.
    bb_outage_rate_per_day: float = 0.0
    #: Mean / floor of a domain outage's duration (exponential draw).
    domain_outage_duration_mean_s: float = 1800.0
    domain_outage_duration_min_s: float = 300.0
    #: Expected exporter↔store network partitions per day: every scrape
    #: from the partitioned domain is blackholed until the partition heals.
    partition_rate_per_day: float = 0.0
    partition_duration_mean_s: float = 1800.0
    partition_duration_min_s: float = 120.0
    #: Scope of a partition victim: "bb" (one building block) or "az".
    partition_scope: str = "bb"
    # -- targeted flapping ------------------------------------------------
    #: Number of nodes afflicted with deterministic fail/recover
    #: oscillation (exercises flap detection + quarantine end-to-end).
    flapping_hosts: int = 0
    #: Full fail→recover cycle length for a flapping host; the host is
    #: down for half of each cycle.
    flapping_period_s: float = 1200.0
    #: Fail/recover cycles per flapping host before it settles.
    flapping_cycles: int = 4

    def __post_init__(self) -> None:
        if self.host_failure_rate_per_day < 0:
            raise ValueError("host_failure_rate_per_day must be >= 0")
        if self.repair_time_mean_s <= 0 or self.repair_time_min_s < 0:
            raise ValueError("repair times must be positive")
        for name in ("migration_abort_fraction", "scrape_gap_probability",
                     "stale_node_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.evac_max_retries < 1:
            raise ValueError("evac_max_retries must be >= 1")
        if self.evac_backoff_base_s < 0 or self.evac_backoff_factor < 1.0:
            raise ValueError("backoff base must be >= 0 and factor >= 1")
        if self.max_concurrent_evacuations < 1:
            raise ValueError("max_concurrent_evacuations must be >= 1")
        if self.evac_batch_spacing_s < 0:
            raise ValueError("evac_batch_spacing_s must be >= 0")
        if self.az_outage_rate_per_day < 0 or self.bb_outage_rate_per_day < 0:
            raise ValueError("domain outage rates must be >= 0")
        if (
            self.domain_outage_duration_mean_s <= 0
            or self.domain_outage_duration_min_s < 0
        ):
            raise ValueError("domain outage durations must be positive")
        if self.partition_rate_per_day < 0:
            raise ValueError("partition_rate_per_day must be >= 0")
        if self.partition_duration_mean_s <= 0 or self.partition_duration_min_s < 0:
            raise ValueError("partition durations must be positive")
        if self.partition_scope not in ("bb", "az"):
            raise ValueError("partition_scope must be 'bb' or 'az'")
        if self.flapping_hosts < 0 or self.flapping_cycles < 1:
            raise ValueError("flapping_hosts must be >= 0 and cycles >= 1")
        if self.flapping_period_s <= 0:
            raise ValueError("flapping_period_s must be positive")

    @classmethod
    def from_dict(cls, data: object) -> "FaultConfig":
        """Build a config from parsed JSON; ``ValueError`` on any problem.

        Unknown keys are rejected by name (a typo must not silently fall
        back to a default hazard rate), and field validation runs as
        usual via ``__post_init__``.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"fault config must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown fault config keys: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ValueError(f"invalid fault config: {exc}") from exc

    @property
    def any_faults(self) -> bool:
        """Whether this config injects anything at all."""
        return (
            self.host_failure_rate_per_day > 0
            or self.migration_abort_fraction > 0
            or self.scrape_gap_probability > 0
            or self.stale_node_probability > 0
            or self.az_outage_rate_per_day > 0
            or self.bb_outage_rate_per_day > 0
            or self.partition_rate_per_day > 0
            or self.flapping_hosts > 0
        )
