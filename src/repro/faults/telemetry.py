"""Telemetry fault model: scrape gaps and stale node exporters.

Two realistic degradations of the §4 measurement pipeline:

- **scrape gap** — a whole scrape cycle produces nothing (Prometheus
  restart, network partition to the exporters): no samples are ingested
  for that timestamp, leaving an honest hole in every series;
- **stale node** — one node's exporter answers but serves stale data (a
  wedged vRops adapter): the ingested samples carry the staleness marker
  (NaN) instead of fabricated values, so gap-aware queries can skip them
  rather than silently interpolating.
"""

from __future__ import annotations

import numpy as np


class TelemetryFaultModel:
    """Seeded per-scrape and per-node fault decisions."""

    def __init__(
        self,
        gap_probability: float = 0.0,
        stale_probability: float = 0.0,
        rng: np.random.Generator | None = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= gap_probability <= 1.0:
            raise ValueError("gap_probability must be within [0, 1]")
        if not 0.0 <= stale_probability <= 1.0:
            raise ValueError("stale_probability must be within [0, 1]")
        self.gap_probability = gap_probability
        self.stale_probability = stale_probability
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.gaps = 0
        self.stale_scrapes = 0

    def scrape_missed(self) -> bool:
        """Decide whether this whole scrape cycle is lost."""
        if self.gap_probability > 0.0 and float(self.rng.random()) < self.gap_probability:
            self.gaps += 1
            return True
        return False

    def node_is_stale(self, node_id: str) -> bool:
        """Decide whether one node's exporter serves stale data this cycle.

        Call once per node per scrape, in a fixed node order — the draw
        sequence is part of the deterministic replay contract.
        """
        if (
            self.stale_probability > 0.0
            and float(self.rng.random()) < self.stale_probability
        ):
            self.stale_scrapes += 1
            return True
        return False
