"""Lifecycle-event analysis.

§8 lists "the number of VM migrations" among the metrics planned for
future dataset revisions; the events table already carries creations,
deletions, resizes, and migrations.  This module derives the event-rate
views: daily arrival/departure/migration/resize counts, churn ratios, and
the population trajectory over the window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import SAPCloudDataset
from repro.frame import Frame
from repro.telemetry.timeseries import SECONDS_PER_DAY, TimeSeries

EVENT_KINDS = ("create", "delete", "migrate", "resize")


@dataclass(frozen=True)
class LifecycleSummary:
    """Window-level event totals and derived ratios."""

    creates: int
    deletes: int
    migrations: int
    resizes: int
    window_days: float

    @property
    def daily_arrival_rate(self) -> float:
        return self.creates / self.window_days if self.window_days > 0 else 0.0

    @property
    def daily_departure_rate(self) -> float:
        return self.deletes / self.window_days if self.window_days > 0 else 0.0

    @property
    def migrations_per_day(self) -> float:
        return self.migrations / self.window_days if self.window_days > 0 else 0.0


def lifecycle_summary(dataset: SAPCloudDataset) -> LifecycleSummary:
    """Totals of each event kind over the observation window."""
    kinds = [str(k) for k in dataset.events["event"]]
    return LifecycleSummary(
        creates=kinds.count("create"),
        deletes=kinds.count("delete"),
        migrations=kinds.count("migrate"),
        resizes=kinds.count("resize"),
        window_days=(dataset.window_end - dataset.window_start) / SECONDS_PER_DAY,
    )


def daily_event_counts(dataset: SAPCloudDataset) -> Frame:
    """One row per day with per-kind event counts."""
    times = np.asarray(dataset.events["time"], dtype=float)
    kinds = np.asarray([str(k) for k in dataset.events["event"]], dtype=object)
    day_starts = np.arange(
        np.floor(dataset.window_start / SECONDS_PER_DAY) * SECONDS_PER_DAY,
        dataset.window_end,
        SECONDS_PER_DAY,
    )
    records = []
    for start in day_starts:
        in_day = (times >= start) & (times < start + SECONDS_PER_DAY)
        row = {"day": float(start)}
        for kind in EVENT_KINDS:
            row[kind] = int(np.sum(in_day & (kinds == kind)))
        records.append(row)
    return Frame.from_records(records)


def population_trajectory(dataset: SAPCloudDataset) -> TimeSeries:
    """Alive-VM count at each day boundary, from the inventory."""
    created = np.asarray(dataset.vms["created_at"], dtype=float)
    deleted = np.asarray(
        [np.inf if d != d else float(d) for d in dataset.vms["deleted_at"]],
        dtype=float,
    )
    day_starts = np.arange(
        dataset.window_start, dataset.window_end, SECONDS_PER_DAY
    )
    counts = [
        float(np.sum((created <= t) & (deleted > t))) for t in day_starts
    ]
    return TimeSeries(day_starts, counts)


def churn_ratio(dataset: SAPCloudDataset) -> float:
    """Window arrivals as a fraction of the mean standing population.

    The SAP workload is long-lived (Fig 15), so unlike the batch traces of
    Table 3 this ratio is well below 1.
    """
    summary = lifecycle_summary(dataset)
    trajectory = population_trajectory(dataset)
    mean_population = trajectory.mean()
    if mean_population <= 0:
        raise ValueError("dataset has no standing population")
    return summary.creates / mean_population


def migration_report(dataset: SAPCloudDataset) -> Frame:
    """Per-VM migration counts for VMs that moved (the §8 metric)."""
    moved_mask = np.asarray(dataset.vms["migrations"], dtype=float) > 0
    moved = dataset.vms.filter(moved_mask)
    if len(moved) == 0:
        return Frame.empty(["vm_id", "flavor", "migrations"])
    return moved.select(["vm_id", "flavor", "migrations"]).sort(
        "migrations", reverse=True
    )
