"""CPU contention and ready-time analysis (Figs 8–9, §5.1).

The paper classifies contention against a 10% strict threshold (critical
workloads) and a 30% moderate threshold (time-sensitive systems), observes
node maxima between 10% and 30% with outliers above 40%, and tracks the 10
nodes with the highest CPU ready time, noting a 30-second baseline that
several hypervisors exceed repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import SAPCloudDataset
from repro.frame import Frame
from repro.telemetry.timeseries import TimeSeries

#: §5.1 thresholds on the contention percentage.
STRICT_CONTENTION_PCT = 10.0
MODERATE_CONTENTION_PCT = 30.0
SEVERE_CONTENTION_PCT = 40.0

#: Fig 8's "30 second baseline" on per-window CPU ready time.
READY_BASELINE_MS = 30_000.0


@dataclass(frozen=True)
class ContentionSummary:
    """Fleet-level contention statistics over the observation window."""

    node_count: int
    daily_mean_max: float  # worst daily fleet-mean contention %
    daily_p95_max: float  # worst daily fleet-p95 contention %
    overall_max: float  # highest single contention sample %
    nodes_above_strict: int  # nodes whose max exceeds 10%
    nodes_above_moderate: int  # nodes whose max exceeds 30%
    nodes_above_severe: int  # nodes whose max exceeds 40%


def contention_daily_stats(dataset: SAPCloudDataset) -> Frame:
    """Fig 9: daily mean / p95 / max contention across all nodes.

    Returns one row per day with ``day``, ``mean``, ``p95``, ``max``.
    """
    metric = "vrops_hostsystem_cpu_contention_percentage"
    mean_series = dataset.store.aggregate_across(metric, agg="mean")
    if len(mean_series) == 0:
        raise ValueError("dataset has no contention telemetry")
    p95_series = dataset.store.aggregate_across(metric, agg="p95")
    max_series = dataset.store.aggregate_across(metric, agg="max")
    daily_mean = mean_series.daily("mean")
    daily_p95 = p95_series.daily("max")
    daily_max = max_series.daily("max")
    return Frame(
        {
            "day": daily_mean.timestamps,
            "mean": daily_mean.values,
            "p95": daily_p95.values,
            "max": daily_max.values,
        }
    )


def contention_summary(dataset: SAPCloudDataset) -> ContentionSummary:
    """Threshold-based summary of the fleet's contention behaviour."""
    metric = "vrops_hostsystem_cpu_contention_percentage"
    node_maxima = []
    for _labels, series in dataset.store.select(metric):
        if len(series):
            node_maxima.append(series.max())
    if not node_maxima:
        raise ValueError("dataset has no contention telemetry")
    daily = contention_daily_stats(dataset)
    maxima = np.asarray(node_maxima)
    return ContentionSummary(
        node_count=len(maxima),
        daily_mean_max=float(np.max(daily["mean"])),
        daily_p95_max=float(np.max(daily["p95"])),
        overall_max=float(maxima.max()),
        nodes_above_strict=int(np.sum(maxima > STRICT_CONTENTION_PCT)),
        nodes_above_moderate=int(np.sum(maxima > MODERATE_CONTENTION_PCT)),
        nodes_above_severe=int(np.sum(maxima > SEVERE_CONTENTION_PCT)),
    )


def top_ready_time_nodes(
    dataset: SAPCloudDataset, n: int = 10
) -> list[tuple[str, TimeSeries]]:
    """Fig 8: the ``n`` nodes with the highest CPU ready time.

    Ranked by peak per-window ready time; returns (node_id, series) pairs,
    highest peak first.
    """
    metric = "vrops_hostsystem_cpu_ready_milliseconds"
    peaks: list[tuple[float, str, TimeSeries]] = []
    for labels, series in dataset.store.select(metric):
        if len(series) == 0:
            continue
        peaks.append((series.max(), labels.get("hostsystem", "?"), series))
    peaks.sort(key=lambda item: (-item[0], item[1]))
    return [(node_id, series) for _, node_id, series in peaks[:n]]


def ready_baseline_exceedances(dataset: SAPCloudDataset) -> Frame:
    """Per-node count of samples exceeding the 30 s ready-time baseline."""
    metric = "vrops_hostsystem_cpu_ready_milliseconds"
    records = []
    for labels, series in dataset.store.select(metric):
        if len(series) == 0:
            continue
        count = int(np.sum(series.values > READY_BASELINE_MS))
        if count:
            records.append(
                {
                    "node_id": labels.get("hostsystem", "?"),
                    "exceedances": count,
                    "peak_ready_ms": series.max(),
                }
            )
    records.sort(key=lambda r: -r["exceedances"])
    if not records:
        return Frame.empty(["node_id", "exceedances", "peak_ready_ms"])
    return Frame.from_records(records)


def contention_threshold_report(dataset: SAPCloudDataset) -> dict[str, float]:
    """Headline numbers matching §5.1's narrative."""
    summary = contention_summary(dataset)
    return {
        "daily_mean_max_pct": summary.daily_mean_max,
        "daily_p95_max_pct": summary.daily_p95_max,
        "overall_max_pct": summary.overall_max,
        "share_nodes_above_10pct": summary.nodes_above_strict / summary.node_count,
        "share_nodes_above_30pct": summary.nodes_above_moderate / summary.node_count,
        "share_nodes_above_40pct": summary.nodes_above_severe / summary.node_count,
    }


def weekday_weekend_effect(dataset: SAPCloudDataset) -> tuple[float, float]:
    """Mean top-node ready time on weekdays vs weekends (Fig 8's temporal
    effect: less workload and contention on weekends)."""
    top = top_ready_time_nodes(dataset, n=10)
    if not top:
        raise ValueError("dataset has no ready-time telemetry")
    weekday_vals: list[float] = []
    weekend_vals: list[float] = []
    for _node, series in top:
        day_index = (np.floor(series.timestamps / 86_400).astype(int) + 3) % 7
        weekend = day_index >= 5
        weekday_vals.extend(series.values[~weekend].tolist())
        weekend_vals.extend(series.values[weekend].tolist())
    return (
        float(np.mean(weekday_vals)) if weekday_vals else 0.0,
        float(np.mean(weekend_vals)) if weekend_vals else 0.0,
    )
