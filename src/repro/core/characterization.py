"""Workload characterisation: utilisation classes, size tables, lifetimes.

Implements the §5.5 analyses: the under/optimal/over utilisation thresholds
(<70%, 70–85%, >85% — derived from VMware best-practice guidance), the
Table 1/2 VM size classifications, and the per-flavor lifetime statistics of
Fig 15.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import SAPCloudDataset
from repro.frame import Frame
from repro.infrastructure.flavors import classify_ram, classify_vcpus

#: (underutilized_below, overutilized_above) utilisation ratio thresholds.
UTILIZATION_THRESHOLDS = (0.70, 0.85)


def classify_utilization(ratio: float) -> str:
    """Classify one average utilisation ratio per the paper's thresholds."""
    low, high = UTILIZATION_THRESHOLDS
    if ratio < low:
        return "underutilized"
    if ratio <= high:
        return "optimal"
    return "overutilized"


@dataclass(frozen=True)
class UtilizationBreakdown:
    """Population shares of the three utilisation classes for one resource."""

    resource: str
    underutilized: float
    optimal: float
    overutilized: float
    vm_count: int

    def as_dict(self) -> dict[str, float]:
        return {
            "underutilized": self.underutilized,
            "optimal": self.optimal,
            "overutilized": self.overutilized,
        }


def utilization_breakdown(
    dataset: SAPCloudDataset, resource: str = "cpu"
) -> UtilizationBreakdown:
    """Fractions of VMs in each utilisation class (Fig 14 headline numbers).

    ``resource`` is ``"cpu"`` or ``"memory"``, reading the lifetime-average
    ratios of the VM inventory.
    """
    column = {"cpu": "cpu_avg_ratio", "memory": "mem_avg_ratio"}.get(resource)
    if column is None:
        raise ValueError("resource must be 'cpu' or 'memory'")
    ratios = np.asarray(dataset.vms[column], dtype=float)
    n = len(ratios)
    if n == 0:
        raise ValueError("dataset has no VMs")
    low, high = UTILIZATION_THRESHOLDS
    return UtilizationBreakdown(
        resource=resource,
        underutilized=float(np.mean(ratios < low)),
        optimal=float(np.mean((ratios >= low) & (ratios <= high))),
        overutilized=float(np.mean(ratios > high)),
        vm_count=n,
    )


def vm_size_tables(dataset: SAPCloudDataset) -> tuple[Frame, Frame]:
    """Tables 1 and 2: VM counts per vCPU class and per RAM class."""
    vcpus = np.asarray(dataset.vms["vcpus"], dtype=float)
    ram = np.asarray(dataset.vms["ram_gib"], dtype=float)
    order = ["small", "medium", "large", "xlarge"]

    def count_table(classes: list[str], bounds_label: dict[str, str]) -> Frame:
        counts = {c: 0 for c in order}
        for c in classes:
            counts[c] += 1
        return Frame(
            {
                "category": np.asarray(order, dtype=object),
                "bounds": np.asarray([bounds_label[c] for c in order], dtype=object),
                "vm_count": np.asarray([counts[c] for c in order]),
            }
        )

    table1 = count_table(
        [classify_vcpus(v) for v in vcpus],
        {
            "small": "<= 4",
            "medium": "4 < vCPU <= 16",
            "large": "16 < vCPU <= 64",
            "xlarge": "> 64",
        },
    )
    table2 = count_table(
        [classify_ram(r) for r in ram],
        {
            "small": "<= 2",
            "medium": "2 < RAM <= 64",
            "large": "64 < RAM <= 128",
            "xlarge": "> 128",
        },
    )
    return table1, table2


def lifetime_by_flavor(dataset: SAPCloudDataset, min_instances: int = 30) -> Frame:
    """Fig 15: per-flavor lifetime statistics.

    Restricts to flavors with at least ``min_instances`` observed VMs, as
    the paper does "to avoid congestion".  Lifetimes are the retrospective
    values recorded in the inventory (seconds).
    """
    grouped = dataset.vms.groupby("flavor").agg(
        vm_count="lifetime_seconds:count",
        mean_lifetime_s="lifetime_seconds:mean",
        median_lifetime_s="lifetime_seconds:median",
        min_lifetime_s="lifetime_seconds:min",
        max_lifetime_s="lifetime_seconds:max",
        vcpu_class="vcpu_class:first",
        ram_class="ram_class:first",
    )
    mask = np.asarray(grouped["vm_count"], dtype=float) >= min_instances
    return grouped.filter(mask).sort("mean_lifetime_s", reverse=True)


def lifetime_size_correlation(dataset: SAPCloudDataset) -> float:
    """Pearson correlation between VM size (vCPUs) and lifetime.

    The paper finds "conclusions from VM size to lifetime are limited";
    the generated data keeps this correlation weak.
    """
    vcpus = np.asarray(dataset.vms["vcpus"], dtype=float)
    lifetimes = np.asarray(dataset.vms["lifetime_seconds"], dtype=float)
    if len(vcpus) < 2:
        return 0.0
    # Work in log-lifetime: the raw scale spans minutes to years.
    ll = np.log(np.maximum(lifetimes, 1.0))
    if np.std(vcpus) == 0 or np.std(ll) == 0:
        return 0.0
    return float(np.corrcoef(vcpus, ll)[0, 1])
