"""Energy modelling.

§1 motivates efficient placement partly through energy consumption.  The
standard linear server power model — idle floor plus a utilisation-
proportional term — lets the packing-vs-spread trade-off be expressed in
watt-hours: packing empties nodes that can then power down (or sleep),
spread keeps the whole fleet at its idle floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import SAPCloudDataset
from repro.telemetry.timeseries import TimeSeries


@dataclass(frozen=True, slots=True)
class PowerModel:
    """Linear power model for one server class."""

    idle_watts: float = 250.0
    peak_watts: float = 850.0
    #: Power drawn by a powered-down / deep-sleep node.
    sleep_watts: float = 15.0

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.sleep_watts < 0:
            raise ValueError("power values must be non-negative")
        if self.peak_watts < self.idle_watts:
            raise ValueError("peak_watts must be >= idle_watts")

    def power_at(self, utilization: float | np.ndarray) -> float | np.ndarray:
        """Instantaneous draw at a CPU utilisation fraction in [0, 1]."""
        u = np.clip(utilization, 0.0, 1.0)
        return self.idle_watts + (self.peak_watts - self.idle_watts) * u

    def energy_kwh(self, series: TimeSeries, asleep: bool = False) -> float:
        """Energy over a utilisation-fraction series (trapezoidal)."""
        if len(series) < 2:
            return 0.0
        if asleep:
            duration_h = (series.timestamps[-1] - series.timestamps[0]) / 3600.0
            return self.sleep_watts * duration_h / 1000.0
        watts = TimeSeries(series.timestamps, self.power_at(series.values))
        return watts.integral() / 3600.0 / 1000.0


@dataclass(frozen=True)
class EnergyReport:
    """Fleet energy summary over the observation window."""

    node_count: int
    total_kwh: float
    idle_floor_kwh: float  # energy the idle floors alone account for
    #: kWh that powering down near-idle nodes (mean util < threshold) and
    #: re-packing their load elsewhere could save, assuming perfect packing.
    consolidation_potential_kwh: float

    @property
    def idle_share(self) -> float:
        return self.idle_floor_kwh / self.total_kwh if self.total_kwh > 0 else 0.0


def fleet_energy(
    dataset: SAPCloudDataset,
    model: PowerModel | None = None,
    idle_threshold: float = 0.10,
) -> EnergyReport:
    """Energy of every node over the window, plus consolidation headroom.

    A node counts toward consolidation potential when its mean CPU
    utilisation stays below ``idle_threshold``; the potential is the gap
    between what it drew and the sleep draw, discounted by the energy its
    (small) load costs elsewhere at proportional rates.
    """
    model = model or PowerModel()
    metric = "vrops_hostsystem_cpu_core_utilization_percentage"
    total = 0.0
    idle_floor = 0.0
    potential = 0.0
    node_count = 0
    for _labels, series in dataset.store.select(metric):
        if len(series) < 2:
            continue
        node_count += 1
        fractions = TimeSeries(series.timestamps, series.values / 100.0)
        duration_h = (series.timestamps[-1] - series.timestamps[0]) / 3600.0
        kwh = model.energy_kwh(fractions)
        total += kwh
        idle_floor += model.idle_watts * duration_h / 1000.0
        if float(np.mean(fractions.values)) < idle_threshold:
            asleep_kwh = model.energy_kwh(fractions, asleep=True)
            # Moving the load elsewhere costs only the proportional part.
            proportional_kwh = kwh - model.idle_watts * duration_h / 1000.0
            potential += max(0.0, kwh - asleep_kwh - proportional_kwh)
    return EnergyReport(
        node_count=node_count,
        total_kwh=total,
        idle_floor_kwh=idle_floor,
        consolidation_potential_kwh=potential,
    )


def packing_energy_comparison(
    spread_utils: np.ndarray,
    packed_utils: np.ndarray,
    hours: float,
    model: PowerModel | None = None,
) -> tuple[float, float]:
    """(spread_kwh, packed_kwh) for two per-node mean-utilisation vectors.

    ``packed_utils`` may be shorter (empty nodes sleep); both vectors
    describe the same total work.
    """
    model = model or PowerModel()
    if hours <= 0:
        raise ValueError("hours must be positive")
    spread_kwh = float(np.sum(model.power_at(spread_utils))) * hours / 1000.0
    packed_active = float(np.sum(model.power_at(packed_utils))) * hours / 1000.0
    sleeping = len(spread_utils) - len(packed_utils)
    if sleeping < 0:
        raise ValueError("packed fleet cannot be larger than spread fleet")
    packed_kwh = packed_active + sleeping * model.sleep_watts * hours / 1000.0
    return spread_kwh, packed_kwh
