"""Free-resource heatmaps (Figs 5–7 and 10–13).

Each heatmap is a (days × entities) matrix of daily-average *free* resource
percentages.  Rows are days of the observation window, columns compute
nodes or building blocks sorted left-to-right from most to least free (as
in the paper); missing data (node added/removed mid-window, maintenance)
stays NaN and renders as the paper's white cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import SAPCloudDataset
from repro.telemetry.timeseries import SECONDS_PER_DAY, TimeSeries

#: Heatmap-capable metrics and how to convert a sample to "free percent".
_METRIC_TO_FREE = {
    "cpu": ("vrops_hostsystem_cpu_core_utilization_percentage", "percent_used"),
    "memory": ("vrops_hostsystem_memory_usage_percentage", "percent_used"),
    "network_tx": ("vrops_hostsystem_network_bytes_tx_kbps", "kbps"),
    "network_rx": ("vrops_hostsystem_network_bytes_rx_kbps", "kbps"),
    "storage": ("vrops_hostsystem_diskspace_usage_gigabytes", "gigabytes"),
}


@dataclass
class HeatmapResult:
    """A rendered heatmap: values plus row/column labels."""

    resource: str
    #: (n_days, n_columns) matrix of free-resource percentages; NaN = no data.
    matrix: np.ndarray
    day_starts: np.ndarray
    columns: list[str]
    level: str  # "node" or "building_block"

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    def column_means(self) -> np.ndarray:
        """Per-column mean free percentage over all days (NaN-aware)."""
        return np.nanmean(self.matrix, axis=0)

    def spread(self) -> float:
        """Max-minus-min of column means: the imbalance the paper reports."""
        means = self.column_means()
        finite = means[np.isfinite(means)]
        if len(finite) == 0:
            return 0.0
        return float(finite.max() - finite.min())


def free_resource_heatmap(
    dataset: SAPCloudDataset,
    resource: str = "cpu",
    dc_id: str | None = None,
    bb_id: str | None = None,
    level: str = "node",
) -> HeatmapResult:
    """Build a daily-average free-resource heatmap.

    - ``resource``: cpu, memory, network_tx, network_rx, or storage;
    - ``dc_id`` restricts to one data center (Figs 5, 10–13);
    - ``bb_id`` restricts to one building block (Fig 7);
    - ``level="building_block"`` averages columns per BB (Fig 6).
    """
    if resource not in _METRIC_TO_FREE:
        raise ValueError(
            f"unknown resource {resource!r}; known: {sorted(_METRIC_TO_FREE)}"
        )
    metric, kind = _METRIC_TO_FREE[resource]
    if level not in ("node", "building_block"):
        raise ValueError("level must be 'node' or 'building_block'")

    nodes = dataset.nodes_in(bb_id=bb_id, dc_id=dc_id)
    if len(nodes) == 0:
        raise ValueError("no nodes match the requested scope")

    day_starts = np.arange(
        np.floor(dataset.window_start / SECONDS_PER_DAY) * SECONDS_PER_DAY,
        dataset.window_end,
        SECONDS_PER_DAY,
    )
    n_days = len(day_starts)

    node_ids = [str(v) for v in nodes["node_id"]]
    node_bb = {str(n): str(b) for n, b in zip(nodes["node_id"], nodes["bb_id"])}
    capacities = _capacity_lookup(dataset, resource)

    per_node = np.full((n_days, len(node_ids)), np.nan)
    for j, node_id in enumerate(node_ids):
        series = dataset.node_series(metric, node_id)
        if len(series) == 0:
            continue
        daily = series.daily("mean", origin=day_starts[0])
        idx = ((daily.timestamps - day_starts[0]) / SECONDS_PER_DAY).astype(int)
        valid = (idx >= 0) & (idx < n_days)
        free = _to_free_percent(daily.values, kind, capacities.get(node_id))
        per_node[idx[valid], j] = free[valid]

    if level == "node":
        matrix, columns = per_node, node_ids
    else:
        bb_ids = sorted({node_bb[n] for n in node_ids})
        matrix = np.full((n_days, len(bb_ids)), np.nan)
        for k, bb in enumerate(bb_ids):
            members = [j for j, n in enumerate(node_ids) if node_bb[n] == bb]
            with np.errstate(all="ignore"):
                matrix[:, k] = np.nanmean(per_node[:, members], axis=1)
        columns = bb_ids

    # Paper convention: sort columns most-free to least-free.
    with np.errstate(all="ignore"):
        means = np.nanmean(matrix, axis=0)
    means = np.where(np.isfinite(means), means, -np.inf)
    order = np.argsort(-means, kind="stable")
    return HeatmapResult(
        resource=resource,
        matrix=matrix[:, order],
        day_starts=day_starts,
        columns=[columns[i] for i in order],
        level=level,
    )


def _capacity_lookup(dataset: SAPCloudDataset, resource: str) -> dict[str, float]:
    """Per-node capacity in the metric's native unit (for non-% metrics)."""
    out: dict[str, float] = {}
    ids = dataset.nodes["node_id"]
    if resource in ("network_tx", "network_rx"):
        caps = np.asarray(dataset.nodes["nic_gbps"], dtype=float) * 1e6  # kbps
    elif resource == "storage":
        caps = np.asarray(dataset.nodes["disk_gb"], dtype=float)
    else:
        return out
    for node_id, cap in zip(ids, caps):
        out[str(node_id)] = float(cap)
    return out


def _to_free_percent(
    values: np.ndarray, kind: str, capacity: float | None
) -> np.ndarray:
    if kind == "percent_used":
        return 100.0 - values
    if capacity is None or capacity <= 0:
        return np.full(len(values), np.nan)
    return 100.0 * (1.0 - np.clip(values / capacity, 0.0, 1.0))
