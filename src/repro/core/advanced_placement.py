"""The novel placement strategies the paper's findings motivate (§7).

Three extensions of the vanilla filter/weigher pipeline:

- :class:`ContentionAwareScheduler` — weighs candidates by historic CPU
  contention, steering new VMs away from hot hosts ("incorporating both
  current and historic utilization data, for example the contention
  metrics");
- :class:`LifetimeAwareScheduler` — separates predicted-short-lived from
  long-lived workloads to curb fragmentation ("placement strategies that
  incorporate workload lifetime can reduce migrations and mitigate
  resource fragmentation");
- :class:`HolisticNodeScheduler` — one-layer scheduling directly onto
  individual nodes, removing the Nova→DRS split ("a holistic scheduler
  that assigns VMs directly to individual hosts").
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.infrastructure.hierarchy import Region
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.filters import Filter, default_filters
from repro.scheduler.hoststate import HostState
from repro.scheduler.pipeline import FilterScheduler, NoValidHost, SchedulingResult
from repro.scheduler.placement import PlacementService
from repro.scheduler.policies import weighers_for_flavor
from repro.scheduler.request import RequestSpec
from repro.scheduler.stats import SCHEDULER_STAT_KEYS, normalize_stats
from repro.scheduler.weighers import Weigher, WeigherPipeline


class ContentionWeigher(Weigher):
    """Penalises hosts by an externally supplied contention score.

    ``scores`` maps host_id to a recent contention percentage (e.g. the
    p95 of ``vrops_hostsystem_cpu_contention_percentage`` over the member
    nodes).  Missing hosts score as contention-free.
    """

    name = "ContentionWeigher"

    def __init__(self, scores: Mapping[str, float], multiplier: float = 2.0) -> None:
        super().__init__(multiplier)
        self.scores = scores

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        return -float(self.scores.get(host.host_id, 0.0))


class LifetimeAffinityWeigher(Weigher):
    """Prefers hosts whose churn class matches the VM's predicted lifetime.

    Hosts advertise their dominant residency via ``metadata["churn_class"]``
    ("short" or "long"); the request predicts its own via the
    ``expected_lifetime_s`` scheduler hint.  Mixing short-lived VMs into
    long-lived hosts strands capacity when they exit; this weigher keeps
    the populations separate.
    """

    name = "LifetimeAffinityWeigher"

    #: Lifetimes below this count as short-lived (1 day).
    SHORT_THRESHOLD_S = 86_400.0

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        hint = spec.scheduler_hints.get("expected_lifetime_s")
        host_class = host.metadata.get("churn_class")
        if hint is None or host_class not in ("short", "long"):
            return 0.0
        vm_class = "short" if float(hint) < self.SHORT_THRESHOLD_S else "long"
        return 1.0 if vm_class == host_class else -1.0


class ContentionAwareScheduler(FilterScheduler):
    """FilterScheduler with historic-contention weighting.

    Rides on the base pipeline (index, short-circuiting, caching) by
    overriding only the :meth:`_weighers_for` hook.
    """

    def __init__(
        self,
        region: Region,
        placement: PlacementService,
        contention_scores: Mapping[str, float],
        contention_multiplier: float = 2.0,
        config: SchedulerConfig | None = None,
        **kwargs,
    ) -> None:
        super().__init__(region, placement, config, **kwargs)
        self.contention_scores = contention_scores
        self.contention_multiplier = contention_multiplier
        self._contention_weigher = ContentionWeigher(
            contention_scores, contention_multiplier
        )

    def _weighers_for(self, spec: RequestSpec) -> list[Weigher]:
        return [*super()._weighers_for(spec), self._contention_weigher]


class LifetimeAwareScheduler(FilterScheduler):
    """FilterScheduler with lifetime-affinity weighting.

    ``churn_classes`` maps host_id to "short" or "long"; unmapped hosts are
    neutral.  Requests carry their prediction in the
    ``expected_lifetime_s`` scheduler hint.  Candidate states are decorated
    via the :meth:`_prepare_states` hook (the stamp is idempotent, so it is
    safe on the long-lived states the index caches).
    """

    def __init__(
        self,
        region: Region,
        placement: PlacementService,
        churn_classes: Mapping[str, str],
        affinity_multiplier: float = 1.5,
        config: SchedulerConfig | None = None,
        **kwargs,
    ) -> None:
        super().__init__(region, placement, config, **kwargs)
        self.churn_classes = churn_classes
        self.affinity_multiplier = affinity_multiplier
        self._lifetime_weigher = LifetimeAffinityWeigher(affinity_multiplier)

    def _prepare_states(self, states: list[HostState]) -> list[HostState]:
        for state in states:
            churn = self.churn_classes.get(state.host_id)
            if churn:
                state.metadata["churn_class"] = churn
        return states

    def host_states(self) -> list[HostState]:
        return self._prepare_states(super().host_states())

    def _weighers_for(self, spec: RequestSpec) -> list[Weigher]:
        return [*super()._weighers_for(spec), self._lifetime_weigher]


class HolisticNodeScheduler:
    """One-layer scheduler assigning VMs directly to individual nodes.

    Candidates are nodes, not building blocks, so spread/pack decisions see
    intra-BB state that the two-layer Nova→DRS split hides.  Placement
    claims still book against the node's building block provider, keeping
    the Nova-visible accounting consistent.
    """

    def __init__(
        self,
        region: Region,
        placement: PlacementService,
        config: SchedulerConfig | None = None,
        filters: list[Filter] | None = None,
        weighers: list[Weigher] | None = None,
    ) -> None:
        if config is not None:
            filters = list(config.filters) if config.filters is not None else filters
            weighers = (
                list(config.weighers) if config.weighers is not None else weighers
            )
        self.region = region
        self.placement = placement
        self.filters = filters if filters is not None else default_filters()
        self._fixed_weighers = weighers
        self.stats = {key: 0 for key in SCHEDULER_STAT_KEYS}

    def stats_snapshot(self) -> dict[str, int]:
        """Canonical counter snapshot (shared stats() API)."""
        return normalize_stats(self.stats, SCHEDULER_STAT_KEYS)

    def node_states(self) -> list[HostState]:
        """Per-node candidate states (free capacity under the BB policy)."""
        states = []
        for bb in self.region.iter_building_blocks():
            for node in bb.iter_nodes():
                free = node.free(bb.overcommit)
                allocatable = bb.overcommit.allocatable(node.physical)
                states.append(
                    HostState(
                        host_id=node.node_id,
                        az=node.az,
                        aggregate_class=bb.aggregate_class,
                        policy=bb.policy,
                        free_vcpus=free.vcpus,
                        free_ram_mb=free.memory_mb,
                        free_disk_gb=free.disk_gb,
                        total_vcpus=allocatable.vcpus,
                        total_ram_mb=allocatable.memory_mb,
                        total_disk_gb=allocatable.disk_gb,
                        num_instances=node.vm_count,
                        tenants=frozenset(vm.tenant for vm in node.vms.values()),
                        enabled=not node.maintenance,
                        metadata={"bb_id": bb.bb_id},
                    )
                )
        return states

    def schedule(self, spec: RequestSpec) -> SchedulingResult:
        """Pick a node, claim against its BB provider, return the result.

        The winning node id is in ``SchedulingResult.host_id``; the backing
        building block is recorded in ``filtered_counts['bb']`` via the
        node's metadata (callers needing it should use
        :meth:`node_building_block`).
        """
        self.stats["requests"] += 1
        hosts = self.node_states()
        counts: dict[str, int] = {"initial": len(hosts)}
        for flt in self.filters:
            hosts = flt.filter_all(hosts, spec)
            counts[flt.name] = len(hosts)
        if not hosts:
            self.stats["failed"] += 1
            raise NoValidHost(f"no valid node for {spec.vm_id}")
        weighers = self._fixed_weighers or weighers_for_flavor(spec.flavor)
        ranked = WeigherPipeline(weighers).rank(hosts, spec)
        best, score = ranked[0]
        bb_id = best.metadata["bb_id"]
        self.placement.claim(spec.vm_id, bb_id, spec.requested())
        self.stats["placed"] += 1
        return SchedulingResult(
            vm_id=spec.vm_id,
            host_id=best.host_id,
            score=score,
            attempts=1,
            alternates=[h.host_id for h, _ in ranked[1:4]],
            filtered_counts=counts,
        )

    def node_building_block(self, node_id: str) -> str:
        """The building block id owning ``node_id``."""
        return self.region.find_node(node_id).building_block
