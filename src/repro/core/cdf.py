"""Cumulative distribution helpers (Fig 14)."""

from __future__ import annotations

import numpy as np

from repro.core.dataset import SAPCloudDataset


def cdf_points(values: np.ndarray | list[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fractions)."""
    arr = np.sort(np.asarray(values, dtype=float))
    if len(arr) == 0:
        return np.asarray([]), np.asarray([])
    fractions = np.arange(1, len(arr) + 1) / len(arr)
    return arr, fractions


def cdf_at(values: np.ndarray | list[float], threshold: float) -> float:
    """Fraction of values at or below ``threshold``."""
    arr = np.asarray(values, dtype=float)
    if len(arr) == 0:
        raise ValueError("cdf of empty sample")
    return float(np.mean(arr <= threshold))


def utilization_cdf(
    dataset: SAPCloudDataset, resource: str = "cpu"
) -> tuple[np.ndarray, np.ndarray]:
    """Fig 14a/14b: CDF of average per-VM utilisation ratio.

    Returns the (ratio, cumulative fraction) series the paper plots.
    """
    column = {"cpu": "cpu_avg_ratio", "memory": "mem_avg_ratio"}.get(resource)
    if column is None:
        raise ValueError("resource must be 'cpu' or 'memory'")
    return cdf_points(np.asarray(dataset.vms[column], dtype=float))
