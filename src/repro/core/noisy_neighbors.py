"""Noisy-neighbour analysis: who suffers from the contention of §5.1.

§3.2 calls the distribution of workloads competing for shared resources an
open problem.  Under proportional-share scheduling every co-resident vCPU
is throttled by the same factor, so a node's contention series *is* its
residents' performance-degradation series: ``delivered / demanded = 1 −
contention``.  This module turns that into per-VM exposure — how much of a
VM's lifetime was spent degraded, and by how much — identifying the
victims contention-aware placement would have protected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import SAPCloudDataset
from repro.frame import Frame

CONTENTION_METRIC = "vrops_hostsystem_cpu_contention_percentage"


@dataclass(frozen=True)
class VictimExposure:
    """One VM's exposure to host CPU contention."""

    vm_id: str
    node_id: str
    #: Fraction of the VM's in-window samples with contention above the
    #: degradation threshold.
    exposed_share: float
    #: Mean contention % over the exposed samples.
    mean_contention_when_exposed: float
    #: Worst single-sample contention % the VM lived through.
    peak_contention: float


def node_degradation_windows(
    dataset: SAPCloudDataset, threshold_pct: float = 10.0
) -> dict[str, np.ndarray]:
    """Per contended node: boolean mask of samples above ``threshold_pct``.

    Only nodes that ever exceed the threshold are returned; the paper's
    strict 10% threshold for critical workloads is the default.
    """
    out: dict[str, np.ndarray] = {}
    for labels, series in dataset.store.select(CONTENTION_METRIC):
        if len(series) == 0:
            continue
        mask = series.values > threshold_pct
        if mask.any():
            out[labels["hostsystem"]] = mask
    return out


def victim_exposures(
    dataset: SAPCloudDataset, threshold_pct: float = 10.0
) -> list[VictimExposure]:
    """Exposure records for every VM resident on a contended node.

    A VM counts samples only while alive; exposure is relative to its own
    in-window residency, so short-lived VMs on hot nodes rank correctly.
    """
    exposures: list[VictimExposure] = []
    contended = node_degradation_windows(dataset, threshold_pct)
    if not contended:
        return exposures
    series_by_node = {
        labels["hostsystem"]: series
        for labels, series in dataset.store.select(CONTENTION_METRIC)
    }
    vms = dataset.vms
    created = np.asarray(vms["created_at"], dtype=float)
    deleted = np.asarray(
        [np.inf if d != d else float(d) for d in vms["deleted_at"]], dtype=float
    )
    for i in range(len(vms)):
        node_id = str(vms["node_id"][i])
        mask = contended.get(node_id)
        if mask is None:
            continue
        series = series_by_node[node_id]
        alive = (series.timestamps >= created[i]) & (series.timestamps < deleted[i])
        n_alive = int(alive.sum())
        if n_alive == 0:
            continue
        exposed = alive & mask
        n_exposed = int(exposed.sum())
        if n_exposed == 0:
            continue
        exposures.append(
            VictimExposure(
                vm_id=str(vms["vm_id"][i]),
                node_id=node_id,
                exposed_share=n_exposed / n_alive,
                mean_contention_when_exposed=float(
                    np.mean(series.values[exposed])
                ),
                peak_contention=float(np.max(series.values[alive])),
            )
        )
    exposures.sort(key=lambda e: (-e.exposed_share, e.vm_id))
    return exposures


def victim_report(
    dataset: SAPCloudDataset, threshold_pct: float = 10.0
) -> Frame:
    """Victim exposures as a frame (one row per affected VM)."""
    exposures = victim_exposures(dataset, threshold_pct)
    if not exposures:
        return Frame.empty(
            ["vm_id", "node_id", "exposed_share",
             "mean_contention_when_exposed", "peak_contention"]
        )
    return Frame.from_records(
        [
            {
                "vm_id": e.vm_id,
                "node_id": e.node_id,
                "exposed_share": e.exposed_share,
                "mean_contention_when_exposed": e.mean_contention_when_exposed,
                "peak_contention": e.peak_contention,
            }
            for e in exposures
        ]
    )


def blast_radius(dataset: SAPCloudDataset, threshold_pct: float = 10.0) -> dict:
    """Headline numbers: how widespread is noisy-neighbour damage?"""
    exposures = victim_exposures(dataset, threshold_pct)
    affected_nodes = {e.node_id for e in exposures}
    return {
        "affected_vms": len(exposures),
        "affected_vm_share": (
            len(exposures) / dataset.vm_count if dataset.vm_count else 0.0
        ),
        "affected_nodes": len(affected_nodes),
        "worst_exposed_share": (
            max(e.exposed_share for e in exposures) if exposures else 0.0
        ),
    }
