"""Section 7 guidance analytics: overcommit assessment and right-sizing.

The paper's twofold CPU guidance: (1) reconsider the vCPU:pCPU overcommit
factor per workload instead of a fleet-wide constant, and (2) recommend
qualified right-sizing so users shrink requests toward actual usage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.characterization import UTILIZATION_THRESHOLDS
from repro.core.dataset import SAPCloudDataset
from repro.frame import Frame


@dataclass(frozen=True)
class OvercommitAssessment:
    """Workload-derived overcommit recommendation for one scope."""

    scope: str
    current_ratio: float
    #: Demand-supported ratio: allocated vCPUs / peak demanded cores.
    supportable_ratio: float
    #: p95-based variant, more robust against single spikes.
    supportable_ratio_p95: float
    allocated_vcpus: float
    physical_cores: float
    peak_demand_cores: float

    @property
    def headroom(self) -> float:
        """supportable / current; >1 means the ratio could be raised."""
        if self.current_ratio <= 0:
            return 0.0
        return self.supportable_ratio / self.current_ratio


def assess_overcommit(
    dataset: SAPCloudDataset, bb_id: str | None = None
) -> OvercommitAssessment:
    """Derive a workload-based CPU overcommit factor (§7).

    The supportable ratio answers: given observed peak CPU demand, how many
    vCPUs could each physical core safely back?  It is computed as
    ``allocated_vcpus / physical_cores × (physical_capacity / peak_demand)``
    over the selected scope.
    """
    nodes = dataset.nodes_in(bb_id=bb_id)
    if len(nodes) == 0:
        raise ValueError("no nodes in scope")
    node_ids = {str(n) for n in nodes["node_id"]}
    physical_cores = float(np.sum(np.asarray(nodes["cores"], dtype=float)))

    vm_mask = np.asarray([str(n) in node_ids for n in dataset.vms["node_id"]])
    allocated_vcpus = float(
        np.sum(np.asarray(dataset.vms["vcpus"], dtype=float)[vm_mask])
    )

    demand_peak = 0.0
    demand_p95_sum = 0.0
    metric = "vrops_hostsystem_cpu_core_utilization_percentage"
    cores_by_node = {
        str(n): float(c) for n, c in zip(nodes["node_id"], nodes["cores"])
    }
    for labels, series in dataset.store.select(metric):
        node_id = labels.get("hostsystem", "")
        if node_id not in node_ids or len(series) == 0:
            continue
        cores = cores_by_node[node_id]
        demand_peak += series.max() / 100.0 * cores
        demand_p95_sum += series.percentile(95) / 100.0 * cores
    if demand_peak <= 0:
        raise ValueError("no CPU telemetry in scope")

    current_ratio = allocated_vcpus / physical_cores if physical_cores > 0 else 0.0
    supportable = allocated_vcpus / demand_peak
    supportable_p95 = allocated_vcpus / demand_p95_sum if demand_p95_sum > 0 else supportable
    return OvercommitAssessment(
        scope=bb_id or "region",
        current_ratio=current_ratio,
        supportable_ratio=supportable,
        supportable_ratio_p95=supportable_p95,
        allocated_vcpus=allocated_vcpus,
        physical_cores=physical_cores,
        peak_demand_cores=demand_peak,
    )


@dataclass(frozen=True)
class RightsizingRecommendation:
    """One VM's right-sizing proposal."""

    vm_id: str
    flavor: str
    resource: str  # "cpu" or "memory"
    current: float  # current allocation (vCPUs or GiB)
    recommended: float
    avg_utilization: float
    saving_fraction: float


def rightsizing_recommendations(
    dataset: SAPCloudDataset,
    target_utilization: float = 0.75,
    min_saving: float = 0.25,
) -> list[RightsizingRecommendation]:
    """Qualified right-sizing: shrink underutilised allocations (§7).

    Proposes a new size so average utilisation would land on
    ``target_utilization`` (the middle of the paper's optimal band), but
    only when the saving is at least ``min_saving`` of the allocation and
    the VM is currently classified underutilised.
    """
    if not 0.0 < target_utilization <= 1.0:
        raise ValueError("target_utilization must be within (0, 1]")
    low, _high = UTILIZATION_THRESHOLDS
    out: list[RightsizingRecommendation] = []
    vm_ids = dataset.vms["vm_id"]
    flavors = dataset.vms["flavor"]
    for resource, ratio_col, size_col, quantum in (
        ("cpu", "cpu_avg_ratio", "vcpus", 1.0),
        ("memory", "mem_avg_ratio", "ram_gib", 1.0),
    ):
        ratios = np.asarray(dataset.vms[ratio_col], dtype=float)
        sizes = np.asarray(dataset.vms[size_col], dtype=float)
        for i in range(len(ratios)):
            if ratios[i] >= low:
                continue
            needed = sizes[i] * ratios[i] / target_utilization
            recommended = max(quantum, float(np.ceil(needed / quantum) * quantum))
            saving = (sizes[i] - recommended) / sizes[i] if sizes[i] > 0 else 0.0
            if saving < min_saving:
                continue
            out.append(
                RightsizingRecommendation(
                    vm_id=str(vm_ids[i]),
                    flavor=str(flavors[i]),
                    resource=resource,
                    current=float(sizes[i]),
                    recommended=recommended,
                    avg_utilization=float(ratios[i]),
                    saving_fraction=float(saving),
                )
            )
    out.sort(key=lambda r: -r.saving_fraction)
    return out


def rightsizing_summary(dataset: SAPCloudDataset) -> Frame:
    """Aggregate right-sizing potential per resource."""
    recs = rightsizing_recommendations(dataset)
    records = []
    for resource in ("cpu", "memory"):
        subset = [r for r in recs if r.resource == resource]
        total_current = sum(r.current for r in subset)
        total_recommended = sum(r.recommended for r in subset)
        records.append(
            {
                "resource": resource,
                "vms_affected": len(subset),
                "current_total": total_current,
                "recommended_total": total_recommended,
                "reclaimable_fraction": (
                    (total_current - total_recommended) / total_current
                    if total_current > 0
                    else 0.0
                ),
            }
        )
    return Frame.from_records(records)
