"""The dataset facade: everything the public SAP trace contains, in one object.

A :class:`SAPCloudDataset` bundles

- ``nodes``: the hypervisor inventory (one row per compute node),
- ``vms``: the VM inventory with flavors, placement, lifecycle timestamps,
  and lifetime-average utilisation ratios,
- ``events``: scheduling-relevant lifecycle events (create / delete /
  migrate / resize),
- ``store``: the metric time series keyed by the Table 4 exporter names,
- ``meta``: observation window and provenance.

CSV round-trip (:meth:`to_csv` / :meth:`from_csv`) mirrors the Zenodo
archive's "anonymized telemetry data in CSV format" (Appendix B).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.frame import Frame, read_csv, write_csv
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import TimeSeries

#: Observation window length of the study (§4): 30 days.
OBSERVATION_DAYS = 30


@dataclass
class SAPCloudDataset:
    """One regional deployment's observation-window dataset."""

    nodes: Frame
    vms: Frame
    events: Frame
    store: MetricStore
    meta: dict = field(default_factory=dict)

    # -- descriptive properties -------------------------------------------------

    @property
    def window_start(self) -> float:
        return float(self.meta.get("window_start", 0.0))

    @property
    def window_end(self) -> float:
        return float(
            self.meta.get(
                "window_end", self.window_start + OBSERVATION_DAYS * 86_400
            )
        )

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def vm_count(self) -> int:
        return len(self.vms)

    def building_blocks(self) -> list[str]:
        """Distinct building block ids, sorted."""
        return [str(b) for b in self.nodes.unique("bb_id")]

    def datacenters(self) -> list[str]:
        return [str(d) for d in self.nodes.unique("dc_id")]

    def nodes_in(self, bb_id: str | None = None, dc_id: str | None = None) -> Frame:
        """Node rows restricted to one BB and/or DC."""
        out = self.nodes
        if bb_id is not None:
            out = out.filter(np.asarray([str(v) == bb_id for v in out["bb_id"]]))
        if dc_id is not None:
            out = out.filter(np.asarray([str(v) == dc_id for v in out["dc_id"]]))
        return out

    def node_series(self, metric: str, node_id: str) -> TimeSeries:
        """One node's series for a ``vrops_hostsystem_*`` metric."""
        for labels, series in self.store.select(metric, {"hostsystem": node_id}):
            return series
        return TimeSeries.empty()

    def vms_alive_at(self, t: float) -> Frame:
        """VM rows alive at time ``t``."""
        created = np.asarray(self.vms["created_at"], dtype=float)
        deleted = np.asarray(
            [np.inf if d is None or d != d else float(d) for d in self.vms["deleted_at"]],
            dtype=float,
        )
        return self.vms.filter((created <= t) & (deleted > t))

    def summary(self) -> dict:
        """Headline numbers in the style of the paper's abstract."""
        return {
            "nodes": self.node_count,
            "vms": self.vm_count,
            "building_blocks": len(self.building_blocks()),
            "datacenters": len(self.datacenters()),
            "window_days": (self.window_end - self.window_start) / 86_400,
            "metrics": self.store.metrics(),
            "samples": self.store.sample_count(),
        }

    # -- persistence ---------------------------------------------------------------

    def to_csv(self, directory: str | Path) -> None:
        """Write the dataset as a directory of CSV files + meta.json."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        write_csv(self.nodes, directory / "nodes.csv")
        write_csv(self.vms, directory / "vms.csv")
        write_csv(self.events, directory / "events.csv")
        (directory / "meta.json").write_text(json.dumps(self.meta, indent=2))
        # Long-format telemetry: one file per metric to keep files readable.
        for metric in self.store.metrics():
            records: dict[str, list] = {
                "labels": [],
                "timestamp": [],
                "value": [],
            }
            for labels, series in self.store.select(metric):
                label_text = ";".join(f"{k}={v}" for k, v in sorted(labels.items()))
                records["labels"].extend([label_text] * len(series))
                records["timestamp"].extend(series.timestamps.tolist())
                records["value"].extend(series.values.tolist())
            write_csv(Frame(records), directory / f"metric_{metric}.csv")

    @classmethod
    def from_csv(cls, directory: str | Path) -> "SAPCloudDataset":
        """Load a dataset previously written by :meth:`to_csv`."""
        directory = Path(directory)
        nodes = read_csv(directory / "nodes.csv")
        vms = read_csv(directory / "vms.csv")
        events = read_csv(directory / "events.csv")
        meta = json.loads((directory / "meta.json").read_text())
        store = MetricStore()
        for path in sorted(directory.glob("metric_*.csv")):
            metric = path.stem[len("metric_") :]
            table = read_csv(path)
            if len(table) == 0:
                continue
            label_col = table["labels"]
            ts_col = np.asarray(table["timestamp"], dtype=float)
            val_col = np.asarray(table["value"], dtype=float)
            # Group rows per label set, then bulk-append per series.
            by_label: dict[str, list[int]] = {}
            for i, text in enumerate(label_col):
                by_label.setdefault(str(text), []).append(i)
            for text, rows in by_label.items():
                labels = dict(
                    part.split("=", 1) for part in text.split(";") if "=" in part
                )
                idx = np.asarray(rows, dtype=int)
                order = np.argsort(ts_col[idx])
                store.append_series(
                    metric, labels, TimeSeries(ts_col[idx][order], val_col[idx][order])
                )
        return cls(nodes=nodes, vms=vms, events=events, store=store, meta=meta)
