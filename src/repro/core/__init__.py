"""The paper's contribution as a library.

:class:`~repro.core.dataset.SAPCloudDataset` is the central artifact — the
(synthetic, calibrated) equivalent of the public Zenodo dataset: topology,
VM inventory, lifecycle events, and the full Table 4 metric telemetry.  The
sibling modules implement every analysis of Section 5 (heatmaps, contention,
utilisation CDFs, classifications, lifetimes) and the Section 7 guidance
analytics (overcommit assessment, right-sizing, imbalance scoring,
contention- and lifetime-aware placement).
"""

from repro.core.dataset import SAPCloudDataset
from repro.core.characterization import (
    UTILIZATION_THRESHOLDS,
    classify_utilization,
    lifetime_by_flavor,
    utilization_breakdown,
    vm_size_tables,
)
from repro.core.contention import (
    ContentionSummary,
    contention_daily_stats,
    contention_threshold_report,
    top_ready_time_nodes,
)
from repro.core.heatmaps import HeatmapResult, free_resource_heatmap
from repro.core.cdf import cdf_points, utilization_cdf
from repro.core.imbalance import (
    bb_imbalance_report,
    fragmentation_score,
    intra_bb_spread,
)
from repro.core.guidance import (
    OvercommitAssessment,
    RightsizingRecommendation,
    assess_overcommit,
    rightsizing_recommendations,
)
from repro.core.advanced_placement import (
    ContentionAwareScheduler,
    HolisticNodeScheduler,
    LifetimeAwareScheduler,
)
from repro.core.clustering import ClusteringResult, cluster_workloads
from repro.core.energy import EnergyReport, PowerModel, fleet_energy
from repro.core.lifecycle import (
    LifecycleSummary,
    daily_event_counts,
    lifecycle_summary,
    population_trajectory,
)
from repro.core.noisy_neighbors import (
    VictimExposure,
    blast_radius,
    victim_exposures,
    victim_report,
)
from repro.core.oversubscription import (
    MultiplexingGain,
    multiplexing_report,
    vm_multiplexing_gain,
)
from repro.core.temporal import (
    NodeTemporalProfile,
    static_node_share,
    temporal_profiles,
    temporal_summary,
)

__all__ = [
    "SAPCloudDataset",
    "UTILIZATION_THRESHOLDS",
    "classify_utilization",
    "utilization_breakdown",
    "vm_size_tables",
    "lifetime_by_flavor",
    "ContentionSummary",
    "contention_daily_stats",
    "top_ready_time_nodes",
    "contention_threshold_report",
    "HeatmapResult",
    "free_resource_heatmap",
    "cdf_points",
    "utilization_cdf",
    "intra_bb_spread",
    "bb_imbalance_report",
    "fragmentation_score",
    "OvercommitAssessment",
    "assess_overcommit",
    "RightsizingRecommendation",
    "rightsizing_recommendations",
    "ContentionAwareScheduler",
    "LifetimeAwareScheduler",
    "HolisticNodeScheduler",
    "ClusteringResult",
    "cluster_workloads",
    "PowerModel",
    "EnergyReport",
    "fleet_energy",
    "LifecycleSummary",
    "lifecycle_summary",
    "daily_event_counts",
    "population_trajectory",
    "MultiplexingGain",
    "vm_multiplexing_gain",
    "multiplexing_report",
    "VictimExposure",
    "victim_exposures",
    "victim_report",
    "blast_radius",
    "NodeTemporalProfile",
    "temporal_profiles",
    "temporal_summary",
    "static_node_share",
]
