"""Temporal structure of node utilisation (§5.1, §7).

The paper's first guidance point rests on a temporal observation: "the
resource utilization over most compute nodes is relatively static within
the considered time frame", with a minority fluctuating or trending.  This
module quantifies that: per-node variability classification
(static / trending / fluctuating), lag-autocorrelation, and detection of
daily periodicity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import SAPCloudDataset
from repro.frame import Frame
from repro.telemetry.timeseries import SECONDS_PER_DAY, TimeSeries

CPU_METRIC = "vrops_hostsystem_cpu_core_utilization_percentage"


@dataclass(frozen=True)
class NodeTemporalProfile:
    """Temporal classification of one node's utilisation series."""

    node_id: str
    mean_pct: float
    std_pct: float
    #: Linear trend in percentage points per day.
    trend_pp_per_day: float
    #: Lag-1-day autocorrelation of the daily means.
    daily_autocorrelation: float
    classification: str  # "static" | "trending" | "fluctuating"


def classify_node_series(
    node_id: str,
    series: TimeSeries,
    static_std_pp: float = 5.0,
    trend_pp_per_day: float = 0.5,
) -> NodeTemporalProfile:
    """Classify one node's utilisation series.

    A node is *static* when its daily means barely move (std below
    ``static_std_pp``), *trending* when a sustained drift exceeds
    ``trend_pp_per_day``, and *fluctuating* otherwise.
    """
    if len(series) < 2:
        raise ValueError("need at least two samples")
    daily = series.daily("mean")
    values = daily.values
    days = (daily.timestamps - daily.timestamps[0]) / SECONDS_PER_DAY
    if len(values) >= 2 and np.std(days) > 0:
        trend = float(np.polyfit(days, values, deg=1)[0])
    else:
        trend = 0.0
    std = float(np.std(values))
    if abs(trend) >= trend_pp_per_day and abs(trend) * len(values) > std:
        classification = "trending"
    elif std <= static_std_pp:
        classification = "static"
    else:
        classification = "fluctuating"
    return NodeTemporalProfile(
        node_id=node_id,
        mean_pct=float(np.mean(values)),
        std_pct=std,
        trend_pp_per_day=trend,
        daily_autocorrelation=_lag_autocorrelation(values, lag=1),
        classification=classification,
    )


def temporal_profiles(dataset: SAPCloudDataset) -> list[NodeTemporalProfile]:
    """Temporal classification for every node in the dataset."""
    profiles = []
    for labels, series in dataset.store.select(CPU_METRIC):
        if len(series) < 2:
            continue
        profiles.append(classify_node_series(labels["hostsystem"], series))
    return profiles


def static_node_share(dataset: SAPCloudDataset) -> float:
    """Fraction of nodes classified static — §7 expects this to dominate."""
    profiles = temporal_profiles(dataset)
    if not profiles:
        raise ValueError("dataset has no CPU telemetry")
    return sum(1 for p in profiles if p.classification == "static") / len(profiles)


def temporal_summary(dataset: SAPCloudDataset) -> Frame:
    """Counts and mean variability per temporal class."""
    profiles = temporal_profiles(dataset)
    records = []
    for name in ("static", "trending", "fluctuating"):
        members = [p for p in profiles if p.classification == name]
        records.append(
            {
                "classification": name,
                "node_count": len(members),
                "share": len(members) / len(profiles) if profiles else 0.0,
                "mean_std_pp": (
                    float(np.mean([p.std_pct for p in members])) if members else 0.0
                ),
            }
        )
    return Frame.from_records(records)


def diurnal_strength(series: TimeSeries) -> float:
    """How strongly a series follows a daily cycle, in [0, 1].

    Ratio of between-hour-of-day variance to total variance of the
    samples: 1.0 means the hour of day fully determines the value.
    """
    if len(series) < 48:
        raise ValueError("need at least two days of samples")
    hours = ((series.timestamps % SECONDS_PER_DAY) // 3600).astype(int)
    total_var = float(np.var(series.values))
    if total_var == 0:
        return 0.0
    hour_means = np.asarray(
        [series.values[hours == h].mean() for h in np.unique(hours)]
    )
    weights = np.asarray([(hours == h).sum() for h in np.unique(hours)])
    grand = float(np.average(hour_means, weights=weights))
    between = float(
        np.average((hour_means - grand) ** 2, weights=weights)
    )
    return min(1.0, between / total_var)


def _lag_autocorrelation(values: np.ndarray, lag: int) -> float:
    if len(values) <= lag + 1:
        return 0.0
    a = values[:-lag] - values[:-lag].mean()
    b = values[lag:] - values[lag:].mean()
    denom = np.sqrt(np.sum(a**2) * np.sum(b**2))
    if denom == 0:
        return 0.0
    return float(np.sum(a * b) / denom)
