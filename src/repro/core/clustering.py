"""Workload clustering: data-driven characterisation of the VM population.

§7: "this underlines the importance of workload characterization as a
prerequisite for selecting appropriate bin-packing strategies."  This
module clusters VMs by behavioural features (average CPU/memory
utilisation, size, log-lifetime) with a small, dependency-free k-means,
then labels clusters against the paper's archetypes (idle overprovisioned,
memory-resident database, compute-active, churn).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import SAPCloudDataset

FEATURES = ("cpu_avg_ratio", "mem_avg_ratio", "log_vcpus", "log_lifetime")


@dataclass(frozen=True)
class WorkloadCluster:
    """One behavioural cluster with denormalised centroid values."""

    cluster_id: int
    size: int
    cpu_avg: float
    mem_avg: float
    vcpus_geo_mean: float
    lifetime_days_geo_mean: float
    label: str


@dataclass(frozen=True)
class ClusteringResult:
    """k-means output: assignments plus summarised clusters."""

    clusters: tuple[WorkloadCluster, ...]
    assignments: np.ndarray  # cluster id per VM row
    inertia: float

    def cluster_of(self, index: int) -> WorkloadCluster:
        cluster_id = int(self.assignments[index])
        return next(c for c in self.clusters if c.cluster_id == cluster_id)


def _feature_matrix(dataset: SAPCloudDataset) -> np.ndarray:
    cpu = np.asarray(dataset.vms["cpu_avg_ratio"], dtype=float)
    mem = np.asarray(dataset.vms["mem_avg_ratio"], dtype=float)
    vcpus = np.asarray(dataset.vms["vcpus"], dtype=float)
    lifetimes = np.asarray(dataset.vms["lifetime_seconds"], dtype=float)
    return np.column_stack(
        [cpu, mem, np.log(np.maximum(vcpus, 1.0)), np.log(np.maximum(lifetimes, 60.0))]
    )


def kmeans(
    features: np.ndarray, k: int, rng: np.random.Generator, iterations: int = 50
) -> tuple[np.ndarray, np.ndarray, float]:
    """Plain Lloyd's k-means on standardised features.

    Returns (centroids in standardised space, assignments, inertia).
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if len(features) < k:
        raise ValueError("need at least k points")
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0] = 1.0
    normed = (features - mean) / std
    # k-means++-style spread-out initialisation (greedy farthest point).
    centroids = [normed[int(rng.integers(0, len(normed)))]]
    for _ in range(1, k):
        distances = np.min(
            [np.sum((normed - c) ** 2, axis=1) for c in centroids], axis=0
        )
        centroids.append(normed[int(np.argmax(distances))])
    centers = np.asarray(centroids)
    assignments = np.zeros(len(normed), dtype=int)
    for _ in range(iterations):
        distances = np.stack(
            [np.sum((normed - c) ** 2, axis=1) for c in centers]
        )
        new_assignments = np.argmin(distances, axis=0)
        if np.array_equal(new_assignments, assignments) and _ > 0:
            break
        assignments = new_assignments
        for j in range(k):
            members = normed[assignments == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    inertia = float(
        np.sum((normed - centers[assignments]) ** 2)
    )
    return centers * std + mean, assignments, inertia


def _label_cluster(cpu: float, mem: float, lifetime_days: float) -> str:
    if mem > 0.80 and lifetime_days > 30:
        return "memory-resident database"
    if cpu > 0.55:
        return "compute-active"
    if lifetime_days < 7:
        return "short-lived churn"
    return "idle overprovisioned"


def cluster_workloads(
    dataset: SAPCloudDataset, k: int = 4, seed: int = 0
) -> ClusteringResult:
    """Cluster the VM population into ``k`` behavioural groups."""
    features = _feature_matrix(dataset)
    rng = np.random.default_rng(seed)
    centers, assignments, inertia = kmeans(features, k, rng)
    clusters = []
    for j in range(k):
        members = assignments == j
        size = int(members.sum())
        if size == 0:
            continue
        centroid = features[members].mean(axis=0)
        lifetime_days = float(np.exp(centroid[3]) / 86_400.0)
        clusters.append(
            WorkloadCluster(
                cluster_id=j,
                size=size,
                cpu_avg=float(centroid[0]),
                mem_avg=float(centroid[1]),
                vcpus_geo_mean=float(np.exp(centroid[2])),
                lifetime_days_geo_mean=lifetime_days,
                label=_label_cluster(centroid[0], centroid[1], lifetime_days),
            )
        )
    clusters.sort(key=lambda c: -c.size)
    return ClusteringResult(
        clusters=tuple(clusters), assignments=assignments, inertia=inertia
    )
