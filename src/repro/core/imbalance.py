"""Imbalance and fragmentation scoring (§5.1, §7).

Quantifies the two fragmentation phenomena the paper attributes to the
two-layer scheduling split: imbalance *within* building blocks (DRS scope,
Fig 7 — intra-BB node maxima up to 99% CPU while siblings idle) and
imbalance *across* building blocks (requiring manual rebalancing, Fig 6).
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import SAPCloudDataset
from repro.core.heatmaps import free_resource_heatmap
from repro.frame import Frame


def intra_bb_spread(
    dataset: SAPCloudDataset, bb_id: str, resource: str = "cpu"
) -> dict[str, float]:
    """Utilisation spread across one BB's nodes.

    Returns min/max/mean of per-node mean *used* percent plus the spread.
    Fig 7's finding: intra-BB maxima up to 99% used next to mostly-free
    siblings.
    """
    heatmap = free_resource_heatmap(dataset, resource=resource, bb_id=bb_id)
    free_means = heatmap.column_means()
    used = 100.0 - free_means[np.isfinite(free_means)]
    if len(used) == 0:
        raise ValueError(f"no data for building block {bb_id}")
    return {
        "min_used_pct": float(used.min()),
        "max_used_pct": float(used.max()),
        "mean_used_pct": float(used.mean()),
        "spread_pct": float(used.max() - used.min()),
        "node_count": float(len(used)),
    }


def bb_imbalance_report(
    dataset: SAPCloudDataset, resource: str = "cpu", dc_id: str | None = None
) -> Frame:
    """Per-BB imbalance table: mean used %, intra-BB spread, node count."""
    records = []
    for bb_id in dataset.building_blocks():
        if dc_id is not None:
            bb_nodes = dataset.nodes_in(bb_id=bb_id)
            if len(bb_nodes) == 0 or str(bb_nodes["dc_id"][0]) != dc_id:
                continue
        try:
            stats = intra_bb_spread(dataset, bb_id, resource=resource)
        except ValueError:
            continue
        records.append(
            {
                "bb_id": bb_id,
                "mean_used_pct": stats["mean_used_pct"],
                "max_used_pct": stats["max_used_pct"],
                "spread_pct": stats["spread_pct"],
                "node_count": int(stats["node_count"]),
            }
        )
    if not records:
        return Frame.empty(
            ["bb_id", "mean_used_pct", "max_used_pct", "spread_pct", "node_count"]
        )
    return Frame.from_records(records).sort("spread_pct", reverse=True)


def inter_bb_imbalance(
    dataset: SAPCloudDataset, resource: str = "cpu", dc_id: str | None = None
) -> float:
    """Standard deviation of per-BB mean used % (cross-BB fragmentation)."""
    report = bb_imbalance_report(dataset, resource=resource, dc_id=dc_id)
    if len(report) < 2:
        return 0.0
    return float(np.std(np.asarray(report["mean_used_pct"], dtype=float)))


def fragmentation_score(
    dataset: SAPCloudDataset, resource: str = "cpu", dc_id: str | None = None
) -> float:
    """Stranded-capacity score in [0, 1].

    Fraction of total free capacity that sits on nodes which are
    individually too empty to matter (>50% free) while other nodes in the
    same scope run hot (>80% used) — free capacity that exists but cannot
    be used without migrations.  0 means no hot node or no stranded free
    capacity.
    """
    heatmap = free_resource_heatmap(dataset, resource=resource, dc_id=dc_id)
    free_means = heatmap.column_means()
    free_means = free_means[np.isfinite(free_means)]
    if len(free_means) == 0:
        return 0.0
    hot = free_means < 20.0
    cold_free = free_means[free_means > 50.0]
    if not hot.any() or len(cold_free) == 0:
        return 0.0
    total_free = free_means.sum()
    return float(cold_free.sum() / total_free) if total_free > 0 else 0.0
