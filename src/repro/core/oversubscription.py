"""Statistical multiplexing: the quantitative case for overcommit (§7).

Overcommit is safe when VMs' demand peaks do not coincide: the peak of the
aggregate is far below the aggregate of the peaks.  This module measures
that gap — the *multiplexing gain* — per scope, the same temporal-pattern
argument Coach [27] exploits for oversubscription, which the paper cites
as motivation for collecting its lifetime/utilisation data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import SAPCloudDataset
from repro.frame import Frame

VM_CPU_METRIC = "vrops_virtualmachine_cpu_usage_ratio"
HOST_CPU_METRIC = "vrops_hostsystem_cpu_core_utilization_percentage"


@dataclass(frozen=True)
class MultiplexingGain:
    """Peak-coincidence statistics for one scope."""

    scope: str
    series_count: int
    sum_of_peaks: float
    peak_of_sum: float

    @property
    def gain(self) -> float:
        """sum-of-peaks / peak-of-sum; 1.0 = fully synchronous demand.

        A gain of 2.0 means sizing for individual peaks reserves twice the
        capacity the aggregate ever needs — the headroom a demand-based
        overcommit factor can reclaim.
        """
        if self.peak_of_sum <= 0:
            return 1.0
        return self.sum_of_peaks / self.peak_of_sum


def vm_multiplexing_gain(dataset: SAPCloudDataset, node_id: str | None = None) -> MultiplexingGain:
    """Multiplexing gain over the stored VM-level CPU series.

    Restricted to one node when ``node_id`` is given; otherwise across all
    VMs with stored series (the generator keeps ``vm_series_limit`` of
    them).
    """
    matcher = {"hostsystem": node_id} if node_id else None
    all_series = [s for _, s in dataset.store.select(VM_CPU_METRIC, matcher)]
    all_series = [s for s in all_series if len(s) > 0]
    if not all_series:
        raise ValueError("no VM-level CPU series in scope")
    sum_of_peaks = float(sum(s.max() for s in all_series))
    # Align on the union grid; missing samples count as zero demand.
    union = np.unique(np.concatenate([s.timestamps for s in all_series]))
    total = np.zeros(len(union))
    for s in all_series:
        idx = np.searchsorted(union, s.timestamps)
        total[idx] += s.values
    return MultiplexingGain(
        scope=node_id or "all-vm-series",
        series_count=len(all_series),
        sum_of_peaks=sum_of_peaks,
        peak_of_sum=float(total.max()),
    )


def node_multiplexing_gain(
    dataset: SAPCloudDataset, bb_id: str
) -> MultiplexingGain:
    """Multiplexing gain across the nodes of one building block."""
    node_rows = dataset.nodes_in(bb_id=bb_id)
    if len(node_rows) == 0:
        raise ValueError(f"unknown building block: {bb_id}")
    series = []
    for node_id in node_rows["node_id"]:
        s = dataset.node_series(HOST_CPU_METRIC, str(node_id))
        if len(s):
            series.append(s)
    if not series:
        raise ValueError(f"no node telemetry for {bb_id}")
    sum_of_peaks = float(sum(s.max() for s in series))
    union = np.unique(np.concatenate([s.timestamps for s in series]))
    total = np.zeros(len(union))
    for s in series:
        idx = np.searchsorted(union, s.timestamps)
        total[idx] += s.values
    return MultiplexingGain(
        scope=bb_id,
        series_count=len(series),
        sum_of_peaks=sum_of_peaks,
        peak_of_sum=float(total.max()),
    )


def multiplexing_report(dataset: SAPCloudDataset) -> Frame:
    """Per-BB multiplexing gains, largest first."""
    records = []
    for bb_id in dataset.building_blocks():
        try:
            gain = node_multiplexing_gain(dataset, bb_id)
        except ValueError:
            continue
        records.append(
            {
                "bb_id": bb_id,
                "node_count": gain.series_count,
                "sum_of_peaks": gain.sum_of_peaks,
                "peak_of_sum": gain.peak_of_sum,
                "gain": gain.gain,
            }
        )
    if not records:
        return Frame.empty(
            ["bb_id", "node_count", "sum_of_peaks", "peak_of_sum", "gain"]
        )
    return Frame.from_records(records).sort("gain", reverse=True)
