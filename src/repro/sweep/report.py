"""SweepReport: the order-independent merge of shard results.

The report is a pure function of the *set* of cell records plus the set
of shard failures: :func:`merge_records` sorts both by cell id, and the
records themselves carry no timing or host data, so ``--workers 1`` and
``--workers N`` produce byte-identical artifacts (the ``sweep`` verify
check holds this line).  Wall-clock and throughput live in
:class:`SweepRunStats`, which is printed but never merged into the
report bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.reporting import ReportBase

#: Quantiles reported per metric across the seeds of one group.
_QUANTILES = (("p50", 0.5), ("p90", 0.9))


@dataclass(frozen=True)
class ShardFailure:
    """One cell that did not produce a record (after any retry)."""

    cell_id: str
    reason: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "cell_id": self.cell_id,
            "reason": self.reason,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class SweepRunStats:
    """How one engine run went — deliberately *outside* the report bytes."""

    workers: int
    cpu_count: int
    wall_s: float
    cells_total: int
    cells_run: int
    cells_resumed: int
    cells_failed: int
    retries: int

    @property
    def scenarios_per_hour(self) -> float:
        if self.wall_s <= 0 or self.cells_run == 0:
            return 0.0
        return self.cells_run / self.wall_s * 3600.0

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "wall_s": round(self.wall_s, 3),
            "cells_total": self.cells_total,
            "cells_run": self.cells_run,
            "cells_resumed": self.cells_resumed,
            "cells_failed": self.cells_failed,
            "retries": self.retries,
            "scenarios_per_hour": round(self.scenarios_per_hour, 3),
        }

    def render(self) -> str:
        return (
            f"ran {self.cells_run}/{self.cells_total} cells "
            f"({self.cells_resumed} resumed, {self.cells_failed} failed, "
            f"{self.retries} retries) with {self.workers} worker(s) on "
            f"{self.cpu_count} CPU(s) in {self.wall_s:.2f}s "
            f"= {self.scenarios_per_hour:.1f} scenarios/hour"
        )


def _flatten_numeric(doc: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a stats dict as dotted names (bools excluded)."""
    out: dict[str, float] = {}
    for key in sorted(doc):
        value = doc[key]
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[name] = value
        elif isinstance(value, dict):
            out.update(_flatten_numeric(value, f"{name}."))
    return out


def _quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already sorted list."""
    n = len(sorted_values)
    if n == 1:
        return float(sorted_values[0])
    pos = q * (n - 1)
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= n:
        return float(sorted_values[-1])
    return sorted_values[lo] * (1.0 - frac) + sorted_values[lo + 1] * frac


def _round(value: float) -> float:
    return round(float(value), 6)


def aggregate_cells(cells: list[dict]) -> dict:
    """Per-group quantiles across seeds for every numeric stat."""
    groups: dict[str, list[dict]] = {}
    for record in cells:
        groups.setdefault(record["group"], []).append(record)
    out: dict = {}
    for group in sorted(groups):
        records = groups[group]
        metrics: dict[str, list[float]] = {}
        for record in records:
            for name, value in _flatten_numeric(record["stats"]).items():
                metrics.setdefault(name, []).append(float(value))
        summary: dict = {}
        for name in sorted(metrics):
            values = sorted(metrics[name])
            entry = {"min": _round(values[0]), "max": _round(values[-1])}
            for label, q in _QUANTILES:
                entry[label] = _round(_quantile(values, q))
            summary[name] = entry
        out[group] = {
            "seeds": sorted(r["seed"] for r in records),
            "cells": len(records),
            "metrics": summary,
        }
    return out


@dataclass
class SweepReport(ReportBase):
    """Everything one sweep produced, in canonical order."""

    grid_sha256: str
    cells: list[dict] = field(default_factory=list)
    failures: list[ShardFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "format": 1,
            "grid_sha256": self.grid_sha256,
            "ok": self.ok,
            "cells_total": len(self.cells) + len(self.failures),
            "cells": self.cells,
            "failures": [f.to_dict() for f in self.failures],
            "aggregates": aggregate_cells(self.cells),
        }

    def render(self) -> str:
        lines = [
            f"sweep {self.grid_sha256[:12]}: {len(self.cells)} cells ok, "
            f"{len(self.failures)} failed"
        ]
        for group, agg in aggregate_cells(self.cells).items():
            metrics = agg["metrics"]
            headline = []
            for name in ("created", "rejected", "invariant_violations"):
                if name in metrics:
                    headline.append(f"{name} p50={metrics[name]['p50']:g}")
            lines.append(
                f"  {group}: seeds {agg['seeds']}"
                + (f" — {', '.join(headline)}" if headline else "")
            )
        if self.failures:
            lines.append("failed shards:")
            lines.extend(
                f"  {f.cell_id}: {f.reason} (attempts={f.attempts})"
                for f in self.failures
            )
        lines.append(f"result: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def merge_records(
    grid_sha256: str,
    records: list[dict],
    failures: list[ShardFailure],
) -> SweepReport:
    """Deterministic merge: sort by cell id, independent of arrival order."""
    return SweepReport(
        grid_sha256=grid_sha256,
        cells=sorted(records, key=lambda r: r["cell_id"]),
        failures=sorted(failures, key=lambda f: f.cell_id),
    )
