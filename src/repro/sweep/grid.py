"""Sweep grids: a base ScenarioSpec fanned out over axes × seeds.

A grid config is a JSON object with three optional keys::

    {
      "base":  { ... ScenarioSpec shape ... },
      "seeds": [1, 2, 3],
      "axes":  {
        "arrival_rate_per_hour": [6.0, 12.0],
        "faults": [null, {"seed": 24, "host_failure_rate_per_day": 2.0}]
      }
    }

Every combination of axis values (axes iterated in sorted name order,
values in file order) crossed with every seed yields one
:class:`SweepCell`.  Axis values overlay the base dict; when both the
base value and the override are objects they shallow-merge, so an axis
can vary one fault knob while the base pins the rest.  Each cell's spec
goes through :meth:`ScenarioSpec.from_dict`, so a typo anywhere in the
grid fails fast with the key named.

The grid's identity is :attr:`SweepGrid.sha256` — a hash over every
(cell id, spec hash) pair.  The sweep journal stores it so a resumed
run refuses a journal written for a different grid.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass

from repro.config import ScenarioSpec

#: Top-level grid config keys.
_GRID_KEYS = ("axes", "base", "seeds")


def _fmt_value(value: object) -> str:
    """Deterministic single-token rendering of an axis value for cell ids."""
    if isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SweepCell:
    """One runnable point of the grid."""

    #: Unique id, e.g. ``arrival_rate_per_hour=6.0/seed=1``; merge order.
    cell_id: str
    #: The cell id minus the seed axis — the aggregation group.
    group: str
    spec: ScenarioSpec
    #: The axis assignments that produced this cell (no seed).
    overrides: dict

    def sha256(self) -> str:
        return self.spec.sha256()


@dataclass(frozen=True)
class SweepGrid:
    """A validated, fully expanded grid."""

    cells: tuple[SweepCell, ...]
    sha256: str

    @property
    def groups(self) -> list[str]:
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.group, None)
        return list(seen)


def _merge_override(base: dict, key: str, value: object) -> None:
    """Overlay one axis assignment; objects shallow-merge, else replace."""
    if (
        isinstance(value, dict)
        and isinstance(base.get(key), dict)
    ):
        merged = dict(base[key])
        merged.update(value)
        base[key] = merged
    elif value is None:
        base.pop(key, None)
    else:
        base[key] = value


def grid_from_dict(data: object) -> SweepGrid:
    """Expand a grid config into cells; ``ValueError`` on any problem."""
    if not isinstance(data, dict):
        raise ValueError(
            f"grid config must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - set(_GRID_KEYS))
    if unknown:
        raise ValueError(
            f"unknown grid config keys: {', '.join(unknown)} "
            f"(known: {', '.join(_GRID_KEYS)})"
        )
    base = data.get("base", {})
    if not isinstance(base, dict):
        raise ValueError("grid 'base' must be a JSON object")
    axes = data.get("axes", {})
    if not isinstance(axes, dict):
        raise ValueError("grid 'axes' must be a JSON object")
    for name, values in axes.items():
        if not isinstance(values, list) or not values and values != [None]:
            raise ValueError(f"axis {name!r} must be a non-empty JSON array")
        if not values:
            raise ValueError(f"axis {name!r} must be a non-empty JSON array")
    seeds = data.get("seeds", None)
    if seeds is None:
        seeds = [base.get("seed", ScenarioSpec().seed)]
    if (
        not isinstance(seeds, list)
        or not seeds
        or not all(isinstance(s, int) and not isinstance(s, bool) for s in seeds)
    ):
        raise ValueError("grid 'seeds' must be a non-empty array of integers")
    if len(set(seeds)) != len(seeds):
        raise ValueError("grid 'seeds' contains duplicates")

    axis_names = sorted(axes)
    cells: list[SweepCell] = []
    seen_ids: set[str] = set()
    for combo in itertools.product(*(axes[name] for name in axis_names)):
        overrides = dict(zip(axis_names, combo))
        group = "/".join(
            f"{name}={_fmt_value(value)}" for name, value in overrides.items()
        )
        for seed in seeds:
            doc = dict(base)
            for name, value in overrides.items():
                _merge_override(doc, name, value)
            doc["seed"] = seed
            cell_id = f"{group}/seed={seed}" if group else f"seed={seed}"
            if cell_id in seen_ids:
                raise ValueError(f"duplicate grid cell: {cell_id}")
            seen_ids.add(cell_id)
            try:
                spec = ScenarioSpec.from_dict(doc)
            except ValueError as exc:
                raise ValueError(f"grid cell {cell_id}: {exc}") from exc
            cells.append(
                SweepCell(
                    cell_id=cell_id,
                    group=group or "(base)",
                    spec=spec,
                    overrides=overrides,
                )
            )
    if not cells:
        raise ValueError("grid expands to zero cells")
    identity = json.dumps(
        [[cell.cell_id, cell.sha256()] for cell in cells],
        sort_keys=True,
        separators=(",", ":"),
    )
    return SweepGrid(
        cells=tuple(cells),
        sha256=hashlib.sha256(identity.encode("utf-8")).hexdigest(),
    )
