"""The sweep engine: shard a grid across worker processes, merge, resume.

Execution model — **process per shard**:

- up to ``workers`` child processes run concurrently, each executing one
  grid cell via :func:`repro.sweep.worker.shard_main` and shipping its
  cell record back over a pipe;
- the parent enforces a per-shard wall-clock **deadline** (defaulting to
  the same 300 s ceiling the test suite's pytest-timeout uses): an
  overdue shard is terminated, then killed;
- a shard that *crashes or hangs* is retried once, then recorded as a
  structured :class:`~repro.sweep.report.ShardFailure`; a shard that
  fails with a Python exception is deterministic and recorded
  immediately without retry;
- every completed cell record is journaled (CRC32-framed WAL from
  :mod:`repro.recovery.journal`) the moment it arrives, so an
  interrupted sweep resumed with the same ``--journal`` path re-runs
  only the missing cells.  The journal's header record pins the grid
  hash — resuming against an edited grid is refused, not guessed at.

Determinism: cell records are pure functions of their specs, the merge
sorts by cell id, and all timing lives in
:class:`~repro.sweep.report.SweepRunStats` — so the report bytes are
identical for ``--workers 1`` and ``--workers N``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.recovery.journal import (
    JournalCorruption,
    JournalWriter,
    read_journal,
    truncate_torn_tail,
)
from repro.sweep.grid import SweepCell, SweepGrid
from repro.sweep.report import (
    ShardFailure,
    SweepReport,
    SweepRunStats,
    merge_records,
)
from repro.sweep.worker import run_cell, shard_main

#: Per-shard wall-clock ceiling; mirrors the suite-wide pytest timeout.
DEFAULT_DEADLINE_S = 300.0

#: Journal record types.
_HEADER_TYPE = "sweep-header"
_CELL_TYPE = "cell"

#: Idle poll interval while shards run.
_POLL_S = 0.02


class SweepResumeError(ValueError):
    """The journal at ``--journal`` cannot seed this sweep."""


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


@dataclass
class _ActiveShard:
    cell: SweepCell
    proc: object
    conn: object
    deadline: float


def _spawn(ctx, cell: SweepCell, deadline_s: float) -> _ActiveShard:
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=shard_main,
        args=(
            child_conn,
            cell.cell_id,
            cell.group,
            cell.spec.to_dict(),
            cell.overrides,
        ),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    return _ActiveShard(
        cell=cell,
        proc=proc,
        conn=parent_conn,
        deadline=time.monotonic() + deadline_s,
    )


def _kill(shard: _ActiveShard) -> None:
    if shard.proc.is_alive():
        shard.proc.terminate()
        shard.proc.join(5.0)
        if shard.proc.is_alive():
            shard.proc.kill()
            shard.proc.join(5.0)
    try:
        shard.conn.close()
    except OSError:
        pass


def _poll(shard: _ActiveShard, deadline_s: float):
    """One look at a running shard.

    Returns ``None`` while it is still working, else one of
    ``("ok", record)``, ``("error", msg)``, ``("crashed", msg)``,
    ``("deadline", msg)``.
    """
    if shard.conn.poll():
        try:
            kind, payload = shard.conn.recv()
        except (EOFError, OSError):
            kind, payload = None, None
        if kind is not None:
            shard.proc.join()
            shard.conn.close()
            return kind, payload
        # Pipe closed without a message: the child died mid-cell.
        _kill(shard)
        return "crashed", f"worker exited with code {shard.proc.exitcode}"
    if not shard.proc.is_alive():
        shard.proc.join()
        exitcode = shard.proc.exitcode
        try:
            shard.conn.close()
        except OSError:
            pass
        return "crashed", f"worker exited with code {exitcode}"
    if time.monotonic() >= shard.deadline:
        _kill(shard)
        return "deadline", f"shard deadline exceeded ({deadline_s:g}s)"
    return None


def load_resume(
    journal_path: str | Path, grid: SweepGrid
) -> dict[str, dict]:
    """Completed cell records a prior run journaled for this exact grid.

    Returns ``{}`` when the journal is missing or empty.  A torn tail
    (crash during the last append) is truncated and the intact prefix
    used; interior corruption or a different grid hash is refused.
    """
    path = Path(journal_path)
    if not path.exists() or path.stat().st_size == 0:
        return {}
    try:
        scan = read_journal(path, label="sweep-journal")
    except JournalCorruption as exc:
        raise SweepResumeError(
            f"sweep journal {path} is corrupt: {exc}"
        ) from exc
    if scan.torn:
        truncate_torn_tail(path, scan, label="sweep-journal")
    if not scan.records:
        return {}
    _, header = scan.records[0]
    if header.get("type") != _HEADER_TYPE:
        raise SweepResumeError(
            f"sweep journal {path} has no sweep header record"
        )
    if header.get("grid_sha256") != grid.sha256:
        raise SweepResumeError(
            f"sweep journal {path} was written for grid "
            f"{str(header.get('grid_sha256'))[:12]}..., not this grid "
            f"({grid.sha256[:12]}...); use a fresh --journal path"
        )
    valid_shas = {cell.cell_id: cell.sha256() for cell in grid.cells}
    completed: dict[str, dict] = {}
    for _, record in scan.records[1:]:
        if record.get("type") != _CELL_TYPE:
            continue
        cell = record.get("record", {})
        cell_id = cell.get("cell_id")
        if valid_shas.get(cell_id) == cell.get("spec_sha256"):
            completed[cell_id] = cell
    return completed


def run_sweep(
    grid: SweepGrid,
    *,
    workers: int = 1,
    deadline_s: float = DEFAULT_DEADLINE_S,
    journal_path: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> tuple[SweepReport, SweepRunStats]:
    """Execute every cell of ``grid``; returns (report, run stats).

    Never raises on shard failure — failed shards become structured
    entries in the report.  Raises :class:`SweepResumeError` when
    ``journal_path`` holds an incompatible journal.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if deadline_s <= 0:
        raise ValueError("deadline_s must be positive")

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    completed: dict[str, dict] = {}
    journal: JournalWriter | None = None
    if journal_path is not None:
        completed = load_resume(journal_path, grid)
        journal = JournalWriter(journal_path, label="sweep-journal")
        if not completed and journal.path.stat().st_size <= 8:
            journal.append(
                {"type": _HEADER_TYPE, "format": 1, "grid_sha256": grid.sha256}
            )
    resumed = len(completed)
    if resumed:
        say(f"resuming: {resumed}/{len(grid.cells)} cells already journaled")

    t0 = time.monotonic()
    ctx = _mp_context()
    pending: deque[SweepCell] = deque(
        cell for cell in grid.cells if cell.cell_id not in completed
    )
    attempts: dict[str, int] = {}
    active: dict[str, _ActiveShard] = {}
    failures: dict[str, ShardFailure] = {}
    retries = 0
    try:
        while pending or active:
            while pending and len(active) < workers:
                cell = pending.popleft()
                attempts[cell.cell_id] = attempts.get(cell.cell_id, 0) + 1
                active[cell.cell_id] = _spawn(ctx, cell, deadline_s)
                say(
                    f"start {cell.cell_id}"
                    + (
                        f" (attempt {attempts[cell.cell_id]})"
                        if attempts[cell.cell_id] > 1
                        else ""
                    )
                )
            settled = False
            for cell_id, shard in list(active.items()):
                outcome = _poll(shard, deadline_s)
                if outcome is None:
                    continue
                settled = True
                del active[cell_id]
                kind, payload = outcome
                if kind == "ok":
                    completed[cell_id] = payload
                    if journal is not None:
                        journal.append({"type": _CELL_TYPE, "record": payload})
                    say(f"done  {cell_id}")
                elif kind == "error":
                    # Deterministic in-cell exception: retry would repeat it.
                    failures[cell_id] = ShardFailure(
                        cell_id=cell_id,
                        reason=payload,
                        attempts=attempts[cell_id],
                    )
                    say(f"fail  {cell_id}: {payload}")
                else:  # crashed | deadline — nondeterministic, retry once
                    if attempts[cell_id] < 2:
                        retries += 1
                        pending.appendleft(shard.cell)
                        say(f"retry {cell_id}: {payload}")
                    else:
                        failures[cell_id] = ShardFailure(
                            cell_id=cell_id,
                            reason=payload,
                            attempts=attempts[cell_id],
                        )
                        say(f"fail  {cell_id}: {payload}")
            if not settled and active:
                time.sleep(_POLL_S)
    finally:
        for shard in active.values():
            _kill(shard)
        if journal is not None:
            journal.close()
    wall = time.monotonic() - t0

    report = merge_records(
        grid.sha256, list(completed.values()), list(failures.values())
    )
    stats = SweepRunStats(
        workers=workers,
        cpu_count=os.cpu_count() or 1,
        wall_s=wall,
        cells_total=len(grid.cells),
        cells_run=len(completed) - resumed,
        cells_resumed=resumed,
        cells_failed=len(failures),
        retries=retries,
    )
    return report, stats


def run_sweep_inline(grid: SweepGrid) -> SweepReport:
    """Sequential in-process reference execution of a grid.

    The determinism oracle: the ``sweep`` verify check compares the
    multiprocess engine's canonical bytes against this — any divergence
    means shard isolation leaked into the results.
    """
    records = [
        run_cell(cell.cell_id, cell.group, cell.spec.to_dict(), cell.overrides)
        for cell in grid.cells
    ]
    return merge_records(grid.sha256, records, [])
