"""Sharded scenario-sweep engine: grid fan-out across worker processes.

Public surface::

    from repro.sweep import (
        grid_from_dict, run_sweep, run_sweep_inline, SweepReport,
    )

See :mod:`repro.sweep.engine` for the execution model and the
byte-determinism contract (``--workers 1`` ≡ ``--workers N``).
"""

from repro.sweep.engine import (
    DEFAULT_DEADLINE_S,
    SweepResumeError,
    load_resume,
    run_sweep,
    run_sweep_inline,
)
from repro.sweep.grid import SweepCell, SweepGrid, grid_from_dict
from repro.sweep.report import (
    ShardFailure,
    SweepReport,
    SweepRunStats,
    aggregate_cells,
    merge_records,
)

__all__ = [
    "DEFAULT_DEADLINE_S",
    "ShardFailure",
    "SweepCell",
    "SweepGrid",
    "SweepReport",
    "SweepResumeError",
    "SweepRunStats",
    "aggregate_cells",
    "grid_from_dict",
    "load_resume",
    "merge_records",
    "run_sweep",
    "run_sweep_inline",
]
