"""The per-shard worker: runs one grid cell in a child process.

Everything here must be importable at module level so the engine works
under the ``spawn`` start method as well as ``fork``.  A shard's result
is a *cell record* — a pure function of the cell's spec, containing no
wall-clock time, host identity, or worker-count dependence — which is
what makes the merged sweep report byte-identical at any ``--workers``.

Test hook: setting ``REPRO_SWEEP_TEST_FAULT`` in the environment makes
the matching cell misbehave before it runs any simulation work::

    crash|<cell_id>                  exit hard (code 3), every attempt
    crash-once|<cell_id>|<sentinel>  exit hard once, succeed on retry
    hang|<cell_id>                   sleep until the shard deadline kills us
    error|<cell_id>                  raise (a deterministic in-cell failure)

The sweep tests use these to exercise retry, structured failure, and
deadline enforcement without patching the engine.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.config import ScenarioSpec

#: Environment variable carrying an injected worker fault (tests only).
TEST_FAULT_ENV = "REPRO_SWEEP_TEST_FAULT"

#: Exit code of an injected hard crash.
TEST_CRASH_EXIT = 3


def _apply_test_fault(cell_id: str) -> None:
    spec = os.environ.get(TEST_FAULT_ENV)
    if not spec:
        return
    parts = spec.split("|")
    kind = parts[0]
    if len(parts) < 2 or parts[1] != cell_id:
        return
    if kind == "crash":
        os._exit(TEST_CRASH_EXIT)
    if kind == "crash-once" and len(parts) >= 3:
        sentinel = Path(parts[2])
        if not sentinel.exists():
            sentinel.write_text("crashed\n")
            os._exit(TEST_CRASH_EXIT)
    if kind == "error":
        raise RuntimeError(f"injected cell error for {cell_id}")
    if kind == "hang":
        while True:  # pragma: no cover - killed by the shard deadline
            time.sleep(60)


def cell_record(
    cell_id: str, group: str, spec: ScenarioSpec, overrides: dict, result
) -> dict:
    """Deterministic digest of one finished cell.

    Full fault/resilience reports would dwarf the sweep report, so they
    are folded to their canonical-bytes hashes (any nondeterminism in a
    subsystem still flips the sweep bytes) plus headline counters.
    """
    sched = result.scheduler_stats
    stats: dict = {
        "created": result.created,
        "deleted": result.deleted,
        "rejected": result.rejected,
        "resized": result.resized,
        "resize_failed": result.resize_failed,
        "drs_migrations": result.drs_migrations,
        "events_processed": result.events_processed,
        "live_vms": len(result.vms),
        "samples": result.store.sample_count(),
        "scheduler": {k: sched[k] for k in sorted(sched)},
    }
    if result.fault_report is not None:
        stats["fault_report_sha256"] = result.fault_report.sha256()
    if result.resilience_report is not None:
        stats["resilience_report_sha256"] = result.resilience_report.sha256()
        stats["invariant_violations"] = len(result.resilience_report.violations)
    return {
        "cell_id": cell_id,
        "group": group,
        "seed": spec.seed,
        "overrides": overrides,
        "spec_sha256": spec.sha256(),
        "stats": stats,
    }


def run_cell(cell_id: str, group: str, spec_doc: dict, overrides: dict) -> dict:
    """Run one cell to completion and digest it (used in- and out-of-process)."""
    spec = ScenarioSpec.from_dict(spec_doc)
    result = spec.run()
    return cell_record(cell_id, group, spec, overrides, result)


def shard_main(conn, cell_id: str, group: str, spec_doc: dict, overrides: dict) -> None:
    """Child-process entry: run one cell, ship the outcome over ``conn``.

    A Python-level failure is reported as a structured ``("error", msg)``
    message — those are deterministic, so the engine records them without
    retry.  A process that dies without sending anything (crash, kill,
    deadline) is the engine's problem.
    """
    try:
        _apply_test_fault(cell_id)
        record = run_cell(cell_id, group, spec_doc, overrides)
        conn.send(("ok", record))
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
