"""Spread placement over a fixed bin set (the Nova default behaviour).

Unlike bin packing, spread assumes the fleet is already powered on and
balances load across all of it — the "default strategy aims to load-balance
general-purpose workloads" of §3.2.  Each item goes to the currently
least-filled bin that fits.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.binpacking import Bin, Item, PackingResult
from repro.infrastructure.capacity import Capacity


def spread_pack(
    items: Sequence[Item],
    bin_count: int,
    bin_capacity: Capacity,
) -> PackingResult:
    """Place items onto ``bin_count`` pre-opened bins, least-filled first."""
    if bin_count < 1:
        raise ValueError("bin_count must be positive")
    bins = [
        Bin(bin_id=f"bin-{i:04d}", capacity=bin_capacity) for i in range(bin_count)
    ]
    unplaced: list[Item] = []
    for item in items:
        candidates = [b for b in bins if b.fits(item)]
        if not candidates:
            unplaced.append(item)
            continue
        target = min(candidates, key=lambda b: (b.fill_fraction(), b.bin_id))
        target.add(item)
    return PackingResult(bins=bins, unplaced=unplaced)
