"""Multi-dimensional bin-packing heuristics.

Items and bins are resource vectors (vCPU, memory, disk).  All heuristics
share one engine, :func:`pack`, parameterised by a bin-selection rule:

- **First-Fit** — lowest-index open bin that fits;
- **Best-Fit** — open bin with the least remaining room after placement;
- **Worst-Fit** — open bin with the most remaining room;
- **Next-Fit** — only the most recently opened bin;
- the ``*-decreasing`` variants sort items by dominant share first.

"Fit" in multiple dimensions uses the dominant-resource share against the
bin capacity, the standard vector-packing reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.infrastructure.capacity import Capacity


@dataclass(frozen=True)
class Item:
    """One object to pack (a VM request)."""

    item_id: str
    size: Capacity

    def dominant_share(self, bin_capacity: Capacity) -> float:
        return self.size.dominant_share(bin_capacity)


@dataclass
class Bin:
    """One open bin (a host)."""

    bin_id: str
    capacity: Capacity
    items: list[Item] = field(default_factory=list)
    used: Capacity = field(default_factory=Capacity)

    def fits(self, item: Item) -> bool:
        return (self.used + item.size).fits_within(self.capacity)

    def add(self, item: Item) -> None:
        if not self.fits(item):
            raise ValueError(f"item {item.item_id} does not fit in bin {self.bin_id}")
        self.items.append(item)
        self.used = self.used + item.size

    def remaining(self) -> Capacity:
        return self.capacity - self.used

    def fill_fraction(self) -> float:
        """Dominant-share fill level of this bin."""
        return self.used.dominant_share(self.capacity)


@dataclass
class PackingResult:
    """Outcome of a packing run."""

    bins: list[Bin]
    unplaced: list[Item]

    @property
    def bins_used(self) -> int:
        return sum(1 for b in self.bins if b.items)

    def assignment(self) -> dict[str, str]:
        """item_id -> bin_id for every placed item."""
        return {
            item.item_id: b.bin_id for b in self.bins for item in b.items
        }


#: Selection rule: (open bins that fit, item) -> chosen bin or None.
SelectionRule = Callable[[list[Bin], Item], Bin | None]


def _first_fit_rule(candidates: list[Bin], item: Item) -> Bin | None:
    return candidates[0] if candidates else None


def _fill_after(b: Bin, item: Item) -> float:
    """Dominant-share fill level the bin would reach with ``item`` added.

    Scoring fullness-after-placement (rather than leftover) keeps unused
    resource dimensions from dominating the comparison.
    """
    return (b.used + item.size).dominant_share(b.capacity)


def _best_fit_rule(candidates: list[Bin], item: Item) -> Bin | None:
    if not candidates:
        return None
    # Fullest-after-placement; ties break to the lowest bin id.
    return min(candidates, key=lambda b: (-_fill_after(b, item), b.bin_id))


def _worst_fit_rule(candidates: list[Bin], item: Item) -> Bin | None:
    if not candidates:
        return None
    # Emptiest-after-placement; ties break to the lowest bin id.
    return min(candidates, key=lambda b: (_fill_after(b, item), b.bin_id))


def _next_fit_rule(candidates: list[Bin], item: Item) -> Bin | None:
    # The engine passes open bins in creation order; next-fit only ever
    # considers the newest one.
    return candidates[-1] if candidates and candidates[-1].fits(item) else None


_RULES: dict[str, SelectionRule] = {
    "first_fit": _first_fit_rule,
    "best_fit": _best_fit_rule,
    "worst_fit": _worst_fit_rule,
    "next_fit": _next_fit_rule,
}


def pack(
    items: Sequence[Item],
    bin_capacity: Capacity,
    rule: str = "first_fit",
    decreasing: bool = False,
    max_bins: int | None = None,
) -> PackingResult:
    """Pack ``items`` into uniform bins of ``bin_capacity``.

    Opens a new bin whenever the rule returns no candidate, up to
    ``max_bins`` (unbounded when None); items that cannot be placed at the
    bin cap land in ``unplaced``.  Items larger than one empty bin are
    always unplaced.
    """
    try:
        select = _RULES[rule]
    except KeyError:
        raise ValueError(f"unknown rule {rule!r}; known: {sorted(_RULES)}") from None
    ordered = list(items)
    if decreasing:
        ordered.sort(
            key=lambda it: (-it.dominant_share(bin_capacity), it.item_id)
        )
    bins: list[Bin] = []
    unplaced: list[Item] = []
    for item in ordered:
        if not item.size.fits_within(bin_capacity):
            unplaced.append(item)
            continue
        if rule == "next_fit":
            chosen = select(bins, item)
        else:
            candidates = [b for b in bins if b.fits(item)]
            chosen = select(candidates, item)
        if chosen is None:
            if max_bins is not None and len(bins) >= max_bins:
                unplaced.append(item)
                continue
            chosen = Bin(bin_id=f"bin-{len(bins):04d}", capacity=bin_capacity)
            bins.append(chosen)
        chosen.add(item)
    return PackingResult(bins=bins, unplaced=unplaced)


def first_fit(items: Sequence[Item], bin_capacity: Capacity, **kw) -> PackingResult:
    """First-Fit: place in the earliest-opened bin that fits."""
    return pack(items, bin_capacity, rule="first_fit", **kw)


def best_fit(items: Sequence[Item], bin_capacity: Capacity, **kw) -> PackingResult:
    """Best-Fit: place in the bin left tightest after placement."""
    return pack(items, bin_capacity, rule="best_fit", **kw)


def worst_fit(items: Sequence[Item], bin_capacity: Capacity, **kw) -> PackingResult:
    """Worst-Fit: place in the bin left emptiest after placement."""
    return pack(items, bin_capacity, rule="worst_fit", **kw)


def next_fit(items: Sequence[Item], bin_capacity: Capacity, **kw) -> PackingResult:
    """Next-Fit: place in the newest bin or open a new one."""
    return pack(items, bin_capacity, rule="next_fit", **kw)


def first_fit_decreasing(
    items: Sequence[Item], bin_capacity: Capacity, **kw
) -> PackingResult:
    """FFD: First-Fit over items sorted largest-first."""
    return pack(items, bin_capacity, rule="first_fit", decreasing=True, **kw)


def best_fit_decreasing(
    items: Sequence[Item], bin_capacity: Capacity, **kw
) -> PackingResult:
    """BFD: Best-Fit over items sorted largest-first."""
    return pack(items, bin_capacity, rule="best_fit", decreasing=True, **kw)
