"""Packing quality metrics.

The optimisation criteria of §3.2: maximise placeable VMs, minimise
fragmentation, optimise utilisation.  These metrics quantify all three for
any :class:`~repro.baselines.binpacking.PackingResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.binpacking import PackingResult


@dataclass(frozen=True)
class PackingMetrics:
    """Quality summary of one packing."""

    bins_used: int
    items_placed: int
    items_unplaced: int
    #: Mean dominant-share fill of non-empty bins (1.0 = perfectly full).
    mean_fill: float
    #: Std-dev of fill across non-empty bins (imbalance).
    fill_std: float
    #: Fragmentation: free capacity stranded in partially-filled bins as a
    #: fraction of total capacity of used bins.
    fragmentation: float
    #: Lower bound on bins needed (total demand / bin size, dominant share).
    lower_bound: int

    @property
    def efficiency(self) -> float:
        """lower_bound / bins_used; 1.0 means provably optimal bin count."""
        if self.bins_used == 0:
            return 1.0
        return self.lower_bound / self.bins_used


def evaluate_packing(result: PackingResult) -> PackingMetrics:
    """Compute :class:`PackingMetrics` for a packing result."""
    used_bins = [b for b in result.bins if b.items]
    fills = np.asarray([b.fill_fraction() for b in used_bins], dtype=float)
    items_placed = sum(len(b.items) for b in used_bins)

    # Per-dimension demand totals to derive the classic size lower bound.
    lower_bound = 0
    if used_bins:
        capacity = used_bins[0].capacity
        totals = {"vcpus": 0.0, "memory_mb": 0.0, "disk_gb": 0.0}
        for b in used_bins:
            for item in b.items:
                totals["vcpus"] += item.size.vcpus
                totals["memory_mb"] += item.size.memory_mb
                totals["disk_gb"] += item.size.disk_gb
        bounds = []
        for dim, total in totals.items():
            cap = getattr(capacity, dim)
            if cap > 0:
                bounds.append(int(np.ceil(total / cap)))
        lower_bound = max(bounds) if bounds else 0

    fragmentation = 0.0
    if used_bins:
        stranded = sum(1.0 - b.fill_fraction() for b in used_bins)
        fragmentation = stranded / len(used_bins)

    return PackingMetrics(
        bins_used=len(used_bins),
        items_placed=items_placed,
        items_unplaced=len(result.unplaced),
        mean_fill=float(fills.mean()) if len(fills) else 0.0,
        fill_std=float(fills.std()) if len(fills) else 0.0,
        fragmentation=fragmentation,
        lower_bound=lower_bound,
    )
