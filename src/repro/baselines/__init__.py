"""Classic placement baselines: bin-packing heuristics and spread.

§3.2 discusses First-Fit, Best-Fit, and Worst-Fit as the well-known
low-effort strategies for the NP-hard bin-packing problem behind VM-to-host
assignment.  This package implements them (plus decreasing-order variants
and multi-dimensional vector packing) over abstract bins, with an evaluation
harness measuring bins used, fragmentation, and waste.
"""

from repro.baselines.binpacking import (
    Bin,
    Item,
    PackingResult,
    best_fit,
    best_fit_decreasing,
    first_fit,
    first_fit_decreasing,
    next_fit,
    pack,
    worst_fit,
)
from repro.baselines.spread import spread_pack
from repro.baselines.evaluation import PackingMetrics, evaluate_packing

__all__ = [
    "Item",
    "Bin",
    "PackingResult",
    "first_fit",
    "best_fit",
    "worst_fit",
    "next_fit",
    "first_fit_decreasing",
    "best_fit_decreasing",
    "pack",
    "spread_pack",
    "PackingMetrics",
    "evaluate_packing",
]
