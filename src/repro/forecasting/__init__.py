"""Workload forecasting for proactive scheduling.

§7: "a unified, ideally even proactive, approach may also reduce the
number of required workload migrations."  Proactivity needs demand
forecasts; this package provides exponentially-weighted and
seasonality-aware forecasters over the telemetry time series, plus a
forecast-driven weigher that steers placements away from hosts *about* to
run hot.
"""

from repro.forecasting.models import (
    EwmaForecaster,
    Forecast,
    HoltLinearForecaster,
    SeasonalNaiveForecaster,
    evaluate_forecaster,
)
from repro.forecasting.proactive import ForecastWeigher, forecast_host_load

__all__ = [
    "Forecast",
    "EwmaForecaster",
    "HoltLinearForecaster",
    "SeasonalNaiveForecaster",
    "evaluate_forecaster",
    "ForecastWeigher",
    "forecast_host_load",
]
