"""Time-series forecasters.

Three classic, dependency-free models suited to the dataset's shapes:

- :class:`EwmaForecaster` — exponentially weighted level; the right
  baseline for the paper's "relatively static" node utilisation;
- :class:`HoltLinearForecaster` — level + trend, for the nodes §5.1
  observes with "a consistent increase in CPU demand";
- :class:`SeasonalNaiveForecaster` — repeats the value one season ago, for
  the diurnal/weekly business-hours patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.timeseries import TimeSeries


@dataclass(frozen=True, slots=True)
class Forecast:
    """Point forecasts for the next ``horizon`` steps."""

    timestamps: np.ndarray
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.values)


class EwmaForecaster:
    """Flat forecast at the exponentially weighted moving average."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be within (0, 1]")
        self.alpha = alpha

    def forecast(self, series: TimeSeries, horizon: int) -> Forecast:
        if len(series) == 0:
            raise ValueError("cannot forecast an empty series")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        level = series.values[0]
        for value in series.values[1:]:
            level = self.alpha * value + (1 - self.alpha) * level
        step = _step_of(series)
        ts = series.timestamps[-1] + step * np.arange(1, horizon + 1)
        return Forecast(ts, np.full(horizon, level))


class HoltLinearForecaster:
    """Holt's linear method: exponentially smoothed level and trend."""

    def __init__(self, alpha: float = 0.3, beta: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0 or not 0.0 < beta <= 1.0:
            raise ValueError("alpha and beta must be within (0, 1]")
        self.alpha = alpha
        self.beta = beta

    def forecast(self, series: TimeSeries, horizon: int) -> Forecast:
        if len(series) < 2:
            raise ValueError("Holt's method needs at least two samples")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        level = series.values[0]
        trend = series.values[1] - series.values[0]
        for value in series.values[1:]:
            prev_level = level
            level = self.alpha * value + (1 - self.alpha) * (level + trend)
            trend = self.beta * (level - prev_level) + (1 - self.beta) * trend
        step = _step_of(series)
        steps = np.arange(1, horizon + 1)
        ts = series.timestamps[-1] + step * steps
        return Forecast(ts, level + trend * steps)


class SeasonalNaiveForecaster:
    """Repeat the observation one season ago (daily/weekly periodicity)."""

    def __init__(self, season_seconds: float = 86_400.0) -> None:
        if season_seconds <= 0:
            raise ValueError("season_seconds must be positive")
        self.season_seconds = season_seconds

    def forecast(self, series: TimeSeries, horizon: int) -> Forecast:
        if len(series) == 0:
            raise ValueError("cannot forecast an empty series")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        step = _step_of(series)
        span = series.timestamps[-1] - series.timestamps[0]
        if span < self.season_seconds:
            raise ValueError("series shorter than one season")
        ts = series.timestamps[-1] + step * np.arange(1, horizon + 1)
        values = np.empty(horizon)
        for i, t in enumerate(ts):
            past = series.at_or_before(t - self.season_seconds)
            values[i] = past if past is not None else series.values[-1]
        return Forecast(ts, values)


def evaluate_forecaster(forecaster, series: TimeSeries, horizon: int) -> float:
    """Backtest MAE: forecast the final ``horizon`` points from the rest."""
    if len(series) <= horizon + 1:
        raise ValueError("series too short for this horizon")
    split = len(series) - horizon
    train = TimeSeries(series.timestamps[:split], series.values[:split])
    actual = series.values[split:]
    predicted = forecaster.forecast(train, horizon).values
    return float(np.mean(np.abs(predicted - actual)))


def _step_of(series: TimeSeries) -> float:
    if len(series) < 2:
        return 300.0
    return float(np.median(np.diff(series.timestamps)))
