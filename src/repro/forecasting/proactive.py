"""Forecast-driven proactive placement.

Turns per-host utilisation forecasts into a scheduler weigher: hosts whose
*predicted* peak CPU over the lookahead window is high get penalised, even
if they look fine right now — the proactive behaviour §7 recommends over
Nova's "solely relies on current data".
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.forecasting.models import EwmaForecaster, HoltLinearForecaster
from repro.scheduler.hoststate import HostState
from repro.scheduler.request import RequestSpec
from repro.scheduler.weighers import Weigher
from repro.telemetry.store import MetricStore

CPU_METRIC = "vrops_hostsystem_cpu_core_utilization_percentage"


def forecast_host_load(
    store: MetricStore,
    horizon_steps: int = 8,
    label: str = "building_block",
) -> dict[str, float]:
    """Predicted peak CPU % per host group over the lookahead horizon.

    Aggregates node series per ``label`` value (defaults to building block,
    the Nova placement target), forecasts each node with Holt's method
    (falling back to EWMA for short series), and returns the max predicted
    value per group.
    """
    holt = HoltLinearForecaster()
    ewma = EwmaForecaster()
    peaks: dict[str, float] = {}
    for labels, series in store.select(CPU_METRIC):
        group = labels.get(label)
        if group is None or len(series) == 0:
            continue
        try:
            forecast = holt.forecast(series, horizon_steps)
        except ValueError:
            forecast = ewma.forecast(series, horizon_steps)
        predicted_peak = float(np.clip(forecast.values, 0.0, 100.0).max())
        peaks[group] = max(peaks.get(group, 0.0), predicted_peak)
    return peaks


class ForecastWeigher(Weigher):
    """Penalises hosts by predicted peak CPU utilisation.

    ``predicted_peaks`` maps host_id to a forecast peak percentage, as
    produced by :func:`forecast_host_load`.
    """

    name = "ForecastWeigher"

    def __init__(
        self, predicted_peaks: Mapping[str, float], multiplier: float = 1.5
    ) -> None:
        super().__init__(multiplier)
        self.predicted_peaks = predicted_peaks

    def raw_weight(self, host: HostState, spec: RequestSpec) -> float:
        return -float(self.predicted_peaks.get(host.host_id, 0.0))
