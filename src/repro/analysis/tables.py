"""Builders for Tables 1–5 of the paper."""

from __future__ import annotations

import numpy as np

from repro.core.characterization import vm_size_tables
from repro.core.dataset import SAPCloudDataset
from repro.frame import Frame
from repro.infrastructure.topology import paper_datacenter_table
from repro.telemetry.metrics import metric_table

#: Table 1 of the paper (region-wide averages over the window).
PAPER_TABLE1 = {"small": 28_446, "medium": 14_340, "large": 1_831, "xlarge": 738}
#: Table 2 of the paper.
PAPER_TABLE2 = {"small": 991, "medium": 41_395, "large": 787, "xlarge": 2_184}


def table1_vcpu_classes(dataset: SAPCloudDataset) -> Frame:
    """Table 1: VM classification by vCPU count, with paper reference and
    population shares for shape comparison."""
    table, _ = vm_size_tables(dataset)
    return _with_shares(table, PAPER_TABLE1)


def table2_ram_classes(dataset: SAPCloudDataset) -> Frame:
    """Table 2: VM classification by RAM GiB."""
    _, table = vm_size_tables(dataset)
    return _with_shares(table, PAPER_TABLE2)


def _with_shares(table: Frame, paper: dict[str, int]) -> Frame:
    counts = np.asarray(table["vm_count"], dtype=float)
    total = counts.sum()
    categories = [str(c) for c in table["category"]]
    paper_counts = np.asarray([paper[c] for c in categories], dtype=float)
    paper_total = paper_counts.sum()
    return (
        table.with_column("share", counts / total if total > 0 else counts)
        .with_column("paper_count", paper_counts.astype(int))
        .with_column("paper_share", paper_counts / paper_total)
    )


#: Table 3: the related-work dataset comparison.  Static rows from the
#: paper; the SAP row's measurable fields are recomputed from the dataset.
_TABLE3_STATIC = [
    {
        "dataset": "Google", "cpu": 1, "memory": 1, "network": 0, "storage": 0,
        "gpu": 0, "batch_jobs": 1, "vms": 0, "lifetime": "sec-days",
        "scale": "672,074 jobs", "duration_days": 29, "sampling": "5 min",
        "public": 1,
    },
    {
        "dataset": "Alibaba", "cpu": 1, "memory": 1, "network": 1, "storage": 0,
        "gpu": 1, "batch_jobs": 1, "vms": 0, "lifetime": "min-days",
        "scale": "~4k nodes", "duration_days": 8, "sampling": "n/a", "public": 1,
    },
    {
        "dataset": "Philly", "cpu": 1, "memory": 1, "network": 1, "storage": 0,
        "gpu": 1, "batch_jobs": 1, "vms": 0, "lifetime": "min-weeks",
        "scale": "117,325 jobs", "duration_days": 75, "sampling": "1 min",
        "public": 1,
    },
    {
        "dataset": "Atlas", "cpu": 1, "memory": 1, "network": 0, "storage": 0,
        "gpu": 1, "batch_jobs": 1, "vms": 0, "lifetime": "n/a",
        "scale": "96,260 jobs", "duration_days": 1800, "sampling": "1 min",
        "public": 1,
    },
    {
        "dataset": "MIT", "cpu": 1, "memory": 1, "network": 0, "storage": 0,
        "gpu": 1, "batch_jobs": 1, "vms": 0, "lifetime": "min-days",
        "scale": "441-9k nodes", "duration_days": 180, "sampling": "n/a",
        "public": 1,
    },
    {
        "dataset": "Azure", "cpu": 1, "memory": 1, "network": 1, "storage": 1,
        "gpu": 0, "batch_jobs": 0, "vms": 1, "lifetime": "min-weeks",
        "scale": ">1M VMs", "duration_days": 14, "sampling": "5 min", "public": 0,
    },
]


def table3_dataset_comparison(dataset: SAPCloudDataset) -> Frame:
    """Table 3: prior datasets vs the SAP dataset.

    The SAP row is *computed* from the loaded dataset: resource coverage
    from the stored metric names, scale from the inventories, duration from
    the window, lifetime span from the VM records.
    """
    metrics = set(dataset.store.metrics())
    lifetimes = np.asarray(dataset.vms["lifetime_seconds"], dtype=float)
    lifetime_span = "n/a"
    if len(lifetimes):
        lifetime_span = f"{_span_label(lifetimes.min())}-{_span_label(lifetimes.max())}"
    sap_row = {
        "dataset": "SAP (this work)",
        "cpu": int(any("cpu" in m for m in metrics)),
        "memory": int(any("memory" in m for m in metrics)),
        "network": int(any("network" in m for m in metrics)),
        "storage": int(any("diskspace" in m for m in metrics)),
        "gpu": 0,
        "batch_jobs": 0,
        "vms": int(any("virtualmachine" in m for m in metrics)),
        "lifetime": lifetime_span,
        "scale": f"{dataset.node_count} nodes, {dataset.vm_count} VMs",
        "duration_days": int(
            round((dataset.window_end - dataset.window_start) / 86_400)
        ),
        "sampling": f"{int(dataset.meta.get('sampling_seconds', 300))}s",
        "public": 1,
    }
    return Frame.from_records(_TABLE3_STATIC + [sap_row])


def _span_label(seconds: float) -> str:
    if seconds < 3600:
        return "min"
    if seconds < 86_400:
        return "hours"
    if seconds < 30 * 86_400:
        return "days"
    if seconds < 365 * 86_400:
        return "months"
    return "years"


def table4_metric_catalog() -> Frame:
    """Table 4: the metric catalogue (from the telemetry registry)."""
    return Frame.from_records(metric_table())


def table5_datacenters() -> Frame:
    """Table 5: hypervisors and VMs per data center (Appendix D)."""
    return Frame.from_records(paper_datacenter_table())
