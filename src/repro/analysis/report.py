"""Textual experiment report: paper-vs-measured for every figure and table.

:func:`render_experiments_report` runs every analysis against a dataset and
renders a markdown report in the format of EXPERIMENTS.md, so the record of
reproduced shapes regenerates from one call.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import figures, tables
from repro.core.cdf import cdf_at
from repro.core.characterization import (
    lifetime_size_correlation,
    utilization_breakdown,
)
from repro.core.contention import contention_threshold_report, weekday_weekend_effect
from repro.core.dataset import SAPCloudDataset
from repro.frame import Frame


def _frame_to_markdown(frame: Frame, max_rows: int = 12) -> str:
    names = frame.names
    lines = ["| " + " | ".join(names) + " |", "|" + "---|" * len(names)]
    for i in range(min(len(frame), max_rows)):
        row = frame.row(i)
        cells = []
        for name in names:
            value = row[name]
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    if len(frame) > max_rows:
        lines.append(f"| … ({len(frame) - max_rows} more rows) |")
    return "\n".join(lines)


def render_experiments_report(dataset: SAPCloudDataset) -> str:
    """Full paper-vs-measured markdown report for one dataset."""
    parts: list[str] = ["# Experiment report (generated)", ""]
    summary = dataset.summary()
    parts.append(
        f"Dataset: {summary['nodes']} nodes, {summary['vms']} VMs, "
        f"{summary['building_blocks']} building blocks, "
        f"{summary['datacenters']} DCs, {summary['window_days']:.0f} days, "
        f"{summary['samples']:,} samples."
    )
    parts.append("")

    # Figs 5-7: CPU heatmaps.
    fig5 = figures.fig5_dc_cpu_heatmap(dataset)
    parts.append("## Fig 5 — free CPU per node (one DC)")
    parts.append(
        f"Paper: nodes span <20% to >90% free CPU on the same day. "
        f"Measured column-mean free CPU: min {np.nanmin(fig5.column_means()):.1f}%, "
        f"max {np.nanmax(fig5.column_means()):.1f}%, spread {fig5.spread():.1f} pp."
    )
    fig6 = figures.fig6_bb_cpu_heatmap(dataset)
    parts.append("## Fig 6 — free CPU per building block")
    parts.append(
        f"Measured BB-level spread {fig6.spread():.1f} pp across "
        f"{len(fig6.columns)} BBs."
    )
    fig7 = figures.fig7_intra_bb_cpu_heatmap(dataset)
    used_max = 100.0 - np.nanmin(fig7.column_means())
    parts.append("## Fig 7 — free CPU per node within one BB")
    parts.append(
        f"Paper: intra-BB max CPU utilisation up to 99%. Measured max "
        f"node utilisation inside the most imbalanced BB: {used_max:.1f}%."
    )

    # Figs 8-9: ready time and contention.
    fig8 = figures.fig8_top_ready_nodes(dataset)
    peak_s = float(np.max(np.asarray(fig8["ready_ms"], dtype=float))) / 1000.0
    weekday, weekend = weekday_weekend_effect(dataset)
    parts.append("## Fig 8 — top-10 CPU ready time")
    parts.append(
        f"Paper: spikes up to ~220 s, outliers ~30 min, weekday > weekend. "
        f"Measured peak {peak_s:.0f} s; weekday mean {weekday / 1000:.1f} s vs "
        f"weekend mean {weekend / 1000:.1f} s."
    )
    report = contention_threshold_report(dataset)
    parts.append("## Fig 9 — CPU contention aggregate")
    parts.append(
        f"Paper: daily mean & p95 below 5%, node maxima 10–30%, outliers "
        f">40%. Measured: worst daily mean {report['daily_mean_max_pct']:.2f}%, "
        f"overall max {report['overall_max_pct']:.1f}%, "
        f"{report['share_nodes_above_40pct'] * 100:.2f}% of nodes above 40%."
    )

    # Figs 10-13: memory / network / storage heatmaps.
    fig10 = figures.fig10_memory_heatmap(dataset)
    means10 = fig10.column_means()
    parts.append("## Fig 10 — free memory per node")
    parts.append(
        f"Paper: bimodal — nearly-full HANA hosts next to mostly-free ones. "
        f"Measured: {float(np.mean(means10 < 20)) * 100:.0f}% of nodes under "
        f"20% free, {float(np.mean(means10 > 60)) * 100:.0f}% above 60% free."
    )
    fig11 = figures.fig11_network_tx_heatmap(dataset)
    fig12 = figures.fig12_network_rx_heatmap(dataset)
    parts.append("## Figs 11-12 — network TX/RX")
    parts.append(
        f"Paper: load notably below the 200 Gbps NIC capacity. Measured "
        f"min free TX {np.nanmin(fig11.column_means()):.1f}%, "
        f"min free RX {np.nanmin(fig12.column_means()):.1f}%."
    )
    fig13 = figures.fig13_storage_heatmap(dataset)
    means13 = fig13.column_means()
    parts.append("## Fig 13 — free storage per host")
    parts.append(
        f"Paper: 18% of hosts >90% free, 7% using >30%. Measured: "
        f"{float(np.mean(means13 > 90)) * 100:.1f}% of hosts >90% free, "
        f"{float(np.mean(means13 < 70)) * 100:.1f}% using >30%."
    )

    # Fig 14: utilisation CDFs.
    cdfs = figures.fig14_utilization_cdfs(dataset)
    cpu_vals = cdfs["cpu"][0]
    mem_breakdown = utilization_breakdown(dataset, "memory")
    parts.append("## Fig 14 — VM utilisation CDFs")
    parts.append(
        f"Paper: >80% of VMs below 70% CPU; memory ≈38% under / ≈10% optimal "
        f"/ rest above 85%. Measured: {cdf_at(cpu_vals, 0.70) * 100:.1f}% of "
        f"VMs below 70% CPU; memory {mem_breakdown.underutilized * 100:.1f}% "
        f"under, {mem_breakdown.optimal * 100:.1f}% optimal, "
        f"{mem_breakdown.overutilized * 100:.1f}% over."
    )

    # Fig 15: lifetimes.
    fig15 = figures.fig15_lifetime_per_flavor(dataset)
    corr = lifetime_size_correlation(dataset)
    lifetimes = np.asarray(dataset.vms["lifetime_seconds"], dtype=float)
    parts.append("## Fig 15 — VM lifetime per flavor")
    parts.append(
        f"Paper: lifetimes from minutes to years; weak size→lifetime "
        f"relation. Measured: min {lifetimes.min() / 60:.0f} min, max "
        f"{lifetimes.max() / 86400 / 365:.1f} years across "
        f"{len(fig15)} flavors (≥30 instances); size↔log-lifetime "
        f"correlation {corr:+.2f}."
    )
    parts.append("")
    parts.append(_frame_to_markdown(fig15.select(
        ["flavor", "vm_count", "mean_lifetime_s", "vcpu_class", "ram_class"]
    )))

    # Tables.
    parts.append("\n## Table 1 — VMs by vCPU class")
    parts.append(_frame_to_markdown(tables.table1_vcpu_classes(dataset)))
    parts.append("\n## Table 2 — VMs by RAM class")
    parts.append(_frame_to_markdown(tables.table2_ram_classes(dataset)))
    parts.append("\n## Table 3 — dataset comparison")
    parts.append(_frame_to_markdown(tables.table3_dataset_comparison(dataset)))
    parts.append("\n## Table 4 — metric catalogue")
    parts.append(_frame_to_markdown(tables.table4_metric_catalog(), max_rows=20))
    parts.append("\n## Table 5 — data centers (paper reference)")
    parts.append(_frame_to_markdown(tables.table5_datacenters(), max_rows=29))
    return "\n".join(parts)
