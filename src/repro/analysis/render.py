"""Text rendering of the paper's figure types.

Terminal-friendly renderers so the CLI and examples can *show* the
heatmaps and CDFs rather than only compute them: Unicode shade blocks for
heatmaps (darker = more utilised, mirroring the paper's colour ramp,
``·`` for missing cells) and fixed-width sparkline CDFs.
"""

from __future__ import annotations

import numpy as np

from repro.core.heatmaps import HeatmapResult

#: Shade ramp from free (light) to fully utilised (dark).
_SHADES = " ░▒▓█"


def render_heatmap(
    heatmap: HeatmapResult, max_columns: int = 100, max_rows: int = 31
) -> str:
    """ASCII art of a free-resource heatmap.

    Rows are days (top = first day), columns the heatmap's columns
    (most-free leftmost, as in the paper).  Cells shade by *utilisation*
    (100 - free%).  Wide matrices are column-subsampled.
    """
    matrix = heatmap.matrix
    columns = heatmap.columns
    if matrix.shape[1] > max_columns:
        picks = np.linspace(0, matrix.shape[1] - 1, max_columns).astype(int)
        matrix = matrix[:, picks]
        columns = [columns[i] for i in picks]
    if matrix.shape[0] > max_rows:
        picks = np.linspace(0, matrix.shape[0] - 1, max_rows).astype(int)
        matrix = matrix[picks]

    lines = [
        f"{heatmap.resource} — free % per {heatmap.level} "
        f"({len(columns)} columns x {matrix.shape[0]} days; "
        f"dark = utilised, '·' = no data)"
    ]
    for row in matrix:
        cells = []
        for value in row:
            if not np.isfinite(value):
                cells.append("·")
                continue
            used = 1.0 - value / 100.0
            index = min(len(_SHADES) - 1, int(used * len(_SHADES)))
            cells.append(_SHADES[index])
        lines.append("".join(cells))
    return "\n".join(lines)


def render_cdf(
    values: np.ndarray,
    fractions: np.ndarray,
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Fixed-grid plot of an empirical CDF (x = value, y = fraction)."""
    if len(values) == 0:
        return f"{title} (empty)"
    lo, hi = float(values[0]), float(values[-1])
    span = hi - lo if hi > lo else 1.0
    grid = [[" "] * width for _ in range(height)]
    for v, f in zip(values, fractions):
        x = min(width - 1, int((v - lo) / span * (width - 1)))
        y = min(height - 1, int((1.0 - f) * (height - 1)))
        grid[y][x] = "•"
    lines = [title] if title else []
    for i, row in enumerate(grid):
        fraction = 1.0 - i / (height - 1)
        lines.append(f"{fraction:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:<10.3g}{'':^{max(0, width - 20)}}{hi:>10.3g}")
    return "\n".join(lines)


def render_series_sparkline(values: np.ndarray, width: int = 72) -> str:
    """One-line sparkline of a series (resampled to ``width`` buckets)."""
    blocks = "▁▂▃▄▅▆▇█"
    arr = np.asarray(values, dtype=float)
    if len(arr) == 0:
        return ""
    if len(arr) > width:
        edges = np.linspace(0, len(arr), width + 1).astype(int)
        arr = np.asarray(
            [arr[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a]
        )
    lo, hi = arr.min(), arr.max()
    span = hi - lo if hi > lo else 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * len(blocks)))] for v in arr
    )
