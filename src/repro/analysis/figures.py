"""Builders for Figures 5–15 of the paper."""

from __future__ import annotations

import numpy as np

from repro.core.cdf import utilization_cdf
from repro.core.characterization import lifetime_by_flavor
from repro.core.contention import contention_daily_stats, top_ready_time_nodes
from repro.core.dataset import SAPCloudDataset
from repro.core.heatmaps import HeatmapResult, free_resource_heatmap
from repro.frame import Frame


def _default_dc(dataset: SAPCloudDataset, dc_id: str | None) -> str:
    if dc_id is not None:
        return dc_id
    dcs = dataset.datacenters()
    if not dcs:
        raise ValueError("dataset has no datacenters")
    return dcs[0]


def fig5_dc_cpu_heatmap(
    dataset: SAPCloudDataset, dc_id: str | None = None
) -> HeatmapResult:
    """Fig 5: daily avg free CPU % per compute node within one DC."""
    return free_resource_heatmap(
        dataset, resource="cpu", dc_id=_default_dc(dataset, dc_id), level="node"
    )


def fig6_bb_cpu_heatmap(
    dataset: SAPCloudDataset, dc_id: str | None = None
) -> HeatmapResult:
    """Fig 6: daily avg free CPU % per building block within one DC."""
    return free_resource_heatmap(
        dataset,
        resource="cpu",
        dc_id=_default_dc(dataset, dc_id),
        level="building_block",
    )


def fig7_intra_bb_cpu_heatmap(
    dataset: SAPCloudDataset, bb_id: str | None = None
) -> HeatmapResult:
    """Fig 7: daily avg free CPU % per node within one building block.

    Defaults to the building block containing the most utilised node that
    still shows a large intra-BB spread — the paper selects a visibly
    imbalanced cluster whose hottest host reaches up to 99% CPU.
    """
    if bb_id is None:
        from repro.core.imbalance import bb_imbalance_report

        report = bb_imbalance_report(dataset, resource="cpu")
        if len(report) == 0:
            raise ValueError("dataset has no building block telemetry")
        candidates = report.filter(
            np.asarray(report["node_count"], dtype=float) >= 3
        )
        chosen = candidates if len(candidates) else report
        # Rank by the hottest member node, then by spread.
        order = np.lexsort(
            (
                -np.asarray(chosen["spread_pct"], dtype=float),
                -np.asarray(chosen["max_used_pct"], dtype=float),
            )
        )
        bb_id = str(chosen["bb_id"][order[0]])
    return free_resource_heatmap(dataset, resource="cpu", bb_id=bb_id, level="node")


def fig8_top_ready_nodes(dataset: SAPCloudDataset, n: int = 10) -> Frame:
    """Fig 8: ready-time series of the top-``n`` nodes, long format.

    Columns: node_id, timestamp, ready_ms.
    """
    rows: dict[str, list] = {"node_id": [], "timestamp": [], "ready_ms": []}
    for node_id, series in top_ready_time_nodes(dataset, n=n):
        rows["node_id"].extend([node_id] * len(series))
        rows["timestamp"].extend(series.timestamps.tolist())
        rows["ready_ms"].extend(series.values.tolist())
    return Frame(rows)


def fig9_contention_aggregate(dataset: SAPCloudDataset) -> Frame:
    """Fig 9: daily mean / p95 / max CPU contention % across all nodes."""
    return contention_daily_stats(dataset)


def fig10_memory_heatmap(
    dataset: SAPCloudDataset, dc_id: str | None = None
) -> HeatmapResult:
    """Fig 10: daily avg free memory % per node within one DC."""
    return free_resource_heatmap(
        dataset, resource="memory", dc_id=_default_dc(dataset, dc_id), level="node"
    )


def fig11_network_tx_heatmap(
    dataset: SAPCloudDataset, dc_id: str | None = None
) -> HeatmapResult:
    """Fig 11: daily avg free network TX bandwidth % per node."""
    return free_resource_heatmap(
        dataset,
        resource="network_tx",
        dc_id=_default_dc(dataset, dc_id),
        level="node",
    )


def fig12_network_rx_heatmap(
    dataset: SAPCloudDataset, dc_id: str | None = None
) -> HeatmapResult:
    """Fig 12: daily avg free network RX bandwidth % per node."""
    return free_resource_heatmap(
        dataset,
        resource="network_rx",
        dc_id=_default_dc(dataset, dc_id),
        level="node",
    )


def fig13_storage_heatmap(
    dataset: SAPCloudDataset, dc_id: str | None = None
) -> HeatmapResult:
    """Fig 13: daily avg free local storage % per host."""
    return free_resource_heatmap(
        dataset, resource="storage", dc_id=_default_dc(dataset, dc_id), level="node"
    )


def fig14_utilization_cdfs(
    dataset: SAPCloudDataset,
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Fig 14: CDFs of average CPU (a) and memory (b) utilisation per VM."""
    return {
        "cpu": utilization_cdf(dataset, "cpu"),
        "memory": utilization_cdf(dataset, "memory"),
    }


def fig15_lifetime_per_flavor(
    dataset: SAPCloudDataset, min_instances: int = 30
) -> Frame:
    """Fig 15: average VM lifetime per flavor (≥ ``min_instances`` VMs)."""
    return lifetime_by_flavor(dataset, min_instances=min_instances)
