"""Figure and table builders: one function per artifact of the paper.

Each ``figN`` / ``tableN`` function consumes a
:class:`~repro.core.dataset.SAPCloudDataset` and returns plain data
structures (frames, arrays, dicts) carrying exactly the rows/series the
paper plots — the benchmark harness renders and checks them.
"""

from repro.analysis.figures import (
    fig5_dc_cpu_heatmap,
    fig6_bb_cpu_heatmap,
    fig7_intra_bb_cpu_heatmap,
    fig8_top_ready_nodes,
    fig9_contention_aggregate,
    fig10_memory_heatmap,
    fig11_network_tx_heatmap,
    fig12_network_rx_heatmap,
    fig13_storage_heatmap,
    fig14_utilization_cdfs,
    fig15_lifetime_per_flavor,
)
from repro.analysis.tables import (
    table1_vcpu_classes,
    table2_ram_classes,
    table3_dataset_comparison,
    table4_metric_catalog,
    table5_datacenters,
)
from repro.analysis.report import render_experiments_report

__all__ = [
    "fig5_dc_cpu_heatmap",
    "fig6_bb_cpu_heatmap",
    "fig7_intra_bb_cpu_heatmap",
    "fig8_top_ready_nodes",
    "fig9_contention_aggregate",
    "fig10_memory_heatmap",
    "fig11_network_tx_heatmap",
    "fig12_network_rx_heatmap",
    "fig13_storage_heatmap",
    "fig14_utilization_cdfs",
    "fig15_lifetime_per_flavor",
    "table1_vcpu_classes",
    "table2_ram_classes",
    "table3_dataset_comparison",
    "table4_metric_catalog",
    "table5_datacenters",
    "render_experiments_report",
]
