"""Small statistics helpers shared by analyses and benchmarks."""

from __future__ import annotations

import numpy as np


def percentile_summary(values, percentiles=(5, 25, 50, 75, 95)) -> dict[str, float]:
    """Named percentile summary of a sample."""
    arr = np.asarray(values, dtype=float)
    if len(arr) == 0:
        raise ValueError("summary of empty sample")
    out = {"mean": float(arr.mean()), "min": float(arr.min()), "max": float(arr.max())}
    for p in percentiles:
        out[f"p{p}"] = float(np.percentile(arr, p))
    return out


def gini(values) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = skewed).

    Used as an alternative imbalance measure across nodes/BBs.
    """
    arr = np.sort(np.asarray(values, dtype=float))
    if len(arr) == 0:
        raise ValueError("gini of empty sample")
    if np.any(arr < 0):
        raise ValueError("gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = len(arr)
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * arr) - (n + 1) * total) / (n * total))


def coefficient_of_variation(values) -> float:
    """std / mean; 0 for a constant sample."""
    arr = np.asarray(values, dtype=float)
    if len(arr) == 0:
        raise ValueError("cv of empty sample")
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.std() / mean)
