"""Atomic control-plane snapshots and RNG stream capture.

A snapshot is one JSON document carrying the full recoverable state of a
control plane at an op boundary, wrapped with a CRC32 of its canonical
body so a damaged file is *skipped*, never half-loaded.  Commits are
atomic and power-safe: the document is written to a ``.tmp`` sibling,
fsynced, ``os.replace``d into place, and the parent directory fsynced —
so a crash or power cut anywhere leaves either the previous snapshot
set intact or an ignorable temp file, never a torn snapshot under the
final name.  All IO routes through :mod:`repro.iofaults.layer` under the
``snapshot.*`` point names.

RNG capture: ``numpy``'s ``Generator`` exposes its bit-generator state
as a JSON-able dict, so seeded streams can be frozen into a snapshot and
resumed mid-sequence — a recovered control plane continues drawing the
exact numbers the uninterrupted one would have.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

import numpy as np

from repro.iofaults.layer import active_io

SNAPSHOT_FORMAT = 1
_PREFIX = "snap-"
_SUFFIX = ".json"


def capture_rng_state(rng: np.random.Generator) -> dict:
    """Freeze a numpy Generator's position as a JSON-able document."""
    state = rng.bit_generator.state
    return json.loads(json.dumps(state))


def restore_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Rewind/advance a Generator to a previously captured position."""
    rng.bit_generator.state = state


def _body_bytes(state: dict) -> bytes:
    return json.dumps(
        state, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


class SnapshotStore:
    """Numbered snapshots in one directory, newest-valid-wins on load."""

    def __init__(
        self, directory: str | Path, *, keep: int = 3, io=None
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if keep < 1:
            raise ValueError("must keep at least one snapshot")
        self.keep = keep
        self._io = io

    def _path(self, op_index: int) -> Path:
        return self.directory / f"{_PREFIX}{op_index:08d}{_SUFFIX}"

    def write(self, op_index: int, state: dict, *, barrier=None) -> Path:
        """Atomically commit one snapshot; prunes old ones on success.

        ``barrier`` (if given) is called with ``"mid-snapshot"`` after
        the temp file is fully written but *before* the atomic rename —
        the exact window a crash must not be able to lose data in.
        """
        body = _body_bytes(state)
        document = {
            "format": SNAPSHOT_FORMAT,
            "op_index": op_index,
            "crc": zlib.crc32(body),
            "state": state,
        }
        path = self._path(op_index)
        tmp = path.with_suffix(".tmp")
        io = self._io or active_io()
        payload = json.dumps(
            document, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        handle = io.open_write(tmp, point="snapshot.write")
        try:
            io.write(handle, payload, point="snapshot.write")
            io.fsync(handle, point="snapshot.fsync")
        finally:
            io.close(handle)
        if barrier is not None:
            barrier("mid-snapshot")
        io.replace(tmp, path, point="snapshot.rename")
        io.fsync_dir(self.directory, point="snapshot.dirsync")
        self._prune()
        return path

    def _prune(self) -> None:
        snapshots = sorted(self.directory.glob(f"{_PREFIX}*{_SUFFIX}"))
        for stale in snapshots[: -self.keep]:
            stale.unlink()

    def load_latest(self) -> tuple[int, dict] | None:
        """Newest snapshot that validates; skips damaged/partial files.

        Returns ``(op_index, state)`` or ``None`` when no valid snapshot
        exists.  ``.tmp`` leftovers of interrupted commits are ignored by
        construction (they never match the final-name glob).
        """
        candidates = sorted(
            self.directory.glob(f"{_PREFIX}*{_SUFFIX}"), reverse=True
        )
        io = self._io or active_io()
        for path in candidates:
            try:
                document = json.loads(
                    io.read_bytes(path, point="snapshot.read").decode("utf-8")
                )
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                continue
            if not isinstance(document, dict):
                continue
            if document.get("format") != SNAPSHOT_FORMAT:
                continue
            state = document.get("state")
            if state is None:
                continue
            if zlib.crc32(_body_bytes(state)) != document.get("crc"):
                continue
            return int(document["op_index"]), state
        return None
