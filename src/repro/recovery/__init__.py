"""Crash-consistent control plane: write-ahead journal, snapshots, recovery.

A long-running control plane does not only lose hosts (``repro.faults``)
— it loses *itself*: the scheduler process dies mid-claim, mid-snapshot,
or between writing its intent and applying it.  This package closes that
gap with the classic durability triad:

- :mod:`repro.recovery.journal` — an append-only write-ahead journal of
  length+CRC32-framed records (placement claims/releases, admission
  decisions, quarantine transitions, sim-clock advances, per-op commit
  records), with torn-tail detection and named-offset corruption errors;
- :mod:`repro.recovery.snapshot` — periodic full-state snapshots
  (placement inventory + allocations, node residency, scheduler
  counters, quarantine/admission state, RNG streams) committed with an
  atomic rename so a crash mid-write can never produce a half-snapshot;
- :mod:`repro.recovery.run` — :class:`~repro.recovery.run.JournaledRun`,
  the crash-consistent execution of a seeded placement workload, and
  :func:`~repro.recovery.run.recover_and_continue`, which loads the
  latest valid snapshot, replays (and cross-checks) the journal suffix,
  and finishes the run;
- :mod:`repro.recovery.harness` — the crash→recover→continue cycle
  driver behind ``repro crash``, which proves recovered runs are
  field-identical to uninterrupted ones under the ``repro.verify``
  oracle.

Crash *injection* (the named kill-points and byte-level journal
corruption) lives in :mod:`repro.faults.crashpoints`, beside the rest of
the fault models.
"""

from repro.recovery.journal import (
    DURABILITY_MODES,
    JournalCorruption,
    JournalScan,
    JournalWriter,
    read_journal,
)
from repro.recovery.run import (
    CRASH_POINTS,
    JournaledRun,
    RecoveryError,
    RecoveryInfo,
    recover_and_continue,
    run_journaled,
)
from repro.recovery.snapshot import (
    SnapshotStore,
    capture_rng_state,
    restore_rng_state,
)

#: Harness exports resolved lazily (PEP 562): the harness imports
#: :mod:`repro.faults.crashpoints`, which imports this package's journal
#: module — eager import here would make that a cycle whenever
#: ``repro.faults.crashpoints`` is imported first.
_HARNESS_EXPORTS = frozenset(
    {"CrashCycle", "CrashReport", "CorruptionCase", "run_crash_cycles"}
)


def __getattr__(name: str):
    if name in _HARNESS_EXPORTS:
        from repro.recovery import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CRASH_POINTS",
    "DURABILITY_MODES",
    "CorruptionCase",
    "CrashCycle",
    "CrashReport",
    "JournalCorruption",
    "JournalScan",
    "JournalWriter",
    "JournaledRun",
    "RecoveryError",
    "RecoveryInfo",
    "SnapshotStore",
    "capture_rng_state",
    "read_journal",
    "recover_and_continue",
    "restore_rng_state",
    "run_crash_cycles",
    "run_journaled",
]
