"""Crash→recover→continue cycle driver behind ``repro crash``.

For every seed the harness first computes the *uninterrupted* outcome of
the workload (the same indexed replay the differential oracle runs),
then for every named crash point kills a journaled run at a
deterministic op, recovers it, and diffs the recovered outcome against
the uninterrupted one with the oracle's field-by-field comparator.  A
second battery applies each byte-level corruption mode to a completed
journal and asserts the damage is either recovered through torn-tail
truncation (still field-identical) or *refused* with a named journal
offset — never silently replayed.

The report is byte-stable: it contains no wall-clock times, hostnames,
or filesystem paths, and every collection is emitted in deterministic
order, so two runs of the same scenario/seeds produce identical JSON.
Work happens in throwaway temp directories that are removed afterwards.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Callable

from repro.faults.crashpoints import (
    CORRUPTION_MODES,
    CrashInjector,
    CrashSpec,
    SimulatedCrash,
    corrupt_journal,
)
from repro.recovery.journal import JournalCorruption
from repro.reporting import ReportBase
from repro.recovery.run import (
    CRASH_POINTS,
    DEFAULT_SNAPSHOT_EVERY,
    JournaledRun,
    RecoveryError,
    recover_and_continue,
    run_journaled,
)
from repro.scheduler.config import SchedulerConfig
from repro.verify.oracle import diff_outcomes, replay_workload, workload_ops
from repro.verify.scenarios import VerifyScenario

#: Corruption modes recovery must *refuse* (vs. recover through).
_REFUSED_MODES = frozenset({"bitflip-interior", "dup-tail"})


@dataclass
class CrashCycle:
    """One crash→recover→continue cycle against one seed."""

    seed: int
    point: str
    at_op: int
    crashed: bool
    recovered: bool
    field_identical: bool
    mismatches: list[str]
    recovery: dict

    @property
    def ok(self) -> bool:
        return self.crashed and self.recovered and self.field_identical

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "point": self.point,
            "at_op": self.at_op,
            "crashed": self.crashed,
            "recovered": self.recovered,
            "field_identical": self.field_identical,
            "mismatches": self.mismatches,
            "recovery": self.recovery,
            "ok": self.ok,
        }


@dataclass
class CorruptionCase:
    """One byte-damage mode applied to a completed journal."""

    seed: int
    mode: str
    #: Byte offset the damage was applied at.
    offset: int
    #: "recovered-torn" | "refused" | "undetected"
    outcome: str
    #: Offset the detection named (torn tail or corruption/refusal).
    detected_at: int | None
    detail: str
    field_identical: bool

    @property
    def ok(self) -> bool:
        if self.mode in _REFUSED_MODES:
            return self.outcome == "refused" and self.detected_at is not None
        return self.outcome == "recovered-torn" and self.field_identical

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "mode": self.mode,
            "offset": self.offset,
            "outcome": self.outcome,
            "detected_at": self.detected_at,
            "detail": self.detail,
            "field_identical": self.field_identical,
            "ok": self.ok,
        }


@dataclass
class CrashReport(ReportBase):
    """Everything one ``repro crash`` invocation proved (or failed to)."""

    scenario: str
    seeds: list[int]
    snapshot_every: int
    cycles: list[CrashCycle] = field(default_factory=list)
    corruption: list[CorruptionCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cycles) and all(
            c.ok for c in self.corruption
        )

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "seeds": self.seeds,
            "snapshot_every": self.snapshot_every,
            "cycles": [c.to_dict() for c in self.cycles],
            "corruption": [c.to_dict() for c in self.corruption],
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def render(self) -> str:
        lines = [
            f"crash harness: scenario {self.scenario}, "
            f"seeds {','.join(str(s) for s in self.seeds)}, "
            f"snapshot every {self.snapshot_every} ops"
        ]
        for cycle in self.cycles:
            verdict = "identical" if cycle.ok else "DIVERGED"
            lines.append(
                f"  seed {cycle.seed} crash@{cycle.point}/op{cycle.at_op}: "
                f"recovered from op {cycle.recovery.get('snapshot_op_index')}"
                f" ({cycle.recovery.get('verified_records')} records "
                f"verified) — {verdict}"
            )
            lines.extend(f"    {m}" for m in cycle.mismatches[:5])
        for case in self.corruption:
            lines.append(
                f"  seed {case.seed} corrupt@{case.mode} (byte {case.offset}):"
                f" {case.outcome} at {case.detected_at}"
                f" — {'OK' if case.ok else 'FAILED'}"
            )
        lines.append(f"result: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def _crash_ops(n_ops: int, snapshot_every: int) -> tuple[int, int]:
    """Deterministic kill ops: one mid-run, one on a snapshot boundary."""
    mid = n_ops // 2
    boundary = min(
        (mid // snapshot_every + 1) * snapshot_every, n_ops
    ) - 1
    return mid, boundary


def run_crash_cycles(
    scenario: VerifyScenario,
    seeds: list[int],
    *,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    points: tuple[str, ...] = CRASH_POINTS,
    corruption_modes: tuple[str, ...] = CORRUPTION_MODES,
    durability: str = "fsync",
    progress: Callable[[str], None] | None = None,
) -> CrashReport:
    """Run the full crash/corruption battery; returns a byte-stable report."""
    report = CrashReport(
        scenario=scenario.name,
        seeds=list(seeds),
        snapshot_every=snapshot_every,
    )
    for seed in seeds:
        ops = workload_ops(scenario, seed)
        baseline = replay_workload(
            scenario.topology(),
            ops,
            SchedulerConfig(use_index=True, track_filter_counts=False),
            variant="uninterrupted",
        )
        mid, boundary = _crash_ops(len(ops), snapshot_every)
        for point in points:
            at_op = boundary if point.endswith("snapshot") else mid
            if progress is not None:
                progress(f"seed {seed}: crash at {point}/op {at_op}")
            workdir = tempfile.mkdtemp(prefix="repro-crash-")
            try:
                injector = CrashInjector(CrashSpec(point, at_op))
                crashed = False
                try:
                    run_journaled(
                        scenario,
                        seed,
                        workdir,
                        snapshot_every=snapshot_every,
                        barrier=injector,
                        durability=durability,
                    )
                except SimulatedCrash:
                    crashed = True
                recovered = False
                mismatches: list[str] = []
                info_dict: dict = {}
                identical = False
                if crashed:
                    outcome, info = recover_and_continue(
                        scenario,
                        seed,
                        workdir,
                        snapshot_every=snapshot_every,
                        durability=durability,
                    )
                    recovered = True
                    info_dict = info.to_dict()
                    found = diff_outcomes(baseline, outcome)
                    found += outcome.index_mismatches
                    mismatches = [m.render() for m in found]
                    identical = not found
                report.cycles.append(
                    CrashCycle(
                        seed=seed,
                        point=point,
                        at_op=at_op,
                        crashed=crashed,
                        recovered=recovered,
                        field_identical=identical,
                        mismatches=mismatches,
                        recovery=info_dict,
                    )
                )
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
        for mode in corruption_modes:
            if progress is not None:
                progress(f"seed {seed}: journal corruption {mode}")
            workdir = tempfile.mkdtemp(prefix="repro-crash-")
            try:
                run = JournaledRun(
                    scenario,
                    seed,
                    workdir,
                    snapshot_every=snapshot_every,
                    durability=durability,
                )
                run.run()
                offset = corrupt_journal(run.journal_path, mode)
                outcome_kind = "undetected"
                detected_at: int | None = None
                detail = ""
                identical = False
                try:
                    outcome, info = recover_and_continue(
                        scenario,
                        seed,
                        workdir,
                        snapshot_every=snapshot_every,
                        durability=durability,
                    )
                except (JournalCorruption, RecoveryError) as exc:
                    outcome_kind = "refused"
                    detected_at = exc.offset
                    detail = exc.reason
                else:
                    found = diff_outcomes(baseline, outcome)
                    found += outcome.index_mismatches
                    identical = not found
                    if info.truncated_at is not None:
                        outcome_kind = "recovered-torn"
                        detected_at = info.truncated_at
                        detail = info.truncated_reason
                report.corruption.append(
                    CorruptionCase(
                        seed=seed,
                        mode=mode,
                        offset=offset,
                        outcome=outcome_kind,
                        detected_at=detected_at,
                        detail=detail,
                        field_identical=identical,
                    )
                )
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
    return report
