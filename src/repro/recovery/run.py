"""Crash-consistent execution of a seeded placement workload.

:class:`JournaledRun` executes the exact workload the differential
oracle replays (:func:`repro.verify.oracle.workload_ops` through the
indexed ``FilterScheduler``), but journals every state change ahead of
applying it and snapshots the full control-plane state on a fixed op
cadence.  Recovery (:func:`recover_and_continue`) then rebuilds the
world from the newest valid snapshot and *re-executes* the lost ops —
deterministic replay is the redo log.  The journal plays two roles on
the way back up:

- **durability record** — the suffix written after the snapshot tells
  recovery exactly what the crashed process had already decided;
- **divergence detector** — every record the replay re-emits is
  cross-checked against the journal suffix byte-for-byte (as parsed
  canonical JSON); any disagreement raises :class:`RecoveryError`
  naming the journal offset instead of silently rewriting history.

A torn tail (crash mid-append) is truncated and reported; interior
corruption and duplicated tails are refused with named offsets.

Crash points: the run fires a ``barrier(point)`` callback at every
named barrier in :data:`CRASH_POINTS`; :mod:`repro.faults.crashpoints`
plugs a deterministic killer into it.  Per op the sequence is
``pre-op`` → (``mid-claim`` inside each placement claim, after the
claim record is journaled but before usage is applied) →
``post-apply`` (state applied, commit record not yet journaled) →
``post-journal`` (commit record durable), and around each snapshot
``mid-snapshot`` (temp file written, not yet renamed) →
``post-snapshot``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.infrastructure.flavors import default_catalog
from repro.infrastructure.topology import build_region
from repro.infrastructure.vm import VM, VMState
from repro.recovery.journal import (
    JournalWriter,
    read_journal,
    truncate_torn_tail,
)
from repro.recovery.snapshot import SnapshotStore
from repro.scheduler.config import SchedulerConfig
from repro.scheduler.hoststate import HostState
from repro.scheduler.pipeline import FilterScheduler, NoValidHost
from repro.scheduler.placement import PlacementService
from repro.scheduler.request import RequestSpec
from repro.verify.oracle import (
    Mismatch,
    ReplayOutcome,
    inventory_snapshot,
    pick_node,
    workload_ops,
)
from repro.verify.scenarios import VerifyScenario

#: Named kill-points, in per-op firing order (snapshot points fire only
#: on the snapshot cadence).
CRASH_POINTS = (
    "pre-op",
    "mid-claim",
    "post-apply",
    "post-journal",
    "mid-snapshot",
    "post-snapshot",
)

#: Ops between snapshots (also the replay-window bound after a crash).
DEFAULT_SNAPSHOT_EVERY = 25

Barrier = Callable[[str], None]


class RecoveryError(Exception):
    """Recovery refused: the journal disagrees with deterministic replay."""

    def __init__(self, offset: int, reason: str) -> None:
        self.offset = offset
        self.reason = reason
        super().__init__(f"recovery failed at journal offset {offset}: {reason}")


@dataclass
class RecoveryInfo:
    """What one recovery did, for reports and assertions."""

    #: Ops already completed at the restored snapshot (0 = cold start).
    snapshot_op_index: int
    #: Ops re-executed to reach the end of the workload.
    replayed_ops: int
    #: Journal suffix records cross-checked against the replay.
    verified_records: int
    #: Fresh records appended once the suffix was exhausted.
    appended_records: int
    #: Byte offset of the torn tail the scan found, or None when clean.
    truncated_at: int | None
    truncated_reason: str
    bytes_truncated: int

    def to_dict(self) -> dict:
        return {
            "snapshot_op_index": self.snapshot_op_index,
            "replayed_ops": self.replayed_ops,
            "verified_records": self.verified_records,
            "appended_records": self.appended_records,
            "truncated_at": self.truncated_at,
            "truncated_reason": self.truncated_reason,
            "bytes_truncated": self.bytes_truncated,
        }


class JournaledRun:
    """One crash-consistent run (or recovery) of a verify-scenario workload.

    All durable artifacts live under ``run_dir``: ``journal.wal`` plus a
    ``snapshots/`` directory.  The same instance is single-use — build a
    fresh one per :meth:`run` or :meth:`recover`.
    """

    def __init__(
        self,
        scenario: VerifyScenario,
        seed: int,
        run_dir: str | Path,
        *,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        barrier: Barrier | None = None,
        durability: str = "fsync",
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        self.barrier = barrier
        self.durability = durability
        self.journal_path = self.run_dir / "journal.wal"
        self.snapshots = SnapshotStore(self.run_dir / "snapshots")
        self.ops = workload_ops(scenario, seed)
        self._catalog = default_catalog()
        # Journal cursor: while `_expected` has records left, re-emitted
        # records are verified against them; afterwards they are appended.
        self._expected: list[tuple[int, dict]] = []
        self._cursor = 0
        self._writer: JournalWriter | None = None
        self._op_i = 0

    # -- world construction ---------------------------------------------------

    def _setup(self) -> None:
        spec = self.scenario.topology()
        self.region = build_region(spec)
        self.placement = PlacementService()
        for bb in self.region.iter_building_blocks():
            self.placement.register_building_block(bb)
        self.placement.add_journal_sink(self._placement_sink)
        self.scheduler = FilterScheduler(
            self.region,
            self.placement,
            SchedulerConfig(use_index=True, track_filter_counts=False),
        )
        self.bb_index = {
            bb.bb_id: bb for bb in self.region.iter_building_blocks()
        }
        self.node_index = {
            node.node_id: node
            for bb in self.region.iter_building_blocks()
            for node in bb.iter_nodes()
        }
        self.node_of: dict[str, str] = {}
        self.placements: dict[str, str] = {}
        self.trace: list[tuple[str, str | None, float, int]] = []

    def _export_state(self, completed: int) -> dict:
        residency = {}
        for vm_id in sorted(self.node_of):
            node_id = self.node_of[vm_id]
            vm = self.node_index[node_id].vms[vm_id]
            residency[vm_id] = {
                "node": node_id,
                "bb": self.placements[vm_id],
                "flavor": vm.flavor.name,
                "tenant": vm.tenant,
            }
        return {
            "completed": completed,
            "trace": [list(row) for row in self.trace],
            "residency": residency,
            "placement": self.placement.export_state(),
            "scheduler_stats": dict(self.scheduler.stats),
        }

    def _restore(self, state: dict) -> None:
        for vm_id, info in state["residency"].items():
            node = self.node_index[info["node"]]
            vm = VM(
                vm_id=vm_id,
                flavor=self._catalog.get(info["flavor"]),
                tenant=info["tenant"],
            )
            vm.transition(VMState.BUILDING)
            vm.transition(VMState.ACTIVE)
            node.add_vm(vm)
            self.node_of[vm_id] = info["node"]
            self.placements[vm_id] = info["bb"]
        self.placement.restore_state(state["placement"])
        self.scheduler.stats.update(
            {k: int(v) for k, v in state["scheduler_stats"].items()}
        )
        self.trace = [
            (row[0], row[1], float(row[2]), int(row[3]))
            for row in state["trace"]
        ]

    # -- journal plumbing -----------------------------------------------------

    def _fire(self, point: str) -> None:
        if self.barrier is not None:
            self.barrier(point)

    def _emit(self, record: dict) -> None:
        """Verify ``record`` against the journal suffix, or append it."""
        if self._cursor < len(self._expected):
            offset, expected = self._expected[self._cursor]
            if record != expected:
                raise RecoveryError(
                    offset,
                    f"replay diverged from journal: journalled {expected!r}, "
                    f"re-executed {record!r}",
                )
            self._cursor += 1
            return
        self._writer.append(record)

    def _placement_sink(
        self, event: str, consumer_id: str, provider_id: str, amounts: dict
    ) -> None:
        self._emit(
            {
                "t": event,
                "i": self._op_i,
                "vm": consumer_id,
                "bb": provider_id,
                "amounts": dict(amounts),
            }
        )
        if event == "claim":
            self._fire("mid-claim")

    # -- op execution ---------------------------------------------------------

    def _execute_op(self, i: int, op) -> None:
        self._op_i = i
        self._fire("pre-op")
        if op.op == "create":
            spec_req = RequestSpec(
                vm_id=op.vm_id,
                flavor=self._catalog.get(op.flavor_name),
                tenant=op.tenant,
            )
            try:
                result = self.scheduler.schedule(spec_req)
            except NoValidHost:
                self.trace.append((op.vm_id, None, 0.0, 0))
                commit = self._commit(i, op, host=None, score=0.0, attempts=0)
            else:
                bb = self.bb_index[result.host_id]
                node = pick_node(bb, spec_req)
                if node is None:
                    # BB-level room but no single node fits: release, as
                    # the oracle and the simulation runner both do.
                    self.placement.release(op.vm_id)
                    self.trace.append((op.vm_id, None, 0.0, result.attempts))
                    commit = self._commit(
                        i, op, host=None, score=0.0, attempts=result.attempts
                    )
                else:
                    vm = VM(
                        vm_id=op.vm_id,
                        flavor=spec_req.flavor,
                        tenant=op.tenant,
                    )
                    vm.transition(VMState.BUILDING)
                    vm.transition(VMState.ACTIVE)
                    node.add_vm(vm)
                    self.node_of[op.vm_id] = node.node_id
                    self.placements[op.vm_id] = result.host_id
                    score = round(result.score, 9)
                    self.trace.append(
                        (op.vm_id, result.host_id, score, result.attempts)
                    )
                    commit = self._commit(
                        i,
                        op,
                        host=result.host_id,
                        score=score,
                        attempts=result.attempts,
                    )
        else:
            node_id = self.node_of.pop(op.vm_id, None)
            if node_id is None:
                # The create was rejected; nothing to delete.
                commit = {
                    "t": "op", "i": i, "op": "delete",
                    "vm": op.vm_id, "present": False,
                }
            else:
                self.node_index[node_id].remove_vm(op.vm_id)
                self.placement.release(op.vm_id)
                self.placements.pop(op.vm_id, None)
                commit = {
                    "t": "op", "i": i, "op": "delete",
                    "vm": op.vm_id, "present": True,
                }
        self._fire("post-apply")
        self._emit(commit)
        self._fire("post-journal")
        completed = i + 1
        if self.snapshot_every and completed % self.snapshot_every == 0:
            self._emit({"t": "snap", "i": completed})
            self.snapshots.write(
                completed, self._export_state(completed), barrier=self._fire
            )
            self._fire("post-snapshot")

    @staticmethod
    def _commit(i: int, op, *, host, score, attempts) -> dict:
        return {
            "t": "op",
            "i": i,
            "op": "create",
            "vm": op.vm_id,
            "host": host,
            "score": score,
            "attempts": attempts,
        }

    def _outcome(self, variant: str) -> ReplayOutcome:
        index_mismatches: list[Mismatch] = []
        if self.scheduler.index is not None:
            self.scheduler.index.refresh()
            for state in self.scheduler.index.states():
                truth = HostState.from_building_block(
                    self.bb_index[state.host_id], self.placement
                )
                for name, actual, expected in state.diff_fields(truth):
                    index_mismatches.append(
                        Mismatch(
                            check="index_state",
                            variant=variant,
                            subject=state.host_id,
                            field=name,
                            expected=expected,
                            actual=actual,
                        )
                    )
        return ReplayOutcome(
            variant=variant,
            placements=dict(self.placements),
            trace=list(self.trace),
            scheduler_stats=self.scheduler.stats_snapshot(),
            placement_stats={
                k: int(v) for k, v in self.placement.stats().items()
            },
            inventory=inventory_snapshot(self.placement, self.bb_index),
            index_mismatches=index_mismatches,
        )

    # -- entry points ---------------------------------------------------------

    def run(self) -> ReplayOutcome:
        """Execute the full workload from scratch, journaling as it goes.

        A :class:`~repro.faults.crashpoints.SimulatedCrash` raised by the
        barrier propagates to the caller; the journal and snapshots on
        disk are exactly what a killed process would have left behind.
        """
        self._setup()
        self._expected = []
        self._cursor = 0
        self._writer = JournalWriter(
            self.journal_path, durability=self.durability
        )
        try:
            for i, op in enumerate(self.ops):
                self._execute_op(i, op)
        finally:
            self._writer.close()
        return self._outcome("journaled")

    def recover(self) -> tuple[ReplayOutcome, RecoveryInfo]:
        """Load the newest valid snapshot, replay the journal, finish.

        Raises :class:`~repro.recovery.journal.JournalCorruption` on
        interior journal damage and :class:`RecoveryError` when the
        journal's structure or contents disagree with deterministic
        replay (duplicated tails, divergent records, leftovers).
        """
        if self.journal_path.exists():
            scan = read_journal(self.journal_path)
        else:
            scan = None
        bytes_truncated = 0
        if scan is not None:
            bytes_truncated = truncate_torn_tail(self.journal_path, scan)
            self._check_structure(scan)
        loaded = self.snapshots.load_latest()
        self._setup()
        if loaded is not None:
            resume_from, state = loaded
            self._restore(state)
        else:
            resume_from = 0
        self._expected = self._suffix(scan, resume_from)
        self._cursor = 0
        self._writer = JournalWriter(
            self.journal_path, durability=self.durability
        )
        try:
            for i in range(resume_from, len(self.ops)):
                self._execute_op(i, self.ops[i])
            appended = self._writer.records_written
        finally:
            self._writer.close()
        if self._cursor < len(self._expected):
            offset, leftover = self._expected[self._cursor]
            raise RecoveryError(
                offset,
                f"journal record left unconsumed after full replay "
                f"(duplicated tail?): {leftover!r}",
            )
        info = RecoveryInfo(
            snapshot_op_index=resume_from,
            replayed_ops=len(self.ops) - resume_from,
            verified_records=self._cursor,
            appended_records=appended,
            truncated_at=scan.truncated_at if scan is not None else None,
            truncated_reason=scan.truncated_reason if scan is not None else "",
            bytes_truncated=bytes_truncated,
        )
        return self._outcome("recovered"), info

    # -- journal validation ---------------------------------------------------

    @staticmethod
    def _check_structure(scan) -> None:
        """Structural pre-check: op indices must advance exactly by one.

        Claim/release records belong to the op being executed and snap
        markers to the just-completed count, so *every* record's ``i``
        is pinned — a duplicated or reordered tail (e.g. the same
        commit record appended twice) breaks the progression and is
        refused with its offset before any replay happens.
        """
        next_op = 0
        last_snap = -1
        for offset, record in scan.records:
            kind = record.get("t")
            want = next_op
            if kind == "op":
                if record.get("i") != want:
                    raise RecoveryError(
                        offset,
                        f"op record carries index {record.get('i')} where "
                        f"{want} was expected (duplicated or reordered tail)",
                    )
                next_op += 1
            elif kind in ("claim", "release", "snap"):
                if record.get("i") != want:
                    raise RecoveryError(
                        offset,
                        f"{kind} record carries op index {record.get('i')} "
                        f"where {want} was expected "
                        f"(duplicated or reordered tail)",
                    )
                if kind == "snap":
                    # One marker per snapshot boundary: a second with the
                    # same index is a duplicated tail, not history.
                    if record["i"] == last_snap:
                        raise RecoveryError(
                            offset,
                            f"duplicate snap marker for op index "
                            f"{record['i']} (duplicated tail)",
                        )
                    last_snap = record["i"]
            else:
                raise RecoveryError(
                    offset, f"unknown journal record type {kind!r}"
                )

    @staticmethod
    def _suffix(scan, resume_from: int) -> list[tuple[int, dict]]:
        """Journal records the resumed replay will re-emit, in order.

        Records for ops before the snapshot are history the snapshot
        already embodies; the snap marker *at* the resume point was
        written just before the snapshot itself and is skipped too.
        """
        if scan is None:
            return []
        suffix: list[tuple[int, dict]] = []
        for offset, record in scan.records:
            if record["t"] == "snap":
                if record["i"] > resume_from:
                    suffix.append((offset, record))
            elif record["i"] >= resume_from:
                suffix.append((offset, record))
        return suffix


def run_journaled(
    scenario: VerifyScenario,
    seed: int,
    run_dir: str | Path,
    *,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    barrier: Barrier | None = None,
    durability: str = "fsync",
) -> ReplayOutcome:
    """Execute one seeded workload crash-consistently under ``run_dir``."""
    return JournaledRun(
        scenario,
        seed,
        run_dir,
        snapshot_every=snapshot_every,
        barrier=barrier,
        durability=durability,
    ).run()


def recover_and_continue(
    scenario: VerifyScenario,
    seed: int,
    run_dir: str | Path,
    *,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    barrier: Barrier | None = None,
    durability: str = "fsync",
) -> tuple[ReplayOutcome, RecoveryInfo]:
    """Recover a crashed run under ``run_dir`` and drive it to completion."""
    return JournaledRun(
        scenario,
        seed,
        run_dir,
        snapshot_every=snapshot_every,
        barrier=barrier,
        durability=durability,
    ).recover()
