"""Append-only write-ahead journal with CRC32-framed records.

File layout::

    +--------+---------+   +--------+--------+-----------------+
    | magic  | version |   | length | crc32  | payload (JSON)  |  ...
    | 4 B    | u32 LE  |   | u32 LE | u32 LE | `length` bytes  |
    +--------+---------+   +--------+--------+-----------------+

Each record's payload is canonical JSON (sorted keys, compact
separators), so a journal written twice from the same seeded run is
byte-identical.  The framing gives the two failure semantics a WAL
needs:

- **torn tail** — the file ends inside a frame, or the *last* frame
  fails its CRC: the classic crash-during-append.  :func:`read_journal`
  reports it (``truncated_at`` names the byte offset) and keeps every
  record before it; recovery truncates the tail and re-executes the
  lost suffix deterministically.
- **interior corruption** — a frame *before* the tail fails its CRC or
  does not parse: that is never a legal crash artifact of append-only
  writes, so it raises :class:`JournalCorruption` naming the record
  offset rather than silently replaying damaged history.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.iofaults.layer import active_io

MAGIC = b"RJRN"
FORMAT_VERSION = 1
HEADER = MAGIC + struct.pack("<I", FORMAT_VERSION)
_FRAME = struct.Struct("<II")
#: Upper bound on one record's payload; a corrupt length field beyond it
#: is reported as corruption instead of attempting a huge allocation.
MAX_RECORD_BYTES = 16 * 1024 * 1024

#: ``fsync`` hardens every record-commit boundary against power loss;
#: ``flush`` only defends against process death (for sim-only hot paths
#: where the journal is telemetry, not the source of truth).
DURABILITY_MODES = ("fsync", "flush")


class JournalCorruption(Exception):
    """Interior journal damage at a named byte offset (never torn tail)."""

    def __init__(self, offset: int, reason: str) -> None:
        self.offset = offset
        self.reason = reason
        super().__init__(f"journal corrupt at offset {offset}: {reason}")


def encode_record(record: dict) -> bytes:
    """One framed record: canonical JSON payload behind length+CRC32."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


class JournalWriter:
    """Appender for one journal file; commits after every record.

    Creating a writer on a missing/empty path writes the file header; on
    an existing journal it appends after the current end.  The caller is
    responsible for validating an existing file first (recovery does,
    truncating any torn tail) — the writer never reads.

    ``durability="fsync"`` (the default) fsyncs every record-commit
    boundary, so an acknowledged append survives power loss, not just
    process death.  ``"flush"`` skips the fsync for hot paths whose
    journal is an observability artifact rather than the source of
    truth.  ``label`` prefixes the IO-point names (``journal.append``,
    ``sweep-journal.fsync``, ...) so fault schedules can target one
    journal without touching another.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        durability: str = "fsync",
        label: str = "journal",
        io=None,
    ) -> None:
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"unknown durability {durability!r}; "
                f"expected one of {DURABILITY_MODES}"
            )
        self.path = Path(path)
        self.durability = durability
        self.label = label
        self._io = io or active_io()
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = self._io.open_append(self.path, point=f"{label}.open")
        if fresh:
            self._io.write(self._handle, HEADER, point=f"{label}.header")
            self._commit()
        self.records_written = 0

    def _commit(self) -> None:
        """One record-commit boundary: flush, and harden if configured."""
        if self.durability == "fsync":
            self._io.fsync(self._handle, point=f"{self.label}.fsync")
        else:
            self._io.flush(self._handle, point=f"{self.label}.flush")

    def append(self, record: dict) -> int:
        """Durably append one record; returns its byte offset."""
        offset = self._io.tell(self._handle)
        self._io.write(
            self._handle, encode_record(record), point=f"{self.label}.append"
        )
        self._commit()
        self.records_written += 1
        return offset

    def close(self) -> None:
        if not self._handle.closed:
            self._commit()
            self._io.close(self._handle)

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalScan:
    """Everything one pass over a journal file found."""

    path: str
    #: Every intact record, in append order, with its byte offset.
    records: list[tuple[int, dict]] = field(default_factory=list)
    #: Byte offset where valid data ends (== file size when clean).
    valid_end: int = 0
    #: Offset of a torn/corrupt tail frame, or None when the file is clean.
    truncated_at: int | None = None
    truncated_reason: str = ""

    @property
    def torn(self) -> bool:
        return self.truncated_at is not None


def read_journal(
    path: str | Path, *, io=None, label: str = "journal"
) -> JournalScan:
    """Scan a journal; tolerate a torn tail, raise on interior damage.

    The tail rule: a frame that is incomplete, oversized, CRC-bad, or
    unparseable is a *torn tail* if and only if it is the last thing in
    the file; the same damage followed by further bytes means the middle
    of history changed underneath us → :class:`JournalCorruption`.

    An empty file or a strict prefix of the header is also a torn tail:
    power loss before the header hardened leaves exactly that, and
    truncate-and-continue lets a fresh writer lay the header down again.
    """
    path = Path(path)
    io = io or active_io()
    data = io.read_bytes(path, point=f"{label}.read")
    if len(data) < len(HEADER):
        if data == HEADER[: len(data)]:
            scan = JournalScan(path=str(path), valid_end=0)
            scan.truncated_at = 0
            scan.truncated_reason = (
                "empty file" if not data else "incomplete file header"
            )
            return scan
        raise JournalCorruption(0, "missing or damaged file header")
    if data[: len(MAGIC)] != MAGIC:
        raise JournalCorruption(0, "missing or damaged file header")
    (version,) = struct.unpack_from("<I", data, len(MAGIC))
    if version != FORMAT_VERSION:
        raise JournalCorruption(
            len(MAGIC), f"unsupported journal format {version}"
        )
    scan = JournalScan(path=str(path), valid_end=len(HEADER))
    pos = len(HEADER)
    size = len(data)

    def torn(offset: int, reason: str) -> JournalScan:
        scan.truncated_at = offset
        scan.truncated_reason = reason
        return scan

    while pos < size:
        if pos + _FRAME.size > size:
            return torn(pos, "incomplete frame header")
        length, crc = _FRAME.unpack_from(data, pos)
        end = pos + _FRAME.size + length
        if length > MAX_RECORD_BYTES:
            return torn(pos, f"implausible record length {length}")
        if end > size:
            return torn(pos, "incomplete record payload")
        payload = data[pos + _FRAME.size : end]
        if zlib.crc32(payload) != crc:
            if end == size:
                return torn(pos, "CRC mismatch in tail record")
            raise JournalCorruption(pos, "CRC mismatch in interior record")
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if end == size:
                return torn(pos, f"unparseable tail record: {exc}")
            raise JournalCorruption(
                pos, f"unparseable interior record: {exc}"
            ) from exc
        scan.records.append((pos, record))
        scan.valid_end = end
        pos = end
    return scan


def truncate_torn_tail(
    path: str | Path, scan: JournalScan, *, io=None, label: str = "journal"
) -> int:
    """Physically drop a torn tail; returns the number of bytes removed.

    No-op (returns 0) when the scan found the file clean.
    """
    path = Path(path)
    if not scan.torn:
        return 0
    io = io or active_io()
    size = path.stat().st_size
    io.truncate(path, scan.valid_end, point=f"{label}.truncate")
    return size - scan.valid_end
