"""Append-only write-ahead journal with CRC32-framed records.

File layout::

    +--------+---------+   +--------+--------+-----------------+
    | magic  | version |   | length | crc32  | payload (JSON)  |  ...
    | 4 B    | u32 LE  |   | u32 LE | u32 LE | `length` bytes  |
    +--------+---------+   +--------+--------+-----------------+

Each record's payload is canonical JSON (sorted keys, compact
separators), so a journal written twice from the same seeded run is
byte-identical.  The framing gives the two failure semantics a WAL
needs:

- **torn tail** — the file ends inside a frame, or the *last* frame
  fails its CRC: the classic crash-during-append.  :func:`read_journal`
  reports it (``truncated_at`` names the byte offset) and keeps every
  record before it; recovery truncates the tail and re-executes the
  lost suffix deterministically.
- **interior corruption** — a frame *before* the tail fails its CRC or
  does not parse: that is never a legal crash artifact of append-only
  writes, so it raises :class:`JournalCorruption` naming the record
  offset rather than silently replaying damaged history.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

MAGIC = b"RJRN"
FORMAT_VERSION = 1
HEADER = MAGIC + struct.pack("<I", FORMAT_VERSION)
_FRAME = struct.Struct("<II")
#: Upper bound on one record's payload; a corrupt length field beyond it
#: is reported as corruption instead of attempting a huge allocation.
MAX_RECORD_BYTES = 16 * 1024 * 1024


class JournalCorruption(Exception):
    """Interior journal damage at a named byte offset (never torn tail)."""

    def __init__(self, offset: int, reason: str) -> None:
        self.offset = offset
        self.reason = reason
        super().__init__(f"journal corrupt at offset {offset}: {reason}")


def encode_record(record: dict) -> bytes:
    """One framed record: canonical JSON payload behind length+CRC32."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


class JournalWriter:
    """Appender for one journal file; flushes after every record.

    Creating a writer on a missing/empty path writes the file header; on
    an existing journal it appends after the current end.  The caller is
    responsible for validating an existing file first (recovery does,
    truncating any torn tail) — the writer never reads.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "ab")
        if fresh:
            self._fh.write(HEADER)
            self._fh.flush()
        self.records_written = 0

    def append(self, record: dict) -> int:
        """Durably append one record; returns its byte offset."""
        offset = self._fh.tell()
        self._fh.write(encode_record(record))
        self._fh.flush()
        self.records_written += 1
        return offset

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalScan:
    """Everything one pass over a journal file found."""

    path: str
    #: Every intact record, in append order, with its byte offset.
    records: list[tuple[int, dict]] = field(default_factory=list)
    #: Byte offset where valid data ends (== file size when clean).
    valid_end: int = 0
    #: Offset of a torn/corrupt tail frame, or None when the file is clean.
    truncated_at: int | None = None
    truncated_reason: str = ""

    @property
    def torn(self) -> bool:
        return self.truncated_at is not None


def read_journal(path: str | Path) -> JournalScan:
    """Scan a journal; tolerate a torn tail, raise on interior damage.

    The tail rule: a frame that is incomplete, oversized, CRC-bad, or
    unparseable is a *torn tail* if and only if it is the last thing in
    the file; the same damage followed by further bytes means the middle
    of history changed underneath us → :class:`JournalCorruption`.
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < len(HEADER) or data[: len(MAGIC)] != MAGIC:
        raise JournalCorruption(0, "missing or damaged file header")
    (version,) = struct.unpack_from("<I", data, len(MAGIC))
    if version != FORMAT_VERSION:
        raise JournalCorruption(
            len(MAGIC), f"unsupported journal format {version}"
        )
    scan = JournalScan(path=str(path), valid_end=len(HEADER))
    pos = len(HEADER)
    size = len(data)

    def torn(offset: int, reason: str) -> JournalScan:
        scan.truncated_at = offset
        scan.truncated_reason = reason
        return scan

    while pos < size:
        if pos + _FRAME.size > size:
            return torn(pos, "incomplete frame header")
        length, crc = _FRAME.unpack_from(data, pos)
        end = pos + _FRAME.size + length
        if length > MAX_RECORD_BYTES:
            return torn(pos, f"implausible record length {length}")
        if end > size:
            return torn(pos, "incomplete record payload")
        payload = data[pos + _FRAME.size : end]
        if zlib.crc32(payload) != crc:
            if end == size:
                return torn(pos, "CRC mismatch in tail record")
            raise JournalCorruption(pos, "CRC mismatch in interior record")
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if end == size:
                return torn(pos, f"unparseable tail record: {exc}")
            raise JournalCorruption(
                pos, f"unparseable interior record: {exc}"
            ) from exc
        scan.records.append((pos, record))
        scan.valid_end = end
        pos = end
    return scan


def truncate_torn_tail(path: str | Path, scan: JournalScan) -> int:
    """Physically drop a torn tail; returns the number of bytes removed.

    No-op (returns 0) when the scan found the file clean.
    """
    path = Path(path)
    if not scan.torn:
        return 0
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(scan.valid_end)
    return size - scan.valid_end
