"""One byte-stable reporting surface for every CLI artifact.

Every subsystem in this repo ends in a deterministic JSON report — the
fault report, the chaos summary, the verify report, the crash report,
the sweep report.  Historically each grew its own ``to_json`` and each
CLI hand-rolled its ``--out`` write, which made "byte-identical across
runs/workers/hosts" a per-subsystem promise instead of a structural one.

:class:`ReportBase` centralises the contract:

- :meth:`~ReportBase.canonical_json` — the one rendering every consumer
  agrees on: ``json.dumps(to_dict(), indent=2, sort_keys=True,
  allow_nan=False)`` plus exactly one trailing newline.  ``allow_nan``
  is off because NaN is not JSON and silently breaks ``cmp``-based CI
  gates;
- :meth:`~ReportBase.sha256` — the content address CI jobs compare;
- :meth:`~ReportBase.diff_against` — a unified diff against a prior
  report (object, text, or file), the vocabulary of every regression
  message in this repo;
- :meth:`~ReportBase.write` — the single ``--out`` writer: canonical
  bytes, atomic replace, so a killed CLI can never leave a half-report.

Concrete reports implement :meth:`to_dict` (already deterministic:
sorted collections, rounded floats, no wall-clock or host identity) and
inherit the rest.
"""

from __future__ import annotations

import hashlib
import json
from difflib import unified_diff
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.iofaults.layer import atomic_write_bytes


@runtime_checkable
class Report(Protocol):
    """Structural protocol: anything with a deterministic dict view."""

    def to_dict(self) -> dict: ...


def canonical_json(doc: dict) -> str:
    """The repo-wide canonical rendering of one report document."""
    return json.dumps(doc, indent=2, sort_keys=True, allow_nan=False) + "\n"


def canonical_bytes(report: Report) -> bytes:
    """Canonical UTF-8 bytes of a report — what :func:`write_report` writes."""
    return canonical_json(report.to_dict()).encode("utf-8")


def report_sha256(report: Report) -> str:
    """Hex SHA-256 of the canonical bytes (the CI comparison handle)."""
    return hashlib.sha256(canonical_bytes(report)).hexdigest()


def report_diff(
    prior: "Report | str | bytes | Path", current: Report, *, context: int = 3
) -> str:
    """Unified diff from a prior report to ``current``; "" when identical.

    ``prior`` may be another report object, canonical-JSON text/bytes, or
    a path to a previously written report file.
    """
    if isinstance(prior, Path):
        prior_text = prior.read_text()
    elif isinstance(prior, bytes):
        prior_text = prior.decode("utf-8")
    elif isinstance(prior, str):
        prior_text = prior
    else:
        prior_text = canonical_json(prior.to_dict())
    current_text = canonical_json(current.to_dict())
    if prior_text == current_text:
        return ""
    return "".join(
        unified_diff(
            prior_text.splitlines(keepends=True),
            current_text.splitlines(keepends=True),
            fromfile="prior",
            tofile="current",
            n=context,
        )
    )


def write_report(report: Report, path: str | Path) -> Path:
    """Write canonical bytes with a power-safe atomic replace.

    Routed through :func:`repro.iofaults.layer.atomic_write_bytes`
    (IO points ``report.*``): temp file, fsync, ``os.replace``, parent
    directory fsync — a crash *or power cut* mid-write leaves either the
    old artifact or the complete new one, never a torn file, and any
    failure surfaces as a structured
    :class:`~repro.iofaults.layer.IoFaultError`.
    """
    return atomic_write_bytes(
        Path(path), canonical_bytes(report), points="report"
    )


class ReportBase:
    """Mixin giving a report the canonical-bytes / hash / diff / write API.

    Subclasses provide :meth:`to_dict`; everything else is derived so no
    report can drift from the repo-wide byte-stability contract.
    """

    def to_dict(self) -> dict:  # pragma: no cover - always overridden
        raise NotImplementedError(
            f"{type(self).__name__} must implement to_dict()"
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def canonical_bytes(self) -> bytes:
        return canonical_bytes(self)

    def sha256(self) -> str:
        return report_sha256(self)

    def diff_against(
        self, prior: "Report | str | bytes | Path", *, context: int = 3
    ) -> str:
        """Unified diff from ``prior`` to this report; "" when identical."""
        return report_diff(prior, self, context=context)

    def write(self, path: str | Path) -> Path:
        """Write this report's canonical bytes atomically to ``path``."""
        return write_report(self, path)
