"""Calibration validation: check a dataset against the paper's targets.

Every statistic the paper publishes that :mod:`repro.datagen` calibrates
for is encoded here as a named check with its tolerance.  Used by the test
suite and available to downstream users generating custom configurations
(different scales/seeds) to confirm the replica still matches the paper's
shape before drawing conclusions from it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.characterization import (
    lifetime_size_correlation,
    utilization_breakdown,
)
from repro.core.contention import contention_daily_stats, contention_summary
from repro.core.dataset import SAPCloudDataset
from repro.core.heatmaps import free_resource_heatmap


@dataclass(frozen=True)
class CheckResult:
    """One calibration check's outcome."""

    name: str
    passed: bool
    measured: float
    expectation: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: measured {self.measured:.3f} ({self.expectation})"


@dataclass(frozen=True)
class ValidationReport:
    """All calibration checks for one dataset."""

    checks: tuple[CheckResult, ...]

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        lines = [str(c) for c in self.checks]
        lines.append(
            f"{sum(c.passed for c in self.checks)}/{len(self.checks)} "
            f"calibration checks passed"
        )
        return "\n".join(lines)


def validate_dataset(dataset: SAPCloudDataset) -> ValidationReport:
    """Run every calibration check against ``dataset``."""
    checks: list[CheckResult] = []

    def check(name: str, measured: float, low: float, high: float) -> None:
        checks.append(
            CheckResult(
                name=name,
                passed=low <= measured <= high,
                measured=float(measured),
                expectation=f"expected in [{low}, {high}]",
            )
        )

    # Fig 14a: CPU overprovisioning.
    cpu = utilization_breakdown(dataset, "cpu")
    check("fig14a.cpu_underutilized_share", cpu.underutilized, 0.80, 1.0)
    check("fig14a.cpu_optimal_exceeds_over", cpu.optimal - cpu.overutilized, 0.0, 1.0)

    # Fig 14b: memory three-way split.
    mem = utilization_breakdown(dataset, "memory")
    check("fig14b.mem_underutilized_share", mem.underutilized, 0.28, 0.48)
    check("fig14b.mem_optimal_share", mem.optimal, 0.04, 0.18)
    check("fig14b.mem_overutilized_share", mem.overutilized, 0.40, 0.65)

    # Tables 1-2: size-class marginals.
    vcpus = np.asarray(dataset.vms["vcpus"], dtype=float)
    ram = np.asarray(dataset.vms["ram_gib"], dtype=float)
    check("table1.small_share", float(np.mean(vcpus <= 4)), 0.57, 0.69)
    check(
        "table1.medium_share",
        float(np.mean((vcpus > 4) & (vcpus <= 16))), 0.26, 0.38,
    )
    check("table2.medium_share", float(np.mean((ram > 2) & (ram <= 64))), 0.85, 0.96)
    xlarge_ram = float(np.mean(ram > 128))
    check("table2.xlarge_share", xlarge_ram, 0.02, 0.08)

    # Fig 9: contention profile.
    daily = contention_daily_stats(dataset)
    summary = contention_summary(dataset)
    check("fig9.worst_daily_mean_pct", float(np.max(daily["mean"])), 0.0, 5.0)
    check("fig9.overall_max_pct", summary.overall_max, 40.0, 100.0)
    check(
        "fig9.share_nodes_above_strict",
        summary.nodes_above_strict / summary.node_count, 0.005, 0.25,
    )

    # Fig 5: CPU imbalance.
    cpu_map = free_resource_heatmap(dataset, "cpu")
    check("fig5.min_cell_free_pct", float(np.nanmin(cpu_map.matrix)), 0.0, 30.0)
    check("fig5.max_cell_free_pct", float(np.nanmax(cpu_map.matrix)), 85.0, 100.0)

    # Figs 11-12: idle network.
    tx_map = free_resource_heatmap(dataset, "network_tx")
    check("fig11.min_free_tx_pct", float(np.nanmin(tx_map.column_means())), 85.0, 100.0)

    # Fig 13: storage unevenness.
    storage = free_resource_heatmap(dataset, "storage").column_means()
    check("fig13.share_hosts_over_90_free", float(np.mean(storage > 90)), 0.04, 0.35)
    check("fig13.share_hosts_over_30_used", float(np.mean(storage < 70)), 0.0, 0.20)

    # Fig 15: lifetimes.
    lifetimes = np.asarray(dataset.vms["lifetime_seconds"], dtype=float)
    check("fig15.min_lifetime_hours", lifetimes.min() / 3600.0, 0.0, 24.0)
    check("fig15.max_lifetime_years", lifetimes.max() / (365 * 86_400.0), 1.0, 50.0)
    check(
        "fig15.size_lifetime_correlation",
        abs(lifetime_size_correlation(dataset)), 0.0, 0.35,
    )

    return ValidationReport(checks=tuple(checks))
