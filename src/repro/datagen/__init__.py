"""Calibrated synthetic regeneration of the SAP Cloud Infrastructure trace.

The build environment cannot download the Zenodo archive, so this package
generates a statistically equivalent dataset: the topology of the studied
region, a VM population matching Tables 1–2, demand processes reproducing
the Fig 14 utilisation CDFs, per-node telemetry with the contention/ready
characteristics of Figs 8–9, and the lifetime spectrum of Fig 15.  See
DESIGN.md for the substitution rationale and the calibration target list.
"""

from repro.datagen.config import GeneratorConfig
from repro.datagen.population import FLAVOR_MIX, VMRecord, sample_population
from repro.datagen.generator import generate_dataset

__all__ = [
    "GeneratorConfig",
    "FLAVOR_MIX",
    "VMRecord",
    "sample_population",
    "generate_dataset",
]
