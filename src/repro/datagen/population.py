"""VM population sampling calibrated to Tables 1 and 2.

``FLAVOR_MIX`` assigns selection weights to the default flavor catalogue so
that the sampled population reproduces the paper's marginal distributions:

- by vCPU (Table 1): small ≤4 → 62.7%, medium ≤16 → 31.6%,
  large ≤64 → 4.0%, xlarge >64 → 1.6%;
- by RAM GiB (Table 2): small ≤2 → 2.2%, medium ≤64 → 91.3%,
  large ≤128 → 1.7%, xlarge >128 → 4.8%.

Lifetimes and demand processes come from the per-profile models in
:mod:`repro.workloads`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.infrastructure.flavors import Flavor, FlavorCatalog, default_catalog
from repro.workloads.demand import DemandModel, VMDemand
from repro.workloads.lifetime import sample_lifetime
from repro.workloads.profiles import profile_for_flavor

#: (flavor name, sampling weight); weights are normalised at use.  Chosen so
#: the vCPU and RAM class marginals land on the Table 1/2 proportions.
FLAVOR_MIX: tuple[tuple[str, float], ...] = (
    ("g_c1_m1", 0.010),
    ("g_c1_m2", 0.012),
    ("g_c2_m4", 0.180),
    ("g_c2_m8", 0.150),
    ("g_c4_m8", 0.100),
    ("g_c4_m16", 0.100),
    ("g_c4_m32", 0.075),
    ("g_c8_m32", 0.120),
    ("g_c8_m64", 0.090),
    ("g_c16_m64", 0.095),
    ("g_c16_m128", 0.0000),
    ("h_c16_m256", 0.011),
    ("g_c32_m128", 0.017),
    ("g_c32_m256", 0.006),
    ("g_c64_m256", 0.005),
    ("h_c32_m512", 0.006),
    ("h_c48_m768", 0.004),
    ("h_c64_m1024", 0.0024),
    ("h_c80_m1536", 0.006),
    ("h_c96_m2048", 0.004),
    ("h_c96_m3072", 0.003),
    ("h_c112_m4096", 0.0015),
    ("h_c128_m6144", 0.001),
    ("h_c128_m12288", 0.0008),
)


@dataclass
class VMRecord:
    """One sampled VM before/after placement."""

    vm_id: str
    flavor: Flavor
    profile_name: str
    tenant: str
    created_at: float
    deleted_at: float | None  # None = alive past the window end
    demand: VMDemand
    node_id: str | None = None
    bb_id: str | None = None
    dc_id: str | None = None
    az: str | None = None
    #: (time, source_node, target_node) migrations within the window.
    migrations: list[tuple[float, str, str]] = field(default_factory=list)
    #: (time, old_flavor, new_flavor) resizes within the window.
    resizes: list[tuple[float, Flavor, Flavor]] = field(default_factory=list)

    @property
    def alive_at_start(self) -> bool:
        return self.created_at <= 0 or self.created_at < self.deleted_or_inf

    @property
    def deleted_or_inf(self) -> float:
        return np.inf if self.deleted_at is None else self.deleted_at

    def lifetime_seconds(self, now: float) -> float:
        end = self.deleted_at if self.deleted_at is not None else now
        return max(0.0, end - self.created_at)


def _pick_flavors(
    catalog: FlavorCatalog, rng: np.random.Generator, n: int
) -> list[Flavor]:
    names = [name for name, w in FLAVOR_MIX if w > 0]
    weights = np.asarray([w for _, w in FLAVOR_MIX if w > 0])
    weights = weights / weights.sum()
    choices = rng.choice(len(names), size=n, p=weights)
    return [catalog.get(names[int(c)]) for c in choices]


def sample_population(
    n_initial: int,
    window_start: float,
    window_end: float,
    rng: np.random.Generator,
    churn_fraction: float = 0.15,
    catalog: FlavorCatalog | None = None,
    n_tenants: int = 40,
) -> list[VMRecord]:
    """Sample the VM population of one region.

    ``n_initial`` VMs exist when the window opens (their ``created_at`` lies
    in the past, giving the retrospective lifetimes of Fig 15); an
    additional ``churn_fraction * n_initial`` VMs arrive during the window.
    Deletions happen when a VM's sampled residual lifetime expires inside
    the window.
    """
    if n_initial < 1:
        raise ValueError("n_initial must be positive")
    catalog = catalog or default_catalog()
    demand_model = DemandModel(rng)
    records: list[VMRecord] = []

    def make_record(index: int, created_at: float, initial: bool) -> VMRecord:
        flavor = flavors[index]
        profile = profile_for_flavor(flavor, rng)
        demand = demand_model.demand_for(flavor, profile)
        if initial:
            # VMs observed alive at the window start are a length-biased
            # sample of the lifetime distribution (a VM of lifetime L is
            # alive at a random instant with probability proportional to L).
            # Draw a few candidates, pick one with probability ~ L, then
            # place the observation instant uniformly inside the lifetime.
            candidates = np.asarray(
                [sample_lifetime(profile.name, rng) for _ in range(4)]
            )
            lifetime = float(rng.choice(candidates, p=candidates / candidates.sum()))
            age = float(rng.uniform(0.0, lifetime))
            created = window_start - age
            deleted = created + lifetime
        else:
            created = created_at
            deleted = created + sample_lifetime(profile.name, rng)
        deleted_at = deleted if deleted < window_end else None
        return VMRecord(
            vm_id=f"vm-{index:06d}",
            flavor=flavor,
            profile_name=profile.name,
            tenant=f"tenant-{rng.integers(0, n_tenants):03d}",
            created_at=created,
            deleted_at=deleted_at,
            demand=demand,
        )

    n_churn = int(round(n_initial * churn_fraction))
    flavors = _pick_flavors(catalog, rng, n_initial + n_churn)
    for i in range(n_initial):
        records.append(make_record(i, window_start, initial=True))
    arrival_times = np.sort(rng.uniform(window_start, window_end, n_churn))
    for j, arrival in enumerate(arrival_times):
        records.append(make_record(n_initial + j, float(arrival), initial=False))
    return records
