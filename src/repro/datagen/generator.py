"""End-to-end dataset generation.

Pipeline: build the regional topology → sample the VM population → place it
(pack-vs-spread per building block policy, §3.2) → sprinkle migrations →
evaluate per-VM demand on the sampling grid → resolve node-level CPU through
the host scheduler model (ready time, contention) → emit the Table 4 metric
catalogue into a :class:`~repro.telemetry.store.MetricStore` → assemble a
:class:`~repro.core.dataset.SAPCloudDataset`.

Calibration knobs and their paper targets are documented inline and in
DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import SAPCloudDataset
from repro.datagen.config import GeneratorConfig
from repro.datagen.population import VMRecord, sample_population
from repro.frame import Frame
from repro.infrastructure.capacity import Capacity
from repro.infrastructure.hierarchy import BuildingBlock, ComputeNode, Region
from repro.infrastructure.topology import build_region, paper_region_spec
from repro.infrastructure.vm import VM
from repro.simulation.hostsched import HostCpuModel
from repro.telemetry.store import MetricStore
from repro.telemetry.timeseries import TimeSeries

_KBPS_PER_GBPS = 1e6  # 1 Gbit/s = 1e6 kbit/s


def generate_dataset(config: GeneratorConfig | None = None) -> SAPCloudDataset:
    """Generate a calibrated synthetic regional dataset."""
    config = config or GeneratorConfig()
    rng = np.random.default_rng(config.seed)

    region = build_region(paper_region_spec(scale=config.scale))
    nodes = list(region.iter_nodes())
    n_vms = max(10, int(round(len(nodes) * config.vms_per_node)))
    records = sample_population(
        n_initial=n_vms,
        window_start=config.window_start,
        window_end=config.window_end,
        rng=rng,
        churn_fraction=config.churn_fraction,
    )

    placed, unplaced = _place_population(region, records, rng)
    _assign_migrations(region, placed, config, rng)
    _assign_resizes(placed, config, rng)

    grid = config.window_start + config.sampling_seconds * np.arange(
        int(config.days * 86_400 / config.sampling_seconds)
    )
    store = MetricStore()
    node_acc = _accumulate_demand(placed, nodes, grid, config, store)
    hotspots = _select_hotspots(region, rng, config)
    _emit_node_metrics(nodes, node_acc, grid, hotspots, store, config, rng)
    _emit_nova_gauges(region, placed, store, config)

    dataset = SAPCloudDataset(
        nodes=_nodes_frame(nodes, hotspots, region),
        vms=_vms_frame(placed, config),
        events=_events_frame(placed, config),
        store=store,
        meta={
            "generator": "repro.datagen",
            "seed": config.seed,
            "scale": config.scale,
            "window_start": config.window_start,
            "window_end": config.window_end,
            "sampling_seconds": config.sampling_seconds,
            "unplaced_vms": len(unplaced),
            "hotspot_nodes": sorted(hotspots),
        },
    )
    return dataset


# -- placement -------------------------------------------------------------------


def _place_population(
    region: Region, records: list[VMRecord], rng: np.random.Generator
) -> tuple[list[VMRecord], list[VMRecord]]:
    """Assign every VM a building block and node.

    General-purpose BBs get independently drawn CPU fill targets — the
    source of the strong inter-node imbalance of Figs 5–6.  HANA BBs are
    bin-packed on memory (§3.2).  Within a BB, "spread" picks the least
    CPU-allocated node and "pack" the most memory-allocated node that fits.
    """
    bbs = list(region.iter_building_blocks())
    general_bbs = [bb for bb in bbs if not bb.aggregate_class.startswith(("hana", "gpu"))]
    hana_bbs = [bb for bb in bbs if bb.aggregate_class.startswith("hana")]
    hana_xl_bbs = [bb for bb in hana_bbs if bb.aggregate_class == "hana_xl"]
    if not general_bbs or not hana_bbs:
        raise ValueError("topology must contain general and HANA building blocks")

    # Per-BB CPU fill targets: a wide Beta keeps many BBs cool and a few
    # warm, so the per-node free-CPU heatmap spans ~10%..>90% (Fig 5).
    # The cap at ~0.72 of allocatable vCPUs keeps organic (non-hotspot)
    # contention rare, matching Fig 9's low fleet mean/p95.
    fill_target = {
        bb.bb_id: float(rng.beta(1.1, 1.4)) * 0.42 + 0.04 for bb in general_bbs
    }
    for bb in hana_bbs:
        fill_target[bb.bb_id] = float(rng.uniform(0.75, 0.97))

    tally = _AllocationTally(bbs)
    plain_hana = [bb for bb in hana_bbs if bb.aggregate_class == "hana"]
    placed: list[VMRecord] = []
    unplaced: list[VMRecord] = []
    for record in records:
        flavor = record.flavor
        if flavor.spec("aggregate_class") == "hana_xl":
            candidates = hana_xl_bbs or hana_bbs
        elif flavor.family == "hana":
            candidates = plain_hana or hana_bbs
        else:
            candidates = general_bbs
        bb = _pick_building_block(candidates, flavor, fill_target, tally, rng)
        node = tally.pick_node(bb, flavor) if bb is not None else None
        if bb is None or node is None:
            # Fall back to anywhere legal with room.
            for fallback in candidates:
                node = tally.pick_node(fallback, flavor)
                if node is not None:
                    bb = fallback
                    break
        if bb is None or node is None:
            unplaced.append(record)
            continue
        vm = VM(
            vm_id=record.vm_id,
            flavor=flavor,
            tenant=record.tenant,
            created_at=record.created_at,
        )
        node.add_vm(vm)
        tally.book(bb, node, flavor)
        record.node_id = node.node_id
        record.bb_id = bb.bb_id
        record.dc_id = bb.datacenter
        record.az = bb.az
        placed.append(record)
    return placed, unplaced


class _AllocationTally:
    """Incremental allocation bookkeeping for the placement loop.

    Recomputing ``bb.allocated()`` scans every resident VM and is quadratic
    over a 48k-VM placement run; this keeps running per-BB and per-node
    totals instead.
    """

    def __init__(self, bbs: list[BuildingBlock]) -> None:
        self.bb_vcpus: dict[str, float] = {}
        self.bb_mem: dict[str, float] = {}
        self.node_vcpus: dict[str, float] = {}
        self.node_mem: dict[str, float] = {}
        self.node_disk: dict[str, float] = {}
        self._node_limits: dict[str, tuple[float, float, float]] = {}
        self.bb_allocatable: dict[str, Capacity] = {}
        for bb in bbs:
            self.bb_vcpus[bb.bb_id] = 0.0
            self.bb_mem[bb.bb_id] = 0.0
            self.bb_allocatable[bb.bb_id] = bb.overcommit.allocatable(bb.physical())
            for node in bb.iter_nodes():
                self.node_vcpus[node.node_id] = 0.0
                self.node_mem[node.node_id] = 0.0
                self.node_disk[node.node_id] = 0.0
                allocatable = bb.overcommit.allocatable(node.physical)
                self._node_limits[node.node_id] = (
                    allocatable.vcpus,
                    allocatable.memory_mb,
                    allocatable.disk_gb,
                )

    def fits(self, node: ComputeNode, flavor) -> bool:
        limit_v, limit_m, limit_d = self._node_limits[node.node_id]
        return (
            self.node_vcpus[node.node_id] + flavor.vcpus <= limit_v
            and self.node_mem[node.node_id] + flavor.ram_mb <= limit_m
            and self.node_disk[node.node_id] + flavor.disk_gb <= limit_d
        )

    def pick_node(self, bb: BuildingBlock, flavor) -> ComputeNode | None:
        """Node choice inside a BB honouring the BB policy."""
        fitting = [n for n in bb.iter_nodes() if self.fits(n, flavor)]
        if not fitting:
            return None
        if bb.policy == "pack":
            # Most memory-allocated first: fill nodes before opening new
            # ones.
            return max(
                fitting,
                key=lambda n: (
                    self.node_mem[n.node_id] / n.physical.memory_mb,
                    n.node_id,
                ),
            )
        return min(
            fitting,
            key=lambda n: (self.node_vcpus[n.node_id] / n.physical.vcpus, n.node_id),
        )

    def book(self, bb: BuildingBlock, node: ComputeNode, flavor) -> None:
        self.bb_vcpus[bb.bb_id] += flavor.vcpus
        self.bb_mem[bb.bb_id] += flavor.ram_mb
        self.node_vcpus[node.node_id] += flavor.vcpus
        self.node_mem[node.node_id] += flavor.ram_mb
        self.node_disk[node.node_id] += flavor.disk_gb


def _pick_building_block(
    candidates: list[BuildingBlock],
    flavor,
    fill_target: dict[str, float],
    tally: "_AllocationTally",
    rng: np.random.Generator,
) -> BuildingBlock | None:
    """Weighted BB choice by remaining room below the BB's fill target."""
    weights = []
    for bb in candidates:
        allocatable = tally.bb_allocatable[bb.bb_id]
        if flavor.family == "hana":
            room = (
                fill_target[bb.bb_id] * allocatable.memory_mb
                - tally.bb_mem[bb.bb_id]
            )
        else:
            room = (
                fill_target[bb.bb_id] * allocatable.vcpus
                - tally.bb_vcpus[bb.bb_id]
            )
        weights.append(max(0.0, room))
    total = sum(weights)
    if total <= 0:
        # Every BB is at target; pick by absolute free capacity instead.
        weights = []
        for bb in candidates:
            allocatable = tally.bb_allocatable[bb.bb_id]
            free_vcpus = allocatable.vcpus - tally.bb_vcpus[bb.bb_id]
            free_mem = allocatable.memory_mb - tally.bb_mem[bb.bb_id]
            weights.append(max(0.0, free_vcpus + free_mem / 1024.0))
        total = sum(weights)
        if total <= 0:
            return None
    probabilities = np.asarray(weights) / total
    return candidates[int(rng.choice(len(candidates), p=probabilities))]


def _assign_migrations(
    region: Region,
    placed: list[VMRecord],
    config: GeneratorConfig,
    rng: np.random.Generator,
) -> None:
    """Give ~1% of long-running VMs one intra-BB migration in the window.

    These cause the abrupt purple→yellow memory shifts of Fig 10 and feed
    the dataset's migration events.
    """
    bb_nodes = {
        bb.bb_id: list(bb.nodes) for bb in region.iter_building_blocks()
    }
    for record in placed:
        if record.node_id is None or record.bb_id is None:
            continue
        ends = record.deleted_at if record.deleted_at is not None else config.window_end
        alive_span = ends - max(record.created_at, config.window_start)
        if alive_span < 2 * 86_400 or rng.random() > 0.01:
            continue
        peers = [n for n in bb_nodes[record.bb_id] if n != record.node_id]
        if not peers:
            continue
        when = float(
            rng.uniform(
                max(record.created_at, config.window_start) + 3_600, ends - 3_600
            )
        )
        target = peers[int(rng.integers(0, len(peers)))]
        record.migrations.append((when, record.node_id, target))


def _assign_resizes(
    placed: list[VMRecord],
    config: GeneratorConfig,
    rng: np.random.Generator,
) -> None:
    """Give ~0.5% of long-running general VMs one in-window resize.

    Resizes are among the scheduling-relevant events the dataset records
    (§4).  The VM steps to the next-larger same-family flavor; its demand
    scales proportionally from the resize instant.
    """
    from repro.infrastructure.flavors import default_catalog

    catalog = default_catalog()
    by_family: dict[str, list] = {}
    for flavor in catalog:
        by_family.setdefault(flavor.family, []).append(flavor)
    for flavors in by_family.values():
        flavors.sort(key=lambda f: (f.vcpus, f.ram_gib))

    for record in placed:
        if record.node_id is None or rng.random() > 0.005:
            continue
        ends = record.deleted_at if record.deleted_at is not None else config.window_end
        alive_span = ends - max(record.created_at, config.window_start)
        if alive_span < 2 * 86_400:
            continue
        family = by_family.get(record.flavor.family, [])
        bigger = [
            f
            for f in family
            if f.vcpus > record.flavor.vcpus
            and f.spec("aggregate_class") == record.flavor.spec("aggregate_class")
        ]
        if not bigger:
            continue
        when = float(
            rng.uniform(
                max(record.created_at, config.window_start) + 3_600, ends - 3_600
            )
        )
        record.resizes.append((when, record.flavor, bigger[0]))


def _select_hotspots(
    region: Region, rng: np.random.Generator, config: GeneratorConfig
) -> dict[str, tuple[float, float]]:
    """Pick hotspot nodes and their demand inflation.

    Returns node_id -> (multiplier, offset_fraction): hot demand is
    ``demand * multiplier + offset_fraction * cores``.  The additive part
    keeps the overload *persistent* through the day — Fig 9's contention
    shows no weekday/weekend effect — while the diurnal base provides the
    10–30% band with peaks beyond 40% on the hottest nodes, and the fleet
    mean/p95 stay below 5% because only a few nodes are inflated.
    """
    general_nodes = [
        n
        for bb in region.iter_building_blocks()
        if not bb.aggregate_class.startswith(("hana", "gpu"))
        for n in bb.iter_nodes()
        if n.vm_count > 0
    ]
    if not general_nodes:
        return {}
    # Prefer the busiest nodes: contention needs resident demand to amplify.
    general_nodes.sort(key=lambda n: -n.allocated().vcpus)
    total_nodes = region.node_count
    count = max(2, int(round(len(general_nodes) * config.hotspot_fraction)))
    # Keep hotspots below ~4% of the fleet so the cross-node p95 stays low
    # while the maxima spike (Fig 9's mean/p95 < 5% with >40% outliers).
    count = min(count, max(1, int(total_nodes * 0.04)))
    chosen = general_nodes[: min(count, len(general_nodes))]
    inflation = {}
    for i, node in enumerate(chosen):
        # The first few run hottest (>40% contention outliers); the rest
        # land in the persistent 10–30% band.
        if i < max(1, len(chosen) // 4):
            inflation[node.node_id] = (
                float(rng.uniform(1.1, 1.2)),
                float(rng.uniform(0.9, 1.05)),
            )
        else:
            inflation[node.node_id] = (
                float(rng.uniform(1.0, 1.1)),
                float(rng.uniform(0.55, 0.75)),
            )
    return inflation


# -- demand accumulation -------------------------------------------------------


class _NodeAccumulator:
    """Per-node demand accumulators over the sampling grid."""

    __slots__ = ("cpu_cores", "memory_mb", "net_tx", "net_rx", "disk_gb")

    def __init__(self, n: int) -> None:
        self.cpu_cores = np.zeros(n)
        self.memory_mb = np.zeros(n)
        self.net_tx = np.zeros(n)
        self.net_rx = np.zeros(n)
        self.disk_gb = np.zeros(n)


def _accumulate_demand(
    placed: list[VMRecord],
    nodes: list[ComputeNode],
    grid: np.ndarray,
    config: GeneratorConfig,
    store: MetricStore,
) -> dict[str, _NodeAccumulator]:
    """Evaluate every VM's demand and add it to its node's accumulators.

    Also fills each record's lifetime-average utilisation ratios (Fig 14)
    and stores full VM-level series for the first ``vm_series_limit`` VMs.
    """
    acc = {node.node_id: _NodeAccumulator(len(grid)) for node in nodes}
    stored_series = 0
    for record in placed:
        start = max(record.created_at, grid[0])
        end = record.deleted_or_inf
        i0 = int(np.searchsorted(grid, start, side="left"))
        i1 = int(np.searchsorted(grid, end, side="left"))
        if i1 <= i0:
            # Lifetime falls between samples; derive ratios directly.
            probe = np.linspace(start, min(end, config.window_end), 8)
            snapshot = record.demand.evaluate(probe)
            record.demand_cpu_avg = float(np.mean(snapshot.cpu_ratio))
            record.demand_mem_avg = float(np.mean(snapshot.memory_ratio))
            continue
        window_grid = grid[i0:i1]
        snapshot = record.demand.evaluate(window_grid)
        record.demand_cpu_avg = float(np.mean(snapshot.cpu_ratio))
        record.demand_mem_avg = float(np.mean(snapshot.memory_ratio))
        _apply_resize_scaling(record, window_grid, snapshot)

        segments = _node_segments(record, window_grid)
        for node_id, seg0, seg1 in segments:
            node_acc = acc.get(node_id)
            if node_acc is None:
                continue
            sl_local = slice(seg0, seg1)
            sl_global = slice(i0 + seg0, i0 + seg1)
            node_acc.cpu_cores[sl_global] += snapshot.cpu_cores[sl_local]
            node_acc.memory_mb[sl_global] += snapshot.memory_mb[sl_local]
            node_acc.net_tx[sl_global] += snapshot.network_tx_kbps[sl_local]
            node_acc.net_rx[sl_global] += snapshot.network_rx_kbps[sl_local]
            node_acc.disk_gb[sl_global] += snapshot.disk_gb[sl_local]

        if stored_series < config.vm_series_limit:
            labels = {"virtualmachine": record.vm_id, "hostsystem": record.node_id or ""}
            store.append_series(
                "vrops_virtualmachine_cpu_usage_ratio",
                labels,
                TimeSeries(window_grid, snapshot.cpu_ratio),
            )
            store.append_series(
                "vrops_virtualmachine_memory_consumed_ratio",
                labels,
                TimeSeries(window_grid, snapshot.memory_ratio),
            )
            stored_series += 1
    return acc


def _apply_resize_scaling(record: VMRecord, window_grid, snapshot) -> None:
    """Scale absolute demand from each resize instant onward.

    Utilisation *ratios* stay unchanged (the workload keeps the same
    relative intensity against its new allocation); the absolute cores,
    memory, and traffic grow with the flavor.
    """
    for when, old_flavor, new_flavor in record.resizes:
        split = int(np.searchsorted(window_grid, when, side="left"))
        if split >= len(window_grid):
            continue
        cpu_ratio = new_flavor.vcpus / old_flavor.vcpus
        mem_ratio = new_flavor.ram_mb / old_flavor.ram_mb
        snapshot.cpu_cores[split:] *= cpu_ratio
        snapshot.memory_mb[split:] *= mem_ratio
        snapshot.network_tx_kbps[split:] *= cpu_ratio
        snapshot.network_rx_kbps[split:] *= cpu_ratio


def _node_segments(
    record: VMRecord, window_grid: np.ndarray
) -> list[tuple[str, int, int]]:
    """Split a VM's alive window into per-node index segments (migrations)."""
    if record.node_id is None:
        return []
    if not record.migrations:
        return [(record.node_id, 0, len(window_grid))]
    segments: list[tuple[str, int, int]] = []
    current = record.migrations[0][1]
    cursor = 0
    for when, _source, target in sorted(record.migrations):
        split = int(np.searchsorted(window_grid, when, side="left"))
        if split > cursor:
            segments.append((current, cursor, split))
        current = target
        cursor = max(cursor, split)
    if cursor < len(window_grid):
        segments.append((current, cursor, len(window_grid)))
    return segments


# -- metric emission -----------------------------------------------------------


def _node_labels(node: ComputeNode) -> dict[str, str]:
    return {
        "hostsystem": node.node_id,
        "building_block": node.building_block,
        "datacenter": node.datacenter,
        "availability_zone": node.az,
    }


def _emit_node_metrics(
    nodes: list[ComputeNode],
    acc: dict[str, _NodeAccumulator],
    grid: np.ndarray,
    hotspots: dict[str, tuple[float, float]],
    store: MetricStore,
    config: GeneratorConfig,
    rng: np.random.Generator,
) -> None:
    """Resolve accumulated demand into the vrops_hostsystem_* series."""
    # One "exceptional situation" (Fig 8's ~30-minute outliers early in the
    # window): the hottest node briefly doubles its demand on day 1-2.
    incident_node = (
        max(hotspots, key=lambda n: hotspots[n][1]) if hotspots else None
    )
    incident_mask = (grid >= grid[0] + 86_400) & (grid < grid[0] + 2 * 86_400)
    for node in nodes:
        a = acc[node.node_id]
        model = HostCpuModel(node.physical.vcpus, efficiency=0.97)
        multiplier, offset = hotspots.get(node.node_id, (1.0, 0.0))
        demand = a.cpu_cores * multiplier + offset * model.usable_cores
        if node.node_id == incident_node:
            demand = demand * np.where(incident_mask, 2.0, 1.0)
        used_frac, ready_ms, contention = model.resolve_series(
            demand, config.sampling_seconds
        )
        # Hypervisor overhead floor of ~2% CPU and ~4% memory.
        used_frac = np.clip(used_frac + 0.02, 0.0, 1.0)
        mem_frac = np.clip(
            a.memory_mb / node.physical.memory_mb + 0.04, 0.0, 1.0
        )
        nic_kbps = node.physical.network_gbps * _KBPS_PER_GBPS
        tx = np.clip(a.net_tx, 0.0, nic_kbps)
        rx = np.clip(a.net_rx, 0.0, nic_kbps)
        # Local storage: VM volumes live on external block storage (Cinder);
        # only an ephemeral/cache share (~8%) of VM disk hits the node's
        # local disks, on top of a static base (images, logs) calibrated to
        # Fig 13: ~18% of hosts stay >90% free and ~7% exceed 30% used.
        roll = rng.random()
        if roll < 0.15:
            base_fraction = rng.uniform(0.0, 0.045)
        elif roll < 0.22:
            base_fraction = rng.uniform(0.32, 0.60)
        else:
            base_fraction = rng.uniform(0.11, 0.27)
        disk_gb = np.clip(
            0.08 * a.disk_gb + base_fraction * node.physical.disk_gb,
            0.0,
            node.physical.disk_gb,
        )
        labels = _node_labels(node)
        for metric, values in (
            ("vrops_hostsystem_cpu_core_utilization_percentage", 100.0 * used_frac),
            ("vrops_hostsystem_cpu_contention_percentage", 100.0 * contention),
            ("vrops_hostsystem_cpu_ready_milliseconds", ready_ms),
            ("vrops_hostsystem_memory_usage_percentage", 100.0 * mem_frac),
            ("vrops_hostsystem_network_bytes_tx_kbps", tx),
            ("vrops_hostsystem_network_bytes_rx_kbps", rx),
            ("vrops_hostsystem_diskspace_usage_gigabytes", disk_gb),
        ):
            store.append_series(metric, labels, TimeSeries(grid, values))


def _emit_nova_gauges(
    region: Region,
    placed: list[VMRecord],
    store: MetricStore,
    config: GeneratorConfig,
) -> None:
    """Daily openstack_compute_* gauges per building block + instance total."""
    days = np.arange(config.window_start, config.window_end, 86_400.0)
    by_bb: dict[str, list[VMRecord]] = {}
    for record in placed:
        if record.bb_id is not None:
            by_bb.setdefault(record.bb_id, []).append(record)
    total_alive = np.zeros(len(days))
    for bb in region.iter_building_blocks():
        residents = by_bb.get(bb.bb_id, [])
        allocatable = bb.overcommit.allocatable(bb.physical())
        vcpus_used = np.zeros(len(days))
        mem_used = np.zeros(len(days))
        for record in residents:
            alive = (np.asarray(days) >= record.created_at) & (
                np.asarray(days) < record.deleted_or_inf
            )
            vcpus = np.full(len(days), float(record.flavor.vcpus))
            mem = np.full(len(days), float(record.flavor.ram_mb))
            for when, _old, new_flavor in record.resizes:
                after = np.asarray(days) >= when
                vcpus[after] = new_flavor.vcpus
                mem[after] = new_flavor.ram_mb
            vcpus_used += alive * vcpus
            mem_used += alive * mem
            total_alive += alive
        labels = {
            "compute_host": bb.bb_id,
            "datacenter": bb.datacenter,
            "availability_zone": bb.az,
        }
        store.append_series(
            "openstack_compute_nodes_vcpus_gauge",
            labels,
            TimeSeries(days, np.full(len(days), allocatable.vcpus)),
        )
        store.append_series(
            "openstack_compute_nodes_vcpus_used_gauge",
            labels, TimeSeries(days, vcpus_used),
        )
        store.append_series(
            "openstack_compute_nodes_memory_mb_gauge",
            labels,
            TimeSeries(days, np.full(len(days), allocatable.memory_mb)),
        )
        store.append_series(
            "openstack_compute_nodes_memory_mb_used_gauge",
            labels, TimeSeries(days, mem_used),
        )
    store.append_series(
        "openstack_compute_instances_total",
        {"region": region.region_id},
        TimeSeries(days, total_alive),
    )


# -- output frames --------------------------------------------------------------


def _nodes_frame(
    nodes: list[ComputeNode], hotspots: dict[str, tuple[float, float]], region: Region
) -> Frame:
    bb_policy = {bb.bb_id: bb.policy for bb in region.iter_building_blocks()}
    bb_class = {bb.bb_id: bb.aggregate_class for bb in region.iter_building_blocks()}
    return Frame.from_records(
        [
            {
                "node_id": n.node_id,
                "bb_id": n.building_block,
                "dc_id": n.datacenter,
                "az": n.az,
                "cores": n.physical.vcpus,
                "memory_mb": n.physical.memory_mb,
                "disk_gb": n.physical.disk_gb,
                "nic_gbps": n.physical.network_gbps,
                "policy": bb_policy.get(n.building_block, "spread"),
                "aggregate_class": bb_class.get(n.building_block, ""),
                "hotspot": 1 if n.node_id in hotspots else 0,
            }
            for n in nodes
        ]
    )


def _vms_frame(placed: list[VMRecord], config: GeneratorConfig) -> Frame:
    records = []
    for r in placed:
        lifetime_end = r.deleted_at if r.deleted_at is not None else config.window_end
        records.append(
            {
                "vm_id": r.vm_id,
                "flavor": r.flavor.name,
                "family": r.flavor.family,
                "profile": r.profile_name,
                "vcpus": r.flavor.vcpus,
                "ram_gib": r.flavor.ram_gib,
                "disk_gb": r.flavor.disk_gb,
                "vcpu_class": r.flavor.vcpu_class,
                "ram_class": r.flavor.ram_class,
                "tenant": r.tenant,
                "node_id": r.node_id,
                "bb_id": r.bb_id,
                "dc_id": r.dc_id,
                "az": r.az,
                "created_at": r.created_at,
                "deleted_at": np.nan if r.deleted_at is None else r.deleted_at,
                "lifetime_seconds": lifetime_end - r.created_at,
                "cpu_avg_ratio": getattr(r, "demand_cpu_avg", r.demand.cpu_mean),
                "mem_avg_ratio": getattr(r, "demand_mem_avg", r.demand.mem_mean),
                "migrations": len(r.migrations),
                "resizes": len(r.resizes),
            }
        )
    return Frame.from_records(records)


def _events_frame(placed: list[VMRecord], config: GeneratorConfig) -> Frame:
    events = []
    for r in placed:
        if r.created_at >= config.window_start:
            events.append(
                {
                    "time": r.created_at,
                    "event": "create",
                    "vm_id": r.vm_id,
                    "source": "",
                    "target": r.node_id or "",
                }
            )
        for when, source, target in r.migrations:
            events.append(
                {
                    "time": when,
                    "event": "migrate",
                    "vm_id": r.vm_id,
                    "source": source,
                    "target": target,
                }
            )
        for when, old_flavor, new_flavor in r.resizes:
            events.append(
                {
                    "time": when,
                    "event": "resize",
                    "vm_id": r.vm_id,
                    "source": old_flavor.name,
                    "target": new_flavor.name,
                }
            )
        if r.deleted_at is not None and r.deleted_at <= config.window_end:
            events.append(
                {
                    "time": r.deleted_at,
                    "event": "delete",
                    "vm_id": r.vm_id,
                    "source": r.node_id or "",
                    "target": "",
                }
            )
    events.sort(key=lambda e: e["time"])
    if not events:
        return Frame.empty(["time", "event", "vm_id", "source", "target"])
    return Frame.from_records(events)
