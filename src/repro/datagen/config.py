"""Generator configuration."""

from __future__ import annotations

from dataclasses import dataclass

#: 2024-07-31 00:00:00 UTC — the start of the paper's observation window.
PAPER_WINDOW_START = 1_722_384_000.0


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic trace generator.

    Defaults target a laptop-friendly ~10% replica of the studied region;
    ``scale=1.0`` with ``sampling_seconds=300`` reproduces the full ~1,800
    node / ~48,000 VM deployment at the paper's finest host sampling
    granularity (§4: 30–300 s).
    """

    #: Fraction of the studied region's size to build (nodes scale linearly).
    scale: float = 0.1
    #: Observation window length in days (§4: 30 days).
    days: int = 30
    #: Telemetry sampling interval in seconds (paper: 30–300 s).
    sampling_seconds: int = 900
    #: RNG seed — every run with the same config is bit-identical.
    seed: int = 20240731
    #: Target mean VM count per node (paper: 48,000 / 1,800 ≈ 27).
    vms_per_node: float = 27.0
    #: Fraction of the initial population size that additionally arrives
    #: (and mostly departs) during the window — the churn visible in the
    #: dataset's lifecycle events.
    churn_fraction: float = 0.15
    #: Fraction of general-purpose nodes made contention hotspots.  Fig 9
    #: shows several nodes exceeding 40% contention while the daily mean and
    #: p95 stay below 5%; hotspots carry demand multipliers producing that.
    hotspot_fraction: float = 0.03
    #: How many VMs additionally get full time-series stored (all VMs always
    #: get lifetime-average ratios in the inventory frame).
    vm_series_limit: int = 200
    #: Observation window start (epoch seconds).
    window_start: float = PAPER_WINDOW_START

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if self.sampling_seconds < 30:
            raise ValueError("sampling_seconds must be >= 30 (paper granularity)")
        if self.vms_per_node <= 0:
            raise ValueError("vms_per_node must be positive")
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise ValueError("churn_fraction must be within [0, 1]")
        if not 0.0 <= self.hotspot_fraction <= 0.5:
            raise ValueError("hotspot_fraction must be within [0, 0.5]")

    @property
    def window_end(self) -> float:
        return self.window_start + self.days * 86_400.0
