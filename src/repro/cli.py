"""Command-line interface.

Subcommands::

    repro generate --out DIR [--scale S] [--days D] [--sampling SEC] [--seed N]
        Generate a calibrated synthetic dataset and write the CSV archive.

    repro report DIR
        Load an archive and print the paper-vs-measured experiment report.

    repro summary DIR
        Print the dataset's headline numbers.

    repro query DIR "mean(vrops_hostsystem_cpu_contention_percentage)"
        Evaluate a PromQL-flavoured query against an archive's telemetry.

    repro figure DIR fig5
        Render one of the paper's heatmap/CDF figures as terminal art.

    repro faults [--days D] [--seed N] [--failure-rate R] [--out FILE]
        Run a fault-injection scenario (host failures, migration aborts,
        telemetry gaps) and print the deterministic FaultReport JSON.
        Exits non-zero, with a summary table, when VMs were dead-lettered.

    repro chaos [--days D] [--seed N] [--json-only] [--out FILE]
                [--journal FILE]
        Run the correlated-failure chaos scenario (AZ/BB outages, a
        flapping host, scrape partitions) with the resilience layer on
        and print the deterministic summary JSON.  Exits non-zero on
        invariant violations.  ``--journal`` appends every control-plane
        record to a CRC-framed write-ahead journal file.

    repro crash [--scenario NAME] [--seeds N|A,B,...] [--out FILE]
        Run crash→recover→continue cycles: kill a journaled run at every
        named crash point (mid-claim, post-journal, mid-snapshot, ...),
        recover from snapshot + journal, and prove the recovered outcome
        is field-identical to an uninterrupted run; then corrupt the
        journal byte-wise (truncation, bit flips, duplicated tail) and
        prove the damage is detected with named offsets.  Exits non-zero
        on any divergence or undetected corruption.

    repro torture [--scenario NAME] [--seeds N|A,B,...] [--schedules N]
                  [--out FILE]
        Run the durability torture harness: interleave injected storage
        faults (ENOSPC, EIO, short writes, failing/lying fsyncs, torn
        renames) with the crash-point injector over seeded schedules,
        then power-cut the fake disk and prove every persistent artifact
        (journal, snapshot, report, golden, sweep journal) either
        recovers byte-identical or fails with a structured IoFaultError.

    repro sweep --config GRID.json [--workers N] [--journal FILE]
                [--out FILE]
        Shard a scenario grid (base ScenarioSpec x axes x seeds) across
        worker processes and merge the shard records into one
        deterministic SweepReport — byte-identical at any --workers.
        Crashed or hung shards are retried once, then recorded as
        structured failures; with --journal an interrupted sweep resumes
        without re-running completed cells.

    repro bench [--smoke] [--check] [--profile] [--out BENCH_scale.json]
        Time the scheduling, telemetry-ingest, and simulation hot paths on
        seeded workloads and write the perf artifact.  The simulation
        stage runs the columnar scrape path against the legacy per-sample
        path at the same seed and reports the speedup plus a byte-identity
        verdict; --profile prints the per-stage wall-time breakdown.

    repro verify [--scenario NAME] [--seeds N] [--check NAME ...]
                 [--update-goldens] [--inject-desync] [--json-only] [--out F]
        Run the differential verification harness: scheduler oracle
        (naive vs indexed vs scalar weighers), metamorphic properties,
        fault/chaos determinism, and golden-trace regression.  Prints a
        byte-stable JSON report and exits non-zero on any divergence.
        Replaces the former per-subsystem determinism shell scripts.

Run ``python -m repro.cli --help`` (or ``repro --help`` once installed).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.report import render_experiments_report
from repro.core.dataset import SAPCloudDataset
from repro.datagen import GeneratorConfig, generate_dataset
from repro.datagen.validation import validate_dataset
from repro.telemetry.query import QueryError, evaluate


def _cmd_generate(args: argparse.Namespace) -> int:
    config = GeneratorConfig(
        scale=args.scale,
        days=args.days,
        sampling_seconds=args.sampling,
        seed=args.seed,
    )
    print(
        f"Generating scale={config.scale} ({config.days} days at "
        f"{config.sampling_seconds}s sampling, seed {config.seed}) ...",
        file=sys.stderr,
    )
    dataset = generate_dataset(config)
    try:
        dataset.to_csv(args.out)
    except OSError as exc:
        raise _config_error(
            f"repro: generate --out {args.out}: {exc}"
        ) from exc
    summary = dataset.summary()
    print(
        f"Wrote {args.out}: {summary['nodes']} nodes, {summary['vms']} VMs, "
        f"{summary['samples']:,} samples"
    )
    return 0


def _load(directory: str) -> SAPCloudDataset:
    path = Path(directory)
    if not (path / "meta.json").exists():
        raise SystemExit(f"{directory} is not a dataset archive (no meta.json)")
    return SAPCloudDataset.from_csv(path)


def _cmd_report(args: argparse.Namespace) -> int:
    print(render_experiments_report(_load(args.dataset)))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    summary = _load(args.dataset).summary()
    width = max(len(k) for k in summary)
    for key, value in summary.items():
        if isinstance(value, list):
            value = f"{len(value)} entries"
        print(f"{key:<{width}}  {value}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    report = validate_dataset(_load(args.dataset))
    print(report.render())
    return 0 if report.passed else 1


def _cmd_query(args: argparse.Namespace) -> int:
    dataset = _load(args.dataset)
    try:
        result = evaluate(dataset.store, args.expression)
    except QueryError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 2
    for labels, series in result.series[: args.limit]:
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        print(f"# {{{label_text}}}  ({len(series)} samples)")
        for t, v in zip(series.timestamps[: args.samples], series.values):
            print(f"{t:.0f}\t{v:.4f}")
        if len(series) > args.samples:
            print(f"... {len(series) - args.samples} more samples")
    if len(result.series) > args.limit:
        print(f"... {len(result.series) - args.limit} more series")
    return 0


_HEATMAP_FIGURES = {
    "fig5": ("fig5_dc_cpu_heatmap", "free CPU per node, one DC"),
    "fig6": ("fig6_bb_cpu_heatmap", "free CPU per building block"),
    "fig7": ("fig7_intra_bb_cpu_heatmap", "free CPU per node, one BB"),
    "fig10": ("fig10_memory_heatmap", "free memory per node"),
    "fig11": ("fig11_network_tx_heatmap", "free TX bandwidth per node"),
    "fig12": ("fig12_network_rx_heatmap", "free RX bandwidth per node"),
    "fig13": ("fig13_storage_heatmap", "free storage per host"),
}


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.analysis import figures
    from repro.analysis.render import render_cdf, render_heatmap

    dataset = _load(args.dataset)
    name = args.figure
    if name in _HEATMAP_FIGURES:
        builder_name, caption = _HEATMAP_FIGURES[name]
        heatmap = getattr(figures, builder_name)(dataset)
        print(f"{name}: {caption}")
        print(render_heatmap(heatmap))
        return 0
    if name == "fig14":
        cdfs = figures.fig14_utilization_cdfs(dataset)
        for resource, (values, fractions) in cdfs.items():
            print(render_cdf(values, fractions,
                             title=f"fig14 — avg {resource} utilisation CDF"))
            print()
        return 0
    known = sorted(_HEATMAP_FIGURES) + ["fig14"]
    print(f"unknown figure {name!r}; known: {known}", file=sys.stderr)
    return 2


def _config_error(message: str) -> SystemExit:
    """Usage-level failure: one-line stderr message, exit code 2."""
    print(message, file=sys.stderr)
    return SystemExit(2)


def _write_out(report, out_path: str, command: str) -> None:
    """Write a report to ``--out``; unwritable paths exit 2, not traceback.

    The storage layer surfaces every write failure as a structured
    :class:`~repro.iofaults.layer.IoFaultError` (an ``OSError``), so a
    read-only directory, a missing parent, or a full disk all land here
    — same one-line contract as a malformed ``--config``.
    """
    from repro.reporting import write_report

    try:
        write_report(report, out_path)
    except OSError as exc:
        raise _config_error(
            f"repro: {command} --out {out_path}: {exc}"
        ) from exc


class _ProgressTracker:
    """Remembers the last progress message a long command reported.

    Long-running subcommands pass the instance as their ``progress``
    callback; on Ctrl-C the interrupt handler reads :attr:`last` to say
    how far the run got before dying.
    """

    def __init__(self, initial: str) -> None:
        self.last = initial

    def __call__(self, message: str) -> None:
        self.last = message


def _interrupted(command: str, progress: str) -> int:
    """Uniform Ctrl-C exit: one stderr line, conventional code 130."""
    print(
        f"repro {command}: interrupted during {progress}; "
        "partial results discarded",
        file=sys.stderr,
    )
    return 130


def _load_config_file(path: str, what: str) -> dict:
    """Parse a JSON config file; ``SystemExit(2)`` with a usable message.

    Every malformed-input path (missing file, bad JSON, non-object top
    level) surfaces as a one-line error on stderr — never a traceback.
    """
    import json

    file = Path(path)
    if not file.exists():
        raise _config_error(f"repro: {what} config {path}: file not found")
    try:
        data = json.loads(file.read_text())
    except json.JSONDecodeError as exc:
        raise _config_error(
            f"repro: {what} config {path}: invalid JSON at "
            f"line {exc.lineno} column {exc.colno}: {exc.msg}"
        ) from exc
    if not isinstance(data, dict):
        raise _config_error(
            f"repro: {what} config {path}: top level must be a JSON "
            f"object, got {type(data).__name__}"
        )
    return data


def _scenario_spec_from_config(
    data: dict, base, what: str, path: str
):
    """Resolve a ``--config`` dict into a ScenarioSpec over ``base``.

    Canonical ScenarioSpec-shaped files overlay the flag-derived base
    spec (file keys win); the two legacy per-CLI shapes route through
    their deprecated shims.  Every validation failure exits 2 with the
    offending key named.
    """
    from repro.config import (
        ScenarioSpec,
        looks_like_legacy_chaos_dict,
        looks_like_legacy_faults_dict,
        spec_from_legacy_chaos_dict,
        spec_from_legacy_faults_dict,
    )

    try:
        if what == "faults" and looks_like_legacy_faults_dict(data):
            return spec_from_legacy_faults_dict(data, base)
        if what == "chaos" and looks_like_legacy_chaos_dict(data):
            return spec_from_legacy_chaos_dict(data, base)
        doc = base.to_dict()
        doc.update(data)
        return ScenarioSpec.from_dict(doc)
    except ValueError as exc:
        raise _config_error(f"repro: {what} config {path}: {exc}") from exc


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.config import ScenarioSpec
    from repro.faults import FaultConfig

    faults = FaultConfig(
        seed=args.fault_seed if args.fault_seed is not None else args.seed,
        host_failure_rate_per_day=args.failure_rate,
        repair_time_mean_s=args.repair_hours * 3600.0,
        migration_abort_fraction=args.abort_fraction,
        scrape_gap_probability=args.gap_probability,
        stale_node_probability=args.stale_probability,
        evac_max_retries=args.evac_retries,
    )
    spec = ScenarioSpec(
        topology="lab",
        building_blocks=args.bbs,
        nodes_per_bb=args.nodes_per_bb,
        duration_days=args.days,
        seed=args.seed,
        arrival_rate_per_hour=args.arrival_rate,
        initial_vms=args.initial_vms,
        faults=faults,
    )
    if args.config:
        from repro.config import looks_like_legacy_faults_dict

        data = _load_config_file(args.config, "faults")
        if looks_like_legacy_faults_dict(data):
            # Legacy flat shape: the injector seed historically defaulted
            # to the --fault-seed / --seed flags, not FaultConfig's own.
            data.setdefault(
                "seed",
                args.fault_seed if args.fault_seed is not None else args.seed,
            )
        spec = _scenario_spec_from_config(data, spec, "faults", args.config)
    print(
        f"Running fault scenario: {spec.building_blocks} BBs x "
        f"{spec.nodes_per_bb} nodes, {spec.duration_days} days, "
        f"seed {spec.seed} ...",
        file=sys.stderr,
    )
    try:
        result = spec.run()
    except KeyboardInterrupt:
        return _interrupted(
            "faults",
            f"the {spec.duration_days}-day scenario (seed {spec.seed})",
        )
    report = result.fault_report
    if report is None:
        raise _config_error(
            f"repro: faults config {args.config}: no fault section in "
            "effect; nothing to report"
        )
    print(report.render(), file=sys.stderr)
    if args.out:
        _write_out(report, args.out, "faults")
        print(f"Wrote {args.out}", file=sys.stderr)
    else:
        print(report.to_json())
    if report.dead_letters:
        # Unrecovered VMs are an operator-facing failure: summarise them
        # and exit non-zero so scripts and CI notice.
        print(_dead_letter_table(report), file=sys.stderr)
        return 1
    return 0


def _dead_letter_table(report) -> str:
    """Fixed-width summary of the dead-letter queue."""
    rows = sorted(report.dead_letters, key=lambda d: d.vm_id)
    lines = [
        f"{len(rows)} VM(s) dead-lettered (evacuation budget exhausted):",
        f"  {'vm_id':<18} {'failed host':<22} {'attempts':>8} {'failed at':>12} "
        f"{'dead-lettered':>14}",
    ]
    for d in rows:
        lines.append(
            f"  {d.vm_id:<18} {d.failed_host:<22} {d.attempts:>8} "
            f"{d.failed_at:>12.0f} {d.dead_lettered_at:>14.0f}"
        )
    return "\n".join(lines)


def _cmd_chaos(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.config import ScenarioSpec
    from repro.resilience.chaos import (
        ChaosSummary,
        default_chaos_faults,
        default_chaos_resilience,
    )

    faults = (
        default_chaos_faults(args.fault_seed)
        if args.fault_seed is not None
        else default_chaos_faults()
    )
    spec = ScenarioSpec(
        topology="chaos",
        duration_days=args.days,
        seed=args.seed,
        initial_vms=80,
        faults=faults,
        resilience=default_chaos_resilience(),
    )
    if args.config:
        data = _load_config_file(args.config, "chaos")
        spec = _scenario_spec_from_config(data, spec, "chaos", args.config)
    if args.no_fail_fast and spec.resilience is not None:
        spec = replace(
            spec, resilience=replace(spec.resilience, fail_fast=False)
        )
    if not args.json_only:
        print(
            f"Running chaos scenario: 2 AZs x {spec.building_blocks_per_az} "
            f"BBs x {spec.nodes_per_bb} nodes, {spec.duration_days} days, "
            f"seed {spec.seed} ...",
            file=sys.stderr,
        )
    journal_writer = None
    journal_sink = None
    if args.journal:
        from repro.recovery import JournalWriter

        # Sim-only hot path: flush durability (survives process death,
        # not power loss) keeps the chaos loop off the fsync floor.
        try:
            journal_writer = JournalWriter(args.journal, durability="flush")
        except OSError as exc:
            raise _config_error(
                f"repro: chaos --journal {args.journal}: {exc}"
            ) from exc
        journal_sink = journal_writer.append
    try:
        result = spec.run(journal=journal_sink)
    except KeyboardInterrupt:
        return _interrupted(
            "chaos",
            f"the {spec.duration_days}-day scenario (seed {spec.seed})",
        )
    finally:
        if journal_writer is not None:
            journal_writer.close()
    if journal_writer is not None and not args.json_only:
        print(
            f"Journaled {journal_writer.records_written} control-plane "
            f"records to {args.journal}",
            file=sys.stderr,
        )
    report = result.resilience_report
    if report is None or result.fault_report is None:
        raise _config_error(
            f"repro: chaos config {args.config}: the chaos scenario needs "
            "both a faults and a resilience section in effect"
        )
    summary = ChaosSummary(result)
    if not args.json_only:
        print(summary.render(), file=sys.stderr)
    if args.out:
        _write_out(summary, args.out, "chaos")
        if not args.json_only:
            print(f"Wrote {args.out}", file=sys.stderr)
    else:
        print(summary.canonical_json(), end="")
    return 1 if report.violations else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.bench import BenchConfig, check_results, run_bench, write_bench_json

    config = BenchConfig.smoke() if args.smoke else BenchConfig()
    if args.skip_sim:
        config = replace(config, run_sim=False)
    if args.days is not None:
        config = replace(config, sim_days=args.days)
    payload = run_bench(config, echo=lambda msg: print(msg, file=sys.stderr))
    try:
        write_bench_json(payload, args.out)
    except OSError as exc:
        raise _config_error(f"repro: bench --out {args.out}: {exc}") from exc
    results = payload["results"]
    print(
        f"schedule: {results['schedule_requests_per_s']:,.0f} req/s "
        f"({results['schedule_speedup_vs_legacy']:.2f}x vs legacy path, "
        f"{results['schedule_requests_speedup_vs_baseline']:.2f}x vs pre-PR baseline)"
    )
    print(
        f"ingest:   {results['telemetry_ingest_samples_per_s']:,.0f} samples/s "
        f"({results['ingest_block_speedup_vs_per_sample']:.2f}x vs per-sample path, "
        f"{results['telemetry_ingest_samples_speedup_vs_baseline']:.2f}x vs pre-PR baseline)"
    )
    print(f"DRS round: {results['drs_round_latency_s'] * 1e3:.1f} ms")
    print(
        f"journal:  {results['journal_append_per_s_fsync']:,.0f} appends/s at "
        f"fsync durability ({results['journal_flush_speedup_vs_fsync']:.1f}x "
        f"faster at flush)"
    )
    if "sim_wall_s" in results:
        print(
            f"simulation: {results['sim_days']:g} days in "
            f"{results['sim_wall_s']:.1f} s ({results['sim_events']} events, "
            f"{results['sim_scrape_speedup_vs_legacy']:.2f}x vs legacy "
            f"scrape path, paths identical: "
            f"{results['sim_paths_identical']})"
        )
        if args.profile:
            profile = results.get("sim_profile", {})
            accounted = sum(profile.values())
            print("simulation stage profile (columnar scrape path):")
            for stage_name in (
                "demand_eval", "exporter_format", "ingest", "scheduler", "drs"
            ):
                if stage_name in profile:
                    print(f"  {stage_name:<16} {profile[stage_name]:>9.3f} s")
            other = results["sim_wall_s"] - accounted
            print(f"  {'(other)':<16} {other:>9.3f} s")
            print(
                f"  scrape throughput: "
                f"{results['sim_scrape_samples_per_s']:,.0f} samples/s"
            )
    elif args.profile:
        print("(--profile: sim stage not run, no stage profile)", file=sys.stderr)
    if "sweep_scenarios_per_hour_nw" in results:
        print(
            f"sweep:    {results['sweep_cells']} cells — "
            f"{results['sweep_scenarios_per_hour_1w']:,.0f} scenarios/h at "
            f"1 worker, {results['sweep_scenarios_per_hour_nw']:,.0f} at "
            f"{results['sweep_workers']} workers "
            f"({results['sweep_speedup_nw_vs_1w']:.2f}x on "
            f"{results['sweep_cpu_count']} CPU(s))"
        )
    print(f"peak RSS: {results['peak_rss_kb']:,} KB")
    print(f"Wrote {args.out}")
    if args.check:
        notes: list[str] = []
        problems = check_results(payload, notes=notes)
        for note in notes:
            print(f"CHECK NOTE: {note}", file=sys.stderr)
        for problem in problems:
            print(f"CHECK FAILED: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("All bench checks passed.")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify.runner import ALL_CHECKS, BASE_SEED, VerifyConfig, run_verify
    from repro.verify.scenarios import SCENARIOS

    if args.scenario not in SCENARIOS:
        raise _config_error(
            f"repro: unknown scenario {args.scenario!r}; "
            f"known: {', '.join(sorted(SCENARIOS))}"
        )
    checks = tuple(args.check) if args.check else ALL_CHECKS
    unknown = sorted(set(checks) - set(ALL_CHECKS))
    if unknown:
        raise _config_error(
            f"repro: unknown checks {', '.join(unknown)}; "
            f"known: {', '.join(ALL_CHECKS)}"
        )
    if args.seeds < 1:
        raise _config_error("repro: --seeds must be >= 1")
    config = VerifyConfig(
        scenario=args.scenario,
        seeds=tuple(range(BASE_SEED, BASE_SEED + args.seeds)),
        checks=checks,
        goldens_dir=args.goldens_dir,
        update_goldens=args.update_goldens,
        inject_desync=args.inject_desync,
    )
    stage = _ProgressTracker("starting up")
    try:
        report = run_verify(config, progress=stage)
    except KeyboardInterrupt:
        return _interrupted("verify", stage.last)
    if not args.json_only:
        print(report.render(), file=sys.stderr)
    if args.out:
        _write_out(report, args.out, "verify")
        if not args.json_only:
            print(f"Wrote {args.out}", file=sys.stderr)
    else:
        print(report.canonical_json(), end="")
    return 0 if report.ok else 1


def _parse_seeds(text: str, base_seed: int) -> list[int]:
    """Seed spec: a bare count ("3" → base..base+2) or a comma list."""
    if "," in text:
        try:
            return [int(part) for part in text.split(",") if part.strip()]
        except ValueError:
            raise _config_error(
                f"repro: bad --seeds {text!r}; expected a count or a "
                "comma-separated list of seeds"
            ) from None
    try:
        count = int(text)
    except ValueError:
        raise _config_error(
            f"repro: bad --seeds {text!r}; expected a count or a "
            "comma-separated list of seeds"
        ) from None
    if count < 1:
        raise _config_error("repro: --seeds must be >= 1")
    return list(range(base_seed, base_seed + count))


def _cmd_crash(args: argparse.Namespace) -> int:
    from repro.recovery import run_crash_cycles
    from repro.verify.runner import BASE_SEED
    from repro.verify.scenarios import SCENARIOS, get_scenario

    if args.scenario not in SCENARIOS:
        raise _config_error(
            f"repro: unknown scenario {args.scenario!r}; "
            f"known: {', '.join(sorted(SCENARIOS))}"
        )
    seeds = _parse_seeds(args.seeds, BASE_SEED)
    if args.snapshot_every < 1:
        raise _config_error("repro: --snapshot-every must be >= 1")
    stage = _ProgressTracker("starting up")

    def progress(message: str) -> None:
        stage(message)
        if not args.json_only:
            print(f"  {message}", file=sys.stderr)

    if not args.json_only:
        print(
            f"Running crash harness: scenario {args.scenario}, "
            f"seeds {','.join(str(s) for s in seeds)} ...",
            file=sys.stderr,
        )
    try:
        report = run_crash_cycles(
            get_scenario(args.scenario),
            seeds,
            snapshot_every=args.snapshot_every,
            progress=progress,
        )
    except KeyboardInterrupt:
        return _interrupted("crash", stage.last)
    if not args.json_only:
        print(report.render(), file=sys.stderr)
    if args.out:
        _write_out(report, args.out, "crash")
        if not args.json_only:
            print(f"Wrote {args.out}", file=sys.stderr)
    else:
        print(report.canonical_json(), end="")
    return 0 if report.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepResumeError, grid_from_dict, run_sweep

    data = _load_config_file(args.config, "sweep")
    try:
        grid = grid_from_dict(data)
    except ValueError as exc:
        raise _config_error(f"repro: sweep config {args.config}: {exc}")
    if args.workers < 1:
        raise _config_error("repro: --workers must be >= 1")
    if args.deadline <= 0:
        raise _config_error("repro: --deadline must be positive")
    stage = _ProgressTracker("starting up")

    def progress(message: str) -> None:
        stage(message)
        if not args.json_only:
            print(f"  {message}", file=sys.stderr)

    if not args.json_only:
        print(
            f"Running sweep: {len(grid.cells)} cells "
            f"({len(grid.groups)} groups) with {args.workers} worker(s) ...",
            file=sys.stderr,
        )
    try:
        report, stats = run_sweep(
            grid,
            workers=args.workers,
            deadline_s=args.deadline,
            journal_path=args.journal,
            progress=progress,
        )
    except SweepResumeError as exc:
        raise _config_error(f"repro: sweep: {exc}")
    except KeyboardInterrupt:
        kept = (
            f"completed shards kept in {args.journal}"
            if args.journal
            else "partial results discarded (use --journal to keep them)"
        )
        print(
            f"repro sweep: interrupted during {stage.last}; {kept}",
            file=sys.stderr,
        )
        return 130
    if not args.json_only:
        print(report.render(), file=sys.stderr)
        print(stats.render(), file=sys.stderr)
    if args.out:
        _write_out(report, args.out, "sweep")
        if not args.json_only:
            print(f"Wrote {args.out}", file=sys.stderr)
    else:
        print(report.canonical_json(), end="")
    return 0 if report.ok else 1


def _cmd_torture(args: argparse.Namespace) -> int:
    from repro.iofaults import TortureConfig, run_torture
    from repro.verify.runner import BASE_SEED
    from repro.verify.scenarios import SCENARIOS

    if args.scenario not in SCENARIOS:
        raise _config_error(
            f"repro: unknown scenario {args.scenario!r}; "
            f"known: {', '.join(sorted(SCENARIOS))}"
        )
    seeds = _parse_seeds(args.seeds, BASE_SEED)
    if args.schedules < 1:
        raise _config_error("repro: --schedules must be >= 1")
    if args.snapshot_every < 1:
        raise _config_error("repro: --snapshot-every must be >= 1")
    config = TortureConfig(
        scenario=args.scenario,
        seeds=tuple(seeds),
        schedules=args.schedules,
        snapshot_every=args.snapshot_every,
    )
    stage = _ProgressTracker("starting up")

    def progress(message: str) -> None:
        stage(message)
        if not args.json_only:
            print(f"  {message}", file=sys.stderr)

    if not args.json_only:
        print(
            f"Running durability torture: scenario {args.scenario}, "
            f"seeds {','.join(str(s) for s in seeds)}, "
            f"{args.schedules} schedules per seed ...",
            file=sys.stderr,
        )
    try:
        report = run_torture(config, progress=progress)
    except KeyboardInterrupt:
        return _interrupted("torture", stage.last)
    if not args.json_only:
        print(report.render(), file=sys.stderr)
    if args.out:
        _write_out(report, args.out, "torture")
        if not args.json_only:
            print(f"Wrote {args.out}", file=sys.stderr)
    else:
        print(report.canonical_json(), end="")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser with every subcommand registered."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SAP Cloud Infrastructure dataset reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--scale", type=float, default=0.05)
    generate.add_argument("--days", type=int, default=30)
    generate.add_argument("--sampling", type=int, default=1800)
    generate.add_argument("--seed", type=int, default=20240731)
    generate.set_defaults(func=_cmd_generate)

    report = sub.add_parser("report", help="print the experiment report")
    report.add_argument("dataset", help="dataset archive directory")
    report.set_defaults(func=_cmd_report)

    summary = sub.add_parser("summary", help="print dataset headline numbers")
    summary.add_argument("dataset", help="dataset archive directory")
    summary.set_defaults(func=_cmd_summary)

    validate = sub.add_parser(
        "validate", help="check a dataset against the paper's calibration targets"
    )
    validate.add_argument("dataset", help="dataset archive directory")
    validate.set_defaults(func=_cmd_validate)

    figure = sub.add_parser("figure", help="render a paper figure as text")
    figure.add_argument("dataset", help="dataset archive directory")
    figure.add_argument("figure", help="fig5|fig6|fig7|fig10..fig14")
    figure.set_defaults(func=_cmd_figure)

    faults = sub.add_parser(
        "faults", help="run a deterministic fault-injection scenario"
    )
    faults.add_argument("--days", type=float, default=1.0)
    faults.add_argument("--seed", type=int, default=7, help="workload seed")
    faults.add_argument(
        "--fault-seed", type=int, default=None,
        help="injector seed (defaults to --seed)",
    )
    faults.add_argument("--bbs", type=int, default=3, help="building blocks")
    faults.add_argument("--nodes-per-bb", type=int, default=4)
    faults.add_argument("--arrival-rate", type=float, default=12.0,
                        help="VM arrivals per hour")
    faults.add_argument("--initial-vms", type=int, default=120)
    faults.add_argument("--failure-rate", type=float, default=6.0,
                        help="host failures per day, region-wide")
    faults.add_argument("--repair-hours", type=float, default=4.0)
    faults.add_argument("--abort-fraction", type=float, default=0.2,
                        help="fraction of live migrations aborting mid-precopy")
    faults.add_argument("--gap-probability", type=float, default=0.03)
    faults.add_argument("--stale-probability", type=float, default=0.02)
    faults.add_argument("--evac-retries", type=int, default=5)
    faults.add_argument("--out", default=None, help="write report JSON here")
    faults.add_argument(
        "--config", default=None, metavar="FILE",
        help="JSON object of FaultConfig fields; replaces the per-fault "
        "flags (malformed files exit 2 with a one-line error)",
    )
    faults.set_defaults(func=_cmd_faults)

    chaos = sub.add_parser(
        "chaos",
        help="run the correlated-failure chaos scenario with the "
        "resilience layer enabled",
    )
    chaos.add_argument("--days", type=float, default=1.0)
    chaos.add_argument("--seed", type=int, default=7, help="workload seed")
    chaos.add_argument(
        "--fault-seed", type=int, default=None,
        help="injector seed (defaults to the canonical chaos seed)",
    )
    chaos.add_argument(
        "--json-only", action="store_true",
        help="suppress the stderr summaries; print only the summary JSON",
    )
    chaos.add_argument(
        "--no-fail-fast", action="store_true",
        help="record invariant violations instead of raising on the first",
    )
    chaos.add_argument("--out", default=None, help="write summary JSON here")
    chaos.add_argument(
        "--journal", default=None, metavar="FILE",
        help="append every control-plane record (clock advances, claims, "
        "releases, quarantine transitions, admission decisions) to this "
        "write-ahead journal file",
    )
    chaos.add_argument(
        "--config", default=None, metavar="FILE",
        help='JSON object with optional "faults" / "resilience" sections '
        "(malformed files exit 2 with a one-line error)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    bench = sub.add_parser(
        "bench", help="benchmark the scheduling/telemetry/simulation hot paths"
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: same workloads, much smaller counts",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="fail unless in-run speedup ratios meet the required bounds",
    )
    bench.add_argument(
        "--skip-sim", action="store_true",
        help="skip the multi-day end-to-end simulation stage",
    )
    bench.add_argument(
        "--days", type=float, default=None,
        help="override the simulation stage's duration in days",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="print the simulation stage breakdown (demand_eval, "
        "exporter_format, ingest, scheduler, drs) after the run",
    )
    bench.add_argument("--out", default="BENCH_scale.json",
                       help="where to write the result JSON")
    bench.set_defaults(func=_cmd_bench)

    verify = sub.add_parser(
        "verify",
        help="run the differential verification harness (oracle, "
        "metamorphic, determinism, goldens)",
    )
    verify.add_argument(
        "--scenario", default="default",
        help="verification scenario: tiny | default | dense",
    )
    verify.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="number of seeds to run (seeds 7..7+N-1)",
    )
    verify.add_argument(
        "--check", action="append", default=None, metavar="NAME",
        help="run only this check (repeatable); default: all",
    )
    verify.add_argument(
        "--goldens-dir", default=None, metavar="DIR",
        help="golden store location (default: tests/goldens/)",
    )
    verify.add_argument(
        "--update-goldens", action="store_true",
        help="regenerate golden files instead of comparing against them",
    )
    verify.add_argument(
        "--inject-desync", action="store_true",
        help="corrupt the scheduler index mid-run to demonstrate that the "
        "oracle catches it (the run then fails by design)",
    )
    verify.add_argument(
        "--json-only", action="store_true",
        help="suppress the stderr summary; print only the JSON report",
    )
    verify.add_argument("--out", default=None, help="write report JSON here")
    verify.set_defaults(func=_cmd_verify)

    crash = sub.add_parser(
        "crash",
        help="run crash→recover→continue cycles at every named crash "
        "point and prove recovered runs are field-identical",
    )
    crash.add_argument(
        "--scenario", default="tiny",
        help="verification scenario: tiny | default | dense",
    )
    crash.add_argument(
        "--seeds", default="3", metavar="N|A,B,...",
        help="seed count (from 7) or explicit comma-separated seeds",
    )
    crash.add_argument(
        "--snapshot-every", type=int, default=25, metavar="OPS",
        help="ops between control-plane snapshots",
    )
    crash.add_argument(
        "--json-only", action="store_true",
        help="suppress the stderr progress/summary; print only the JSON",
    )
    crash.add_argument("--out", default=None, help="write report JSON here")
    crash.set_defaults(func=_cmd_crash)

    torture = sub.add_parser(
        "torture",
        help="interleave storage faults (ENOSPC, EIO, short writes, lying "
        "fsyncs, torn renames) with crash points over seeded schedules and "
        "prove every artifact recovers byte-identical or fails structured",
    )
    torture.add_argument(
        "--scenario", default="tiny",
        help="verification scenario: tiny | default | dense",
    )
    torture.add_argument(
        "--seeds", default="1", metavar="N|A,B,...",
        help="seed count (from 7) or explicit comma-separated seeds",
    )
    torture.add_argument(
        "--schedules", type=int, default=15, metavar="N",
        help="fault schedules per seed, round-robined over the artifacts "
        "(wal, snapshot, report, golden, sweep-journal)",
    )
    torture.add_argument(
        "--snapshot-every", type=int, default=10, metavar="OPS",
        help="ops between control-plane snapshots in WAL schedules",
    )
    torture.add_argument(
        "--json-only", action="store_true",
        help="suppress the stderr progress/summary; print only the JSON",
    )
    torture.add_argument("--out", default=None, help="write report JSON here")
    torture.set_defaults(func=_cmd_torture)

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario grid across worker processes and merge a "
        "deterministic report (workers=1 and workers=N are byte-identical)",
    )
    sweep.add_argument(
        "--config", required=True, metavar="FILE",
        help='grid JSON: {"base": ScenarioSpec object, "seeds": [..], '
        '"axes": {field: [values, ...]}}',
    )
    sweep.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="concurrent worker processes (one shard each)",
    )
    sweep.add_argument(
        "--deadline", type=float, default=300.0, metavar="SECONDS",
        help="per-shard wall-clock ceiling before the worker is killed "
        "and retried once (default mirrors the test-suite timeout)",
    )
    sweep.add_argument(
        "--journal", default=None, metavar="FILE",
        help="journal completed shards to this write-ahead file; "
        "re-running with the same grid resumes, skipping finished cells",
    )
    sweep.add_argument(
        "--json-only", action="store_true",
        help="suppress stderr progress/summary; print only the JSON report",
    )
    sweep.add_argument("--out", default=None, help="write report JSON here")
    sweep.set_defaults(func=_cmd_sweep)

    query = sub.add_parser("query", help="evaluate a telemetry query")
    query.add_argument("dataset", help="dataset archive directory")
    query.add_argument("expression", help='e.g. \'max(vrops_hostsystem_cpu_contention_percentage)\'')
    query.add_argument("--limit", type=int, default=5, help="max series printed")
    query.add_argument("--samples", type=int, default=10, help="max samples per series")
    query.set_defaults(func=_cmd_query)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
