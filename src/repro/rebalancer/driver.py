"""The two-layer rebalancing loop: DRS inside BBs, planner across them."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.drs.balancer import DrsBalancer, LoadFn, _allocated_load
from repro.infrastructure.hierarchy import Region
from repro.migration.planner import MigrationPlanner
from repro.scheduler.placement import AllocationError, PlacementService


@dataclass
class RebalanceReport:
    """Outcome of one or more rebalancing passes."""

    passes: int = 0
    intra_bb_migrations: int = 0
    cross_bb_migrations: int = 0
    skipped_moves: int = 0
    #: Moves that started but aborted mid-precopy (allocations rolled back).
    aborted_moves: int = 0
    imbalance_before: float = 0.0
    imbalance_after: float = 0.0
    total_transfer_mb: float = 0.0
    history: list[str] = field(default_factory=list)
    #: Canonical placement-service counters (claims/releases/moves/failed)
    #: snapshotted after the pass; empty when no placement is attached.
    placement_stats: dict[str, int] = field(default_factory=dict)

    @property
    def improvement(self) -> float:
        return self.imbalance_before - self.imbalance_after


class RebalanceDriver:
    """Applies intra-BB DRS and cross-BB planned migrations to a region."""

    def __init__(
        self,
        region: Region,
        placement: PlacementService | None = None,
        drs: DrsBalancer | None = None,
        planner: MigrationPlanner | None = None,
        fault_model=None,
        recovery_move_cap: int = 4,
    ) -> None:
        """``fault_model`` is a :class:`repro.faults.MigrationFaultModel`.

        ``recovery_move_cap`` bounds cross-BB migrations per pass while any
        host in the DC is failed — recovery evacuations own the migration
        network then, and rebalancing must not compete with them.
        """
        if recovery_move_cap < 0:
            raise ValueError("recovery_move_cap must be >= 0")
        self.region = region
        self.placement = placement
        self.drs = drs or DrsBalancer()
        self.planner = planner or MigrationPlanner()
        self.fault_model = fault_model
        self.recovery_move_cap = recovery_move_cap
        self._node_bb = {
            node.node_id: bb.bb_id
            for bb in region.iter_building_blocks()
            for node in bb.iter_nodes()
        }

    def dc_imbalance(self, datacenter: str, load_fn: LoadFn = _allocated_load) -> float:
        """Std-dev of load fractions over the DC's general-purpose nodes."""
        fractions = []
        for bb in self.region.iter_building_blocks():
            if bb.datacenter != datacenter or bb.aggregate_class:
                continue
            for node in bb.iter_nodes():
                if node.failed:
                    continue  # no usable capacity; not an imbalance signal
                load = sum(load_fn(vm) for vm in node.vms.values())
                if node.physical.vcpus > 0:
                    fractions.append(load / node.physical.vcpus)
        if len(fractions) < 2:
            return 0.0
        return float(np.std(fractions))

    def run_pass(
        self, datacenter: str, load_fn: LoadFn = _allocated_load
    ) -> RebalanceReport:
        """One full rebalancing pass over one data center."""
        report = RebalanceReport(passes=1)
        report.imbalance_before = self.dc_imbalance(datacenter, load_fn)

        aborted_before = self.fault_model.aborted if self.fault_model else 0

        # Layer 1: DRS inside every spread building block.
        for bb in self.region.iter_building_blocks():
            if bb.datacenter != datacenter or bb.policy == "pack":
                continue
            migrations = self.drs.run(bb, load_fn=load_fn, fault_model=self.fault_model)
            report.intra_bb_migrations += len(migrations)
            for m in migrations:
                report.history.append(
                    f"drs {m.vm_id}: {m.source_node} -> {m.target_node}"
                )

        # Layer 2: cost-aware moves across the DC's general BBs.  While any
        # host is down, recovery traffic has priority: cap this pass's moves.
        move_budget = (
            self.recovery_move_cap
            if self._dc_has_failed_host(datacenter)
            else None
        )
        plan = self.planner.plan_cross_bb(
            self.region,
            datacenter,
            load_view=lambda vm: (load_fn(vm), 0.6),
        )
        for move in plan.moves:
            if move_budget is not None and report.cross_bb_migrations >= move_budget:
                report.skipped_moves += 1
                continue
            if self._apply_move(move.vm_id, move.source_node, move.target_node):
                report.cross_bb_migrations += 1
                report.total_transfer_mb += move.estimate.transferred_mb
                report.history.append(
                    f"xbb {move.vm_id}: {move.source_node} -> {move.target_node}"
                )
            else:
                report.skipped_moves += 1

        if self.fault_model is not None:
            report.aborted_moves = self.fault_model.aborted - aborted_before

        report.imbalance_after = self.dc_imbalance(datacenter, load_fn)
        if self.placement is not None:
            report.placement_stats = self.placement.stats()
        return report

    def run_until_stable(
        self,
        datacenter: str,
        load_fn: LoadFn = _allocated_load,
        max_passes: int = 5,
        min_improvement: float = 1e-3,
    ) -> RebalanceReport:
        """Repeat passes until the imbalance stops improving."""
        total = RebalanceReport()
        total.imbalance_before = self.dc_imbalance(datacenter, load_fn)
        for _ in range(max_passes):
            report = self.run_pass(datacenter, load_fn)
            total.passes += 1
            total.intra_bb_migrations += report.intra_bb_migrations
            total.cross_bb_migrations += report.cross_bb_migrations
            total.skipped_moves += report.skipped_moves
            total.total_transfer_mb += report.total_transfer_mb
            total.history.extend(report.history)
            if report.improvement < min_improvement:
                break
        total.imbalance_after = self.dc_imbalance(datacenter, load_fn)
        if self.placement is not None:
            total.placement_stats = self.placement.stats()
        return total

    def _dc_has_failed_host(self, datacenter: str) -> bool:
        return any(
            node.failed
            for bb in self.region.iter_building_blocks()
            if bb.datacenter == datacenter
            for node in bb.iter_nodes()
        )

    def _apply_move(self, vm_id: str, source_id: str, target_id: str) -> bool:
        """Execute one planned move against region (and placement) state.

        Never moves onto an unhealthy (failed or draining) node.  When the
        fault model aborts the migration mid-precopy, any cross-BB claim
        already made on the target is rolled back atomically and the VM
        stays on its source.
        """
        try:
            source = self.region.find_node(source_id)
            target = self.region.find_node(target_id)
        except KeyError:
            return False
        if vm_id not in source.vms:
            return False
        if not target.healthy:
            return False
        source_bb = self._node_bb[source_id]
        target_bb = self._node_bb[target_id]
        moved_claim = False
        if self.placement is not None and source_bb != target_bb:
            try:
                self.placement.move(vm_id, target_bb)
            except AllocationError:
                return False
            moved_claim = True
        if self.fault_model is not None and not self.fault_model.attempt(
            vm_id, source_id, target_id
        ):
            # Abort mid-precopy: the source still runs the VM; undo the claim.
            if moved_claim:
                self.placement.move(vm_id, source_bb)
            return False
        vm = source.remove_vm(vm_id)
        target.add_vm(vm)
        vm.migrations += 1
        return True
