"""Continuous rebalancing across building blocks.

§7: "Fragmentation across logically grouped resources, such as BBs,
results in measurable imbalances ... Continuous migration mechanisms
across BBs are required to maintain balanced resource distribution."  The
:class:`~repro.rebalancer.driver.RebalanceDriver` closes that loop: each
pass runs DRS inside every spread building block, then plans and applies
cost-bounded cross-BB migrations per data center, keeping the placement
service's allocations consistent throughout.
"""

from repro.rebalancer.driver import RebalanceDriver, RebalanceReport

__all__ = ["RebalanceDriver", "RebalanceReport"]
