"""Unit and property tests for repro.frame.Frame."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.frame import Frame


@pytest.fixture
def table() -> Frame:
    return Frame(
        {
            "name": ["a", "b", "c", "d"],
            "x": [1, 2, 3, 4],
            "y": [4.0, 3.0, 2.0, 1.0],
        }
    )


class TestConstruction:
    def test_empty_frame(self):
        frame = Frame()
        assert len(frame) == 0
        assert frame.names == []

    def test_column_order_preserved(self, table):
        assert table.names == ["name", "x", "y"]

    def test_scalar_broadcast(self):
        frame = Frame({"x": [1, 2, 3], "k": 7})
        assert list(frame["k"]) == [7, 7, 7]

    def test_scalar_without_length_raises(self):
        with pytest.raises(ValueError, match="broadcast"):
            Frame({"k": 7})

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length"):
            Frame({"x": [1, 2], "y": [1, 2, 3]})

    def test_2d_column_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            Frame({"x": np.zeros((2, 2))})

    def test_from_records_missing_keys_become_none(self):
        frame = Frame.from_records([{"a": 1}, {"a": 2, "b": "x"}])
        assert frame["b"][0] is None
        assert frame["b"][1] == "x"

    def test_from_records_empty(self):
        assert len(Frame.from_records([])) == 0

    def test_string_columns_use_object_dtype(self, table):
        assert table["name"].dtype == object


class TestAccess:
    def test_row_round_trip(self, table):
        assert table.row(1) == {"name": "b", "x": 2, "y": 3.0}

    def test_rows_iterates_all(self, table):
        assert len(list(table.rows())) == 4

    def test_shape(self, table):
        assert table.shape == (4, 3)

    def test_contains(self, table):
        assert "x" in table
        assert "zzz" not in table

    def test_describe(self, table):
        stats = table.describe("x")
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1
        assert stats["max"] == 4


class TestTransforms:
    def test_with_column_replaces(self, table):
        out = table.with_column("x", [10, 20, 30, 40])
        assert list(out["x"]) == [10, 20, 30, 40]
        assert list(table["x"]) == [1, 2, 3, 4]  # original untouched

    def test_without(self, table):
        out = table.without("y")
        assert out.names == ["name", "x"]

    def test_without_missing_raises(self, table):
        with pytest.raises(KeyError):
            table.without("nope")

    def test_select_reorders(self, table):
        assert table.select(["y", "name"]).names == ["y", "name"]

    def test_rename(self, table):
        assert "xx" in table.rename({"x": "xx"})

    def test_filter(self, table):
        out = table.filter(np.asarray(table["x"]) > 2)
        assert list(out["name"]) == ["c", "d"]

    def test_filter_bad_mask_length(self, table):
        with pytest.raises(ValueError, match="mask length"):
            table.filter([True])

    def test_where(self, table):
        out = table.where(lambda r: r["y"] < 3)
        assert list(out["name"]) == ["c", "d"]

    def test_sort_ascending_and_reverse(self, table):
        assert list(table.sort("y")["name"]) == ["d", "c", "b", "a"]
        assert list(table.sort("y", reverse=True)["name"]) == ["a", "b", "c", "d"]

    def test_sort_multi_key(self):
        frame = Frame({"g": ["b", "a", "b", "a"], "v": [1, 2, 0, 1]})
        out = frame.sort(["g", "v"])
        assert list(out["g"]) == ["a", "a", "b", "b"]
        assert list(out["v"]) == [1, 2, 0, 1]

    def test_concat(self, table):
        both = table.concat(table)
        assert len(both) == 8

    def test_concat_mismatched_columns_raises(self, table):
        with pytest.raises(ValueError, match="column mismatch"):
            table.concat(Frame({"z": [1]}))

    def test_concat_with_empty(self, table):
        assert table.concat(Frame()) == table

    def test_unique(self):
        frame = Frame({"g": ["b", "a", "b"]})
        assert list(frame.unique("g")) == ["a", "b"]

    def test_head(self, table):
        assert len(table.head(2)) == 2
        assert len(table.head(100)) == 4


class TestJoin:
    def test_inner_join(self):
        left = Frame({"k": [1, 2, 3], "a": [10, 20, 30]})
        right = Frame({"k": [2, 3, 4], "b": [200, 300, 400]})
        out = left.join(right, on="k")
        assert list(out["k"]) == [2, 3]
        assert list(out["b"]) == [200, 300]

    def test_left_join_fills_none(self):
        left = Frame({"k": [1, 2], "a": [10, 20]})
        right = Frame({"k": [2], "b": [200]})
        out = left.join(right, on="k", how="left")
        assert out["b"][0] is None
        assert out["b"][1] == 200

    def test_join_duplicate_right_keys_keep_first(self):
        left = Frame({"k": [1], "a": [1]})
        right = Frame({"k": [1, 1], "b": [10, 20]})
        out = left.join(right, on="k")
        assert out["b"][0] == 10

    def test_join_name_collision_suffixed(self):
        left = Frame({"k": [1], "v": [1]})
        right = Frame({"k": [1], "v": [9]})
        out = left.join(right, on="k")
        assert list(out["v_right"]) == [9]

    def test_unsupported_join_raises(self):
        with pytest.raises(ValueError, match="join type"):
            Frame({"k": [1]}).join(Frame({"k": [1]}), on="k", how="outer")


@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=60
    )
)
def test_property_filter_take_consistency(values):
    """Filtering with a mask equals taking the mask's true indices."""
    frame = Frame({"v": np.asarray(values, dtype=float)})
    mask = np.asarray(values, dtype=float) > 0
    by_filter = frame.filter(mask)
    by_take = frame.take(np.nonzero(mask)[0])
    assert by_filter == by_take


@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=1,
        max_size=60,
    )
)
def test_property_sort_is_ordered_permutation(values):
    frame = Frame({"v": np.asarray(values, dtype=float)})
    out = frame.sort("v")
    assert sorted(values) == pytest.approx(list(out["v"]))
