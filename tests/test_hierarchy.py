"""Tests for the infrastructure hierarchy and allocation bookkeeping."""

import pytest

from repro.infrastructure.capacity import Capacity, OvercommitPolicy
from repro.infrastructure.flavors import Flavor
from repro.infrastructure.vm import VM
from tests.conftest import make_bb, make_node


def _vm(vm_id="v1", vcpus=4, ram_gib=16) -> VM:
    return VM(vm_id=vm_id, flavor=Flavor(f"f-{vm_id}", vcpus=vcpus, ram_gib=ram_gib))


class TestComputeNode:
    def test_allocation_accumulates(self):
        node = make_node()
        node.add_vm(_vm("a", vcpus=2))
        node.add_vm(_vm("b", vcpus=3))
        assert node.allocated().vcpus == 5

    def test_duplicate_vm_rejected(self):
        node = make_node()
        node.add_vm(_vm("a"))
        with pytest.raises(ValueError, match="already"):
            node.add_vm(_vm("a"))

    def test_remove_unknown_vm_raises(self):
        with pytest.raises(KeyError):
            make_node().remove_vm("ghost")

    def test_remove_clears_node_id(self):
        node = make_node()
        vm = _vm("a")
        node.add_vm(vm)
        assert vm.node_id == node.node_id
        out = node.remove_vm("a")
        assert out.node_id is None

    def test_free_respects_overcommit(self):
        node = make_node(vcpus=10)
        policy = OvercommitPolicy(cpu_ratio=4.0)
        assert node.free(policy).vcpus == 40
        node.add_vm(_vm("a", vcpus=30))
        assert node.free(policy).vcpus == 10

    def test_can_host_false_in_maintenance(self):
        node = make_node()
        node.maintenance = True
        assert not node.can_host(_vm("a"), OvercommitPolicy())

    def test_can_host_checks_all_dimensions(self):
        node = make_node(vcpus=64, memory_gib=8)
        policy = OvercommitPolicy(cpu_ratio=4.0, memory_ratio=1.0)
        assert not node.can_host(_vm("a", vcpus=1, ram_gib=16), policy)


class TestBuildingBlock:
    def test_add_node_stamps_bb_id(self):
        bb = make_bb("bb1", nodes=2)
        for node in bb.iter_nodes():
            assert node.building_block == "bb1"

    def test_duplicate_node_rejected(self):
        bb = make_bb("bb1", nodes=1)
        with pytest.raises(ValueError, match="duplicate"):
            bb.add_node(make_node("bb1-n0"))

    def test_aggregate_capacities(self):
        bb = make_bb("bb1", nodes=3, vcpus=64)
        assert bb.physical().vcpus == 192
        assert bb.free().vcpus == 192 * 4.0  # default cpu_ratio

    def test_vm_count_spans_nodes(self):
        bb = make_bb("bb1", nodes=2)
        nodes = list(bb.iter_nodes())
        nodes[0].add_vm(_vm("a"))
        nodes[1].add_vm(_vm("b"))
        assert bb.vm_count == 2
        assert {vm.vm_id for vm in bb.vms()} == {"a", "b"}


class TestRegionWiring:
    def test_ids_propagate_down(self, tiny_region):
        for node in tiny_region.iter_nodes():
            assert node.datacenter
            assert node.az
            assert node.building_block

    def test_node_and_vm_counts(self, tiny_region):
        assert tiny_region.node_count == 12
        assert tiny_region.vm_count == 0

    def test_find_node(self, tiny_region):
        node = next(tiny_region.iter_nodes())
        assert tiny_region.find_node(node.node_id) is node
        with pytest.raises(KeyError):
            tiny_region.find_node("ghost")

    def test_find_building_block(self, tiny_region):
        assert tiny_region.find_building_block("dc1-hana-00").policy == "pack"
        with pytest.raises(KeyError):
            tiny_region.find_building_block("ghost")

    def test_iter_vms(self, tiny_region):
        node = next(tiny_region.iter_nodes())
        node.add_vm(_vm("a"))
        assert [vm.vm_id for vm in tiny_region.iter_vms()] == ["a"]

    def test_duplicate_az_rejected(self, tiny_region):
        from repro.infrastructure.hierarchy import AvailabilityZone

        with pytest.raises(ValueError, match="duplicate"):
            tiny_region.add_az(AvailabilityZone(az_id="az1"))
