"""Tests for the flavor catalogue and Table 1/2 classification bounds."""

import pytest

from repro.infrastructure.flavors import (
    Flavor,
    FlavorCatalog,
    classify_ram,
    classify_vcpus,
    default_catalog,
)


class TestClassification:
    """Boundary behaviour must match Tables 1 and 2 exactly."""

    @pytest.mark.parametrize(
        "vcpus,expected",
        [(1, "small"), (4, "small"), (5, "medium"), (16, "medium"),
         (17, "large"), (64, "large"), (65, "xlarge"), (128, "xlarge")],
    )
    def test_vcpu_boundaries(self, vcpus, expected):
        assert classify_vcpus(vcpus) == expected

    @pytest.mark.parametrize(
        "ram,expected",
        [(1, "small"), (2, "small"), (2.5, "medium"), (64, "medium"),
         (65, "large"), (128, "large"), (129, "xlarge"), (12288, "xlarge")],
    )
    def test_ram_boundaries(self, ram, expected):
        assert classify_ram(ram) == expected


class TestFlavor:
    def test_requested_capacity(self):
        flavor = Flavor("f", vcpus=4, ram_gib=16, disk_gb=100)
        cap = flavor.requested()
        assert cap.vcpus == 4
        assert cap.memory_mb == 16 * 1024
        assert cap.disk_gb == 100

    def test_invalid_vcpus_raises(self):
        with pytest.raises(ValueError):
            Flavor("f", vcpus=0, ram_gib=1)

    def test_invalid_ram_raises(self):
        with pytest.raises(ValueError):
            Flavor("f", vcpus=1, ram_gib=0)

    def test_extra_spec_lookup(self):
        flavor = Flavor("f", 1, 1, extra_specs=(("k", "v"),))
        assert flavor.spec("k") == "v"
        assert flavor.spec("missing") is None
        assert flavor.spec("missing", "d") == "d"

    def test_class_properties(self):
        flavor = Flavor("f", vcpus=96, ram_gib=2048)
        assert flavor.vcpu_class == "xlarge"
        assert flavor.ram_class == "xlarge"


class TestCatalog:
    def test_duplicate_name_rejected(self):
        catalog = FlavorCatalog([Flavor("a", 1, 1)])
        with pytest.raises(ValueError, match="duplicate"):
            catalog.register(Flavor("a", 2, 2))

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError, match="unknown flavor"):
            FlavorCatalog().get("zzz")

    def test_contains_and_len(self):
        catalog = FlavorCatalog([Flavor("a", 1, 1)])
        assert "a" in catalog
        assert len(catalog) == 1


class TestDefaultCatalog:
    def test_has_all_families(self):
        catalog = default_catalog()
        assert catalog.by_family("general")
        assert catalog.by_family("hana")
        assert catalog.by_family("gpu")

    def test_covers_all_size_classes(self):
        catalog = default_catalog()
        assert {f.vcpu_class for f in catalog} == {"small", "medium", "large", "xlarge"}
        assert {f.ram_class for f in catalog} == {"small", "medium", "large", "xlarge"}

    def test_includes_12tb_hana_flavor(self):
        """Table 3: the dataset contains VMs with up to 12 TB of memory."""
        catalog = default_catalog()
        assert max(f.ram_gib for f in catalog) == 12288

    def test_3tb_plus_flavors_require_special_aggregate(self):
        """§3.1: flavors with ≥3 TB memory live on reserved building blocks."""
        for flavor in default_catalog():
            if flavor.ram_gib >= 3072:
                assert flavor.spec("aggregate_class") == "hana_xl"
            elif flavor.family == "hana":
                assert flavor.spec("aggregate_class") == "hana"

    def test_names_are_unique(self):
        catalog = default_catalog()
        names = [f.name for f in catalog]
        assert len(names) == len(set(names))
