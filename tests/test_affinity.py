"""Tests for DRS affinity and anti-affinity rules."""

import pytest

from repro.drs.affinity import AffinityRules
from repro.infrastructure.flavors import Flavor
from repro.infrastructure.vm import VM
from tests.conftest import make_bb


@pytest.fixture
def bb():
    bb = make_bb(nodes=3)
    nodes = list(bb.iter_nodes())
    for i, vm_id in enumerate(("a", "b", "c")):
        nodes[i].add_vm(VM(vm_id=vm_id, flavor=Flavor(f"f-{vm_id}", 4, 8)))
    return bb


def node_id(bb, i):
    return list(bb.nodes)[i]


class TestAntiAffinity:
    def test_blocks_co_location(self, bb):
        rules = AffinityRules()
        rules.add_anti_affinity({"a", "b"})
        # b lives on node 1: a must not move there.
        assert not rules.allows_move(bb, "a", node_id(bb, 1))
        assert rules.allows_move(bb, "a", node_id(bb, 2)) is False or True

    def test_allows_empty_target(self, bb):
        rules = AffinityRules()
        rules.add_anti_affinity({"a", "b"})
        # Node 2 hosts only c, which is not in the group.
        assert rules.allows_move(bb, "a", node_id(bb, 2))

    def test_requires_two_members(self):
        with pytest.raises(ValueError):
            AffinityRules().add_anti_affinity({"solo"})


class TestAffinity:
    def test_blocks_move_away_from_peer(self, bb):
        rules = AffinityRules()
        rules.add_affinity({"a", "b"})
        # b is on node 1; moving a to node 2 would separate them.
        assert not rules.allows_move(bb, "a", node_id(bb, 2))
        # Moving a onto b's node keeps the group together.
        assert rules.allows_move(bb, "a", node_id(bb, 1))

    def test_unrelated_vm_free_to_move(self, bb):
        rules = AffinityRules()
        rules.add_affinity({"a", "b"})
        assert rules.allows_move(bb, "c", node_id(bb, 0))

    def test_requires_two_members(self):
        with pytest.raises(ValueError):
            AffinityRules().add_affinity({"solo"})


def test_unknown_target_node_rejected(bb):
    assert not AffinityRules().allows_move(bb, "a", "ghost-node")


def test_no_rules_allows_everything(bb):
    rules = AffinityRules()
    for target in bb.nodes:
        assert rules.allows_move(bb, "a", target)
