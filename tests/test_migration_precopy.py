"""Tests for the pre-copy live-migration model."""

import pytest
from hypothesis import given, strategies as st

from repro.infrastructure.flavors import Flavor
from repro.migration.precopy import PrecopyModel


@pytest.fixture
def model() -> PrecopyModel:
    return PrecopyModel(bandwidth_mbps=10_000, downtime_target_mb=512)


class TestEstimate:
    def test_idle_vm_single_round(self, model):
        estimate = model.estimate(memory_mb=400, dirty_rate_mbps=0)
        assert estimate.rounds == 0  # below downtime target from the start
        assert estimate.converged
        assert estimate.downtime_seconds == pytest.approx(400 / 10_000)

    def test_quiet_vm_converges_fast(self, model):
        estimate = model.estimate(memory_mb=64_000, dirty_rate_mbps=100)
        assert estimate.converged
        assert estimate.rounds <= 3
        assert estimate.downtime_seconds < 0.1

    def test_dirty_vm_needs_more_rounds_and_transfer(self, model):
        quiet = model.estimate(64_000, dirty_rate_mbps=100)
        busy = model.estimate(64_000, dirty_rate_mbps=5_000)
        assert busy.rounds >= quiet.rounds
        assert busy.transferred_mb > quiet.transferred_mb
        assert busy.total_seconds > quiet.total_seconds

    def test_nonconvergent_when_dirty_rate_exceeds_bandwidth(self, model):
        estimate = model.estimate(64_000, dirty_rate_mbps=20_000)
        assert not estimate.converged

    def test_round_cap_forces_stop_and_copy(self):
        model = PrecopyModel(bandwidth_mbps=1000, downtime_target_mb=1, max_rounds=2)
        estimate = model.estimate(memory_mb=10_000, dirty_rate_mbps=900)
        assert not estimate.converged
        assert estimate.rounds == 2

    def test_invalid_inputs(self, model):
        with pytest.raises(ValueError):
            PrecopyModel(bandwidth_mbps=0)
        with pytest.raises(ValueError):
            model.estimate(-1, 0)


class TestFlavorInterface:
    def test_memory_hot_hana_vm_is_heavy(self, model):
        """§3.2: memory-intensive VMs with high write rates should not move."""
        hana = Flavor("h", vcpus=96, ram_gib=2048, family="hana")
        assert model.is_heavy(hana, memory_ratio=0.95, write_intensity=0.1)

    def test_small_idle_vm_is_light(self, model):
        small = Flavor("g", vcpus=2, ram_gib=4)
        assert not model.is_heavy(small, memory_ratio=0.5, write_intensity=0.005)

    def test_memory_ratio_bounds(self, model):
        with pytest.raises(ValueError):
            model.estimate_for_vm(Flavor("f", 1, 1), memory_ratio=1.5)


@given(
    memory=st.floats(min_value=0, max_value=1e7),
    dirty=st.floats(min_value=0, max_value=5e4),
)
def test_property_estimate_invariants(memory, dirty):
    model = PrecopyModel(bandwidth_mbps=10_000)
    estimate = model.estimate(memory, dirty)
    assert estimate.total_seconds >= 0
    assert estimate.downtime_seconds >= 0
    assert estimate.downtime_seconds <= estimate.total_seconds + 1e-9
    assert estimate.transferred_mb >= min(memory, memory)  # at least one copy
    # Converged migrations respect the downtime target.
    if estimate.converged:
        assert estimate.downtime_seconds <= model.downtime_target_mb / model.bandwidth + 1e-9
